"""GAT attention mapping (paper, Sections V-A and V-B).

GATs compute an attention coefficient per edge,
``α_ij = softmax_j(LeakyReLU(aᵀ[ηw_i || ηw_j]))``.  GNNIE reorders the score
computation so that each vertex computes two scalars exactly once —
``e_{i,1} = a₁ᵀ ηw_i`` (used at vertex i) and ``e_{i,2} = a₂ᵀ ηw_i`` (used by
every vertex that has i as a neighbor) — making the compute-bound part of
attention linear in the graph size, O(|V| + |E|) instead of O(|V|·|E|).

The per-vertex dot products are mapped like Weighting: the attention
subvector a₁ (then a₂) stays stationary in one CPE scratchpad, the weighted
features stream through in G-element chunks, and the MPEs accumulate the
per-vertex scalar.  Because ηw and a are dense, no load balancing is needed.

This module provides the cycle/traffic model of that phase plus a functional
mirror used to verify agreement with the reference GAT layer.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.hw.config import AcceleratorConfig

__all__ = ["AttentionSchedule", "schedule_attention", "attention_terms_functional", "naive_attention_operations"]


@dataclass(frozen=True)
class AttentionSchedule:
    """Cycle/traffic model of the attention-vector multiplication phase.

    Attributes:
        num_vertices: Vertices processed.
        feature_length: F, length of ηw and of each attention subvector.
        chunk_size: G = ceil(F / num_cols), the block each CPE processes.
        vertices_per_column: Va = output-buffer vertices / num_cols.
        total_macs: 2·V·F multiply-accumulates (a₁ and a₂ passes).
        compute_cycles: Cycles with the dense workload spread over the array.
        output_bytes: e_{i,1}, e_{i,2} appended to each vertex's record.
    """

    num_vertices: int
    feature_length: int
    chunk_size: int
    vertices_per_column: int
    total_macs: int
    compute_cycles: int
    output_bytes: int


def schedule_attention(
    num_vertices: int,
    feature_length: int,
    config: AcceleratorConfig,
    *,
    bytes_per_value: int | None = None,
) -> AttentionSchedule:
    """Build the cycle model of the e_{i,1}/e_{i,2} computation phase."""
    if num_vertices < 0 or feature_length <= 0:
        raise ValueError("num_vertices must be >= 0 and feature_length positive")
    value_bytes = bytes_per_value if bytes_per_value is not None else config.bytes_per_value
    chunk = -(-feature_length // config.num_cols)
    vertices_per_column = max(
        1, config.output_buffer_bytes // max(1, config.num_cols * feature_length * value_bytes)
    )
    total_macs = 2 * num_vertices * feature_length
    # Dense and perfectly balanced: the array retires total_macs at its full
    # MAC bandwidth; the two sequential passes (a1 then a2) are already
    # included in total_macs.
    total_mac_bandwidth = float(config.total_macs)
    compute_cycles = int(np.ceil(total_macs / total_mac_bandwidth)) if total_macs else 0
    output_bytes = 2 * num_vertices * value_bytes
    return AttentionSchedule(
        num_vertices=int(num_vertices),
        feature_length=int(feature_length),
        chunk_size=int(chunk),
        vertices_per_column=int(vertices_per_column),
        total_macs=int(total_macs),
        compute_cycles=compute_cycles,
        output_bytes=int(output_bytes),
    )


def attention_terms_functional(
    weighted: np.ndarray,
    attention_left: np.ndarray,
    attention_right: np.ndarray,
    config: AcceleratorConfig,
) -> tuple[np.ndarray, np.ndarray]:
    """Blocked computation of (e_{i,1}, e_{i,2}) mirroring the CPE mapping.

    The feature dimension is processed in G-element chunks, one per CPE
    column, with per-chunk partial dot products accumulated by the MPE — the
    result must equal the direct dot products, which the tests assert.
    """
    weighted = np.asarray(weighted, dtype=np.float64)
    attention_left = np.asarray(attention_left, dtype=np.float64).ravel()
    attention_right = np.asarray(attention_right, dtype=np.float64).ravel()
    if weighted.shape[1] != attention_left.size or weighted.shape[1] != attention_right.size:
        raise ValueError("attention vector length must match the feature length")
    feature_length = weighted.shape[1]
    chunk = -(-feature_length // config.num_cols)
    center = np.zeros(weighted.shape[0], dtype=np.float64)
    neighbor = np.zeros(weighted.shape[0], dtype=np.float64)
    for start in range(0, feature_length, chunk):
        end = min(start + chunk, feature_length)
        center += weighted[:, start:end] @ attention_left[start:end]
        neighbor += weighted[:, start:end] @ attention_right[start:end]
    return center, neighbor


def naive_attention_operations(num_vertices: int, num_edges: int, feature_length: int) -> int:
    """Operation count of the naive per-edge attention computation.

    The naive scheme recomputes a full 2F-length dot product per edge —
    O(|E|·F) multiplies — which is what GNNIE's reordering avoids.  Exposed
    so the ablation benchmark can report the reduction factor.
    """
    if min(num_vertices, num_edges, feature_length) < 0:
        raise ValueError("arguments must be non-negative")
    return int(num_edges * 2 * feature_length)
