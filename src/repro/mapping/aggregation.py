"""Edge-based Aggregation mapping (paper, Section V-C).

Aggregation sums the weighted feature vectors ηw_j over each vertex's
neighborhood.  The graph is processed one cached subgraph at a time (the
cache controller of :mod:`repro.cache` decides which vertices are resident);
within a subgraph iteration the edges are processed in parallel in the CPE
array:

* with **load balancing (LB)** enabled, the per-edge elementwise additions
  are decomposed into unit pairwise summations and spread over all CPEs (an
  adder tree whose width per vertex follows its subgraph degree), so the
  whole array's MAC bandwidth is the only limit;
* without LB (the ablation baseline), each vertex's accumulation is handled
  by whichever CPE it was assigned to in vertex order, so a high-degree
  vertex serializes on a single CPE and the power-law degree distribution
  directly becomes idle time.

For GATs the same edge walk also evaluates the softmax numerator/denominator
(Fig. 7): an add, a LeakyReLU and an exponential per edge in the SFU, a
multiply of exp(e_ij) with ηw_j per feature element, and a division per
output element at the end.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.hw.config import AcceleratorConfig
from repro.hw.sfu import SFUConfig

__all__ = ["IterationCost", "AggregationCycleModel"]


@dataclass(frozen=True)
class IterationCost:
    """Cycle cost of aggregating one cached-subgraph iteration."""

    edges_processed: int
    compute_cycles: int
    sfu_cycles: int
    addition_ops: int
    multiply_ops: int
    sfu_ops: int


class AggregationCycleModel:
    """Converts per-iteration edge counts into CPE-array cycles."""

    def __init__(
        self,
        config: AcceleratorConfig,
        feature_length: int,
        *,
        is_gat: bool = False,
        sfu_config: SFUConfig | None = None,
        num_sfu_columns: int = 4,
    ) -> None:
        if feature_length <= 0:
            raise ValueError("feature_length must be positive")
        self.config = config
        self.feature_length = int(feature_length)
        self.is_gat = is_gat
        self.sfu_config = sfu_config or SFUConfig()
        self.num_sfu_columns = num_sfu_columns
        self._total_macs = float(config.total_macs)
        self._average_macs_per_cpe = float(config.total_macs) / float(config.num_cpes)
        #: SFU scalar throughput per cycle: one op per SFU lane, with one
        #: lane per CPE row in each interleaved SFU column.
        self._sfu_lanes = float(num_sfu_columns * config.num_rows)

    # ------------------------------------------------------------------ #
    # Per-iteration costs
    # ------------------------------------------------------------------ #
    def iteration_cost(
        self,
        undirected_edges: int,
        *,
        max_edges_per_vertex: int = 0,
        num_resident_vertices: int = 0,
    ) -> IterationCost:
        """Cycle cost of processing ``undirected_edges`` in one iteration.

        Args:
            undirected_edges: Number of (undirected) subgraph edges processed
                this iteration; each contributes an accumulation into both
                endpoints.
            max_edges_per_vertex: Largest number of edges any single resident
                vertex accumulates this iteration (drives the no-LB penalty).
            num_resident_vertices: Vertices resident in the buffer (used for
                the GAT softmax division count).
        """
        if undirected_edges < 0:
            raise ValueError("undirected_edges must be non-negative")
        feature = self.feature_length
        # Each undirected edge feeds both endpoints: 2 directed contributions,
        # each an elementwise add of an F-long vector.
        addition_ops = 2 * undirected_edges * feature
        multiply_ops = 0
        sfu_ops = 0
        if self.is_gat:
            # exp(e_ij) · ηw_j per directed edge (F multiplies) and the final
            # division by the softmax denominator per output element.
            multiply_ops = 2 * undirected_edges * feature
            sfu_ops = 2 * undirected_edges * 2 + num_resident_vertices  # LeakyReLU + exp per edge, denom add
        mac_ops = addition_ops + multiply_ops

        if self.config.enable_aggregation_load_balancing:
            compute_cycles = int(np.ceil(mac_ops / self._total_macs)) if mac_ops else 0
        else:
            # Without degree-aware distribution, vertices are assigned to
            # CPEs in id order; the expected bottleneck is the average
            # per-CPE share plus the largest single-vertex accumulation
            # serialized on one CPE.
            per_vertex_factor = 2 if self.is_gat else 1
            average_share = mac_ops / float(self.config.num_cpes)
            worst_vertex = max_edges_per_vertex * feature * per_vertex_factor
            bottleneck = average_share + worst_vertex
            compute_cycles = (
                int(np.ceil(bottleneck / self._average_macs_per_cpe)) if mac_ops else 0
            )

        sfu_cycles = 0
        if sfu_ops:
            per_op_latency = max(
                self.sfu_config.exp_latency_cycles, self.sfu_config.leaky_relu_latency_cycles
            )
            sfu_cycles = int(np.ceil(sfu_ops * per_op_latency / self._sfu_lanes))
        return IterationCost(
            edges_processed=int(undirected_edges),
            compute_cycles=compute_cycles,
            sfu_cycles=sfu_cycles,
            addition_ops=int(addition_ops),
            multiply_ops=int(multiply_ops),
            sfu_ops=int(sfu_ops),
        )

    def iteration_totals(
        self,
        edges: np.ndarray,
        max_edges_per_vertex: np.ndarray,
        resident_vertices: np.ndarray,
    ) -> IterationCost:
        """Summed cost of a whole iteration sequence in one NumPy pass.

        Takes the per-iteration columns of a cache simulation (edge counts,
        worst single-vertex accumulation, resident-vertex counts) and prices
        every iteration elementwise, returning the totals as one
        :class:`IterationCost`.  Bit-exact with summing :meth:`iteration_cost`
        record by record: every intermediate stays far below 2**53, so the
        float64 divisions and ceilings round identically to the scalar path —
        the batch executor relies on this to keep sweep rows byte-identical.
        """
        edges = np.asarray(edges, dtype=np.int64)
        max_edges_per_vertex = np.asarray(max_edges_per_vertex, dtype=np.int64)
        resident_vertices = np.asarray(resident_vertices, dtype=np.int64)
        if edges.size == 0:
            return IterationCost(0, 0, 0, 0, 0, 0)
        if int(edges.min()) < 0:
            raise ValueError("undirected_edges must be non-negative")
        feature = self.feature_length
        addition_ops = 2 * edges * feature
        if self.is_gat:
            multiply_ops = 2 * edges * feature
            sfu_ops = 2 * edges * 2 + resident_vertices
        else:
            multiply_ops = np.zeros_like(edges)
            sfu_ops = np.zeros_like(edges)
        mac_ops = addition_ops + multiply_ops

        if self.config.enable_aggregation_load_balancing:
            compute_cycles = np.where(
                mac_ops > 0, np.ceil(mac_ops / self._total_macs), 0.0
            ).astype(np.int64)
        else:
            per_vertex_factor = 2 if self.is_gat else 1
            average_share = mac_ops / float(self.config.num_cpes)
            worst_vertex = max_edges_per_vertex * feature * per_vertex_factor
            bottleneck = average_share + worst_vertex
            compute_cycles = np.where(
                mac_ops > 0, np.ceil(bottleneck / self._average_macs_per_cpe), 0.0
            ).astype(np.int64)

        per_op_latency = max(
            self.sfu_config.exp_latency_cycles, self.sfu_config.leaky_relu_latency_cycles
        )
        sfu_cycles = np.where(
            sfu_ops > 0, np.ceil(sfu_ops * per_op_latency / self._sfu_lanes), 0.0
        ).astype(np.int64)
        return IterationCost(
            edges_processed=int(edges.sum()),
            compute_cycles=int(compute_cycles.sum()),
            sfu_cycles=int(sfu_cycles.sum()),
            addition_ops=int(addition_ops.sum()),
            multiply_ops=int(multiply_ops.sum()),
            sfu_ops=int(sfu_ops.sum()),
        )

    def finalization_cost(self, num_vertices: int) -> IterationCost:
        """Cost of the per-vertex wrap-up after all edges are aggregated.

        For GATs this is the division of the accumulated numerator by the
        softmax denominator (F divisions per vertex in the SFU); for the
        other GNNs only the activation remains, which the activation unit
        performs as results stream out (modeled as a single cycle per vertex
        element overlapped with the write-back, hence zero extra CPE cycles).
        """
        if num_vertices < 0:
            raise ValueError("num_vertices must be non-negative")
        if not self.is_gat:
            return IterationCost(0, 0, 0, 0, 0, 0)
        divide_ops = num_vertices * self.feature_length
        sfu_cycles = int(
            np.ceil(divide_ops * self.sfu_config.divide_latency_cycles / self._sfu_lanes)
        )
        return IterationCost(
            edges_processed=0,
            compute_cycles=0,
            sfu_cycles=sfu_cycles,
            addition_ops=0,
            multiply_ops=0,
            sfu_ops=int(divide_ops),
        )

    # ------------------------------------------------------------------ #
    # Functional mirror
    # ------------------------------------------------------------------ #
    @staticmethod
    def aggregate_subgraph(
        weighted: np.ndarray,
        edges: np.ndarray,
        accumulator: np.ndarray,
        *,
        edge_weights: np.ndarray | None = None,
    ) -> np.ndarray:
        """Accumulate edge contributions into ``accumulator`` (both directions).

        This is the functional counterpart of one cached-subgraph iteration:
        every undirected edge (u, v) adds ηw_u into v's partial sum and ηw_v
        into u's.  Tests use it to confirm that processing the graph in
        cache-controller order reproduces the reference aggregation.
        """
        weighted = np.asarray(weighted, dtype=np.float64)
        accumulator = np.asarray(accumulator, dtype=np.float64)
        if edges.size == 0:
            return accumulator
        sources = edges[:, 0]
        destinations = edges[:, 1]
        if edge_weights is None:
            forward = weighted[sources]
            backward = weighted[destinations]
        else:
            forward = weighted[sources] * edge_weights[:, None]
            backward = weighted[destinations] * edge_weights[:, None]
        np.add.at(accumulator, destinations, forward)
        np.add.at(accumulator, sources, backward)
        return accumulator
