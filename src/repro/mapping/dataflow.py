"""Dataflow-order analysis: Weighting-first vs. Aggregation-first.

Section III of the paper notes that a GCN layer σ(Ã H W) can be evaluated as
either ``(Ã H) W`` (aggregate first — HyGCN's order) or ``Ã (H W)``
(weight first — GNNIE's and AWB-GCN's order) and that the latter needs an
order of magnitude fewer operations on the input layers, because aggregation
then runs at the (small) output width instead of the (large, e.g. 1433 for
Cora) input width.  EnGN's "dimension-aware stage reordering" chooses the
order per layer; its published results confirm weighting-first wins on these
workloads.

This module quantifies that choice analytically so the ablation benchmark and
the design-space tools can report it per dataset and per layer.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.graph import Graph

__all__ = ["DataflowCosts", "compare_dataflow_orders", "preferred_dataflow"]


@dataclass(frozen=True)
class DataflowCosts:
    """Operation counts of one layer under both phase orderings."""

    layer_index: int
    in_features: int
    out_features: int
    #: MACs for H W exploiting input sparsity (identical in both orders).
    weighting_macs: int
    #: Aggregation operations when Weighting runs first (width = F_out).
    aggregation_ops_weighting_first: int
    #: Aggregation operations when Aggregation runs first (width = F_in,
    #: operating on the raw — possibly sparse — features).
    aggregation_ops_aggregation_first: int
    #: Weighting MACs when Aggregation runs first: the aggregated features
    #: are dense, so zero skipping no longer helps.
    dense_weighting_macs: int

    @property
    def total_weighting_first(self) -> int:
        return self.weighting_macs + self.aggregation_ops_weighting_first

    @property
    def total_aggregation_first(self) -> int:
        return self.dense_weighting_macs + self.aggregation_ops_aggregation_first

    @property
    def advantage(self) -> float:
        """How many times cheaper the weighting-first order is (>1 = cheaper)."""
        if self.total_weighting_first == 0:
            return float("inf")
        return self.total_aggregation_first / self.total_weighting_first

    @property
    def preferred_order(self) -> str:
        return "weighting_first" if self.advantage >= 1.0 else "aggregation_first"


def compare_dataflow_orders(
    graph: Graph,
    layer_dimensions: list[tuple[int, int]],
    *,
    hidden_density: float = 0.6,
) -> list[DataflowCosts]:
    """Per-layer operation counts under both orderings for a dataset graph.

    Args:
        graph: Dataset graph (its actual feature sparsity drives layer 1).
        layer_dimensions: (F_in, F_out) for every layer, e.g. from
            :meth:`repro.models.ModelConfig.layer_dimensions`.
        hidden_density: Modeled nonzero density of post-ReLU hidden features.
    """
    num_vertices = graph.num_vertices
    num_edges = graph.num_edges
    results: list[DataflowCosts] = []
    for index, (in_features, out_features) in enumerate(layer_dimensions):
        if index == 0:
            nonzeros = int(np.count_nonzero(graph.features))
        else:
            nonzeros = int(round(hidden_density * num_vertices * in_features))
        weighting_macs = nonzeros * out_features
        dense_weighting_macs = num_vertices * in_features * out_features
        aggregation_wf = (num_edges + num_vertices) * out_features
        aggregation_af = (num_edges + num_vertices) * in_features
        results.append(
            DataflowCosts(
                layer_index=index,
                in_features=in_features,
                out_features=out_features,
                weighting_macs=int(weighting_macs),
                aggregation_ops_weighting_first=int(aggregation_wf),
                aggregation_ops_aggregation_first=int(aggregation_af),
                dense_weighting_macs=int(dense_weighting_macs),
            )
        )
    return results


def preferred_dataflow(costs: list[DataflowCosts]) -> str:
    """The ordering with the lower total operation count across all layers."""
    if not costs:
        raise ValueError("costs must contain at least one layer")
    weighting_first = sum(cost.total_weighting_first for cost in costs)
    aggregation_first = sum(cost.total_aggregation_first for cost in costs)
    return "weighting_first" if weighting_first <= aggregation_first else "aggregation_first"
