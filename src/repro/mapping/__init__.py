"""Mapping of GNN computations onto the GNNIE PE array."""

from repro.mapping.aggregation import AggregationCycleModel, IterationCost
from repro.mapping.attention import (
    AttentionSchedule,
    attention_terms_functional,
    naive_attention_operations,
    schedule_attention,
)
from repro.mapping.dataflow import (
    DataflowCosts,
    compare_dataflow_orders,
    preferred_dataflow,
)
from repro.mapping.binning import BlockAssignment, baseline_assignment, flexible_mac_assignment
from repro.mapping.load_redistribution import LoadRedistributionResult, redistribute_load
from repro.mapping.weighting import WeightingSchedule, schedule_weighting, weighting_functional

__all__ = [
    "BlockAssignment",
    "baseline_assignment",
    "flexible_mac_assignment",
    "LoadRedistributionResult",
    "redistribute_load",
    "WeightingSchedule",
    "schedule_weighting",
    "weighting_functional",
    "AttentionSchedule",
    "schedule_attention",
    "attention_terms_functional",
    "naive_attention_operations",
    "AggregationCycleModel",
    "IterationCost",
    "DataflowCosts",
    "compare_dataflow_orders",
    "preferred_dataflow",
]
