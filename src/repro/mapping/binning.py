"""Flexible MAC (FM) workload binning for the Weighting phase.

Section IV-C of the paper: because input vertex feature vectors have widely
varying sparsity, the k-element blocks mapped to CPE rows take very different
times ("rabbits" vs. "turtles").  GNNIE's Flexible MAC architecture gives the
CPE rows of different row groups different numbers of MAC units, and a linear
time preprocessing step bins the feature blocks by nonzero count so that the
bin of densest blocks is served by the row group with the most MACs.

This module implements

* :func:`baseline_assignment` — the position-based mapping (block ``i`` of
  every vertex goes to CPE row ``i``) used by Design A, which exhibits the
  imbalance shown in Fig. 16,
* :func:`flexible_mac_assignment` — nonzero-count binning with bins assigned
  to row groups in MAC order, and round-robin distribution within a group,
* the shared :class:`BlockAssignment` result type consumed by the Weighting
  cycle model and by the Fig. 16/17 benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.hw.config import AcceleratorConfig

__all__ = ["BlockAssignment", "baseline_assignment", "flexible_mac_assignment"]


@dataclass(frozen=True)
class BlockAssignment:
    """Outcome of assigning feature blocks to CPE rows for one pass.

    Attributes:
        row_nonzeros: Total nonzero operands assigned to each CPE row.
        row_cycles: Cycles each row needs to process its blocks once against
            one resident weight column set (Σ ceil(nnz_block / MACs_per_CPE)).
        row_block_counts: Number of blocks assigned to each row.
        policy: "baseline" or "flexible_mac".
        preprocessing_operations: Cost of the binning preprocessing (linear
            in the number of blocks), charged by the simulator.
    """

    row_nonzeros: np.ndarray
    row_cycles: np.ndarray
    row_block_counts: np.ndarray
    policy: str
    preprocessing_operations: int

    @property
    def max_cycles(self) -> int:
        return int(self.row_cycles.max()) if self.row_cycles.size else 0

    @property
    def min_cycles(self) -> int:
        return int(self.row_cycles.min()) if self.row_cycles.size else 0

    @property
    def imbalance(self) -> float:
        """Max-to-mean cycle ratio (1.0 = perfectly balanced)."""
        mean = float(self.row_cycles.mean()) if self.row_cycles.size else 0.0
        if mean == 0.0:
            return 1.0
        return float(self.max_cycles / mean)

    @property
    def total_nonzeros(self) -> int:
        return int(self.row_nonzeros.sum())


def _row_cycles(nonzeros: np.ndarray, macs_per_row: tuple[int, ...]) -> np.ndarray:
    """Per-row cycle totals from per-row nonzero totals.

    A CPE pipelines blocks back to back ("immediately move on to a block
    from the next available subvector", Section IV-A), so the nonzero
    operands assigned to a row pack densely into its MAC slots: the row's
    cycle count is ``ceil(total nonzeros / MACs per CPE)``.
    """
    macs = np.asarray(macs_per_row, dtype=np.int64)
    return -(-nonzeros // macs)


def baseline_assignment(
    block_nonzeros: np.ndarray, config: AcceleratorConfig
) -> BlockAssignment:
    """Position-based mapping: block ``b`` of every vertex goes to row ``b``.

    If the feature vector has fewer blocks than the array has rows, the
    remaining rows receive no work (they idle); this is exactly the source of
    imbalance the FM architecture removes.
    """
    block_nonzeros = np.asarray(block_nonzeros, dtype=np.int64)
    if block_nonzeros.ndim != 2:
        raise ValueError("block_nonzeros must be (num_vertices, num_blocks)")
    num_vertices, num_blocks = block_nonzeros.shape
    if num_blocks > config.num_rows:
        raise ValueError(
            f"{num_blocks} blocks exceed the {config.num_rows} CPE rows; "
            "the block size k must be ceil(F / num_rows)"
        )
    nonzeros = np.zeros(config.num_rows, dtype=np.int64)
    counts = np.zeros(config.num_rows, dtype=np.int64)
    nonzeros[:num_blocks] = block_nonzeros.sum(axis=0)
    counts[:num_blocks] = num_vertices
    return BlockAssignment(
        row_nonzeros=nonzeros,
        row_cycles=_row_cycles(nonzeros, config.macs_per_row),
        row_block_counts=counts,
        policy="baseline",
        preprocessing_operations=0,
    )


def flexible_mac_assignment(
    block_nonzeros: np.ndarray, config: AcceleratorConfig
) -> BlockAssignment:
    """Bin blocks by nonzero count and assign bins to MAC-ordered row groups.

    Blocks are sorted by nonzero count (a linear-time counting sort in
    hardware) and split into ``num_groups`` bins whose total work is
    proportional to each row group's share of the array's MAC capacity: the
    lightest bin goes to the group with the fewest MACs per CPE, the
    heaviest to the group with the most, and blocks are dealt round-robin to
    the rows of their group.  Any residual per-row skew left by the binning
    granularity is what Load Redistribution subsequently removes.
    """
    block_nonzeros = np.asarray(block_nonzeros, dtype=np.int64)
    if block_nonzeros.ndim != 2:
        raise ValueError("block_nonzeros must be (num_vertices, num_blocks)")
    flat = block_nonzeros.ravel()
    rows_per_group = config.rows_per_group
    group_macs = np.asarray(
        [macs * rows for macs, rows in zip(config.macs_per_group, rows_per_group)],
        dtype=np.float64,
    )

    # Sort ascending by nonzero count (light blocks first).
    order = np.argsort(flat, kind="stable")
    sorted_nonzeros = flat[order]
    cumulative_work = np.cumsum(sorted_nonzeros.astype(np.float64))
    total_work = float(cumulative_work[-1]) if cumulative_work.size else 0.0
    capacity_fraction = group_macs / group_macs.sum()
    targets = np.cumsum(capacity_fraction)[:-1] * total_work
    boundaries = np.concatenate(
        [[0], np.searchsorted(cumulative_work, targets, side="left"), [flat.size]]
    ).astype(np.int64)
    boundaries = np.maximum.accumulate(boundaries)

    # Round-robin deal of the (sorted) blocks across each group's rows,
    # expressed as one gather: block ``i`` of group ``g`` lands on row
    # ``row_start[g] + (i - boundaries[g]) % rows_per_group[g]``.
    rows_array = np.asarray(rows_per_group, dtype=np.int64)
    row_start = np.concatenate([[0], np.cumsum(rows_array)])[:-1]
    indices = np.arange(flat.size, dtype=np.int64)
    group_of_block = np.searchsorted(boundaries, indices, side="right") - 1
    row_of_block = row_start[group_of_block] + (
        indices - boundaries[group_of_block]
    ) % rows_array[group_of_block]

    nonzeros = np.zeros(config.num_rows, dtype=np.int64)
    np.add.at(nonzeros, row_of_block, sorted_nonzeros)
    counts = np.bincount(row_of_block, minlength=config.num_rows).astype(np.int64)
    return BlockAssignment(
        row_nonzeros=nonzeros,
        row_cycles=_row_cycles(nonzeros, config.macs_per_row),
        row_block_counts=counts,
        policy="flexible_mac",
        preprocessing_operations=int(flat.size),
    )
