"""Static Load Redistribution (LR) between CPE rows.

Even with the Flexible MAC binning, the per-row Weighting workload is not
perfectly level (Fig. 16).  GNNIE therefore performs a second, static
balancing step (Section IV-C): the controller selects pairs of heavily and
lightly loaded CPE rows ("LR pairs") and offloads a portion of the heavy
row's remaining work to the light row.  To keep communication cheap the
offload happens only after the current weights are no longer needed, and the
light row's weight scratchpads are reloaded for the offloaded blocks — an
overhead charged per moved cycle of work here.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["LoadRedistributionResult", "redistribute_load"]


@dataclass(frozen=True)
class LoadRedistributionResult:
    """Per-row cycles before and after load redistribution."""

    cycles_before: np.ndarray
    cycles_after: np.ndarray
    pairs: list[tuple[int, int]]
    moved_cycles: int
    overhead_cycles: int

    @property
    def max_before(self) -> int:
        return int(self.cycles_before.max()) if self.cycles_before.size else 0

    @property
    def max_after(self) -> int:
        return int(self.cycles_after.max()) if self.cycles_after.size else 0

    @property
    def imbalance_before(self) -> float:
        mean = float(self.cycles_before.mean()) if self.cycles_before.size else 0.0
        return float(self.max_before / mean) if mean else 1.0

    @property
    def imbalance_after(self) -> float:
        mean = float(self.cycles_after.mean()) if self.cycles_after.size else 0.0
        return float(self.max_after / mean) if mean else 1.0


def redistribute_load(
    row_cycles: np.ndarray,
    *,
    num_pairs: int | None = None,
    transfer_overhead: float = 0.05,
    max_transfer_fraction: float = 0.5,
) -> LoadRedistributionResult:
    """Pair heavy and light CPE rows and offload work between them.

    Args:
        row_cycles: Per-row Weighting cycles (the FM assignment's
            ``row_cycles``).
        num_pairs: Number of LR pairs to form; defaults to a quarter of the
            rows (the paper pairs the four heaviest with the four lightest
            rows of the 16-row array).
        transfer_overhead: Fractional cycle overhead added to offloaded work
            on the receiving row (weight scratchpad reload + operand
            transfer).
        max_transfer_fraction: At most this fraction of the heavy row's load
            may be moved (the offload happens late in the pass, after the
            resident weights are exhausted).

    Returns:
        Per-row cycles after redistribution plus the pairing bookkeeping.
    """
    cycles = np.asarray(row_cycles, dtype=np.float64)
    if cycles.ndim != 1:
        raise ValueError("row_cycles must be one-dimensional")
    if not 0.0 <= transfer_overhead < 1.0:
        raise ValueError("transfer_overhead must be in [0, 1)")
    if not 0.0 < max_transfer_fraction <= 1.0:
        raise ValueError("max_transfer_fraction must be in (0, 1]")
    num_rows = cycles.size
    if num_pairs is None:
        num_pairs = max(1, num_rows // 4)
    num_pairs = min(num_pairs, num_rows // 2)

    after = cycles.copy()
    order = np.argsort(cycles)
    light_rows = order[:num_pairs]
    heavy_rows = order[::-1][:num_pairs]
    pairs: list[tuple[int, int]] = []
    moved_total = 0.0
    overhead_total = 0.0
    for heavy, light in zip(heavy_rows, light_rows):
        if heavy == light:
            continue
        heavy_load = after[heavy]
        light_load = after[light]
        if heavy_load <= light_load:
            continue
        # Move enough to equalize the pair, accounting for the overhead the
        # receiving row pays on offloaded work, subject to the cap.
        ideal_move = (heavy_load - light_load) / (2.0 + transfer_overhead)
        move = min(ideal_move, max_transfer_fraction * heavy_load)
        after[heavy] = heavy_load - move
        after[light] = light_load + move * (1.0 + transfer_overhead)
        pairs.append((int(heavy), int(light)))
        moved_total += move
        overhead_total += move * transfer_overhead
    return LoadRedistributionResult(
        cycles_before=np.ceil(cycles).astype(np.int64),
        cycles_after=np.ceil(after).astype(np.int64),
        pairs=pairs,
        moved_cycles=int(round(moved_total)),
        overhead_cycles=int(round(overhead_total)),
    )
