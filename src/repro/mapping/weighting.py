"""Mapping the Weighting phase onto the CPE array (paper, Section IV).

Weighting multiplies every (sparse) vertex feature vector ``h^{l-1}_i`` by
the dense weight matrix ``W^l`` under a weight-stationary dataflow:

* the feature dimension is split into blocks of ``k = ceil(F^{l-1} / M)``
  elements, one block per CPE row,
* ``N`` columns of ``W^l`` are resident at a time (one column per CPE
  column); a *pass* streams every vertex's blocks against those columns,
  and ``ceil(F^l / N)`` passes complete the layer,
* zero feature elements are skipped (zero-detection buffer), so a block's
  cost is its nonzero count,
* the Flexible MAC binning and Load Redistribution policies of
  :mod:`repro.mapping.binning` and :mod:`repro.mapping.load_redistribution`
  level the per-row load.

:func:`schedule_weighting` builds the static schedule (block size, passes,
per-row assignment under the configured policy), and
:func:`weighting_functional` carries out the same blocked computation
numerically so tests can confirm the mapping is exact (every nonzero touched
exactly once, result equal to the dense GEMM).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.hw.config import AcceleratorConfig
from repro.mapping.binning import BlockAssignment, baseline_assignment, flexible_mac_assignment
from repro.mapping.load_redistribution import LoadRedistributionResult, redistribute_load
from repro.sparse.feature_matrix import block_nonzero_counts

__all__ = ["WeightingSchedule", "schedule_weighting", "weighting_functional"]


@dataclass(frozen=True)
class WeightingSchedule:
    """Static schedule of one layer's Weighting phase on the CPE array.

    Attributes:
        block_size: k, elements of the feature vector per CPE row.
        num_blocks: Number of k-blocks per feature vector (≤ num_rows).
        num_passes: ceil(F_out / num_cols) weight-column passes.
        assignment: Per-row workload under the *active* policy.
        baseline: Per-row workload under the position-based mapping (kept for
            the Fig. 16 comparison even when FM is enabled).
        load_redistribution: LR outcome when enabled, else None.
        row_cycles_per_pass: Final per-row cycles of one pass after all
            enabled balancing steps.
        total_nonzero_macs: MAC operations after zero skipping for the whole
            layer (nonzeros × F_out).
        total_dense_macs: MACs a dense (non-skipping) engine would need.
    """

    block_size: int
    num_blocks: int
    num_passes: int
    assignment: BlockAssignment
    baseline: BlockAssignment
    load_redistribution: LoadRedistributionResult | None
    row_cycles_per_pass: np.ndarray
    total_nonzero_macs: int
    total_dense_macs: int

    @property
    def cycles_per_pass(self) -> int:
        """One pass is gated by the slowest CPE row."""
        return int(self.row_cycles_per_pass.max()) if self.row_cycles_per_pass.size else 0

    @property
    def compute_cycles(self) -> int:
        """Compute-bound Weighting cycles for the layer (all passes)."""
        return self.num_passes * self.cycles_per_pass

    @property
    def average_row_utilization(self) -> float:
        """Mean row-busy fraction relative to the slowest row."""
        maximum = self.cycles_per_pass
        if maximum == 0:
            return 1.0
        return float(self.row_cycles_per_pass.mean() / maximum)


def schedule_weighting(
    features: np.ndarray | None,
    out_features: int,
    config: AcceleratorConfig,
    *,
    block_nonzeros: np.ndarray | None = None,
    in_features: int | None = None,
) -> WeightingSchedule:
    """Build the Weighting schedule for a feature matrix and output width.

    Args:
        features: ``(V, F_in)`` input feature matrix of the layer (only its
            nonzero structure matters).  May be ``None`` when a precomputed
            ``block_nonzeros`` (plus ``in_features``) is supplied instead.
        out_features: F_out, the number of weight-matrix columns.
        config: Accelerator configuration (array shape, MAC allocation,
            policy flags).
        block_nonzeros: Optional precomputed ``(V, num_blocks)`` nonzero
            counts (used by the simulator for later layers whose features
            are modeled statistically rather than materialized).
        in_features: F_in; required when ``block_nonzeros`` is given.
    """
    if out_features <= 0:
        raise ValueError("out_features must be positive")
    if block_nonzeros is None:
        if features is None:
            raise ValueError("either features or block_nonzeros must be provided")
        features = np.asarray(features)
        if features.ndim != 2:
            raise ValueError("features must be (V, F_in)")
        in_features = features.shape[1]
        block_size = -(-in_features // config.num_rows)
        blocks = block_nonzero_counts(features, block_size)
    else:
        if in_features is None:
            raise ValueError("in_features is required when block_nonzeros is supplied")
        blocks = np.asarray(block_nonzeros, dtype=np.int64)
        if blocks.ndim != 2:
            raise ValueError("block_nonzeros must be (V, num_blocks)")
        block_size = -(-in_features // config.num_rows)
    num_blocks = blocks.shape[1]
    num_passes = -(-out_features // config.num_cols)

    baseline = baseline_assignment(blocks, config)
    if config.enable_flexible_mac:
        assignment = flexible_mac_assignment(blocks, config)
    else:
        assignment = baseline

    if not config.enable_zero_skipping:
        # A non-skipping engine pays for every element of every block, so the
        # per-row cycle counts are recomputed with fully dense blocks.
        dense_blocks = np.full_like(blocks, fill_value=block_size)
        if config.enable_flexible_mac:
            assignment = flexible_mac_assignment(dense_blocks, config)
        else:
            assignment = baseline_assignment(dense_blocks, config)

    load_redistribution = None
    row_cycles = assignment.row_cycles
    if config.enable_load_redistribution:
        load_redistribution = redistribute_load(row_cycles)
        row_cycles = load_redistribution.cycles_after

    total_nonzeros = int(blocks.sum())
    total_dense = int(blocks.shape[0] * blocks.shape[1] * block_size)
    return WeightingSchedule(
        block_size=int(block_size),
        num_blocks=int(num_blocks),
        num_passes=int(num_passes),
        assignment=assignment,
        baseline=baseline,
        load_redistribution=load_redistribution,
        row_cycles_per_pass=np.asarray(row_cycles, dtype=np.int64),
        total_nonzero_macs=total_nonzeros * out_features,
        total_dense_macs=total_dense * out_features,
    )


def weighting_functional(
    features: np.ndarray, weight: np.ndarray, config: AcceleratorConfig
) -> np.ndarray:
    """Blocked, zero-skipping Weighting that mirrors the hardware mapping.

    Processes the feature dimension in k-element blocks (one per CPE row) and
    the output dimension in N-column passes, accumulating partial results per
    (vertex, output column) the way the MPEs do.  Numerically identical to
    ``features @ weight``; the test suite asserts this, which validates that
    the schedule covers every nonzero exactly once.
    """
    features = np.asarray(features, dtype=np.float64)
    weight = np.asarray(weight, dtype=np.float64)
    if features.shape[1] != weight.shape[0]:
        raise ValueError("feature and weight dimensions do not agree")
    num_vertices, in_features = features.shape
    out_features = weight.shape[1]
    block_size = -(-in_features // config.num_rows)
    num_passes = -(-out_features // config.num_cols)
    output = np.zeros((num_vertices, out_features), dtype=np.float64)
    for pass_index in range(num_passes):
        col_start = pass_index * config.num_cols
        col_end = min(col_start + config.num_cols, out_features)
        resident_weights = weight[:, col_start:col_end]
        for block_index in range(config.num_rows):
            row_start = block_index * block_size
            if row_start >= in_features:
                break
            row_end = min(row_start + block_size, in_features)
            feature_block = features[:, row_start:row_end]
            weight_block = resident_weights[row_start:row_end, :]
            # Zero skipping: rows of the block with no nonzeros do no work;
            # numerically the product is unchanged.
            output[:, col_start:col_end] += feature_block @ weight_block
    return output
