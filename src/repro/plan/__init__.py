"""Backend-neutral inference plans: the IR between models and executors.

The package splits *what a GNN computes* from *what it costs on a platform*:

* :mod:`repro.plan.ir` — the typed phase ops (:class:`WeightingOp`,
  :class:`AggregationOp`, :class:`AttentionOp`, :class:`DenseMatmulOp`,
  :class:`SampleOp`, :class:`PreprocessOp`) and the :class:`InferencePlan`
  container they form,
* :mod:`repro.plan.lowering` — the family → plan lowering registry (the
  rules themselves live in :mod:`repro.models.lowering`),
* :mod:`repro.plan.executor` — the :class:`Executor` protocol and the
  backend registry (GNNIE plus the baseline platforms register here).

Plans handed to any registered executor are structurally verified first by
:mod:`repro.check.verifier` (memoized per plan content; ``REPRO_NO_VERIFY=1``
disables) — see the "Static analysis" section of the README for the rules.

Adding a sixth GNN family means registering one lowering rule; adding a new
cost model means registering one executor.  Neither requires touching the
simulation engine.
"""

from repro.plan.executor import (
    Executor,
    executor,
    executor_names,
    register_executor,
)
from repro.plan.ir import (
    FULL_ADJACENCY,
    HIDDEN_DENSITY,
    AdjacencyRef,
    AggregationOp,
    AttentionOp,
    DenseMatmulOp,
    HaloExchangeOp,
    InferencePlan,
    PhaseOp,
    PlanLayer,
    PreprocessOp,
    SampleOp,
    WeightingOp,
)
from repro.plan.lowering import (
    lower,
    lower_model,
    lowering_families,
    lowering_rule,
    register_lowering,
)

__all__ = [
    "AdjacencyRef",
    "FULL_ADJACENCY",
    "HIDDEN_DENSITY",
    "WeightingOp",
    "AttentionOp",
    "AggregationOp",
    "DenseMatmulOp",
    "HaloExchangeOp",
    "SampleOp",
    "PreprocessOp",
    "PhaseOp",
    "PlanLayer",
    "InferencePlan",
    "register_lowering",
    "lowering_rule",
    "lowering_families",
    "lower",
    "lower_model",
    "Executor",
    "register_executor",
    "executor",
    "executor_names",
]
