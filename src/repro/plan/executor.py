"""Executor protocol and backend registry.

An *executor* consumes an :class:`~repro.plan.ir.InferencePlan` together
with a concrete graph and returns that backend's result object — the GNNIE
simulator produces an :class:`~repro.sim.results.InferenceResult`, the
baseline platforms a :class:`~repro.baselines.platform.PlatformResult`.
All built-in backends register here; ``executor("hygcn")`` is the supported
way to obtain one by name::

    from repro.plan import executor, lower

    plan = lower("gcn", graph)
    result = executor("gnnie").execute(plan, graph)
"""

from __future__ import annotations

import warnings
from typing import Any, Callable, Protocol, runtime_checkable

__all__ = ["Executor", "register_executor", "executor", "executor_names"]


@runtime_checkable
class Executor(Protocol):
    """Anything that can run an inference plan on a graph.

    Executors may additionally expose a ``tracer`` attribute (a
    :class:`repro.obs.Tracer`, defaulting to the shared no-op
    ``NULL_TRACER``); callers that profile an execution — ``repro
    profile``, the sweep fleet's ``--trace`` path — set it before calling
    :meth:`execute` so the backend emits its span hierarchy.  Both built-in
    backends (the GNNIE executor and the baseline platforms) support this.
    """

    #: Registry / report name of the backend.
    name: str

    def execute(self, plan: Any, graph: Any, config: Any | None = None) -> Any:
        """Execute ``plan`` on ``graph``; ``config`` overrides backend knobs."""


_FACTORIES: dict[str, Callable[[], Executor]] = {}


def register_executor(name: str, factory: Callable[[], Executor]) -> None:
    """Register an executor factory under a backend name.

    Re-registering a name with a *different* factory warns (the latest
    registration wins) — silently clobbering an earlier backend was a
    foot-gun that could swap every sweep row's executor without a trace.
    Re-registering the identical factory (module reloads) stays silent.
    """
    key = name.strip().lower()
    existing = _FACTORIES.get(key)
    if existing is not None and existing is not factory:
        warnings.warn(
            f"executor {key!r} is already registered; replacing the earlier factory",
            RuntimeWarning,
            stacklevel=2,
        )
    _FACTORIES[key] = factory


def _ensure_builtin_executors() -> None:
    """Import the built-in backends (they register on import)."""
    import repro.baselines  # noqa: F401  (imported for side effect)
    import repro.sim.gnnie_executor  # noqa: F401  (imported for side effect)


def executor(name: str) -> Executor:
    """Instantiate the executor registered under ``name``."""
    _ensure_builtin_executors()
    key = name.strip().lower()
    if key not in _FACTORIES:
        raise KeyError(f"no executor registered as {name!r}; known: {sorted(_FACTORIES)}")
    return _FACTORIES[key]()


def executor_names() -> tuple[str, ...]:
    """Registered backend names, sorted."""
    _ensure_builtin_executors()
    return tuple(sorted(_FACTORIES))
