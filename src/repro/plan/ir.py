"""Typed phase-op IR describing one GNN inference, independent of backend.

An :class:`InferencePlan` is a sequence of :class:`PlanLayer` stages, each
holding the ordered phase ops of one layer, plus inference-global ops
(host-side preprocessing).  Plans are lowered from a
:class:`~repro.models.zoo.ModelConfig` and a dataset *shape* (input feature
length, label count) — they reference graph data only symbolically, through
:class:`AdjacencyRef` handles, so the same plan can be executed on any graph
of that shape by any registered executor (the GNNIE simulator, the baseline
platform cost models, or future backends).

Every op is a frozen dataclass carrying only backend-neutral quantities:
feature widths, modeled densities, adjacency handles and structural flags.
Cost-model specifics (cycle counts, cache behaviour, roofline constants)
belong to executors.

Being frozen also makes every op — and whole plans — hashable by content,
which is what lets :func:`repro.check.verifier.verify_plan` memoize one
rule pass per distinct plan no matter how many configs price it.  The
structural invariants ops must satisfy (op ordering, width flow, sign and
finiteness of every quantity) are enforced by that verifier, not here.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Union

__all__ = [
    "HIDDEN_DENSITY",
    "AdjacencyRef",
    "FULL_ADJACENCY",
    "WeightingOp",
    "AttentionOp",
    "AggregationOp",
    "DenseMatmulOp",
    "HaloExchangeOp",
    "SampleOp",
    "PreprocessOp",
    "PhaseOp",
    "PlanLayer",
    "InferencePlan",
]

#: Modeled nonzero density of post-ReLU hidden-layer features (shared by the
#: GNNIE engine and the baseline workload estimates; the paper observes the
#: RLC decoder is bypassed after layer 1).
HIDDEN_DENSITY = 0.6


@dataclass(frozen=True)
class AdjacencyRef:
    """Symbolic handle to the adjacency an op aggregates over.

    ``kind`` is ``"full"`` (the dataset adjacency) or ``"sampled"`` (the
    neighbor-sampled subgraph produced by a :class:`SampleOp` with the same
    ``sample_size``).  Executors resolve the handle against the concrete
    graph at execution time.
    """

    kind: str = "full"
    sample_size: int | None = None

    def describe(self) -> str:
        if self.kind == "sampled":
            return f"sampled(k={self.sample_size})"
        return self.kind


FULL_ADJACENCY = AdjacencyRef("full")


@dataclass(frozen=True)
class WeightingOp:
    """One layer's feature transformation (H · W, or the GIN MLP).

    ``density`` is the modeled input density: ``None`` means "use the actual
    dataset feature matrix" (input layers); later layers carry the
    statistical :data:`HIDDEN_DENSITY`.  ``mlp_hidden`` is set when the
    transformation is a two-matrix MLP (GINConv); executors that model the
    MLP explicitly use it, single-GEMM cost models may fold it.
    """

    in_features: int
    out_features: int
    is_input_layer: bool = False
    density: float | None = None
    mlp_hidden: int | None = None

    def describe(self) -> str:
        parts = [f"in={self.in_features}", f"out={self.out_features}"]
        if self.mlp_hidden is not None:
            parts.append(f"mlp_hidden={self.mlp_hidden}")
        parts.append("actual-features" if self.density is None else f"density={self.density}")
        if self.is_input_layer:
            parts.append("input-layer")
        return f"weighting({', '.join(parts)})"


@dataclass(frozen=True)
class AttentionOp:
    """GAT-style per-edge attention coefficients plus softmax normalization."""

    out_features: int
    adjacency: AdjacencyRef = FULL_ADJACENCY

    def describe(self) -> str:
        return f"attention(out={self.out_features}, adj={self.adjacency.describe()})"


@dataclass(frozen=True)
class AggregationOp:
    """Neighborhood reduction over an adjacency handle.

    ``pre_weighting`` marks families that aggregate raw features *before*
    the transformation (GINConv), so the reduction runs at ``in_features``
    width instead of ``out_features``.  ``weighted`` marks attention-scaled
    aggregation (GAT), which costs an extra multiply per edge operand.
    """

    in_features: int
    out_features: int
    adjacency: AdjacencyRef = FULL_ADJACENCY
    pre_weighting: bool = False
    weighted: bool = False
    aggregator: str = "sum"

    @property
    def width(self) -> int:
        """Feature width the reduction actually runs at."""
        return self.in_features if self.pre_weighting else self.out_features

    def describe(self) -> str:
        parts = [f"width={self.width}", f"adj={self.adjacency.describe()}"]
        if self.aggregator != "sum":
            parts.append(f"aggregator={self.aggregator}")
        if self.pre_weighting:
            parts.append("pre-weighting")
        if self.weighted:
            parts.append("weighted")
        return f"aggregation({', '.join(parts)})"


@dataclass(frozen=True)
class DenseMatmulOp:
    """Dense matrix products whose size scales with the graph (DiffPool).

    MAC counts are stored as per-edge and per-vertex factors so the op stays
    graph-independent: executing on a graph with V vertices and E edges
    costs ``E * macs_per_edge + V * macs_per_vertex`` MACs plus
    ``V * softmax_ops_per_vertex`` SFU ops, and writes ``output_values``
    result elements (DiffPool's coarsened adjacency and features).
    """

    in_features: int
    out_features: int
    macs_per_edge: int
    macs_per_vertex: int
    softmax_ops_per_vertex: int = 0
    output_values: int = 0
    label: str = "coarsening"

    def describe(self) -> str:
        return (
            f"dense_matmul({self.label}, in={self.in_features}, out={self.out_features}, "
            f"macs=E*{self.macs_per_edge}+V*{self.macs_per_vertex})"
        )


@dataclass(frozen=True)
class HaloExchangeOp:
    """Inter-chip boundary-feature exchange before one layer's aggregation.

    Emitted only by the multi-chip lowering (``repro.scaleout``): a chip
    owning a vertex partition must receive the features of its *halo* — the
    distinct remote neighbors of its owned vertices — before aggregating.
    ``halo_vertices`` counts those remote vertices for the chip this plan
    belongs to; the traffic is ``halo_vertices * features`` values at the
    layer's aggregation width, priced by the executor against the
    link-bandwidth/latency model on :class:`~repro.hw.config.AcceleratorConfig`.
    """

    halo_vertices: int
    features: int
    chips: int

    def describe(self) -> str:
        return (
            f"halo_exchange(halo={self.halo_vertices}, features={self.features}, "
            f"chips={self.chips})"
        )


@dataclass(frozen=True)
class SampleOp:
    """Neighbor sampling producing the ``sampled`` adjacency (GraphSAGE)."""

    sample_size: int

    def describe(self) -> str:
        return f"sample(k={self.sample_size})"


@dataclass(frozen=True)
class PreprocessOp:
    """Host-side preprocessing charged once per inference."""

    kind: str = "degree_binning"

    def describe(self) -> str:
        return f"preprocess({self.kind})"


PhaseOp = Union[
    WeightingOp,
    AttentionOp,
    AggregationOp,
    DenseMatmulOp,
    SampleOp,
    PreprocessOp,
    HaloExchangeOp,
]


@dataclass(frozen=True)
class PlanLayer:
    """Ordered phase ops of one layer (one :class:`LayerResult` downstream)."""

    index: int
    in_features: int
    out_features: int
    ops: tuple[PhaseOp, ...]

    def find(self, op_type: type) -> PhaseOp | None:
        """First op of the given type, or ``None``."""
        for op in self.ops:
            if isinstance(op, op_type):
                return op
        return None


@dataclass(frozen=True)
class InferencePlan:
    """A lowered GNN inference: typed phase ops, ready for any executor."""

    family: str
    in_features: int
    out_features: int
    layers: tuple[PlanLayer, ...]
    global_ops: tuple[PhaseOp, ...] = field(default_factory=tuple)

    @property
    def num_layers(self) -> int:
        return len(self.layers)

    def op_rows(self) -> list[dict[str, object]]:
        """Flat (layer, op, description) rows for reporting."""
        rows: list[dict[str, object]] = [
            {"layer": "-", "op": type(op).__name__, "detail": op.describe()}
            for op in self.global_ops
        ]
        for layer in self.layers:
            for op in layer.ops:
                rows.append(
                    {"layer": layer.index, "op": type(op).__name__, "detail": op.describe()}
                )
        return rows

    def as_dict(self) -> dict[str, object]:
        """JSON-serializable nested representation of the plan."""
        def op_dict(op: PhaseOp) -> dict[str, object]:
            return {"op": type(op).__name__, **asdict(op)}

        return {
            "family": self.family,
            "in_features": self.in_features,
            "out_features": self.out_features,
            "global_ops": [op_dict(op) for op in self.global_ops],
            "layers": [
                {
                    "index": layer.index,
                    "in_features": layer.in_features,
                    "out_features": layer.out_features,
                    "ops": [op_dict(op) for op in layer.ops],
                }
                for layer in self.layers
            ],
        }

    def to_json(self, *, indent: int = 2) -> str:
        return json.dumps(self.as_dict(), indent=indent)
