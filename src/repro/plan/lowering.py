"""Family → plan lowering registry.

A *lowering rule* is a pure function ``(ModelConfig, in_features,
out_features) → InferencePlan`` describing how one GNN family decomposes
into phase ops.  The rules for the Table III families live in
:mod:`repro.models.lowering`; they are imported lazily on first lookup so
that ``repro.plan`` stays import-light and free of model dependencies.

Registering a new family is one decorated function::

    from repro.plan import register_lowering

    @register_lowering("sgc")
    def lower_sgc(cfg, in_features, out_features):
        ...
        return InferencePlan(...)
"""

from __future__ import annotations

import warnings
from typing import TYPE_CHECKING, Callable

from repro.plan.ir import InferencePlan

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.graph.graph import Graph
    from repro.models.zoo import ModelConfig

__all__ = [
    "register_lowering",
    "lowering_rule",
    "lowering_families",
    "lower",
    "lower_model",
]

LoweringRule = Callable[["ModelConfig", int, int], InferencePlan]

_RULES: dict[str, LoweringRule] = {}


def register_lowering(family: str) -> Callable[[LoweringRule], LoweringRule]:
    """Decorator registering a lowering rule for ``family``.

    Re-registering a family with a *different* rule warns (the latest
    registration wins) — silently clobbering an earlier rule changed what
    every executor priced for that family without a trace.  Re-applying
    the identical rule (module reloads) stays silent.
    """

    key = family.strip().lower()

    def decorator(rule: LoweringRule) -> LoweringRule:
        existing = _RULES.get(key)
        if existing is not None and existing is not rule:
            warnings.warn(
                f"lowering for family {key!r} is already registered; "
                "replacing the earlier rule",
                RuntimeWarning,
                stacklevel=2,
            )
        _RULES[key] = rule
        return rule

    return decorator


def _ensure_builtin_rules() -> None:
    """Import the Table III rules (registration happens at import time)."""
    import repro.models.lowering  # noqa: F401  (imported for side effect)


def lowering_rule(family: str) -> LoweringRule:
    """Look up the lowering rule for a GNN family."""
    _ensure_builtin_rules()
    key = family.strip().lower()
    if key not in _RULES:
        raise KeyError(f"no lowering registered for {family!r}; known: {sorted(_RULES)}")
    return _RULES[key]


def lowering_families() -> tuple[str, ...]:
    """Registered family names, sorted."""
    _ensure_builtin_rules()
    return tuple(sorted(_RULES))


def lower_model(config: "ModelConfig", in_features: int, out_features: int) -> InferencePlan:
    """Lower a model configuration for a dataset shape."""
    return lowering_rule(config.family)(config, in_features, out_features)


def lower(
    family: str,
    graph: "Graph",
    *,
    out_features: int | None = None,
    config: "ModelConfig | None" = None,
) -> InferencePlan:
    """Lower ``family`` for a concrete dataset graph.

    Convenience wrapper resolving the Table III configuration and the
    dataset shape (feature length, label count) before calling the rule.
    """
    from repro.models.zoo import model_config

    cfg = config if config is not None else model_config(family)
    labels = out_features if out_features is not None else max(graph.num_label_classes, 2)
    return lower_model(cfg, graph.feature_length, labels)
