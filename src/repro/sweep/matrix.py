"""Scenario-matrix expansion: (dataset × family × backend × config) → cells.

The paper's evaluation is a matrix — five datasets (Table II) × five GNN
families (Table III) × GNNIE plus five baseline platforms (Figs. 12–15) —
and its design choices come from sweeping accelerator configurations over
that matrix (Section VIII-A).  :class:`ScenarioMatrix` expands those axes
into an ordered list of :class:`SweepCell`\\ s, each one fully serializable:
a cell can be hashed (for the resumable result store), pickled (for the
process-pool workers) and rebuilt into the exact same simulation.

Determinism contract
--------------------
* Cell order is the deterministic axis-major product (datasets, then
  families, then backends, then configs) — independent of execution order.
* Every cell carries an explicit dataset seed.  When the caller does not
  pin one, :func:`derive_seed` derives it from the matrix base seed and the
  dataset name via SHA-256, so all cells of one dataset share one synthetic
  graph (speedups stay apples-to-apples) and re-running the same matrix
  anywhere reproduces the same graphs.
* :meth:`SweepCell.key` is a content hash over the canonical JSON of the
  cell spec (including every ``AcceleratorConfig`` field), so two sweeps
  agree on what "the same cell" is across processes, machines and runs.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field
from functools import lru_cache
from typing import Iterable, Sequence

from repro.hw.config import AcceleratorConfig

__all__ = [
    "ALL_BACKENDS",
    "DatasetCase",
    "SweepCell",
    "ScenarioMatrix",
    "derive_seed",
    "config_to_dict",
    "config_from_dict",
    "full_matrix",
]

def _all_backends() -> tuple[str, ...]:
    """Every registered plan executor — GNNIE plus the baseline platforms.

    Resolved from the live backend registry on access (PEP 562 module
    attribute), so executors registered at runtime are included and merely
    importing this module does not pull in the whole backend stack.
    """
    from repro.plan.executor import executor_names

    return executor_names()


def __getattr__(name: str):
    if name == "ALL_BACKENDS":
        return _all_backends()
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

def derive_seed(base_seed: int, dataset: str) -> int:
    """Deterministic per-dataset seed: stable across processes and runs."""
    digest = hashlib.sha256(f"{base_seed}:{dataset.lower()}".encode()).digest()
    return int.from_bytes(digest[:4], "big")


@lru_cache(maxsize=256)
def _config_dict(config: AcceleratorConfig) -> dict:
    """Memoized ``asdict`` — a sweep serializes the same few configs for
    thousands of cells, and ``dataclasses.asdict`` recursion dominates."""
    return asdict(config)


#: Config fields newer than the last ROW_FORMAT bump, omitted from the
#: serialized form while they hold their defaults: a default-valued config
#: keeps its exact pre-scale-out JSON (and therefore every existing cell key
#: and row byte), while a cell that actually varies the link model hashes
#: differently — which is correct, it prices differently.
#: :func:`config_from_dict` restores omitted fields via dataclass defaults.
_DEFAULT_ELIDED_FIELDS = {
    name: AcceleratorConfig.__dataclass_fields__[name].default
    for name in ("link_bandwidth_bytes_per_s", "link_latency_cycles")
}


def config_to_dict(config: AcceleratorConfig) -> dict:
    """JSON-serializable mapping of every configuration field.

    Returns a fresh top-level dict per call (values are immutable
    scalars/tuples), so callers may add or drop keys without corrupting the
    memo.  Fields listed in :data:`_DEFAULT_ELIDED_FIELDS` are omitted while
    default-valued (byte-stability of pre-existing cell keys).
    """
    data = dict(_config_dict(config))
    for name, default in _DEFAULT_ELIDED_FIELDS.items():
        if data.get(name) == default:
            del data[name]
    return data


def config_from_dict(data: dict) -> AcceleratorConfig:
    """Rebuild an :class:`AcceleratorConfig` from a JSON round-trip.

    Every list became a tuple on the way out (the config's sequence fields
    are all tuples), so the restoration needs no per-field knowledge and
    keeps working when new tuple fields are added.
    """
    return AcceleratorConfig(
        **{
            name: tuple(value) if isinstance(value, list) else value
            for name, value in data.items()
        }
    )


@dataclass(frozen=True)
class DatasetCase:
    """One dataset axis entry: a registry name plus scale/seed overrides.

    ``scale=None`` uses the registry's per-dataset default (full scale for
    the citation graphs, the documented stand-in scales for PPI/Reddit).
    ``seed=None`` lets the matrix derive a deterministic per-dataset seed.
    """

    name: str
    scale: float | None = None
    seed: int | None = None


@dataclass(frozen=True)
class SweepCell:
    """One fully-specified scenario: everything a worker needs to run it."""

    dataset: str
    scale: float | None
    seed: int
    family: str
    backend: str
    config: AcceleratorConfig = field(default_factory=AcceleratorConfig)
    #: Number of simulated chips the workload is partitioned across
    #: (``repro.scaleout``).  The single-chip default is omitted from the
    #: spec so pre-scale-out cell keys are unchanged.
    chips: int = 1

    def spec(self) -> dict:
        """Canonical JSON-serializable description (hashed by :meth:`key`)."""
        spec = {
            "dataset": self.dataset,
            "scale": self.scale,
            "seed": self.seed,
            "family": self.family,
            "backend": self.backend,
            "config": config_to_dict(self.config),
        }
        if self.chips != 1:
            spec["chips"] = self.chips
        return spec

    def key(self) -> str:
        """Content hash identifying this cell in the result store.

        Computed once per cell instance (the runner hashes each cell several
        times: resume lookup, pending bookkeeping, row emission); the cell is
        frozen, so the cached value can never go stale.
        """
        cached = self.__dict__.get("_key")
        if cached is None:
            canonical = json.dumps(self.spec(), sort_keys=True, separators=(",", ":"))
            cached = hashlib.sha256(canonical.encode()).hexdigest()[:16]
            object.__setattr__(self, "_key", cached)
        return cached

    def describe(self) -> str:
        suffix = f" x{self.chips}" if self.chips != 1 else ""
        return f"{self.dataset}/{self.family}/{self.backend}[{self.config.name}]{suffix}"


@dataclass(frozen=True)
class ScenarioMatrix:
    """The four sweep axes plus the base seed cells derive theirs from.

    The configuration axis is crossed only with the backends named in
    ``config_backends`` (default: GNNIE, the one built-in executor whose
    cost model reads the configuration); the baseline platforms model fixed
    published silicon and ignore ``config``, so they are swept once — with
    ``configs[0]`` — instead of producing N byte-identical rows.  Pass
    ``config_backends=None`` to cross every backend with every
    configuration (e.g. for a plug-in backend that is config-sensitive).
    """

    datasets: tuple[DatasetCase, ...]
    families: tuple[str, ...]
    backends: tuple[str, ...] = ("gnnie",)
    configs: tuple[AcceleratorConfig, ...] = (AcceleratorConfig(),)
    seed: int = 0
    config_backends: tuple[str, ...] | None = ("gnnie",)
    #: Chip-count axis (``repro.scaleout``).  Gated exactly like the
    #: configuration axis: only the ``config_backends`` backends (the ones
    #: whose cost model can price multi-chip plans) are crossed with it;
    #: every other backend is swept single-chip.
    chips: tuple[int, ...] = (1,)

    @classmethod
    def build(
        cls,
        datasets: Iterable[str | DatasetCase],
        families: Iterable[str],
        *,
        backends: Iterable[str] = ("gnnie",),
        configs: Sequence[AcceleratorConfig] | None = None,
        scale: float | None = None,
        seed: int = 0,
        config_backends: Iterable[str] | None = ("gnnie",),
        chips: Iterable[int] = (1,),
    ) -> "ScenarioMatrix":
        """Normalize axis inputs (names become :class:`DatasetCase` entries).

        ``scale`` overrides the registry default for every plain-name
        dataset entry; explicit :class:`DatasetCase` entries keep their own.
        """
        cases = tuple(
            case
            if isinstance(case, DatasetCase)
            else DatasetCase(name=case.lower(), scale=scale)
            for case in datasets
        )
        return cls(
            datasets=cases,
            families=tuple(family.lower() for family in families),
            backends=tuple(backend.lower() for backend in backends),
            configs=tuple(configs) if configs else (AcceleratorConfig(),),
            seed=seed,
            config_backends=(
                tuple(backend.lower() for backend in config_backends)
                if config_backends is not None
                else None
            ),
            chips=tuple(int(count) for count in chips),
        )

    def _configs_for(self, backend: str) -> tuple[AcceleratorConfig, ...]:
        if self.config_backends is None or backend in self.config_backends:
            return self.configs
        return self.configs[:1]

    def _chips_for(self, backend: str) -> tuple[int, ...]:
        if self.config_backends is None or backend in self.config_backends:
            return self.chips
        return (1,)

    def cells(self) -> list[SweepCell]:
        """Axis-major expansion (dataset, family, backend, config, chips)."""
        expanded: list[SweepCell] = []
        for case in self.datasets:
            seed = case.seed if case.seed is not None else derive_seed(self.seed, case.name)
            for family in self.families:
                for backend in self.backends:
                    for config in self._configs_for(backend):
                        for chips in self._chips_for(backend):
                            expanded.append(
                                SweepCell(
                                    dataset=case.name,
                                    scale=case.scale,
                                    seed=seed,
                                    family=family,
                                    backend=backend,
                                    config=config,
                                    chips=chips,
                                )
                            )
        return expanded

    def __len__(self) -> int:
        cells_per_pair = sum(
            len(self._configs_for(backend)) * len(self._chips_for(backend))
            for backend in self.backends
        )
        return len(self.datasets) * len(self.families) * cells_per_pair


def full_matrix(
    *,
    backends: Iterable[str] | None = None,
    configs: Sequence[AcceleratorConfig] | None = None,
    scale: float | None = None,
    seed: int = 0,
) -> ScenarioMatrix:
    """The paper's full evaluation matrix: 5 datasets × 5 families × backends.

    ``backends`` defaults to every registered executor (:data:`ALL_BACKENDS`).
    """
    from repro.datasets.registry import dataset_names
    from repro.models.zoo import MODEL_FAMILIES

    return ScenarioMatrix.build(
        dataset_names(),
        MODEL_FAMILIES,
        backends=backends if backends is not None else _all_backends(),
        configs=configs,
        scale=scale,
        seed=seed,
    )
