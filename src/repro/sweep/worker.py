"""Sweep worker: executes one cell and returns its serializable result row.

:func:`run_cell` is the unit of work the runner fans out.  It is a
module-level function over a picklable :class:`~repro.sweep.matrix.SweepCell`
so it crosses a ``ProcessPoolExecutor`` boundary unchanged, and it is what
the in-process (``jobs=1``) path calls directly — both paths produce the
same bytes.

A per-process dataset memo keyed by (name, scale, seed) keeps the fan-out
cheap: a worker process that receives many cells of one dataset builds its
synthetic graph once.  Executors, by contrast, are created *fresh per
cell*: the GNNIE executor shares one cache-policy simulation per (graph,
buffer config), sized by whichever op primes it first, so an executor
reused across cells would make a cell's numbers depend on which cells the
scheduler happened to hand the same process earlier.  A fresh executor
makes every row a pure function of its cell spec — the property that keeps
store rows byte-identical across runs, job counts and machines.

Every metric in the returned row is a plain int/float.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING

from repro.sweep.matrix import SweepCell, config_to_dict

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.graph.graph import Graph

__all__ = ["ROW_FORMAT", "run_cell", "run_cell_timed"]

#: Result-row schema version, stamped into every row :func:`run_cell` emits.
#: Bumped when the cell-key derivation changes incompatibly, so resuming a
#: sweep from a store written before the change fails with a clear error
#: instead of silently re-executing every cell next to the stale rows.
#: History: 2 — ``AcceleratorConfig.input_buffer_bytes`` grew the ``None``
#: auto-sizing sentinel (default configs now serialize ``null`` instead of
#: 524288, changing every default-config cell key).
ROW_FORMAT = 2

#: Per-process dataset memo: (dataset, scale, seed) -> Graph.  Bounded so
#: the jobs=1 path (which runs in the caller's process and lives as long as
#: the interpreter) cannot pin an unbounded set of graphs; the bound covers
#: the full Table II registry with room for scale/seed variants.
_GRAPHS: dict[tuple, "Graph"] = {}
_GRAPH_MEMO_LIMIT = 16
#: Caller-supplied graphs by dataset name (seeded once per worker process
#: via :func:`seed_graph_overrides`, so a pool never re-pickles a graph per
#: cell).
_GRAPH_OVERRIDES: dict[str, "Graph"] = {}


def seed_graph_overrides(graphs: dict[str, "Graph"] | None) -> None:
    """Process-pool initializer installing caller-supplied graphs."""
    _GRAPH_OVERRIDES.clear()
    if graphs:
        _GRAPH_OVERRIDES.update(graphs)


def _graph_for(cell: SweepCell) -> "Graph":
    from repro.datasets.synthetic import build_dataset

    override = _GRAPH_OVERRIDES.get(cell.dataset)
    if override is not None:
        return override
    key = (cell.dataset, cell.scale, cell.seed)
    if key not in _GRAPHS:
        while len(_GRAPHS) >= _GRAPH_MEMO_LIMIT:
            _GRAPHS.pop(next(iter(_GRAPHS)))
        _GRAPHS[key] = build_dataset(cell.dataset, scale=cell.scale, seed=cell.seed)
    return _GRAPHS[key]


def _abbreviation_for(cell: SweepCell, graph: "Graph | None") -> str:
    """Dataset abbreviation without forcing a graph build."""
    if graph is not None:
        return graph.name
    override = _GRAPH_OVERRIDES.get(cell.dataset)
    if override is not None:
        return override.name
    from repro.datasets.registry import dataset_spec

    return dataset_spec(cell.dataset).abbreviation


def run_cell(cell: SweepCell, graph: "Graph | None" = None, *, tracer=None) -> dict:
    """Execute one scenario cell and return its result-store row.

    Args:
        cell: The fully-specified scenario.
        graph: Optional pre-built dataset graph (in-process sweeps over
            caller-supplied graphs); defaults to the memoized synthetic
            build for the cell's (dataset, scale, seed).
        tracer: Optional :class:`repro.obs.Tracer` installed on the backend
            so the execution emits its span hierarchy.  Tracing never
            touches the row: traced and untraced cells are byte-identical.

    Returns:
        A JSON-serializable row.  Backends that do not support the cell's
        GNN family (e.g. AWB-GCN beyond GCN) still produce a row, with
        ``supported=False`` and null metrics, so a finished sweep has
        exactly one row per cell.
    """
    from repro.plan.executor import executor
    from repro.plan.lowering import lower

    backend = executor(cell.backend)
    if tracer is not None and hasattr(backend, "tracer"):
        backend.tracer = tracer
    row = {
        "row_format": ROW_FORMAT,
        "key": cell.key(),
        "dataset": cell.dataset,
        "dataset_abbrev": _abbreviation_for(cell, graph),
        "scale": cell.scale,
        "seed": cell.seed,
        "family": cell.family,
        "backend": cell.backend,
        "config_name": cell.config.name,
        "config": config_to_dict(cell.config),
        "supported": True,
        "metrics": None,
    }

    # Unsupported (backend, family) combinations never need the graph, so
    # the row is produced without building the dataset.
    supports = getattr(backend, "supports", None)
    if supports is not None and not supports(cell.family):
        row["supported"] = False
        return row

    if graph is None:
        graph = _graph_for(cell)
    plan = lower(cell.family, graph)
    result = backend.execute(plan, graph, cell.config)
    metrics = {
        "latency_seconds": float(result.latency_seconds),
        "energy_joules": float(result.energy_joules),
        "inferences_per_kilojoule": float(result.inferences_per_kilojoule),
    }
    # GNNIE's InferenceResult carries cycle/traffic detail and a chip area
    # the store-backed Pareto aggregation needs; platform results do not.
    if hasattr(result, "total_cycles"):
        metrics.update(
            cycles=int(result.total_cycles),
            mac_operations=int(result.total_mac_operations),
            dram_bytes=int(result.total_dram_bytes),
            total_macs=int(cell.config.total_macs),
            area_mm2=float(backend.chip_area_mm2(cell.config)),
        )
    row["metrics"] = metrics
    return row


def run_cell_timed(
    cell: SweepCell, graph: "Graph | None" = None, trace: bool = False
) -> tuple[dict, float, list[dict] | None]:
    """Run one cell with host wall-time (and, optionally, span) capture.

    The runner's unit of work since the observability layer: returns
    ``(row, wall_seconds, span_records)`` where ``row`` is exactly what
    :func:`run_cell` produces (byte-identical, traced or not), ``wall_seconds``
    is the cell's host execution time, and ``span_records`` is the serialized
    span segment of this process (one ``cell`` root enclosing the backend's
    ``inference → layer → op`` spans) or ``None`` when ``trace`` is off.
    Picklable end to end, so the pool path ships segments back to the parent
    for the merged multi-worker timeline.
    """
    from repro.obs.tracer import Tracer

    tracer = Tracer() if trace else None
    start = time.perf_counter()
    if tracer is None:
        row = run_cell(cell, graph)
    else:
        with tracer.span(
            "cell",
            category="cell",
            dataset=cell.dataset,
            family=cell.family,
            backend=cell.backend,
            config=cell.config.name,
            key=cell.key(),
        ) as span:
            row = run_cell(cell, graph, tracer=tracer)
        metrics = row.get("metrics") or {}
        if "cycles" in metrics:
            span.set(cycles=metrics["cycles"], mac_operations=metrics["mac_operations"])
        span.set(supported=row["supported"])
    wall = time.perf_counter() - start
    spans = [record.as_dict() for record in tracer.records] if tracer else None
    return row, wall, spans
