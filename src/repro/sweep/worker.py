"""Sweep worker: executes cells and returns their serializable result rows.

:func:`run_cell` is the scalar unit of work: a module-level function over a
picklable :class:`~repro.sweep.matrix.SweepCell` so it crosses a
``ProcessPoolExecutor`` boundary unchanged.  It creates a *fresh* executor
per cell, so every row is trivially a pure function of its cell spec.

:func:`run_batch_timed` is the batch unit of work the runner dispatches
since the vectorized-batch layer: one call prices every pending cell of a
(dataset, scale, seed, family) group while sharing the expensive
per-(plan, graph) state across the group — the built graph, the lowered
plan, the baseline workload derivation, and one executor per backend (whose
content-keyed cache-simulation and phase memos then dedupe across configs).
Sharing is byte-safe because every executor memo keys on the graph content
fingerprint plus *every* config knob the memoized value depends on; the
batch-vs-scalar equivalence test pins rows from both paths byte-identical.

A per-process dataset memo keyed by (name, scale, seed) keeps the fan-out
cheap: a worker process that receives many groups of one dataset builds its
synthetic graph once, and :func:`prime_graph_memo` lets a long-lived caller
(the benchmark session) seed it with graphs it already built.

Every metric in the returned rows is a plain int/float.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Callable, Sequence

from repro.faults import trip
from repro.sweep.matrix import SweepCell, config_to_dict

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.graph.graph import Graph

__all__ = [
    "COMPATIBLE_ROW_FORMATS",
    "FAILED_ROW_FORMAT",
    "ROW_FORMAT",
    "SCALEOUT_ROW_FORMAT",
    "failed_row",
    "prime_graph_memo",
    "run_batch_timed",
    "run_cell",
    "run_cell_timed",
]

#: Result-row schema version, stamped into every row :func:`run_cell` emits.
#: Bumped when the cell-key derivation changes incompatibly, so resuming a
#: sweep from a store written before the change fails with a clear error
#: instead of silently re-executing every cell next to the stale rows.
#: History: 2 — ``AcceleratorConfig.input_buffer_bytes`` grew the ``None``
#: auto-sizing sentinel (default configs now serialize ``null`` instead of
#: 524288, changing every default-config cell key).
ROW_FORMAT = 2

#: Schema version stamped into ``failed`` rows only (see :func:`failed_row`)
#: — the format that introduced the ``status``/``error``/``attempts``
#: fields.  Success rows keep :data:`ROW_FORMAT` and their exact pre-fault-
#: tolerance bytes; cell keys are unchanged between the two formats, so
#: both resume interchangeably (:data:`COMPATIBLE_ROW_FORMATS`).
FAILED_ROW_FORMAT = 3

#: Schema version stamped into multi-chip (``chips > 1``) rows only — the
#: format that introduced the ``chips`` row key and the scale-out metrics
#: (``chip_imbalance``, ``communication_cycles``, ``halo_*``).  Single-chip
#: rows keep :data:`ROW_FORMAT` and their exact pre-scale-out bytes; cell
#: keys are disjoint (``chips`` is hashed into multi-chip keys), so all
#: three formats resume interchangeably.
SCALEOUT_ROW_FORMAT = 4

#: Row formats the current runner can resume from.
COMPATIBLE_ROW_FORMATS = frozenset({ROW_FORMAT, FAILED_ROW_FORMAT, SCALEOUT_ROW_FORMAT})

#: Per-process dataset memo: (dataset, scale, seed) -> Graph.  Bounded so
#: the jobs=1 path (which runs in the caller's process and lives as long as
#: the interpreter) cannot pin an unbounded set of graphs; the bound covers
#: the full Table II registry with room for scale/seed variants.
_GRAPHS: dict[tuple, "Graph"] = {}
_GRAPH_MEMO_LIMIT = 16
#: Caller-supplied graphs by dataset name (seeded once per worker process
#: via :func:`seed_graph_overrides`, so a pool never re-pickles a graph per
#: cell).
_GRAPH_OVERRIDES: dict[str, "Graph"] = {}


def seed_graph_overrides(graphs: dict[str, "Graph"] | None) -> None:
    """Process-pool initializer installing caller-supplied graphs."""
    _GRAPH_OVERRIDES.clear()
    if graphs:
        _GRAPH_OVERRIDES.update(graphs)


def prime_graph_memo(dataset: str, scale: float | None, seed: int, graph: "Graph") -> None:
    """Seed this process's dataset memo with an already-built graph.

    In-process (``jobs=1``) sweeps then skip the synthetic build for cells
    matching ``(dataset, scale, seed)`` exactly — the benchmark session
    builds its graphs once and shares them with every sweep it times.  The
    caller must pass the graph the registry build would have produced for
    that key; the memo does not verify content.
    """
    while len(_GRAPHS) >= _GRAPH_MEMO_LIMIT:
        _GRAPHS.pop(next(iter(_GRAPHS)))
    _GRAPHS[(dataset, scale, seed)] = graph


def _graph_for(cell: SweepCell) -> "Graph":
    from repro.datasets.synthetic import build_dataset

    override = _GRAPH_OVERRIDES.get(cell.dataset)
    if override is not None:
        return override
    key = (cell.dataset, cell.scale, cell.seed)
    if key not in _GRAPHS:
        while len(_GRAPHS) >= _GRAPH_MEMO_LIMIT:
            _GRAPHS.pop(next(iter(_GRAPHS)))
        _GRAPHS[key] = build_dataset(cell.dataset, scale=cell.scale, seed=cell.seed)
    return _GRAPHS[key]


def _abbreviation_for(cell: SweepCell, graph: "Graph | None") -> str:
    """Dataset abbreviation without forcing a graph build."""
    if graph is not None:
        return graph.name
    override = _GRAPH_OVERRIDES.get(cell.dataset)
    if override is not None:
        return override.name
    from repro.datasets.registry import dataset_spec

    return dataset_spec(cell.dataset).abbreviation


def _base_row(cell: SweepCell, abbreviation: str) -> dict:
    """The row skeleton shared by the scalar and batch paths."""
    row = {
        "row_format": ROW_FORMAT,
        "key": cell.key(),
        "dataset": cell.dataset,
        "dataset_abbrev": abbreviation,
        "scale": cell.scale,
        "seed": cell.seed,
        "family": cell.family,
        "backend": cell.backend,
        "config_name": cell.config.name,
        "config": config_to_dict(cell.config),
        "supported": True,
        "metrics": None,
    }
    # Multi-chip rows carry the chips axis and the scale-out schema stamp;
    # single-chip rows keep their exact pre-scale-out bytes.
    if cell.chips != 1:
        row["row_format"] = SCALEOUT_ROW_FORMAT
        row["chips"] = cell.chips
    return row


def _trip_cell_fault(cell: SweepCell, attempt: int) -> None:
    """Fault-injection site for one cell-execution attempt (no plan → no-op)."""
    trip(
        "cell",
        attempt=attempt,
        key=cell.key(),
        dataset=cell.dataset,
        family=cell.family,
        backend=cell.backend,
        config_name=cell.config.name,
    )


def failed_row(cell: SweepCell, error: BaseException | str, attempts: int) -> dict:
    """The explicit row of a permanently-failed cell.

    Shares the success-row skeleton (same key, axes, config) so stores stay
    uniformly keyed, plus ``status="failed"``, the error class and message,
    and how many executions were attempted.  Stamped
    :data:`FAILED_ROW_FORMAT`; :meth:`ResultStore.append` lets a later
    healthy row for the same key override it.
    """
    try:
        abbreviation = _abbreviation_for(cell, None)
    except Exception:
        abbreviation = cell.dataset
    row = _base_row(cell, abbreviation)
    row["row_format"] = FAILED_ROW_FORMAT
    row["status"] = "failed"
    row["error"] = {
        "type": type(error).__name__ if isinstance(error, BaseException) else "Error",
        "message": str(error),
    }
    row["attempts"] = attempts
    return row


def _result_metrics(cell: SweepCell, backend, result) -> dict:
    """Plain-number metrics of one executed cell."""
    metrics = {
        "latency_seconds": float(result.latency_seconds),
        "energy_joules": float(result.energy_joules),
        "inferences_per_kilojoule": float(result.inferences_per_kilojoule),
    }
    # GNNIE's InferenceResult carries cycle/traffic detail and a chip area
    # the store-backed Pareto aggregation needs; platform results do not.
    if hasattr(result, "total_cycles"):
        metrics.update(
            cycles=int(result.total_cycles),
            mac_operations=int(result.total_mac_operations),
            dram_bytes=int(result.total_dram_bytes),
            total_macs=int(cell.config.total_macs),
            area_mm2=float(backend.chip_area_mm2(cell.config)),
        )
    num_chips = int(getattr(result, "num_chips", 1))
    if num_chips > 1:
        metrics.update(
            chips=num_chips,
            chip_imbalance=float(result.chip_imbalance),
            communication_cycles=int(result.communication_cycles),
            halo_vertices=int(result.halo_vertices),
            halo_bytes=int(result.halo_bytes),
            # Fleet silicon: N chips' worth of area.
            area_mm2=float(backend.chip_area_mm2(cell.config)) * num_chips,
        )
    return metrics


def run_cell(
    cell: SweepCell, graph: "Graph | None" = None, *, tracer=None, attempt: int = 1
) -> dict:
    """Execute one scenario cell and return its result-store row.

    Args:
        cell: The fully-specified scenario.
        graph: Optional pre-built dataset graph (in-process sweeps over
            caller-supplied graphs); defaults to the memoized synthetic
            build for the cell's (dataset, scale, seed).
        tracer: Optional :class:`repro.obs.Tracer` installed on the backend
            so the execution emits its span hierarchy.  Tracing never
            touches the row: traced and untraced cells are byte-identical.
        attempt: 1-based execution attempt (the supervised runner counts
            retries); only read by the fault-injection plane.

    Returns:
        A JSON-serializable row.  Backends that do not support the cell's
        GNN family (e.g. AWB-GCN beyond GCN) still produce a row, with
        ``supported=False`` and null metrics, so a finished sweep has
        exactly one row per cell.
    """
    from repro.plan.executor import executor
    from repro.plan.lowering import lower

    _trip_cell_fault(cell, attempt)
    backend = executor(cell.backend)
    if tracer is not None and hasattr(backend, "tracer"):
        backend.tracer = tracer
    row = _base_row(cell, _abbreviation_for(cell, graph))

    # Unsupported (backend, family) combinations never need the graph, so
    # the row is produced without building the dataset.
    supports = getattr(backend, "supports", None)
    if supports is not None and not supports(cell.family):
        row["supported"] = False
        return row
    if cell.chips != 1 and not getattr(backend, "supports_scaleout", False):
        row["supported"] = False
        return row

    if graph is None:
        graph = _graph_for(cell)
    plan = lower(cell.family, graph)
    if cell.chips == 1:
        result = backend.execute(plan, graph, cell.config)
    else:
        from repro.scaleout import execute_scaleout

        result = execute_scaleout(backend, plan, graph, cell.config, chips=cell.chips)
    row["metrics"] = _result_metrics(cell, backend, result)
    return row


class _BatchGroup:
    """Lazily-built shared state for one (dataset, scale, seed, family) group.

    Everything here is either a pure function of the group axes (graph,
    plan, baseline workload) or an executor whose memos key on graph
    content plus every relevant config knob — so sharing it across the
    group's cells cannot change any row.  Laziness matters: a group whose
    cells are all unsupported (backend, family) pairs never builds the
    graph at all, exactly like the scalar path.
    """

    def __init__(self, graph: "Graph | None" = None, metrics=None) -> None:
        self.built_graph = graph
        self._plan = None
        self._workload = None
        self._executors: dict[str, object] = {}
        self._metrics = metrics

    def graph(self, cell: SweepCell) -> "Graph":
        if self.built_graph is None:
            self.built_graph = _graph_for(cell)
        return self.built_graph

    def plan(self, cell: SweepCell):
        if self._plan is None:
            from repro.plan.lowering import lower

            self._plan = lower(cell.family, self.graph(cell))
        return self._plan

    def workload(self, cell: SweepCell):
        if self._workload is None:
            from repro.baselines.workload import workload_from_plan

            self._workload = workload_from_plan(self.plan(cell), self.graph(cell))
        return self._workload

    def executor(self, name: str):
        backend = self._executors.get(name)
        if backend is None:
            from repro.plan.executor import executor

            backend = executor(name)
            if self._metrics is not None and hasattr(backend, "metrics"):
                backend.metrics = self._metrics
            self._executors[name] = backend
        return backend


def _run_group_cell(
    cell: SweepCell, group: _BatchGroup, tracer=None, attempt: int = 1
) -> dict:
    """One cell of a batch group: :func:`run_cell` semantics, shared state."""
    _trip_cell_fault(cell, attempt)
    backend = group.executor(cell.backend)
    if tracer is not None and hasattr(backend, "tracer"):
        backend.tracer = tracer
    row = _base_row(cell, _abbreviation_for(cell, group.built_graph))

    supports = getattr(backend, "supports", None)
    if supports is not None and not supports(cell.family):
        row["supported"] = False
        return row
    if cell.chips != 1 and not getattr(backend, "supports_scaleout", False):
        row["supported"] = False
        return row

    graph = group.graph(cell)
    plan = group.plan(cell)
    if cell.chips != 1:
        from repro.scaleout import execute_scaleout

        # The group's graph keeps its identity across the batch, so the
        # partition (and every chip subgraph's pricing context) is shared
        # through GraphPricingContext.partitions.
        result = execute_scaleout(backend, plan, graph, cell.config, chips=cell.chips)
    elif getattr(backend, "uses_shared_workload", False):
        result = backend.execute(plan, graph, cell.config, workload=group.workload(cell))
    else:
        result = backend.execute(plan, graph, cell.config)
    row["metrics"] = _result_metrics(cell, backend, result)
    return row


def _timed_cell(
    cell: SweepCell, trace: bool, execute: Callable
) -> tuple[dict, float, list[dict] | None]:
    """Time one cell execution, optionally under a fresh per-cell tracer.

    ``execute`` receives the tracer (or ``None``) and returns the row.
    Returns ``(row, wall_seconds, span_records)`` — the runner's per-cell
    accounting unit for both the scalar and batch paths.
    """
    from repro.obs.tracer import Tracer

    tracer = Tracer() if trace else None
    start = time.perf_counter()
    if tracer is None:
        row = execute(None)
    else:
        with tracer.span(
            "cell",
            category="cell",
            dataset=cell.dataset,
            family=cell.family,
            backend=cell.backend,
            config=cell.config.name,
            key=cell.key(),
        ) as span:
            row = execute(tracer)
        metrics = row.get("metrics") or {}
        if "cycles" in metrics:
            span.set(cycles=metrics["cycles"], mac_operations=metrics["mac_operations"])
        span.set(supported=row["supported"])
    wall = time.perf_counter() - start
    spans = [record.as_dict() for record in tracer.records] if tracer else None
    return row, wall, spans


def run_cell_timed(
    cell: SweepCell,
    graph: "Graph | None" = None,
    trace: bool = False,
    *,
    attempt: int = 1,
) -> tuple[dict, float, list[dict] | None]:
    """Run one cell with host wall-time (and, optionally, span) capture.

    Returns ``(row, wall_seconds, span_records)`` where ``row`` is exactly
    what :func:`run_cell` produces (byte-identical, traced or not),
    ``wall_seconds`` is the cell's host execution time, and ``span_records``
    is the serialized span segment of this process (one ``cell`` root
    enclosing the backend's ``inference → layer → op`` spans) or ``None``
    when ``trace`` is off.  Picklable end to end, so the pool path ships
    segments back to the parent for the merged multi-worker timeline.
    """
    return _timed_cell(
        cell, trace, lambda tracer: run_cell(cell, graph, tracer=tracer, attempt=attempt)
    )


def run_batch_timed(
    cells: Sequence[SweepCell],
    graph: "Graph | None" = None,
    trace: bool = False,
    *,
    metrics=None,
    attempt: int = 1,
) -> list[tuple[dict, float, list[dict] | None]]:
    """Run one (dataset, scale, seed, family) group of cells as a batch.

    The batch unit of work: all cells must share the group axes (they may
    differ in backend and config).  The group's graph, plan, baseline
    workload and per-backend executors are built once and shared, so a
    config batch prices in one pass what the scalar path would recompute
    per cell — while each cell still gets its own wall-clock timing and
    (when ``trace`` is on) its own ``cell`` span root, exactly like
    :func:`run_cell_timed`.

    ``metrics`` is an optional :class:`repro.obs.MetricsRegistry` installed
    on the group's executors, so inline (``jobs=1``) sweeps surface the
    executor-level dedupe counters (``executor.cache_sim.runs`` /
    ``.memo_hits``) alongside the fleet counters.

    Returns one ``(row, wall_seconds, span_records)`` tuple per cell, in
    input order; rows are byte-identical to the scalar path's.
    """
    group = _BatchGroup(graph=graph, metrics=metrics)
    return [
        _timed_cell(
            cell,
            trace,
            lambda tracer, cell=cell: _run_group_cell(cell, group, tracer, attempt),
        )
        for cell in cells
    ]
