"""Store surgery: verify, repair and compact JSONL result stores.

The :class:`~repro.sweep.store.ResultStore` loader degrades gracefully —
corrupt interior rows are quarantined in memory and the damaged cells
re-execute on resume — but the bad bytes stay in the file as evidence.
This module is the offline half of the self-healing story, surfaced as the
``repro store`` CLI:

* :func:`verify_store` — read-only health report: row counts, failed rows,
  corrupt lines (with reasons), duplicate keys, rows still missing
  checksums, a dangling partial tail.
* :func:`repair_store` — excise corrupt lines into a ``.quarantine``
  sidecar (evidence preserved) and truncate a partial tail, keeping every
  healthy line byte-identical.  Atomic: the store is rewritten to a
  temporary file and swapped in with ``os.replace``.
* :func:`compact_store` — rewrite the store as one canonical checksummed
  line per key (last write wins, matching load semantics): overridden
  ``failed`` rows disappear, duplicate keys collapse, pre-checksum rows
  gain their CRC32 armor.  Corrupt lines are quarantined as in repair.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from pathlib import Path

from repro.sweep.store import ScannedLine, armored_line, is_failed_row, scan_store_lines

__all__ = ["StoreReport", "compact_store", "repair_store", "verify_store"]


@dataclass
class StoreReport:
    """Outcome of one verify / repair / compact pass."""

    path: str
    action: str
    #: Physical lines scanned (including damaged ones).
    lines: int = 0
    #: Healthy logical rows the loader would index (after last-wins dedupe).
    rows: int = 0
    #: Healthy rows recording permanently-failed cells.
    failed_rows: int = 0
    #: Keys that appear on more than one healthy line (failed→healed pairs).
    duplicate_keys: int = 0
    #: Healthy rows written before checksum armor existed.
    unchecksummed_rows: int = 0
    #: Corrupt lines: (line number, reason).
    corrupt: list[tuple[int, str]] = field(default_factory=list)
    #: Whether the file ends in a dangling partial line.
    partial_tail: bool = False
    #: Lines physically removed by repair/compact (0 for verify).
    removed_lines: int = 0
    #: Sidecar the removed corrupt lines were appended to, if any.
    quarantine_path: str | None = None

    @property
    def clean(self) -> bool:
        """No corruption and no partial tail (duplicates are not damage)."""
        return not self.corrupt and not self.partial_tail

    def as_dict(self) -> dict:
        return {
            "path": self.path,
            "action": self.action,
            "lines": self.lines,
            "rows": self.rows,
            "failed_rows": self.failed_rows,
            "duplicate_keys": self.duplicate_keys,
            "unchecksummed_rows": self.unchecksummed_rows,
            "corrupt": [
                {"line": number, "reason": reason} for number, reason in self.corrupt
            ],
            "partial_tail": self.partial_tail,
            "removed_lines": self.removed_lines,
            "quarantine": self.quarantine_path,
            "clean": self.clean,
        }


def _scan(path: str | os.PathLike, action: str) -> tuple[StoreReport, list[ScannedLine]]:
    """Shared verify pass: the report plus every scanned line."""
    report = StoreReport(path=str(path), action=action)
    lines: list[ScannedLine] = []
    seen: dict[str, int] = {}
    for line in scan_store_lines(path):
        lines.append(line)
        report.lines += 1
        if line.row is None:
            if line.terminated:
                report.corrupt.append((line.number, line.error or "corrupt"))
            else:
                report.partial_tail = True
            continue
        key = line.row["key"]
        seen[key] = seen.get(key, 0) + 1
        if not line.had_checksum:
            report.unchecksummed_rows += 1
    # Index like the loader: last healthy line per key wins.
    indexed: dict[str, dict] = {}
    for line in lines:
        if line.row is not None and line.terminated:
            indexed[line.row["key"]] = line.row
    # A healthy unterminated tail is still a row the loader indexes (it
    # repairs the newline); count it too.
    if lines and not lines[-1].terminated and lines[-1].row is not None:
        indexed[lines[-1].row["key"]] = lines[-1].row
    report.rows = len(indexed)
    report.failed_rows = sum(1 for row in indexed.values() if is_failed_row(row))
    report.duplicate_keys = sum(1 for count in seen.values() if count > 1)
    return report, lines


def verify_store(path: str | os.PathLike) -> StoreReport:
    """Read-only health report of a store file."""
    report, _ = _scan(path, "verify")
    return report


def _quarantine(
    path: Path, lines: list[ScannedLine], report: StoreReport
) -> None:
    """Append removed corrupt lines to the ``.quarantine`` sidecar."""
    if not lines:
        return
    sidecar = path.with_name(path.name + ".quarantine")
    with sidecar.open("ab") as handle:
        for line in lines:
            handle.write(line.raw + b"\n")
    report.quarantine_path = str(sidecar)


def _rewrite(path: Path, payload: bytes) -> None:
    """Atomically replace the store file (tmp write + ``os.replace``)."""
    tmp = path.with_name(path.name + ".tmp")
    with tmp.open("wb") as handle:
        handle.write(payload)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)


def repair_store(path: str | os.PathLike) -> StoreReport:
    """Excise corrupt lines (and a partial tail), keeping healthy lines as-is.

    Healthy lines are preserved byte-identically — legacy rows keep missing
    their checksum, duplicate keys keep both lines (use
    :func:`compact_store` to normalize).  Removed corrupt lines are
    appended to ``<store>.quarantine`` so no evidence is destroyed.
    """
    path = Path(path)
    report, lines = _scan(path, "repair")
    if report.clean:
        return report
    kept: list[bytes] = []
    removed: list[ScannedLine] = []
    for line in lines:
        if line.row is None and line.terminated:
            removed.append(line)
        elif line.row is None:
            report.removed_lines += 1  # partial tail: dropped, not evidence
        else:
            kept.append(line.raw + b"\n")
    _quarantine(path, removed, report)
    report.removed_lines += len(removed)
    _rewrite(path, b"".join(kept))
    return report


def compact_store(path: str | os.PathLike) -> StoreReport:
    """Rewrite the store as one canonical checksummed line per key.

    Applies the loader's last-write-wins semantics physically: a failed row
    overridden by its healed re-execution disappears, duplicate keys
    collapse to the surviving row, and every kept row is re-serialized with
    checksum armor (migrating pre-checksum stores in place).  Corrupt lines
    are quarantined exactly like :func:`repair_store`.
    """
    path = Path(path)
    report, lines = _scan(path, "compact")
    indexed: dict[str, dict] = {}
    removed: list[ScannedLine] = []
    for line in lines:
        if line.row is not None:
            indexed[line.row["key"]] = line.row
        elif line.terminated:
            removed.append(line)
    _quarantine(path, removed, report)
    payload = "".join(armored_line(row) + "\n" for row in indexed.values()).encode()
    report.removed_lines = report.lines - len(indexed)
    _rewrite(path, payload)
    return report
