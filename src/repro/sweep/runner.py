"""Scenario-sweep runner: fan cells out, stream rows into the store.

:func:`run_sweep` is the single entry point every exploration path routes
through — the ``repro sweep`` CLI, the design-space wrappers in
:mod:`repro.sim.design_space`, the figure benchmarks' full evaluation
matrix.  It expands a :class:`~repro.sweep.matrix.ScenarioMatrix` (or takes
pre-built cells), skips cells whose keys are already in the
:class:`~repro.sweep.store.ResultStore` (resume), executes the remainder —
inline for ``jobs=1``, across a ``ProcessPoolExecutor`` otherwise — and
appends each row to the store the moment it completes, so progress survives
a kill at any point.

Results are returned in deterministic cell order regardless of the order
workers finish in; a sweep's summary is a pure function of its matrix and
store, never of scheduling.
"""

from __future__ import annotations

import concurrent.futures
import os
import time
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.obs.metrics import NULL_METRICS
from repro.obs.tracer import NULL_TRACER
from repro.sweep.matrix import ScenarioMatrix, SweepCell
from repro.sweep.store import ResultStore
from repro.sweep.worker import (
    ROW_FORMAT,
    run_batch_timed,
    run_cell_timed,
    seed_graph_overrides,
)

__all__ = ["SweepSummary", "run_sweep"]

#: Progress callback signature:
#: (cell, row, completed_count, total_count, cached, wall_seconds) —
#: ``cached`` is True for cells served from the result store (resume)
#: instead of executed, so a ``done/total`` counter advances smoothly
#: across both paths; ``wall_seconds`` is the cell's host execution time
#: (0.0 for cached cells), which is what the CLI's live rate/ETA reads.
ProgressCallback = Callable[[SweepCell, dict, int, int, bool, float], None]


def _batch_disabled() -> bool:
    """``REPRO_NO_BATCH`` escape hatch: force the scalar per-cell path.

    Any non-empty value other than ``"0"`` disables group batching — the CI
    smoke job uses it to pin batch and scalar stores byte-identical, and it
    doubles as a field workaround should a plug-in backend ever misbehave
    under executor sharing.
    """
    value = os.environ.get("REPRO_NO_BATCH", "")
    return bool(value) and value != "0"


def _batch_groups(
    pending: dict[str, list[tuple[int, SweepCell]]],
) -> list[list[tuple[str, SweepCell]]]:
    """Group pending cells by (dataset, scale, seed, family), in cell order.

    One group becomes one :func:`~repro.sweep.worker.run_batch_timed` call:
    its cells share a graph, a lowered plan, the baseline workload and one
    executor per backend, so the per-(plan, graph) precompute is paid once
    per group instead of once per cell.
    """
    groups: dict[tuple, list[tuple[str, SweepCell]]] = {}
    for key, holders in pending.items():
        cell = holders[0][1]
        axes = (cell.dataset, cell.scale, cell.seed, cell.family)
        groups.setdefault(axes, []).append((key, cell))
    return list(groups.values())


def _check_store_format(store: ResultStore) -> None:
    """Refuse to resume from a store whose cell keys predate this version.

    Sweep rows carry a ``row_format`` stamp (see
    :data:`repro.sweep.worker.ROW_FORMAT`).  A store written before the
    current format hashes cells differently, so resuming from it would
    silently re-execute every cell while the stale rows keep polluting
    aggregation — a clear error beats that confusion.  Rows without a
    ``config`` field are not sweep rows (the store is a generic JSONL
    keyed store) and are left alone.
    """
    for row in store.rows():
        if "config" in row and row.get("row_format") != ROW_FORMAT:
            raise ValueError(
                f"result store {store.path} holds rows in format "
                f"{row.get('row_format', 1)!r} but this version writes format "
                f"{ROW_FORMAT} (cell keys changed with the input-buffer "
                "auto-sizing sentinel); resuming would re-execute every cell "
                "next to the stale rows.  Start a fresh store path or pass "
                "--no-resume (ResultStore(..., resume=False)) to rebuild it."
            )


@dataclass
class SweepSummary:
    """Outcome of one sweep: per-cell rows plus execution accounting."""

    total: int
    executed: int
    skipped: int
    rows: list[dict] = field(default_factory=list)
    store_path: str | None = None
    #: Host wall-clock of the whole sweep call, seconds.
    wall_seconds: float = 0.0
    #: Summed per-cell host execution time (excludes resumed cells); under
    #: a worker pool this exceeds ``wall_seconds`` when parallelism pays.
    cell_wall_seconds: float = 0.0

    @property
    def unsupported(self) -> int:
        """Cells whose backend cannot run the family (rows with null metrics)."""
        return sum(1 for row in self.rows if not row["supported"])

    @property
    def rows_per_second(self) -> float:
        """Completed cells per wall-clock second (resumed cells included)."""
        return self.total / self.wall_seconds if self.wall_seconds > 0 else 0.0

    def as_dict(self) -> dict:
        return {
            "total": self.total,
            "executed": self.executed,
            "skipped": self.skipped,
            "unsupported": self.unsupported,
            "wall_seconds": self.wall_seconds,
            "cell_wall_seconds": self.cell_wall_seconds,
            "store": self.store_path,
            "rows": self.rows,
        }


def run_sweep(
    matrix: ScenarioMatrix | Sequence[SweepCell],
    *,
    store: ResultStore | None = None,
    jobs: int = 1,
    graphs: dict[str, object] | None = None,
    progress: ProgressCallback | None = None,
    tracer=None,
    metrics=None,
) -> SweepSummary:
    """Run every cell of the matrix, resuming from the store.

    Args:
        matrix: A :class:`ScenarioMatrix` or an explicit cell sequence.
        store: Resumable result store; cells whose key it already contains
            are not executed (their stored rows are returned instead).
            ``None`` keeps results in memory only.
        jobs: Worker processes.  ``1`` runs inline in this process (sharing
            its dataset/executor memos); ``>1`` fans out across a
            ``ProcessPoolExecutor`` with one deterministic row per cell.
            Either way, pending cells are dispatched one *batch* per
            (dataset, scale, seed, family) group — the group shares its
            graph, lowered plan, baseline workload and per-backend executors
            (see :func:`~repro.sweep.worker.run_batch_timed`), which is
            byte-identical to per-cell execution but prices config batches
            in one pass.  Set ``REPRO_NO_BATCH=1`` to force the scalar
            per-cell path.
        graphs: Optional pre-built graphs keyed by cell dataset name,
            overriding the synthetic registry build (the design-space
            wrappers sweep caller-supplied graphs this way).  Requires an
            in-memory store: a cell key hashes only the cell spec, not
            graph content, so a persistent store could silently serve rows
            computed from a *different* caller-supplied graph of the same
            name on a later run.
        progress: Optional callback invoked once per cell — after execution
            for fresh cells, and during the initial store scan for resumed
            ones (``cached=True``), so ``done/total`` accounting covers
            every cell exactly once.  The final argument is the cell's host
            wall time in seconds (0.0 when resumed).
        tracer: Optional :class:`repro.obs.Tracer`.  When enabled, the
            sweep records a root span, every executed cell runs traced
            (workers ship their span segments back; each worker process is
            its own timeline track), and the segments are absorbed into
            this tracer for one merged fleet timeline.  Tracing never
            changes the rows — traced and untraced sweeps are
            byte-identical.
        metrics: Optional :class:`repro.obs.MetricsRegistry` receiving the
            fleet counters (``sweep.cells.executed`` / ``.cached`` /
            ``.unsupported``, ``sweep.cell_wall_seconds``, ``sweep.jobs``).

    Returns:
        A :class:`SweepSummary` with rows in matrix cell order.
        ``executed`` counts unique simulated cells; ``skipped`` counts cells
        served from the store or from an identical cell earlier in the same
        matrix (duplicate axis entries are simulated once).
    """
    cells = matrix.cells() if isinstance(matrix, ScenarioMatrix) else list(matrix)
    if jobs < 1:
        raise ValueError("jobs must be >= 1")
    if store is None:
        store = ResultStore(None)
    if graphs and store.path is not None:
        raise ValueError(
            "caller-supplied graphs require an in-memory store: cell keys do "
            "not hash graph content, so resuming from a file could return "
            "rows computed from a different graph with the same name"
        )
    tracer = tracer or NULL_TRACER
    metrics = metrics or NULL_METRICS
    trace_cells = tracer.enabled
    started = time.perf_counter()

    _check_store_format(store)
    results: dict[int, dict] = {}
    # Duplicate-key cells execute once; the row fans out to every holder.
    pending: dict[str, list[tuple[int, SweepCell]]] = {}
    completed = 0
    cell_wall_total = 0.0
    with tracer.span("sweep", category="sweep", cells=len(cells), jobs=jobs) as root:
        for index, cell in enumerate(cells):
            cached = store.get(cell.key())
            if cached is not None:
                results[index] = cached
                completed += 1
                metrics.counter("sweep.cells.cached").inc()
                # Store-resumed cells report progress too (flagged cached),
                # so a resumed sweep's done/total counter starts where it
                # left off instead of jumping over the resumed prefix.
                if progress is not None:
                    progress(cell, cached, completed, len(cells), True, 0.0)
            else:
                pending.setdefault(cell.key(), []).append((index, cell))

        def finish(key: str, row: dict, wall_s: float, spans) -> None:
            nonlocal completed, cell_wall_total
            store.append(row)
            if spans:
                tracer.absorb(spans)
            cell_wall_total += wall_s
            metrics.counter("sweep.cells.executed").inc()
            metrics.counter("sweep.cell_wall_seconds").inc(wall_s)
            if not row["supported"]:
                metrics.counter("sweep.cells.unsupported").inc()
            for index, cell in pending[key]:
                results[index] = row
                completed += 1
                if progress is not None:
                    progress(cell, row, completed, len(cells), False, wall_s)

        batch = not _batch_disabled()
        if jobs == 1 or not pending:
            if batch:
                # One batch per (dataset, scale, seed, family) group: the
                # group's cells share graph/plan/workload/executors, and the
                # executors carry this sweep's metrics registry so the
                # executor-level dedupe counters (executor.cache_sim.runs /
                # .memo_hits) land next to the fleet counters.
                for group in _batch_groups(pending):
                    graph = graphs.get(group[0][1].dataset) if graphs else None
                    outcomes = run_batch_timed(
                        [cell for _, cell in group], graph, trace_cells, metrics=metrics
                    )
                    for (key, _), outcome in zip(group, outcomes):
                        finish(key, *outcome)
            else:
                for key, holders in pending.items():
                    cell = holders[0][1]
                    graph = graphs.get(cell.dataset) if graphs else None
                    finish(key, *run_cell_timed(cell, graph, trace_cells))
        else:
            # Caller-supplied graphs ship once per worker process
            # (initializer), not once per cell.
            with concurrent.futures.ProcessPoolExecutor(
                max_workers=jobs,
                initializer=seed_graph_overrides if graphs else None,
                initargs=(graphs,) if graphs else (),
            ) as pool:
                # Batch mode submits one work item per group (a failed group
                # loses only its own rows); the scalar escape hatch submits
                # one item per cell exactly as before.
                futures: dict[concurrent.futures.Future, list[str]] = {}
                if batch:
                    for group in _batch_groups(pending):
                        future = pool.submit(
                            run_batch_timed, [cell for _, cell in group], None, trace_cells
                        )
                        futures[future] = [key for key, _ in group]
                else:
                    for key, holders in pending.items():
                        future = pool.submit(
                            run_cell_timed, holders[0][1], None, trace_cells
                        )
                        futures[future] = [key]
                # Drain every completed future even after one fails: rows
                # other workers finished must still reach the store (the
                # resume guarantee), so the first error is re-raised only at
                # the end.
                error: Exception | None = None
                for future in concurrent.futures.as_completed(futures):
                    try:
                        result = future.result()
                    except Exception as exc:
                        error = error or exc
                        continue
                    outcomes = result if batch else [result]
                    for key, outcome in zip(futures[future], outcomes):
                        finish(key, *outcome)
                if error is not None:
                    raise error
        root.set(executed=len(pending), resumed=len(cells) - len(pending))
    metrics.gauge("sweep.jobs").set(jobs)

    return SweepSummary(
        total=len(cells),
        executed=len(pending),
        skipped=len(cells) - len(pending),
        rows=[results[index] for index in range(len(cells))],
        store_path=str(store.path) if store.path is not None else None,
        wall_seconds=time.perf_counter() - started,
        cell_wall_seconds=cell_wall_total,
    )
