"""Supervised scenario-sweep runner: fan cells out, survive the failures.

:func:`run_sweep` is the single entry point every exploration path routes
through — the ``repro sweep`` CLI, the design-space wrappers in
:mod:`repro.sim.design_space`, the figure benchmarks' full evaluation
matrix.  It expands a :class:`~repro.sweep.matrix.ScenarioMatrix` (or takes
pre-built cells), skips cells whose keys are already in the
:class:`~repro.sweep.store.ResultStore` (resume), executes the remainder —
inline for ``jobs=1``, across a ``ProcessPoolExecutor`` otherwise — and
appends each row to the store the moment it completes, so progress survives
a kill at any point.

Since the fault-tolerance layer, the fleet is *supervised* by a
:class:`RetryPolicy`:

* failed work items are retried with exponential backoff and deterministic
  jitter, up to ``max_attempts``;
* a *batch* group that exhausts its attempts degrades to the scalar path —
  each cell retries alone, so one poisoned cell cannot take its whole
  (dataset, scale, seed, family) group down with it;
* a worker crash (``BrokenProcessPool``) rebuilds the pool and requeues
  every in-flight group — crashes are counted separately from ordinary
  failures (bounded by ``max_disruptions``) so a crashing neighbour never
  burns an innocent group's retry budget;
* a group that exceeds ``timeout_seconds`` is charged a failed attempt, its
  hung worker is terminated, and the pool is rebuilt;
* cells that still fail land in the store as explicit ``failed`` rows
  (error class/message, attempt count — see
  :func:`~repro.sweep.worker.failed_row`), so a sweep always completes and
  a later fault-free run re-executes exactly the failed cells.  With
  ``RetryPolicy(failed_rows=False)`` the sweep instead raises one
  :class:`SweepError` carrying *every* group failure and the count of rows
  that did land.

Results are returned in deterministic cell order regardless of the order
workers finish in; a sweep's summary is a pure function of its matrix,
store and (injected) faults, never of scheduling.
"""

from __future__ import annotations

import collections
import concurrent.futures
import hashlib
import heapq
import itertools
import os
import time
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.obs.metrics import NULL_METRICS
from repro.obs.tracer import NULL_TRACER
from repro.sweep.matrix import ScenarioMatrix, SweepCell
from repro.sweep.store import ResultStore, is_failed_row
from repro.sweep.worker import (
    COMPATIBLE_ROW_FORMATS,
    failed_row,
    run_batch_timed,
    run_cell_timed,
    seed_graph_overrides,
)

__all__ = ["RetryPolicy", "SweepError", "SweepSummary", "run_sweep"]

#: Progress callback signature:
#: (cell, row, completed_count, total_count, cached, wall_seconds) —
#: ``cached`` is True for cells served from the result store (resume)
#: instead of executed, so a ``done/total`` counter advances smoothly
#: across both paths; ``wall_seconds`` is the cell's host execution time
#: (0.0 for cached cells), which is what the CLI's live rate/ETA reads.
ProgressCallback = Callable[[SweepCell, dict, int, int, bool, float], None]


@dataclass(frozen=True)
class RetryPolicy:
    """How the supervised fleet treats failing work items.

    Args:
        max_attempts: Executions a work item is charged before it is
            exhausted (a batch group then degrades to scalar; a scalar cell
            then fails permanently).
        timeout_seconds: Wall-clock budget per submitted group under a
            worker pool; an expired group's worker is terminated, the pool
            rebuilt, and the group charged one failed attempt.  ``None``
            disables timeouts.  Inline (``jobs=1``) execution cannot be
            preempted, so timeouts only apply to pool runs.
        backoff_seconds: Base delay before the second attempt; doubles per
            further attempt up to ``backoff_max_seconds``.  Jitter is a
            deterministic hash of (cell key, attempt) — replayable chaos.
        backoff_max_seconds: Backoff ceiling.
        degrade: Whether an exhausted *batch* group retries its cells
            through the scalar path to isolate the poisoned cell.
        failed_rows: When ``True`` (the default), permanently-failed cells
            land as explicit ``failed`` store rows and the sweep completes;
            when ``False``, the sweep raises :class:`SweepError` after the
            drain, reporting every failure.
        max_disruptions: Bound on *uncharged* infrastructure failures
            (pool-breaking crashes) one work item may suffer before it is
            treated as exhausted — the culprit of a repeating crash loop
            ends here; innocent neighbours requeue without losing budget.
    """

    max_attempts: int = 2
    timeout_seconds: float | None = None
    backoff_seconds: float = 0.05
    backoff_max_seconds: float = 2.0
    degrade: bool = True
    failed_rows: bool = True
    max_disruptions: int = 6

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.timeout_seconds is not None and self.timeout_seconds <= 0:
            raise ValueError("timeout_seconds must be positive (or None)")
        if self.backoff_seconds < 0 or self.backoff_max_seconds < 0:
            raise ValueError("backoff must be >= 0")
        if self.max_disruptions < 1:
            raise ValueError("max_disruptions must be >= 1")

    def delay(self, key: str, attempt: int) -> float:
        """Backoff before retry number ``attempt`` of the item keyed ``key``.

        Exponential in the attempt count, capped, with jitter in
        [0.5, 1.0)× derived from a hash of (key, attempt) — deterministic
        across runs, decorrelated across a fleet's items.
        """
        if self.backoff_seconds <= 0:
            return 0.0
        base = min(self.backoff_seconds * 2 ** (attempt - 1), self.backoff_max_seconds)
        digest = hashlib.sha256(f"{key}:{attempt}".encode()).digest()
        jitter = int.from_bytes(digest[:8], "big") / 2**64
        return base * (0.5 + jitter / 2)


class SweepError(RuntimeError):
    """All permanent failures of one sweep, raised after the full drain.

    Unlike the old first-error re-raise, every failed group is reported
    (``failures``: one record per group with its cells, error class/message
    and attempt count) along with how many rows *did* land in the store
    before the error surfaced (``rows_landed`` — the resume guarantee).
    """

    def __init__(self, failures: list[dict], rows_landed: int) -> None:
        self.failures = failures
        self.rows_landed = rows_landed
        cells = sum(len(entry["keys"]) for entry in failures)
        details = "; ".join(
            f"{entry['cells'][0]}"
            + (f" (+{len(entry['cells']) - 1} more)" if len(entry["cells"]) > 1 else "")
            + f": {entry['error_type']}: {entry['error']}"
            for entry in failures[:5]
        )
        if len(failures) > 5:
            details += f"; ... {len(failures) - 5} more group(s)"
        super().__init__(
            f"{cells} cell(s) in {len(failures)} group(s) failed permanently "
            f"({rows_landed} row(s) landed in the store): {details}"
        )


@dataclass
class _Task:
    """One supervised work item: a batch group or a single degraded cell."""

    #: (store key, cell) per unique pending cell of this item.
    entries: list[tuple[str, SweepCell]]
    #: ``"batch"`` (one :func:`run_batch_timed` call) or ``"scalar"``.
    mode: str
    #: Charged attempts completed (failures that consumed retry budget).
    attempt: int = 0
    #: Uncharged infrastructure failures suffered (pool-breaking crashes).
    disruptions: int = 0
    #: Executions inherited from the batch lineage a degraded cell left.
    base_attempts: int = 0
    #: Errors observed so far, newest last (feeds failure records).
    errors: list[str] = field(default_factory=list)

    @property
    def executions(self) -> int:
        """Executions of this task's lineage — the fault-plane attempt base.

        Includes disruptions: a transient ``times=1`` crash fault must see
        attempt 2 on the re-run after its own crash, or it would re-fire
        forever.
        """
        return self.base_attempts + self.attempt + self.disruptions

    @property
    def charged_attempts(self) -> int:
        """Charged executions only — what failure records report.

        Disruptions are excluded deliberately: whether an innocent group was
        in flight when a neighbour crashed the pool depends on scheduling,
        and failure rows must be a pure function of matrix + faults (the
        byte-identical chaos-replay guarantee).  A task exhausted purely by
        disruptions (a permanent crasher) reports those instead.
        """
        charged = self.base_attempts + self.attempt
        return charged if charged > 0 else self.disruptions

    def describe_cells(self) -> list[str]:
        return [cell.describe() for _, cell in self.entries]


def _batch_disabled() -> bool:
    """``REPRO_NO_BATCH`` escape hatch: force the scalar per-cell path.

    Any non-empty value other than ``"0"`` disables group batching — the CI
    smoke job uses it to pin batch and scalar stores byte-identical, and it
    doubles as a field workaround should a plug-in backend ever misbehave
    under executor sharing.
    """
    value = os.environ.get("REPRO_NO_BATCH", "")
    return bool(value) and value != "0"


def _batch_groups(
    pending: dict[str, list[tuple[int, SweepCell]]],
) -> list[list[tuple[str, SweepCell]]]:
    """Group pending cells by (dataset, scale, seed, family), in cell order.

    One group becomes one :func:`~repro.sweep.worker.run_batch_timed` call:
    its cells share a graph, a lowered plan, the baseline workload and one
    executor per backend, so the per-(plan, graph) precompute is paid once
    per group instead of once per cell.
    """
    groups: dict[tuple, list[tuple[str, SweepCell]]] = {}
    for key, holders in pending.items():
        cell = holders[0][1]
        axes = (cell.dataset, cell.scale, cell.seed, cell.family)
        groups.setdefault(axes, []).append((key, cell))
    return list(groups.values())


def _check_store_format(store: ResultStore) -> None:
    """Refuse to resume from a store whose cell keys predate this version.

    Sweep rows carry a ``row_format`` stamp (see
    :data:`repro.sweep.worker.ROW_FORMAT`; ``failed`` rows carry
    :data:`~repro.sweep.worker.FAILED_ROW_FORMAT`).  A store written before
    the current formats hashes cells differently, so resuming from it would
    silently re-execute every cell while the stale rows keep polluting
    aggregation — a clear error beats that confusion.  Rows without a
    ``config`` field are not sweep rows (the store is a generic JSONL
    keyed store) and are left alone.
    """
    for row in store.rows():
        if "config" in row and row.get("row_format") not in COMPATIBLE_ROW_FORMATS:
            raise ValueError(
                f"result store {store.path} holds rows in format "
                f"{row.get('row_format', 1)!r} but this version writes formats "
                f"{sorted(COMPATIBLE_ROW_FORMATS)} (cell keys changed with the "
                "input-buffer auto-sizing sentinel); resuming would re-execute "
                "every cell next to the stale rows.  Start a fresh store path "
                "or pass --no-resume (ResultStore(..., resume=False)) to "
                "rebuild it."
            )


@dataclass
class SweepSummary:
    """Outcome of one sweep: per-cell rows plus execution accounting."""

    total: int
    executed: int
    skipped: int
    rows: list[dict] = field(default_factory=list)
    store_path: str | None = None
    #: Host wall-clock of the whole sweep call, seconds.
    wall_seconds: float = 0.0
    #: Summed per-cell host execution time (excludes resumed cells); under
    #: a worker pool this exceeds ``wall_seconds`` when parallelism pays.
    cell_wall_seconds: float = 0.0
    #: Supervisor accounting: charged retries, group timeouts, pool rebuilds.
    retries: int = 0
    timeouts: int = 0
    pool_rebuilds: int = 0

    @property
    def unsupported(self) -> int:
        """Cells whose backend cannot run the family (rows with null metrics)."""
        return sum(1 for row in self.rows if not row["supported"])

    @property
    def failed(self) -> int:
        """Cells that permanently failed and landed as explicit failed rows."""
        return sum(1 for row in self.rows if is_failed_row(row))

    @property
    def rows_per_second(self) -> float:
        """Completed cells per wall-clock second (resumed cells included)."""
        return self.total / self.wall_seconds if self.wall_seconds > 0 else 0.0

    def as_dict(self) -> dict:
        return {
            "total": self.total,
            "executed": self.executed,
            "skipped": self.skipped,
            "unsupported": self.unsupported,
            "failed": self.failed,
            "retries": self.retries,
            "timeouts": self.timeouts,
            "pool_rebuilds": self.pool_rebuilds,
            "wall_seconds": self.wall_seconds,
            "cell_wall_seconds": self.cell_wall_seconds,
            "store": self.store_path,
            "rows": self.rows,
        }


class _Supervisor:
    """Retry/degrade/fail bookkeeping shared by the inline and pool paths.

    Owns the policy decisions — what a failure costs, when a batch group
    degrades, when a cell permanently fails — while the drivers own the
    scheduling (inline loop vs. pool event loop).  ``finish`` lands one
    healthy outcome; ``finish_failure`` lands (or records) one permanent
    per-cell failure.
    """

    def __init__(self, policy, finish, finish_failure, metrics, tracer) -> None:
        self.policy = policy
        self.finish = finish
        self.finish_failure = finish_failure
        self.metrics = metrics
        self.tracer = tracer
        self.retries = 0
        self.timeouts = 0
        self.pool_rebuilds = 0

    def succeed(self, task: _Task, outcomes) -> None:
        for (key, _), outcome in zip(task.entries, outcomes):
            self.finish(key, *outcome)

    def fail(self, task: _Task, error: BaseException, *, charged: bool) -> list[tuple[_Task, float]]:
        """Digest one task failure → (task, delay) items to requeue.

        Charged failures consume the retry budget; uncharged ones (a
        neighbour crashed the pool) only count against the disruption
        bound.  An exhausted batch group degrades to per-cell scalar tasks;
        an exhausted scalar task permanently fails its cell.
        """
        task.errors.append(f"{type(error).__name__}: {error}")
        if charged:
            task.attempt += 1
            exhausted = task.attempt >= self.policy.max_attempts
        else:
            task.disruptions += 1
            exhausted = task.disruptions >= self.policy.max_disruptions
        if not exhausted:
            self.retries += 1
            self.metrics.counter("sweep.retries").inc()
            with self.tracer.span(
                "retry",
                category="fault",
                mode=task.mode,
                attempt=task.attempt,
                disruptions=task.disruptions,
                error=type(error).__name__,
                cells=len(task.entries),
            ):
                pass
            delay = (
                self.policy.delay(task.entries[0][0], task.attempt) if charged else 0.0
            )
            return [(task, delay)]
        if task.mode == "batch" and self.policy.degrade:
            # Degrade: retry the group's cells through the scalar path with
            # a fresh budget each, so the poisoned cell is isolated and the
            # healthy majority still lands.
            self.metrics.counter("sweep.groups.degraded").inc()
            with self.tracer.span(
                "degrade", category="fault", cells=len(task.entries),
                error=type(error).__name__,
            ):
                pass
            return [
                (
                    _Task(
                        entries=[entry],
                        mode="scalar",
                        base_attempts=task.charged_attempts,
                        errors=list(task.errors),
                    ),
                    0.0,
                )
                for entry in task.entries
            ]
        self.finish_failure(task, error)
        return []


def _terminate_workers(pool) -> None:
    """Best-effort kill of a pool's worker processes (hung or dying)."""
    processes = list((getattr(pool, "_processes", None) or {}).values())
    for process in processes:
        try:
            process.terminate()
        except Exception:
            pass
    for process in processes:
        try:
            process.join(0.5)
        except Exception:
            pass


def run_sweep(
    matrix: ScenarioMatrix | Sequence[SweepCell],
    *,
    store: ResultStore | None = None,
    jobs: int = 1,
    graphs: dict[str, object] | None = None,
    progress: ProgressCallback | None = None,
    tracer=None,
    metrics=None,
    retry: RetryPolicy | None = None,
) -> SweepSummary:
    """Run every cell of the matrix, resuming from the store.

    Args:
        matrix: A :class:`ScenarioMatrix` or an explicit cell sequence.
        store: Resumable result store; cells whose key it already contains
            are not executed (their stored rows are returned instead) —
            except ``failed`` rows, which are re-executed so a fault-free
            re-run heals a chaos-damaged store exactly-once.
            ``None`` keeps results in memory only.
        jobs: Worker processes.  ``1`` runs inline in this process (sharing
            its dataset/executor memos); ``>1`` fans out across a
            ``ProcessPoolExecutor`` with one deterministic row per cell.
            Either way, pending cells are dispatched one *batch* per
            (dataset, scale, seed, family) group — the group shares its
            graph, lowered plan, baseline workload and per-backend executors
            (see :func:`~repro.sweep.worker.run_batch_timed`), which is
            byte-identical to per-cell execution but prices config batches
            in one pass.  Set ``REPRO_NO_BATCH=1`` to force the scalar
            per-cell path.
        graphs: Optional pre-built graphs keyed by cell dataset name,
            overriding the synthetic registry build (the design-space
            wrappers sweep caller-supplied graphs this way).  Requires an
            in-memory store: a cell key hashes only the cell spec, not
            graph content, so a persistent store could silently serve rows
            computed from a *different* caller-supplied graph of the same
            name on a later run.
        progress: Optional callback invoked once per cell — after execution
            for fresh cells, and during the initial store scan for resumed
            ones (``cached=True``), so ``done/total`` accounting covers
            every cell exactly once.  The final argument is the cell's host
            wall time in seconds (0.0 when resumed).
        tracer: Optional :class:`repro.obs.Tracer`.  When enabled, the
            sweep records a root span, every executed cell runs traced
            (workers ship their span segments back; each worker process is
            its own timeline track), retries/degradations emit ``fault``
            spans, and the segments are absorbed into this tracer for one
            merged fleet timeline.  Tracing never changes the rows — traced
            and untraced sweeps are byte-identical.
        metrics: Optional :class:`repro.obs.MetricsRegistry` receiving the
            fleet counters (``sweep.cells.executed`` / ``.cached`` /
            ``.unsupported`` / ``.failed``, ``sweep.retries``,
            ``sweep.timeouts``, ``sweep.pool_rebuilds``,
            ``sweep.groups.degraded``, ``sweep.cell_wall_seconds``,
            ``sweep.jobs``).
        retry: Supervision policy (see :class:`RetryPolicy`); the default
            retries twice with backoff, degrades failed batch groups to the
            scalar path, and records permanent failures as explicit
            ``failed`` rows.  ``RetryPolicy(max_attempts=1,
            failed_rows=False)`` restores strict fail-fast semantics, with
            every failure reported in one :class:`SweepError`.

    Returns:
        A :class:`SweepSummary` with rows in matrix cell order.
        ``executed`` counts unique simulated cells; ``skipped`` counts cells
        served from the store or from an identical cell earlier in the same
        matrix (duplicate axis entries are simulated once).

    Raises:
        SweepError: Only when ``retry.failed_rows`` is ``False`` and cells
            failed permanently — after the drain, so every row other
            workers finished has already reached the store.
    """
    cells = matrix.cells() if isinstance(matrix, ScenarioMatrix) else list(matrix)
    if jobs < 1:
        raise ValueError("jobs must be >= 1")
    if store is None:
        store = ResultStore(None)
    if graphs and store.path is not None:
        raise ValueError(
            "caller-supplied graphs require an in-memory store: cell keys do "
            "not hash graph content, so resuming from a file could return "
            "rows computed from a different graph with the same name"
        )
    policy = retry if retry is not None else RetryPolicy()
    tracer = tracer or NULL_TRACER
    metrics = metrics or NULL_METRICS
    trace_cells = tracer.enabled
    started = time.perf_counter()

    _check_store_format(store)
    results: dict[int, dict] = {}
    # Duplicate-key cells execute once; the row fans out to every holder.
    pending: dict[str, list[tuple[int, SweepCell]]] = {}
    completed = 0
    cell_wall_total = 0.0
    failures: list[dict] = []
    landed = 0
    with tracer.span("sweep", category="sweep", cells=len(cells), jobs=jobs) as root:
        for index, cell in enumerate(cells):
            cached = store.get(cell.key())
            if cached is not None and not is_failed_row(cached):
                results[index] = cached
                completed += 1
                metrics.counter("sweep.cells.cached").inc()
                # Store-resumed cells report progress too (flagged cached),
                # so a resumed sweep's done/total counter starts where it
                # left off instead of jumping over the resumed prefix.
                if progress is not None:
                    progress(cell, cached, completed, len(cells), True, 0.0)
            else:
                # Failed rows are not served: the cell re-executes, and its
                # healthy row overrides the failed one in the store.
                pending.setdefault(cell.key(), []).append((index, cell))

        def finish(
            key: str, row: dict, wall_s: float, spans, *, failed: bool = False
        ) -> None:
            nonlocal completed, cell_wall_total, landed
            store.append(row)
            landed += 1
            if spans:
                tracer.absorb(spans)
            cell_wall_total += wall_s
            if not failed:
                metrics.counter("sweep.cells.executed").inc()
                metrics.counter("sweep.cell_wall_seconds").inc(wall_s)
                if not row["supported"]:
                    metrics.counter("sweep.cells.unsupported").inc()
            for index, cell in pending[key]:
                results[index] = row
                completed += 1
                if progress is not None:
                    progress(cell, row, completed, len(cells), False, wall_s)

        def finish_failure(task: _Task, error: BaseException) -> None:
            """Land (or record) the permanent failure of a task's cells."""
            metrics.counter("sweep.cells.failed").inc(len(task.entries))
            attempts = task.charged_attempts
            if policy.failed_rows:
                for key, cell in task.entries:
                    finish(key, failed_row(cell, error, attempts), 0.0, None, failed=True)
            else:
                failures.append(
                    {
                        "keys": [key for key, _ in task.entries],
                        "cells": task.describe_cells(),
                        "mode": task.mode,
                        "attempts": attempts,
                        "error_type": type(error).__name__,
                        "error": str(error),
                        "history": list(task.errors),
                    }
                )

        supervisor = _Supervisor(policy, finish, finish_failure, metrics, tracer)

        batch = not _batch_disabled()
        if batch:
            tasks = [
                _Task(entries=group, mode="batch") for group in _batch_groups(pending)
            ]
        else:
            tasks = [
                _Task(entries=[(key, holders[0][1])], mode="scalar")
                for key, holders in pending.items()
            ]

        if jobs == 1 or not pending:
            _drive_inline(tasks, supervisor, graphs, trace_cells, metrics)
        else:
            _drive_pool(tasks, supervisor, jobs, graphs, trace_cells, policy)
        root.set(executed=len(pending), resumed=len(cells) - len(pending))
    metrics.gauge("sweep.jobs").set(jobs)

    if failures:
        raise SweepError(failures, landed)

    return SweepSummary(
        total=len(cells),
        executed=len(pending),
        skipped=len(cells) - len(pending),
        rows=[results[index] for index in range(len(cells))],
        store_path=str(store.path) if store.path is not None else None,
        wall_seconds=time.perf_counter() - started,
        cell_wall_seconds=cell_wall_total,
        retries=supervisor.retries,
        timeouts=supervisor.timeouts,
        pool_rebuilds=supervisor.pool_rebuilds,
    )


def _drive_inline(
    tasks: list[_Task], supervisor: _Supervisor, graphs, trace_cells: bool, metrics
) -> None:
    """Sequential supervised execution in this process (``jobs=1``).

    Timeouts cannot preempt inline execution and crash faults would take
    the caller down with them — those two fault classes need a worker pool;
    raises, retries, degradation and failed rows all behave identically.
    """
    queue: collections.deque[tuple[_Task, float]] = collections.deque(
        (task, 0.0) for task in tasks
    )
    while queue:
        task, not_before = queue.popleft()
        wait = not_before - time.monotonic()
        if wait > 0:
            time.sleep(wait)
        attempt = task.executions + 1
        try:
            if task.mode == "batch":
                # The group's executors carry this sweep's metrics registry
                # so the executor-level dedupe counters
                # (executor.cache_sim.runs / .memo_hits) land next to the
                # fleet counters.
                graph = (
                    graphs.get(task.entries[0][1].dataset) if graphs else None
                )
                outcomes = run_batch_timed(
                    [cell for _, cell in task.entries],
                    graph,
                    trace_cells,
                    metrics=metrics,
                    attempt=attempt,
                )
            else:
                cell = task.entries[0][1]
                graph = graphs.get(cell.dataset) if graphs else None
                outcomes = [
                    run_cell_timed(cell, graph, trace_cells, attempt=attempt)
                ]
        except Exception as error:
            for item, delay in supervisor.fail(task, error, charged=True):
                queue.append((item, time.monotonic() + delay))
        else:
            supervisor.succeed(task, outcomes)


def _drive_pool(
    tasks: list[_Task],
    supervisor: _Supervisor,
    jobs: int,
    graphs,
    trace_cells: bool,
    policy: RetryPolicy,
) -> None:
    """Supervised pool event loop: submit, wait, retry, rebuild.

    In-flight submissions are capped at ``jobs`` so a submitted group is
    actually running — which is what makes per-group deadlines meaningful.
    A ``BrokenProcessPool`` (worker crash) poisons every in-flight future;
    all are drained, requeued *uncharged* (bounded by
    ``policy.max_disruptions``), and the pool is rebuilt.  An expired
    deadline charges the hung group one attempt, terminates the workers,
    requeues the innocent in-flight groups uncharged, and rebuilds.
    """
    order = itertools.count()
    ready: collections.deque[_Task] = collections.deque(tasks)
    waiting: list[tuple[float, int, _Task]] = []  # backoff heap
    inflight: dict[concurrent.futures.Future, _Task] = {}
    deadlines: dict[concurrent.futures.Future, float] = {}

    def as_outcomes(task: _Task, result):
        """Normalize a future result: scalar futures return one tuple."""
        return result if task.mode == "batch" else [result]

    def make_pool():
        return concurrent.futures.ProcessPoolExecutor(
            max_workers=jobs,
            initializer=seed_graph_overrides if graphs else None,
            initargs=(graphs,) if graphs else (),
        )

    def rebuild_pool(pool):
        supervisor.pool_rebuilds += 1
        supervisor.metrics.counter("sweep.pool_rebuilds").inc()
        _terminate_workers(pool)
        try:
            pool.shutdown(wait=False, cancel_futures=True)
        except Exception:
            pass
        return make_pool()

    def submit(pool, task: _Task):
        attempt = task.executions + 1
        if task.mode == "batch":
            future = pool.submit(
                run_batch_timed,
                [cell for _, cell in task.entries],
                None,
                trace_cells,
                attempt=attempt,
            )
        else:
            future = pool.submit(
                run_cell_timed, task.entries[0][1], None, trace_cells, attempt=attempt
            )
        inflight[future] = task
        if policy.timeout_seconds is not None:
            deadlines[future] = time.monotonic() + policy.timeout_seconds

    def requeue(items: list[tuple[_Task, float]]) -> None:
        for task, delay in items:
            if delay > 0:
                heapq.heappush(waiting, (time.monotonic() + delay, next(order), task))
            else:
                ready.append(task)

    pool = make_pool()
    try:
        while ready or waiting or inflight:
            now = time.monotonic()
            while waiting and waiting[0][0] <= now:
                ready.append(heapq.heappop(waiting)[2])
            while ready and len(inflight) < jobs:
                task = ready.popleft()
                try:
                    submit(pool, task)
                except concurrent.futures.BrokenExecutor:
                    pool = rebuild_pool(pool)
                    submit(pool, task)
            if not inflight:
                if waiting:
                    time.sleep(max(0.0, waiting[0][0] - time.monotonic()))
                continue

            timeout = None
            bounds = []
            if deadlines:
                bounds.append(min(deadlines.values()) - time.monotonic())
            if waiting:
                bounds.append(waiting[0][0] - time.monotonic())
            if bounds:
                timeout = max(0.0, min(bounds))
            done, _ = concurrent.futures.wait(
                set(inflight), timeout=timeout,
                return_when=concurrent.futures.FIRST_COMPLETED,
            )

            broken = False
            for future in done:
                task = inflight.pop(future)
                deadlines.pop(future, None)
                try:
                    outcomes = future.result()
                except concurrent.futures.BrokenExecutor as error:
                    broken = True
                    requeue(supervisor.fail(task, error, charged=False))
                except Exception as error:
                    requeue(supervisor.fail(task, error, charged=True))
                else:
                    supervisor.succeed(task, as_outcomes(task, outcomes))
            if broken:
                # The crash poisoned every in-flight future; drain them all
                # (completed-before-the-crash results still land), requeue
                # the rest uncharged, and start a fresh pool.
                for future, task in list(inflight.items()):
                    try:
                        outcomes = future.result(timeout=5)
                    except concurrent.futures.TimeoutError:
                        requeue([(task, 0.0)])
                    except concurrent.futures.BrokenExecutor as error:
                        requeue(supervisor.fail(task, error, charged=False))
                    except Exception as error:
                        requeue(supervisor.fail(task, error, charged=True))
                    else:
                        supervisor.succeed(task, as_outcomes(task, outcomes))
                inflight.clear()
                deadlines.clear()
                pool = rebuild_pool(pool)
                continue

            if deadlines:
                now = time.monotonic()
                expired = [
                    future
                    for future, deadline in list(deadlines.items())
                    if deadline <= now and future in inflight
                ]
                if expired:
                    for future in expired:
                        task = inflight.pop(future)
                        deadlines.pop(future, None)
                        supervisor.timeouts += 1
                        supervisor.metrics.counter("sweep.timeouts").inc()
                        error = TimeoutError(
                            f"sweep group timed out after {policy.timeout_seconds}s"
                        )
                        requeue(supervisor.fail(task, error, charged=True))
                    # The hung worker holds a pool slot hostage — terminate
                    # the pool; innocent in-flight groups lose their run and
                    # requeue uncharged.
                    for future, task in list(inflight.items()):
                        requeue([(task, 0.0)])
                    inflight.clear()
                    deadlines.clear()
                    pool = rebuild_pool(pool)
    finally:
        if inflight:
            _terminate_workers(pool)
        pool.shutdown(wait=not inflight, cancel_futures=True)
