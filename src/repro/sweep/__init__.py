"""Parallel scenario sweeps with a resumable, fault-tolerant result store.

The paper evaluates GNNIE as a matrix — datasets × GNN families × platforms
(Figs. 12–15) — and picks its flexible-MAC allocation and buffer sizes by
sweeping configurations over that matrix (Section VIII-A).  This package
treats the simulator as a fleet workload:

* :mod:`repro.sweep.matrix` — :class:`ScenarioMatrix` expands the four axes
  into content-hashed, picklable :class:`SweepCell`\\ s,
* :mod:`repro.sweep.worker` — :func:`run_cell` executes one cell;
  :func:`run_batch_timed` executes a whole (dataset, family) group of
  config cells sharing one graph/plan/executor set (byte-identical rows,
  one precompute pass),
* :mod:`repro.sweep.store` — :class:`ResultStore`, an append-only JSONL
  store keyed by cell hash with per-row CRC32 armor; re-running skips
  completed cells, a killed sweep resumes where it stopped, and corrupt
  interior rows are quarantined instead of crashing the load,
* :mod:`repro.sweep.repair` — offline store surgery (``repro store
  verify|repair|compact``),
* :mod:`repro.sweep.runner` — :func:`run_sweep` fans pending cells across a
  supervised process pool (:class:`RetryPolicy`: bounded retries with
  backoff, per-group timeouts, pool rebuilds on worker crashes,
  batch→scalar degradation) and streams rows into the store; cells that
  fail permanently land as explicit ``failed`` rows.

Deterministic chaos testing for all of the above lives in
:mod:`repro.faults`.  Store-backed aggregation (Pareto fronts, speedup
tables) lives in :mod:`repro.analysis.sweep_aggregate`; the CLI front end
is ``python -m repro sweep``.
"""

from repro.sweep.matrix import (
    DatasetCase,
    ScenarioMatrix,
    SweepCell,
    config_from_dict,
    config_to_dict,
    derive_seed,
    full_matrix,
)
from repro.sweep.repair import StoreReport, compact_store, repair_store, verify_store
from repro.sweep.runner import RetryPolicy, SweepError, SweepSummary, run_sweep
from repro.sweep.store import (
    ResultStore,
    StoreCorruptionWarning,
    canonical_row,
    is_failed_row,
)
from repro.sweep.worker import (
    COMPATIBLE_ROW_FORMATS,
    FAILED_ROW_FORMAT,
    ROW_FORMAT,
    SCALEOUT_ROW_FORMAT,
    failed_row,
    prime_graph_memo,
    run_batch_timed,
    run_cell,
    run_cell_timed,
)


def __getattr__(name: str):
    # ALL_BACKENDS resolves against the live executor registry on access
    # (see repro.sweep.matrix), so plug-in backends registered after import
    # are included.
    if name == "ALL_BACKENDS":
        from repro.sweep import matrix

        return matrix.ALL_BACKENDS
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "ALL_BACKENDS",
    "COMPATIBLE_ROW_FORMATS",
    "DatasetCase",
    "FAILED_ROW_FORMAT",
    "ROW_FORMAT",
    "SCALEOUT_ROW_FORMAT",
    "ResultStore",
    "RetryPolicy",
    "ScenarioMatrix",
    "StoreCorruptionWarning",
    "StoreReport",
    "SweepCell",
    "SweepError",
    "SweepSummary",
    "canonical_row",
    "compact_store",
    "config_from_dict",
    "config_to_dict",
    "derive_seed",
    "failed_row",
    "full_matrix",
    "is_failed_row",
    "prime_graph_memo",
    "repair_store",
    "run_batch_timed",
    "run_cell",
    "run_cell_timed",
    "run_sweep",
    "verify_store",
]
