"""Resumable on-disk result store for scenario sweeps.

One sweep cell → one JSONL row, keyed by the cell's content hash
(:meth:`~repro.sweep.matrix.SweepCell.key`).  Rows are serialized
canonically — sorted keys, compact separators — so identical cells produce
byte-identical lines, and appended with an immediate flush so a killed
sweep loses at most the row being written.  Reopening the store scans the
file, indexes completed keys, and silently drops a truncated trailing line
(the partial write of an interrupted run); the next sweep then skips every
completed cell and re-executes only what is missing.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Iterator

__all__ = ["ResultStore", "canonical_row"]


def canonical_row(row: dict) -> str:
    """Canonical single-line JSON serialization of one result row."""
    return json.dumps(row, sort_keys=True, separators=(",", ":"))


class ResultStore:
    """Append-only JSONL store indexed by cell key.

    Args:
        path: Store file location; parent directories are created lazily on
            the first append.  ``None`` keeps the store purely in memory
            (used by the in-process design-space wrappers).
        resume: When ``False``, an existing file is truncated instead of
            indexed, so every cell re-executes.
    """

    def __init__(self, path: str | os.PathLike | None = None, *, resume: bool = True) -> None:
        self.path = Path(path) if path is not None else None
        self._rows: dict[str, dict] = {}
        self._dropped_partial = False
        if self.path is not None and self.path.exists():
            if resume:
                self._load()
            else:
                self.path.unlink()

    # ------------------------------------------------------------------ #
    # Loading / indexing
    # ------------------------------------------------------------------ #
    def _load(self) -> None:
        text = self.path.read_text()
        lines = text.split("\n")
        # A complete store ends with a newline, so the final split element is
        # empty; anything else is the partial row of an interrupted sweep.
        ends_complete = bool(lines) and lines[-1] == ""
        if ends_complete:
            lines.pop()
        for index, line in enumerate(lines):
            try:
                row = json.loads(line)
                key = row["key"]
            except (json.JSONDecodeError, TypeError, KeyError):
                # Only a non-newline-terminated tail can be the partial
                # write of a killed sweep (every append writes "row\n", so
                # any prefix ending in a newline is a complete row); a
                # newline-terminated unparseable line is genuine corruption
                # wherever it sits.
                if index == len(lines) - 1 and not ends_complete:
                    self._dropped_partial = True
                    # Truncate the partial write away so the next append
                    # starts on a fresh line instead of gluing onto it
                    # (which would corrupt the store for every later load).
                    os.truncate(self.path, len(text.encode()) - len(line.encode()))
                    continue
                raise ValueError(
                    f"corrupt result store {self.path}: unparseable row {index}"
                ) from None
            self._rows[key] = row
        if not ends_complete and not self._dropped_partial and lines:
            # The tail row parsed but lost only its newline in a partial
            # write; restore it so the next append starts on a fresh line.
            with self.path.open("a") as handle:
                handle.write("\n")

    @property
    def dropped_partial_row(self) -> bool:
        """Whether loading discarded a truncated trailing row."""
        return self._dropped_partial

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._rows)

    def __contains__(self, key: str) -> bool:
        return key in self._rows

    def get(self, key: str) -> dict | None:
        return self._rows.get(key)

    def keys(self) -> set[str]:
        return set(self._rows)

    def rows(self) -> Iterator[dict]:
        """All indexed rows, in insertion (file) order."""
        return iter(self._rows.values())

    # ------------------------------------------------------------------ #
    # Appending
    # ------------------------------------------------------------------ #
    def append(self, row: dict) -> None:
        """Index ``row`` and durably append it to the file (if any)."""
        key = row["key"]
        if key in self._rows:
            return
        self._rows[key] = row
        if self.path is None:
            return
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self.path.open("a") as handle:
            handle.write(canonical_row(row) + "\n")
            handle.flush()
            os.fsync(handle.fileno())
