"""Resumable, self-healing on-disk result store for scenario sweeps.

One sweep cell → one JSONL row, keyed by the cell's content hash
(:meth:`~repro.sweep.matrix.SweepCell.key`).  Rows are serialized
canonically — sorted keys, compact separators — so identical cells produce
byte-identical lines, armored with a per-row CRC32 checksum field on the
way to disk, and appended with an immediate flush so a killed sweep loses
at most the row being written.

Reopening the store streams the file line by line (a million-row store is
never held in memory twice), indexes completed keys, and degrades instead
of dying on damage:

* a truncated trailing line (the partial write of an interrupted run) is
  silently dropped and truncated away, exactly as before;
* a corrupt *interior* line — unparseable bytes, a checksum mismatch, a
  row without a key — is **quarantined**: recorded on
  :attr:`ResultStore.quarantined`, surfaced through one loud
  :class:`StoreCorruptionWarning`, and left in place as evidence.  The
  damaged cells simply re-execute on resume; ``repro store repair``
  (:mod:`repro.sweep.repair`) physically excises the bad lines.

Rows whose ``status`` is ``"failed"`` (permanently-failed cells recorded by
the supervised runner) are resumable-over: appending a healthy row for the
same key is allowed and later loads index the healthy row (last write
wins), which is how a fault-free re-run heals a chaos-damaged sweep.
"""

from __future__ import annotations

import json
import os
import warnings
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Iterator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.metrics import MetricsRegistry

__all__ = [
    "CHECKSUM_FIELD",
    "ResultStore",
    "ScannedLine",
    "StoreCorruptionWarning",
    "armored_line",
    "canonical_row",
    "is_failed_row",
    "row_checksum",
    "scan_store_lines",
]

#: Name of the per-row checksum field injected at write time and stripped
#: at load time — logical rows never carry it, so row bytes seen by every
#: consumer are identical to stores written before checksums existed.
CHECKSUM_FIELD = "crc"


class StoreCorruptionWarning(UserWarning):
    """Loud summary emitted when loading a store quarantined corrupt rows."""


def canonical_row(row: dict) -> str:
    """Canonical single-line JSON serialization of one result row."""
    return json.dumps(row, sort_keys=True, separators=(",", ":"))


def row_checksum(row: dict) -> str:
    """CRC32 of the canonical serialization, as 8 lowercase hex digits."""
    return format(zlib.crc32(canonical_row(row).encode()), "08x")


def armored_line(row: dict) -> str:
    """The on-disk form of a row: canonical JSON plus its checksum field."""
    return canonical_row({**row, CHECKSUM_FIELD: row_checksum(row)})


def is_failed_row(row: dict) -> bool:
    """Whether a row records a permanently-failed cell (see the runner)."""
    return row.get("status") == "failed"


@dataclass
class ScannedLine:
    """One physical store line, validated: the unit both load and repair read."""

    #: 1-based line number.
    number: int
    #: Byte offset of the line start in the file.
    start: int
    #: Raw line bytes, without the trailing newline.
    raw: bytes
    #: Whether the line ended with a newline (only the file tail may not).
    terminated: bool
    #: The validated logical row (checksum stripped), or ``None`` on damage.
    row: dict | None
    #: Human-readable damage description when ``row`` is ``None``.
    error: str | None = None
    #: Whether the line carried a checksum field (pre-checksum stores do not).
    had_checksum: bool = False


def _validate_line(raw: bytes) -> tuple[dict | None, str | None, bool]:
    """Parse and checksum-verify one line → (row, error, had_checksum)."""
    try:
        row = json.loads(raw.decode())
    except (UnicodeDecodeError, json.JSONDecodeError):
        return None, "unparseable JSON", False
    if not isinstance(row, dict):
        return None, "row is not a JSON object", False
    had_checksum = CHECKSUM_FIELD in row
    if had_checksum:
        recorded = row.pop(CHECKSUM_FIELD)
        actual = row_checksum(row)
        if recorded != actual:
            return (
                None,
                f"checksum mismatch (recorded {recorded!r}, computed {actual!r})",
                True,
            )
    if "key" not in row:
        return None, "row has no 'key' field", had_checksum
    return row, None, had_checksum


def scan_store_lines(path: str | os.PathLike) -> Iterator[ScannedLine]:
    """Stream every physical line of a store file, validated.

    The shared scanner under :meth:`ResultStore._load` and the
    :mod:`repro.sweep.repair` tools: reads line by line (never the whole
    file), flags the unterminated tail, strips and verifies checksums.
    """
    offset = 0
    number = 0
    with Path(path).open("rb") as handle:
        for raw in handle:
            number += 1
            start = offset
            offset += len(raw)
            terminated = raw.endswith(b"\n")
            body = raw[:-1] if terminated else raw
            row, error, had_checksum = _validate_line(body)
            yield ScannedLine(
                number=number,
                start=start,
                raw=body,
                terminated=terminated,
                row=row,
                error=error,
                had_checksum=had_checksum,
            )


class ResultStore:
    """Append-only JSONL store indexed by cell key.

    Args:
        path: Store file location; parent directories are created lazily on
            the first append.  ``None`` keeps the store purely in memory
            (used by the in-process design-space wrappers).
        resume: When ``False``, an existing file is truncated instead of
            indexed, so every cell re-executes.
        metrics: Optional :class:`repro.obs.MetricsRegistry` receiving the
            store counters (``store.rows.quarantined``, ``store.rows.healed``).
    """

    def __init__(
        self,
        path: str | os.PathLike | None = None,
        *,
        resume: bool = True,
        metrics: "MetricsRegistry | None" = None,
    ) -> None:
        from repro.obs.metrics import NULL_METRICS

        self.path = Path(path) if path is not None else None
        self.metrics = metrics or NULL_METRICS
        self._rows: dict[str, dict] = {}
        self._dropped_partial = False
        self._quarantined: list[ScannedLine] = []
        self._append_counts: dict[str, int] = {}
        if self.path is not None and self.path.exists():
            if resume:
                self._load()
            else:
                self.path.unlink()

    # ------------------------------------------------------------------ #
    # Loading / indexing
    # ------------------------------------------------------------------ #
    def _load(self) -> None:
        tail: ScannedLine | None = None
        for line in scan_store_lines(self.path):
            tail = line
            if line.row is not None:
                # Later rows win: a healthy re-execution of a failed cell
                # appends after the failed row and overrides it here.
                self._rows[line.row["key"]] = line.row
            elif line.terminated:
                # A newline-terminated damaged line is genuine interior
                # corruption wherever it sits (every append writes "row\n",
                # so any newline-terminated prefix is complete rows) —
                # quarantine it, keep the evidence in place, carry on.
                self._quarantined.append(line)
            # An unterminated damaged tail is handled after the scan: it is
            # the partial write of a killed sweep, not corruption.
        if tail is not None and not tail.terminated:
            if tail.row is None:
                self._dropped_partial = True
                # Truncate the partial write away so the next append starts
                # on a fresh line instead of gluing onto it (which would
                # corrupt the store for every later load).
                os.truncate(self.path, tail.start)
            else:
                # The tail row parsed but lost only its newline in a
                # partial write; restore it so the next append starts on a
                # fresh line.
                with self.path.open("a") as handle:
                    handle.write("\n")
        if self._quarantined:
            self.metrics.counter("store.rows.quarantined").inc(len(self._quarantined))
            lines = ", ".join(str(line.number) for line in self._quarantined[:8])
            more = len(self._quarantined) - 8
            warnings.warn(
                f"result store {self.path}: quarantined {len(self._quarantined)} "
                f"corrupt row(s) at line(s) {lines}"
                + (f" (+{more} more)" if more > 0 else "")
                + "; the damaged cells will re-execute on resume. Run "
                f"`repro store repair --store {self.path}` to excise them.",
                StoreCorruptionWarning,
                stacklevel=3,
            )

    @property
    def dropped_partial_row(self) -> bool:
        """Whether loading discarded a truncated trailing row."""
        return self._dropped_partial

    @property
    def quarantined(self) -> list[ScannedLine]:
        """Corrupt interior lines found at load time (kept in the file)."""
        return list(self._quarantined)

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._rows)

    def __contains__(self, key: str) -> bool:
        return key in self._rows

    def get(self, key: str) -> dict | None:
        return self._rows.get(key)

    def keys(self) -> set[str]:
        return set(self._rows)

    def rows(self) -> Iterator[dict]:
        """All indexed rows, in insertion (file) order."""
        return iter(self._rows.values())

    # ------------------------------------------------------------------ #
    # Appending
    # ------------------------------------------------------------------ #
    def append(self, row: dict) -> None:
        """Index ``row`` and durably append it to the file (if any).

        A key already present is not rewritten — except when the stored row
        is a ``failed`` row and the new one is healthy: the healed row is
        appended after it and wins on every later load (exactly-once resume
        re-executes failed cells, nothing else).
        """
        key = row["key"]
        existing = self._rows.get(key)
        if existing is not None:
            if not (is_failed_row(existing) and not is_failed_row(row)):
                return
            self.metrics.counter("store.rows.healed").inc()
        self._rows[key] = row
        if self.path is None:
            return
        self.path.parent.mkdir(parents=True, exist_ok=True)
        data = (armored_line(row) + "\n").encode()
        # Deterministic chaos hook: an armed torn_write fault makes this
        # append die mid-row, leaving the torn prefix on disk un-indexed —
        # the adversity the self-healing load and repair tools exist for.
        from repro.faults import torn_write_bytes

        attempt = self._append_counts[key] = self._append_counts.get(key, 0) + 1
        torn = torn_write_bytes(key, data, attempt=attempt)
        if torn is not None:
            del self._rows[key]
            if existing is not None:
                self._rows[key] = existing
        with self.path.open("ab") as handle:
            handle.write(torn if torn is not None else data)
            handle.flush()
            os.fsync(handle.fileno())
