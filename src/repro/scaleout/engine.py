"""Multi-chip scale-out execution: partition, halo-exchange, combine.

One GNNIE instance tops out at a single CPE array; this module times a graph
inference partitioned across ``N`` simulated chips.  The accounting follows
the hybrid-execution model of the DynaNDE/MoNDE prefiller simulator
(SNIPPETS.md §3): chips compute their local partitions in parallel, then
synchronize on the slowest inter-chip halo exchange, so each layer costs

    ``MAX(per-chip local cycles) + MAX(per-chip communication cycles)``

and the whole inference additionally pays ``MAX(per-chip preprocessing)``.

Partitioning is *edge-cut* (every vertex owned by exactly one chip, via
:func:`repro.graph.partition.partition_graph`); each chip's compute graph is
the subgraph induced by its owned vertices, and the features of its *halo* —
the distinct remote neighbors of owned vertices — arrive over the chip-to-chip
link as a :class:`~repro.plan.ir.HaloExchangeOp` priced by the executor
against the link model on :class:`~repro.hw.config.AcceleratorConfig`.

Modeling notes
--------------
* The induced-subgraph compute model drops cut edges from the local
  aggregation workload (their operands arrive via the halo but the reduction
  over them is not re-priced), so per-chip compute is a lower bound that
  shrinks monotonically with ``N`` while halo traffic grows — the
  scaling-curve shape the benchmark pins.
* The halo size is derived from the *full* adjacency; families aggregating
  over a sampled adjacency (GraphSAGE) exchange the full halo, a conservative
  approximation.
* ``chips == 1`` short-circuits to the backend's plain ``execute`` — rows are
  byte-identical to the unpartitioned path.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.check.verifier import verify_plan
from repro.graph.graph import Graph
from repro.graph.partition import GraphPartition, partition_graph
from repro.hw.config import AcceleratorConfig
from repro.plan.ir import AggregationOp, HaloExchangeOp, InferencePlan, PlanLayer
from repro.sim.batch import pricing_context
from repro.sim.results import InferenceResult, ScaleOutResult

__all__ = [
    "PartitionedWorkload",
    "chip_subgraphs",
    "execute_scaleout",
    "partition_workload",
]


@dataclass(frozen=True)
class PartitionedWorkload:
    """A graph inference split across ``partition.num_parts`` chips.

    ``chip_graphs[i]`` is the subgraph induced by chip *i*'s owned vertices
    (parent dataset name and label count preserved, so per-dataset buffer
    sizing and lowering shapes match the unpartitioned run) and
    ``chip_plans[i]`` is the parent plan with chip *i*'s
    :class:`~repro.plan.ir.HaloExchangeOp` spliced in before each layer's
    aggregation.
    """

    partition: GraphPartition
    chip_graphs: tuple[Graph, ...]
    chip_plans: tuple[InferencePlan, ...]

    @property
    def num_chips(self) -> int:
        return self.partition.num_parts

    def halo_bytes(self, bytes_per_value: int = 1) -> int:
        """Total inter-chip traffic across all chips and layers, in bytes."""
        return sum(
            op.halo_vertices * op.features * bytes_per_value
            for plan in self.chip_plans
            for layer in plan.layers
            for op in layer.ops
            if isinstance(op, HaloExchangeOp)
        )


def chip_subgraphs(
    graph: Graph, chips: int, *, method: str = "chunk"
) -> tuple[GraphPartition, tuple[Graph, ...]]:
    """Partition a graph and materialize the per-chip induced subgraphs.

    Memoized on the graph's :class:`~repro.sim.batch.GraphPricingContext`
    (keyed by ``(chips, method)``), so a config batch sweeping many designs
    at one chip count partitions the graph exactly once — and the chip
    subgraphs keep their identity, which keeps *their* pricing contexts
    (cache simulations, priced phases) shared too.
    """
    context = pricing_context(graph)
    key = (chips, method)
    cached = context.partitions.get(key)
    if cached is not None:
        return cached
    partition = partition_graph(graph.adjacency, chips, method=method)
    chip_graphs = []
    for part in partition.parts:
        chip_graphs.append(
            Graph(
                adjacency=graph.adjacency.subgraph(part),
                features=graph.features[part],
                labels=None,
                name=graph.name,
                num_label_classes=graph.num_label_classes,
            )
        )
    entry = (partition, tuple(chip_graphs))
    context.partitions[key] = entry
    return entry


def _chip_plan(plan: InferencePlan, halo_vertices: int, chips: int) -> InferencePlan:
    """Splice one chip's halo exchange into every aggregating layer.

    The exchange precedes the first :class:`AggregationOp` of each layer and
    runs at that op's reduction width; layers without an aggregation (e.g.
    DiffPool's dense coarsening) exchange nothing.
    """
    layers = []
    for layer in plan.layers:
        ops = list(layer.ops)
        for position, op in enumerate(ops):
            if isinstance(op, AggregationOp):
                ops.insert(
                    position,
                    HaloExchangeOp(
                        halo_vertices=halo_vertices,
                        features=op.width,
                        chips=chips,
                    ),
                )
                break
        layers.append(
            PlanLayer(
                index=layer.index,
                in_features=layer.in_features,
                out_features=layer.out_features,
                ops=tuple(ops),
            )
        )
    return InferencePlan(
        family=plan.family,
        in_features=plan.in_features,
        out_features=plan.out_features,
        layers=tuple(layers),
        global_ops=plan.global_ops,
    )


def partition_workload(
    graph: Graph, plan: InferencePlan, chips: int, *, method: str = "chunk"
) -> PartitionedWorkload:
    """Lower a (graph, plan) pair onto ``chips`` simulated GNNIE chips."""
    if chips < 1:
        raise ValueError("chips must be at least 1")
    partition, chip_graphs = chip_subgraphs(graph, chips, method=method)
    chip_plans = tuple(
        _chip_plan(plan, partition.halo_counts[chip], chips)
        for chip in range(chips)
    )
    return PartitionedWorkload(
        partition=partition, chip_graphs=chip_graphs, chip_plans=chip_plans
    )


def execute_scaleout(
    backend,
    plan: InferencePlan,
    graph: Graph,
    config: AcceleratorConfig | None = None,
    *,
    chips: int,
    method: str = "chunk",
) -> InferenceResult:
    """Execute a plan across ``chips`` simulated chips and combine the results.

    ``chips == 1`` returns the backend's plain ``execute`` result unchanged
    (byte-identity with the unpartitioned path); otherwise every chip runs
    its local plan on its induced subgraph and the fleet is combined with
    per-layer ``MAX(local) + MAX(communication)`` timing, summed work
    counters, and summed energy.  The backend must advertise
    ``supports_scaleout`` (the GNNIE executor does).
    """
    if chips == 1:
        return backend.execute(plan, graph, config)
    # Verify the parent plan before splicing halo ops; each chip plan is
    # then verified (memoized) by the backend's own execute.
    verify_plan(plan)
    if not getattr(backend, "supports_scaleout", False):
        raise ValueError(
            f"backend {getattr(backend, 'name', backend)!r} does not support "
            "multi-chip scale-out"
        )
    workload = partition_workload(graph, plan, chips, method=method)
    cfg = (config or backend.config).resolve_input_buffer(graph.name)
    tracer = getattr(backend, "tracer", None)
    chip_results: list[InferenceResult | None] = []
    for chip in range(chips):
        chip_graph = workload.chip_graphs[chip]
        if chip_graph.num_vertices == 0:
            # An empty partition contributes no cycles, work or energy.
            chip_results.append(None)
            continue
        if tracer is not None and tracer.enabled:
            with tracer.span(
                "chip",
                category="chip",
                chip=chip,
                chips=chips,
                vertices=chip_graph.num_vertices,
                halo_vertices=workload.partition.halo_counts[chip],
            ):
                result = backend.execute(workload.chip_plans[chip], chip_graph, cfg)
        else:
            result = backend.execute(workload.chip_plans[chip], chip_graph, cfg)
        chip_results.append(result)
    return _combine(workload, chip_results, cfg, graph, method)


def _combine(
    workload: PartitionedWorkload,
    chip_results: list[InferenceResult | None],
    cfg: AcceleratorConfig,
    graph: Graph,
    method: str,
) -> ScaleOutResult:
    """Fold per-chip results into one fleet-level :class:`ScaleOutResult`.

    Per layer, the critical-path chip (largest local cycles, lowest index on
    ties) contributes the layer's weighting/aggregation attribution, so the
    reported phase breakdown sums exactly to the combined cycle count.
    """
    live = [result for result in chip_results if result is not None]
    if not live:
        raise ValueError("cannot combine an all-empty partition")
    num_layers = len(live[0].layers)
    combined_cycles = 0
    communication_cycles = 0
    weighting_cycles = 0
    aggregation_cycles = 0
    for index in range(num_layers):
        layers = [result.layers[index] for result in live]
        critical = max(layers, key=lambda layer: layer.local_cycles)
        combined_cycles += critical.local_cycles
        weighting_cycles += critical.weighting.total_cycles
        aggregation_cycles += critical.local_cycles - critical.weighting.total_cycles
        layer_comm = max(layer.communication_cycles for layer in layers)
        combined_cycles += layer_comm
        communication_cycles += layer_comm
    preprocessing = max(result.global_preprocessing_cycles for result in live)
    combined_cycles += preprocessing
    energy = live[0].energy
    for result in live[1:]:
        energy = energy + result.energy
    reference = live[0]
    return ScaleOutResult(
        dataset=reference.dataset,
        model=reference.model,
        config_name=reference.config_name,
        layers=[],
        energy=energy,
        frequency_hz=cfg.frequency_hz,
        global_preprocessing_cycles=preprocessing,
        num_chips=workload.num_chips,
        partition_method=method,
        chip_cycles=tuple(
            result.total_cycles if result is not None else 0
            for result in chip_results
        ),
        chip_local_cycles=tuple(
            result.total_cycles - sum(layer.communication_cycles for layer in result.layers)
            if result is not None
            else 0
            for result in chip_results
        ),
        halo_vertices=workload.partition.total_halo_vertices(),
        halo_bytes=workload.halo_bytes(cfg.bytes_per_value),
        combined_cycles=combined_cycles,
        combined_communication_cycles=communication_cycles,
        combined_macs=sum(result.total_mac_operations for result in live),
        combined_dram_bytes=sum(result.total_dram_bytes for result in live),
        combined_weighting_cycles=weighting_cycles,
        combined_aggregation_cycles=aggregation_cycles,
    )
