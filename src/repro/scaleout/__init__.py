"""Multi-chip scale-out: partition one inference across N simulated chips."""

from repro.scaleout.engine import (
    PartitionedWorkload,
    chip_subgraphs,
    execute_scaleout,
    partition_workload,
)

__all__ = [
    "PartitionedWorkload",
    "chip_subgraphs",
    "execute_scaleout",
    "partition_workload",
]
