"""Fixed-point quantization utilities.

GNNIE's buffer sizing assumes 1-byte weights and features ("For a 1-byte
weight ... the buffer size is 4K×16×2 = 128KB", Section VIII-A), i.e. the
datapath operates on 8-bit fixed-point values.  This module provides the
symmetric linear quantizer used to study that choice:

* :func:`quantize_tensor` / :func:`dequantize_tensor` — symmetric per-tensor
  quantization to a configurable bit width,
* :class:`QuantizedTensor` — the packed representation with its scale,
* :func:`quantization_error` — relative error metrics,
* :func:`quantized_model_agreement` — end-to-end check of how often a GNN's
  argmax prediction survives quantizing its weights and inputs, which is the
  accuracy-relevant question for the accelerator.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.graph import Graph
from repro.models.base import GNNModel

__all__ = [
    "QuantizedTensor",
    "quantize_tensor",
    "dequantize_tensor",
    "quantization_error",
    "quantized_model_agreement",
]


@dataclass(frozen=True)
class QuantizedTensor:
    """A symmetric, per-tensor quantized array."""

    values: np.ndarray
    scale: float
    bits: int

    @property
    def num_levels(self) -> int:
        return (1 << (self.bits - 1)) - 1

    def dequantize(self) -> np.ndarray:
        return self.values.astype(np.float64) * self.scale

    def memory_bytes(self) -> int:
        bytes_per_value = max(1, (self.bits + 7) // 8)
        return int(self.values.size * bytes_per_value)


def quantize_tensor(values: np.ndarray, *, bits: int = 8) -> QuantizedTensor:
    """Symmetric linear quantization to ``bits`` (signed) bits."""
    if not 2 <= bits <= 16:
        raise ValueError("bits must be between 2 and 16")
    values = np.asarray(values, dtype=np.float64)
    max_abs = float(np.max(np.abs(values))) if values.size else 0.0
    levels = (1 << (bits - 1)) - 1
    scale = max_abs / levels if max_abs > 0 else 1.0
    quantized = np.clip(np.round(values / scale), -levels, levels)
    dtype = np.int8 if bits <= 8 else np.int16
    return QuantizedTensor(values=quantized.astype(dtype), scale=scale, bits=bits)


def dequantize_tensor(tensor: QuantizedTensor) -> np.ndarray:
    """Recover the floating-point approximation of a quantized tensor."""
    return tensor.dequantize()


def quantization_error(values: np.ndarray, *, bits: int = 8) -> dict[str, float]:
    """Round-trip error metrics of quantizing ``values`` to ``bits`` bits."""
    values = np.asarray(values, dtype=np.float64)
    reconstructed = quantize_tensor(values, bits=bits).dequantize()
    difference = values - reconstructed
    denominator = float(np.linalg.norm(values)) or 1.0
    return {
        "max_abs_error": float(np.max(np.abs(difference))) if values.size else 0.0,
        "relative_l2_error": float(np.linalg.norm(difference)) / denominator,
        "mean_abs_error": float(np.mean(np.abs(difference))) if values.size else 0.0,
    }


def quantized_model_agreement(
    model: GNNModel, graph: Graph, *, bits: int = 8
) -> dict[str, float]:
    """Fraction of vertices whose argmax prediction survives quantization.

    Weights and input features are quantized to ``bits`` bits (the layer
    arithmetic itself stays in floating point, mirroring an accelerator with
    wide accumulators), and the argmax class of every vertex is compared
    against the full-precision model.
    """
    baseline = model.forward(graph.adjacency, graph.features)

    original_weights: list[np.ndarray] = []
    for layer in model.layers:
        for matrix in layer.weight_matrices():
            original_weights.append(matrix.copy())

    try:
        for layer in model.layers:
            for matrix in layer.weight_matrices():
                matrix[...] = quantize_tensor(matrix, bits=bits).dequantize()
        quantized_features = quantize_tensor(graph.features, bits=bits).dequantize()
        quantized_output = model.forward(graph.adjacency, quantized_features)
    finally:
        cursor = 0
        for layer in model.layers:
            for matrix in layer.weight_matrices():
                matrix[...] = original_weights[cursor]
                cursor += 1

    agreement = float(np.mean(baseline.argmax(axis=1) == quantized_output.argmax(axis=1)))
    output_error = quantization_error(baseline, bits=16)  # scale-free baseline reference
    relative_output_error = float(
        np.linalg.norm(baseline - quantized_output) / (np.linalg.norm(baseline) or 1.0)
    )
    return {
        "argmax_agreement": agreement,
        "relative_output_error": relative_output_error,
        "baseline_dynamic_range": output_error["max_abs_error"],
    }
