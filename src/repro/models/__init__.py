"""Functional (NumPy) reference implementations of the GNNs in Table I."""

from repro.models.base import (
    GNNLayer,
    GNNModel,
    LayerWorkload,
    apply_activation,
    symmetric_normalization_coefficients,
)
from repro.models.diffpool import DiffPoolLevel, DiffPoolModel, DiffPoolOutput
from repro.models.gat import (
    GATLayer,
    gat_attention_scores_naive,
    gat_attention_scores_reordered,
)
from repro.models.gcn import GCNLayer
from repro.models.ginconv import GINConvLayer, gin_graph_readout
from repro.models.graphsage import GraphSAGELayer, NeighborSampler
from repro.models.lowering import (
    lower_diffpool,
    lower_gat,
    lower_gcn,
    lower_ginconv,
    lower_graphsage,
)
from repro.models.layers import (
    MLP,
    glorot_init,
    leaky_relu,
    relu,
    segment_max,
    segment_mean,
    segment_softmax,
    segment_sum,
    sigmoid,
    softmax,
)
from repro.models.quantization import (
    QuantizedTensor,
    dequantize_tensor,
    quantization_error,
    quantize_tensor,
    quantized_model_agreement,
)
from repro.models.training import AccuracyResult, accuracy_study, micro_f1
from repro.models.zoo import (
    MODEL_FAMILIES,
    TABLE3_CONFIGS,
    ModelConfig,
    build_model,
    model_config,
)

__all__ = [
    "GNNLayer",
    "GNNModel",
    "LayerWorkload",
    "apply_activation",
    "symmetric_normalization_coefficients",
    "GCNLayer",
    "GATLayer",
    "gat_attention_scores_naive",
    "gat_attention_scores_reordered",
    "GraphSAGELayer",
    "NeighborSampler",
    "GINConvLayer",
    "gin_graph_readout",
    "DiffPoolLevel",
    "DiffPoolModel",
    "DiffPoolOutput",
    "MLP",
    "relu",
    "leaky_relu",
    "sigmoid",
    "softmax",
    "segment_sum",
    "segment_max",
    "segment_mean",
    "segment_softmax",
    "glorot_init",
    "AccuracyResult",
    "QuantizedTensor",
    "quantize_tensor",
    "dequantize_tensor",
    "quantization_error",
    "quantized_model_agreement",
    "accuracy_study",
    "micro_f1",
    "ModelConfig",
    "MODEL_FAMILIES",
    "TABLE3_CONFIGS",
    "build_model",
    "model_config",
    "lower_gcn",
    "lower_gat",
    "lower_graphsage",
    "lower_ginconv",
    "lower_diffpool",
]
