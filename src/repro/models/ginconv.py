"""Graph Isomorphism Network convolution (GINConv) layer [Xu et al. 2019].

Layer rule (Table I / Eq. (1) of the paper):

    h^l_i = MLP^l( (1 + ε^l) · h^{l-1}_i + Σ_{j ∈ N(i)} h^{l-1}_j )

Unlike the other GNNs, GINConv aggregates *raw* (un-weighted) neighbor
features first and then applies a two-layer MLP; the paper's Table III
configuration uses a 128/128 MLP.  Equation (2) concatenates the per-layer
graph-level sums into a whole-graph representation; that readout is exposed
as :func:`gin_graph_readout`.
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph
from repro.models.base import GNNLayer, LayerWorkload
from repro.models.layers import MLP, segment_sum

__all__ = ["GINConvLayer", "gin_graph_readout"]


class GINConvLayer(GNNLayer):
    """GINConv layer: sum aggregation followed by a two-layer MLP."""

    model_name = "GINConv"

    def __init__(
        self,
        in_features: int,
        out_features: int,
        *,
        hidden_features: int | None = None,
        epsilon: float = 0.0,
        activation: str = "relu",
        seed: int = 0,
    ) -> None:
        super().__init__(in_features, out_features, activation=activation)
        hidden = hidden_features if hidden_features is not None else out_features
        self.epsilon = float(epsilon)
        self.mlp = MLP.create(
            [in_features, hidden, out_features],
            seed=seed,
            output_activation="relu" if activation == "relu" else "none",
        )

    def weight_matrices(self) -> list[np.ndarray]:
        return list(self.mlp.weights)

    def forward(self, adjacency: CSRGraph, features: np.ndarray) -> np.ndarray:
        features = np.asarray(features, dtype=np.float64)
        if features.shape[1] != self.in_features:
            raise ValueError(
                f"expected {self.in_features} input features, got {features.shape[1]}"
            )
        edges = adjacency.edge_array()
        neighbor_sum = segment_sum(features[edges[:, 0]], edges[:, 1], adjacency.num_vertices)
        combined = (1.0 + self.epsilon) * features + neighbor_sum
        return self.mlp.forward(combined)

    def workload(
        self, adjacency: CSRGraph, features: np.ndarray, *, sparse_aware: bool = True
    ) -> LayerWorkload:
        num_vertices = adjacency.num_vertices
        num_edges = adjacency.num_edges
        # Aggregation first (on raw features), then the MLP's two GEMMs.
        aggregation_ops = (num_edges + num_vertices) * self.in_features
        hidden = self.mlp.weights[0].shape[1]
        if sparse_aware:
            first_layer_rows = int(np.count_nonzero(features))
        else:
            first_layer_rows = int(features.size)
        weighting_macs = first_layer_rows * hidden + num_vertices * hidden * self.out_features
        dram_bytes = (
            int(np.count_nonzero(features)) * 2
            + num_vertices * self.out_features
            + sum(weight.size for weight in self.mlp.weights)
        )
        return LayerWorkload(
            weighting_macs=int(weighting_macs),
            aggregation_ops=int(aggregation_ops),
            attention_ops=0,
            dram_bytes=int(dram_bytes),
        )


def gin_graph_readout(layer_outputs: list[np.ndarray]) -> np.ndarray:
    """Whole-graph representation per Eq. (2): concatenate per-layer sums.

    Args:
        layer_outputs: The per-layer vertex feature matrices h^1 ... h^L.

    Returns:
        A 1-D vector of length Σ_l F^l.
    """
    if not layer_outputs:
        raise ValueError("need at least one layer output")
    return np.concatenate([output.sum(axis=0) for output in layer_outputs])
