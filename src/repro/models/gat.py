"""Graph Attention Network (GAT) layer [Veličković et al. 2018].

Layer rule (Table I of the paper):

    e_ij  = LeakyReLU( aᵀ · [h_i W || h_j W] )
    α_ij  = softmax_j( e_ij )        (normalized over {i} ∪ N(i))
    h^l_i = σ( Σ_j α_ij · h_j W )

GNNIE's key GAT optimization (Section V-A) rewrites the attention score as
``e_ij = e_{i,1} + e_{j,2}`` with ``e_{i,1} = a₁ᵀ ηw_i`` and
``e_{j,2} = a₂ᵀ ηw_j``; each per-vertex term is computed exactly once,
turning the naive O(|V||E|) score computation into O(|V| + |E|).  This module
implements both the straightforward formulation and the reordered one so the
tests can verify they agree — that equivalence is the correctness basis of
the accelerator's attention mapping in :mod:`repro.mapping.attention`.
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph
from repro.models.base import GNNLayer, apply_activation
from repro.models.layers import glorot_init, leaky_relu, segment_softmax, segment_sum

__all__ = ["GATLayer", "gat_attention_scores_naive", "gat_attention_scores_reordered"]


def gat_attention_scores_reordered(
    weighted: np.ndarray,
    attention_left: np.ndarray,
    attention_right: np.ndarray,
    edges: np.ndarray,
) -> np.ndarray:
    """Per-edge unnormalized attention scores via GNNIE's reordering.

    ``e_ij = LeakyReLU(e_{i,1} + e_{j,2})`` where the per-vertex terms
    ``e_{i,1} = a₁ᵀ ηw_i`` and ``e_{j,2} = a₂ᵀ ηw_j`` are each computed once
    (O(|V|) dot products) and then combined per edge (O(|E|) additions).

    Args:
        weighted: ``(V, F)`` weighted features ηw.
        attention_left: ``a₁`` of length F (multiplies the destination/center
            vertex term).
        attention_right: ``a₂`` of length F (multiplies the neighbor term).
        edges: ``(E, 2)`` array of ``(source j, destination i)`` pairs; the
            score of an edge attends destination ``i`` to source ``j``.
    """
    center_term = weighted @ attention_left  # e_{i,1} for every vertex
    neighbor_term = weighted @ attention_right  # e_{i,2} for every vertex
    scores = center_term[edges[:, 1]] + neighbor_term[edges[:, 0]]
    return leaky_relu(scores)


def gat_attention_scores_naive(
    weighted: np.ndarray,
    attention_left: np.ndarray,
    attention_right: np.ndarray,
    edges: np.ndarray,
) -> np.ndarray:
    """Per-edge scores computed the straightforward way (per-edge dot products).

    Used only as a reference in tests; cost is O(|E| · F).
    """
    scores = np.empty(edges.shape[0], dtype=np.float64)
    for index, (source, destination) in enumerate(edges):
        concatenated_score = (
            attention_left @ weighted[destination] + attention_right @ weighted[source]
        )
        scores[index] = concatenated_score
    return leaky_relu(scores)


class GATLayer(GNNLayer):
    """Single-head GAT layer with softmax attention normalization.

    The paper's evaluation uses single-head layers of width 128 (Table III);
    multi-head attention would simply replicate the same Weighting /
    Aggregation structure per head.
    """

    model_name = "GAT"

    def __init__(
        self,
        in_features: int,
        out_features: int,
        *,
        activation: str = "relu",
        negative_slope: float = 0.2,
        seed: int = 0,
    ) -> None:
        super().__init__(in_features, out_features, activation=activation)
        self.negative_slope = negative_slope
        self.weight = glorot_init(in_features, out_features, seed=seed)
        attention = glorot_init(2 * out_features, 1, seed=seed + 1).ravel()
        #: a₁ — multiplies the center (destination) vertex's weighted features.
        self.attention_left = attention[:out_features]
        #: a₂ — multiplies the neighbor (source) vertex's weighted features.
        self.attention_right = attention[out_features:]

    def weight_matrices(self) -> list[np.ndarray]:
        return [self.weight]

    def forward(self, adjacency: CSRGraph, features: np.ndarray) -> np.ndarray:
        features = np.asarray(features, dtype=np.float64)
        if features.shape[1] != self.in_features:
            raise ValueError(
                f"expected {self.in_features} input features, got {features.shape[1]}"
            )
        # Weighting.
        weighted = features @ self.weight

        # Attention over {i} ∪ N(i): include explicit self-loop edges.
        num_vertices = adjacency.num_vertices
        neighbor_edges = adjacency.edge_array()
        self_loops = np.stack([np.arange(num_vertices)] * 2, axis=1)
        edges = np.concatenate([neighbor_edges, self_loops], axis=0)

        scores = gat_attention_scores_reordered(
            weighted, self.attention_left, self.attention_right, edges
        )
        alphas = segment_softmax(scores, edges[:, 1], num_vertices)

        # Weighted aggregation Σ_j α_ij ηw_j.
        messages = weighted[edges[:, 0]] * alphas[:, None]
        aggregated = segment_sum(messages, edges[:, 1], num_vertices)
        return apply_activation(aggregated, self.activation)

    def _attention_ops(self, num_vertices: int, num_edges: int) -> int:
        # Two per-vertex dot products of length F plus per-edge add,
        # LeakyReLU, exp, multiply and the softmax division — the linear
        # O(|V| + |E|) cost of the reordered computation.
        per_vertex = 2 * self.out_features
        per_edge = 5
        return int(num_vertices * per_vertex + num_edges * per_edge)
