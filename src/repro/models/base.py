"""Common layer interface and shared helpers for the functional GNN models.

Every GNN in Table I of the paper performs the same two-phase computation per
layer:

* **Weighting** — multiply each vertex feature vector ``h^{l-1}_i`` by a dense
  weight matrix ``W^l``.
* **Aggregation** — combine the weighted vectors over each vertex's
  neighborhood (sum / mean / max / attention-weighted sum).

The classes here express that structure explicitly so that (a) the simulator
can ask any model for its per-layer workload without knowing which GNN it is,
and (b) the accelerator mapping can be cross-checked against a functional
reference that computes Weighting and Aggregation separately.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from repro.graph.csr import CSRGraph
from repro.models.layers import relu, softmax

__all__ = [
    "LayerWorkload",
    "GNNLayer",
    "GNNModel",
    "symmetric_normalization_coefficients",
    "apply_activation",
]


@dataclass(frozen=True)
class LayerWorkload:
    """Abstract operation counts of one GNN layer on one graph.

    The baseline platform models (CPU / GPU / HyGCN / AWB-GCN) and the
    throughput accounting (Table IV) all consume this structure.

    Attributes:
        weighting_macs: Multiply-accumulate operations in the Weighting phase
            (after zero skipping when ``sparse_aware`` is set by the caller).
        aggregation_ops: Scalar add/compare operations in Aggregation.
        attention_ops: Extra operations for attention (GAT) or other
            edge-score computations; zero for the simpler GNNs.
        dram_bytes: Minimum off-chip traffic (features in + results out +
            weights), excluding re-fetches caused by limited buffering.
    """

    weighting_macs: int
    aggregation_ops: int
    attention_ops: int
    dram_bytes: int

    @property
    def total_ops(self) -> int:
        return int(self.weighting_macs + self.aggregation_ops + self.attention_ops)

    def __add__(self, other: "LayerWorkload") -> "LayerWorkload":
        return LayerWorkload(
            weighting_macs=self.weighting_macs + other.weighting_macs,
            aggregation_ops=self.aggregation_ops + other.aggregation_ops,
            attention_ops=self.attention_ops + other.attention_ops,
            dram_bytes=self.dram_bytes + other.dram_bytes,
        )


def symmetric_normalization_coefficients(adjacency: CSRGraph) -> np.ndarray:
    """Edge coefficients ``1 / sqrt(d_i d_j)`` for GCN aggregation.

    Degrees are taken over the self-loop-augmented graph, matching the
    normalized adjacency ``D^-1/2 (A + I) D^-1/2`` of Eq. (5).
    """
    degrees = adjacency.degrees().astype(np.float64) + 1.0  # + self loop
    inv_sqrt = 1.0 / np.sqrt(degrees)
    edges = adjacency.edge_array()
    return inv_sqrt[edges[:, 0]] * inv_sqrt[edges[:, 1]]


def apply_activation(values: np.ndarray, activation: str) -> np.ndarray:
    """Apply the layer activation σ (ReLU, softmax, or identity)."""
    if activation == "relu":
        return relu(values)
    if activation == "softmax":
        return softmax(values, axis=-1)
    if activation in ("none", "identity"):
        return values
    raise ValueError(f"unknown activation {activation!r}")


class GNNLayer(ABC):
    """One Weighting + Aggregation layer of a GNN."""

    #: Human-readable model family name ("GCN", "GAT", ...).
    model_name: str = "GNN"

    def __init__(self, in_features: int, out_features: int, *, activation: str = "relu") -> None:
        if in_features <= 0 or out_features <= 0:
            raise ValueError("feature dimensions must be positive")
        self.in_features = int(in_features)
        self.out_features = int(out_features)
        self.activation = activation

    @abstractmethod
    def forward(self, adjacency: CSRGraph, features: np.ndarray) -> np.ndarray:
        """Compute the layer output ``h^l`` from ``h^{l-1}``."""

    @abstractmethod
    def weight_matrices(self) -> list[np.ndarray]:
        """All dense weight matrices the layer multiplies features by."""

    def workload(
        self, adjacency: CSRGraph, features: np.ndarray, *, sparse_aware: bool = True
    ) -> LayerWorkload:
        """Abstract operation counts for this layer on the given graph.

        The default implementation covers the common Weighting + sum
        Aggregation structure; attention-style layers override
        :meth:`_attention_ops`.
        """
        num_vertices = adjacency.num_vertices
        num_edges = adjacency.num_edges
        if sparse_aware:
            nonzeros = int(np.count_nonzero(features))
        else:
            nonzeros = int(features.size)
        weighting_macs = nonzeros * self.out_features
        aggregation_ops = (num_edges + num_vertices) * self.out_features
        attention_ops = self._attention_ops(num_vertices, num_edges)
        dram_bytes = (
            int(np.count_nonzero(features)) * 2  # RLC-ish input traffic
            + num_vertices * self.out_features  # results written back
            + self.in_features * self.out_features  # weights
        )
        return LayerWorkload(
            weighting_macs=int(weighting_macs),
            aggregation_ops=int(aggregation_ops),
            attention_ops=int(attention_ops),
            dram_bytes=int(dram_bytes),
        )

    def _attention_ops(self, num_vertices: int, num_edges: int) -> int:
        return 0

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"{type(self).__name__}(in={self.in_features}, out={self.out_features}, "
            f"activation={self.activation!r})"
        )


class GNNModel:
    """A stack of GNN layers applied sequentially to a graph."""

    def __init__(self, layers: list[GNNLayer], *, name: str | None = None) -> None:
        if not layers:
            raise ValueError("a GNN model needs at least one layer")
        for earlier, later in zip(layers, layers[1:]):
            if earlier.out_features != later.in_features:
                raise ValueError(
                    "layer dimensions do not chain: "
                    f"{earlier.out_features} -> {later.in_features}"
                )
        self.layers = list(layers)
        self.name = name or layers[0].model_name

    def forward(self, adjacency: CSRGraph, features: np.ndarray) -> np.ndarray:
        """Run all layers and return the final vertex representations."""
        hidden = np.asarray(features, dtype=np.float64)
        for layer in self.layers:
            hidden = layer.forward(adjacency, hidden)
        return hidden

    def layer_outputs(self, adjacency: CSRGraph, features: np.ndarray) -> list[np.ndarray]:
        """Outputs of every layer (needed by GINConv's graph readout)."""
        outputs = []
        hidden = np.asarray(features, dtype=np.float64)
        for layer in self.layers:
            hidden = layer.forward(adjacency, hidden)
            outputs.append(hidden)
        return outputs

    def workload(
        self, adjacency: CSRGraph, features: np.ndarray, *, sparse_aware: bool = True
    ) -> LayerWorkload:
        """Total workload across all layers (later layers use dense features)."""
        total = LayerWorkload(0, 0, 0, 0)
        hidden = np.asarray(features, dtype=np.float64)
        for layer in self.layers:
            total = total + layer.workload(adjacency, hidden, sparse_aware=sparse_aware)
            hidden = layer.forward(adjacency, hidden)
        return total

    @property
    def num_layers(self) -> int:
        return len(self.layers)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        dims = " -> ".join(
            [str(self.layers[0].in_features)] + [str(layer.out_features) for layer in self.layers]
        )
        return f"GNNModel(name={self.name!r}, dims={dims})"
