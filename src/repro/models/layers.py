"""Numerical building blocks shared by the functional GNN models.

Everything is plain NumPy: activations, neighborhood softmax, weight
initialization, and a small dense MLP (used by GINConv and by the training
loop behind the Fig. 1 accuracy study).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "relu",
    "leaky_relu",
    "sigmoid",
    "softmax",
    "segment_softmax",
    "segment_sum",
    "segment_max",
    "segment_mean",
    "glorot_init",
    "MLP",
]


def relu(values: np.ndarray) -> np.ndarray:
    """Elementwise rectified linear unit."""
    return np.maximum(values, 0.0)


def leaky_relu(values: np.ndarray, negative_slope: float = 0.2) -> np.ndarray:
    """Elementwise LeakyReLU with the GAT-standard slope of 0.2."""
    return np.where(values > 0.0, values, negative_slope * values)


def sigmoid(values: np.ndarray) -> np.ndarray:
    """Numerically stable logistic sigmoid."""
    out = np.empty_like(values, dtype=np.float64)
    positive = values >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-values[positive]))
    exp_vals = np.exp(values[~positive])
    out[~positive] = exp_vals / (1.0 + exp_vals)
    return out


def softmax(values: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax along ``axis``."""
    shifted = values - np.max(values, axis=axis, keepdims=True)
    exp_vals = np.exp(shifted)
    return exp_vals / np.sum(exp_vals, axis=axis, keepdims=True)


def segment_sum(values: np.ndarray, segment_ids: np.ndarray, num_segments: int) -> np.ndarray:
    """Sum ``values`` rows grouped by ``segment_ids`` (scatter-add)."""
    values = np.asarray(values, dtype=np.float64)
    output_shape = (num_segments,) + values.shape[1:]
    output = np.zeros(output_shape, dtype=np.float64)
    np.add.at(output, segment_ids, values)
    return output


def segment_max(values: np.ndarray, segment_ids: np.ndarray, num_segments: int) -> np.ndarray:
    """Per-segment elementwise maximum; empty segments yield zeros."""
    values = np.asarray(values, dtype=np.float64)
    output_shape = (num_segments,) + values.shape[1:]
    output = np.full(output_shape, -np.inf, dtype=np.float64)
    np.maximum.at(output, segment_ids, values)
    output[np.isneginf(output)] = 0.0
    return output


def segment_mean(values: np.ndarray, segment_ids: np.ndarray, num_segments: int) -> np.ndarray:
    """Per-segment mean; empty segments yield zeros."""
    totals = segment_sum(values, segment_ids, num_segments)
    counts = np.bincount(segment_ids, minlength=num_segments).astype(np.float64)
    counts = np.maximum(counts, 1.0).reshape((num_segments,) + (1,) * (totals.ndim - 1))
    return totals / counts


def segment_softmax(
    scores: np.ndarray, segment_ids: np.ndarray, num_segments: int
) -> np.ndarray:
    """Softmax of ``scores`` normalized within each segment.

    This is the attention normalization of GATs: each edge score e_ij is
    exponentiated and divided by the sum of exponentiated scores over the
    destination vertex's incoming edges.
    """
    scores = np.asarray(scores, dtype=np.float64)
    segment_maxima = segment_max(scores, segment_ids, num_segments)
    shifted = scores - segment_maxima[segment_ids]
    exp_scores = np.exp(shifted)
    denominators = segment_sum(exp_scores, segment_ids, num_segments)
    denominators = np.maximum(denominators, 1e-30)
    return exp_scores / denominators[segment_ids]


def glorot_init(rows: int, cols: int, *, seed: int = 0) -> np.ndarray:
    """Glorot/Xavier uniform weight initialization."""
    rng = np.random.default_rng(seed)
    limit = np.sqrt(6.0 / (rows + cols))
    return rng.uniform(-limit, limit, size=(rows, cols))


@dataclass
class MLP:
    """A small fully connected network with ReLU hidden activations."""

    weights: list[np.ndarray]
    biases: list[np.ndarray]
    output_activation: str = "none"

    @classmethod
    def create(
        cls,
        layer_sizes: list[int],
        *,
        seed: int = 0,
        output_activation: str = "none",
    ) -> "MLP":
        """Create an MLP with the given layer sizes, e.g. [128, 128, 64]."""
        if len(layer_sizes) < 2:
            raise ValueError("layer_sizes needs at least an input and an output size")
        weights = []
        biases = []
        for index in range(len(layer_sizes) - 1):
            weights.append(
                glorot_init(layer_sizes[index], layer_sizes[index + 1], seed=seed + index)
            )
            biases.append(np.zeros(layer_sizes[index + 1]))
        return cls(weights=weights, biases=biases, output_activation=output_activation)

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        """Apply the MLP to a batch of row vectors."""
        hidden = np.asarray(inputs, dtype=np.float64)
        last = len(self.weights) - 1
        for index, (weight, bias) in enumerate(zip(self.weights, self.biases)):
            hidden = hidden @ weight + bias
            if index < last:
                hidden = relu(hidden)
        if self.output_activation == "relu":
            hidden = relu(hidden)
        elif self.output_activation == "sigmoid":
            hidden = sigmoid(hidden)
        elif self.output_activation == "softmax":
            hidden = softmax(hidden, axis=-1)
        elif self.output_activation != "none":
            raise ValueError(f"unknown output activation {self.output_activation!r}")
        return hidden

    @property
    def num_parameters(self) -> int:
        return int(
            sum(weight.size for weight in self.weights) + sum(bias.size for bias in self.biases)
        )
