"""DiffPool hierarchical pooling [Ying et al. 2018].

DiffPool combines two GNNs per pooling level (paper, Section II, Eqs. (3)–(4)):

* an **embedding GNN** producing vertex embeddings ``Z^{l-1} =
  GNN_embed(A^{l-1}, X^{l-1})``, and
* a **pooling GNN** whose softmax output is the cluster-assignment matrix
  ``S^{l-1} = softmax(GNN_pool(A^{l-1}, X^{l-1}))``.

The coarsened graph for the next level is then
``A^l = Sᵀ A^{l-1} S`` and ``X^l = Sᵀ Z^{l-1}``; the number of clusters is
fixed at inference time.  The paper's Table III evaluates DiffPool with GCN
layers for both the pooling and the embedding GNN, which is what
:class:`DiffPoolLevel` defaults to.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.csr import CSRGraph
from repro.models.base import GNNModel, LayerWorkload
from repro.models.gcn import GCNLayer
from repro.models.layers import softmax

__all__ = ["DiffPoolLevel", "DiffPoolOutput", "DiffPoolModel"]


@dataclass
class DiffPoolOutput:
    """Result of one DiffPool coarsening level."""

    coarsened_adjacency: np.ndarray
    coarsened_features: np.ndarray
    assignment: np.ndarray
    embeddings: np.ndarray

    @property
    def num_clusters(self) -> int:
        return int(self.coarsened_features.shape[0])


class DiffPoolLevel:
    """One DiffPool level: embedding GNN + pooling GNN + coarsening."""

    model_name = "DiffPool"

    def __init__(
        self,
        in_features: int,
        embed_features: int,
        num_clusters: int,
        *,
        seed: int = 0,
    ) -> None:
        if num_clusters <= 0:
            raise ValueError("num_clusters must be positive")
        self.in_features = int(in_features)
        self.embed_features = int(embed_features)
        self.num_clusters = int(num_clusters)
        self.embedding_gnn = GCNLayer(in_features, embed_features, activation="relu", seed=seed)
        self.pooling_gnn = GCNLayer(in_features, num_clusters, activation="none", seed=seed + 50)

    def forward(self, adjacency: CSRGraph, features: np.ndarray) -> DiffPoolOutput:
        """Run both GNNs and produce the coarsened graph for the next level."""
        embeddings = self.embedding_gnn.forward(adjacency, features)  # Z
        assignment_logits = self.pooling_gnn.forward(adjacency, features)
        assignment = softmax(assignment_logits, axis=-1)  # S, rows sum to 1

        dense_adjacency = adjacency.to_dense()
        coarsened_adjacency = assignment.T @ dense_adjacency @ assignment  # A^l
        coarsened_features = assignment.T @ embeddings  # X^l
        return DiffPoolOutput(
            coarsened_adjacency=coarsened_adjacency,
            coarsened_features=coarsened_features,
            assignment=assignment,
            embeddings=embeddings,
        )

    def workload(
        self, adjacency: CSRGraph, features: np.ndarray, *, sparse_aware: bool = True
    ) -> LayerWorkload:
        """Workload of both GNNs plus the two coarsening matrix products."""
        embed = self.embedding_gnn.workload(adjacency, features, sparse_aware=sparse_aware)
        pool = self.pooling_gnn.workload(adjacency, features, sparse_aware=sparse_aware)
        num_vertices = adjacency.num_vertices
        num_edges = adjacency.num_edges
        # Sᵀ A S exploits adjacency sparsity (per nonzero of A: C MACs, then a
        # dense (C x V)(V x C) product); Sᵀ Z is V·C·F.
        coarsening_macs = (
            num_edges * self.num_clusters
            + num_vertices * self.num_clusters * self.num_clusters
            + num_vertices * self.num_clusters * self.embed_features
        )
        combined = embed + pool
        return LayerWorkload(
            weighting_macs=combined.weighting_macs + int(coarsening_macs),
            aggregation_ops=combined.aggregation_ops,
            attention_ops=combined.attention_ops + num_vertices * self.num_clusters,
            dram_bytes=combined.dram_bytes
            + int(self.num_clusters * (self.num_clusters + self.embed_features)),
        )


class DiffPoolModel:
    """A GNN stack followed by one DiffPool coarsening level.

    This mirrors the paper's evaluation configuration, where DiffPool's
    GCN_pool and GCN_embedding layers both have width 128 (Table III).
    """

    def __init__(
        self,
        in_features: int,
        hidden_features: int = 128,
        *,
        num_clusters: int | None = None,
        seed: int = 0,
    ) -> None:
        self.level = DiffPoolLevel(
            in_features,
            hidden_features,
            num_clusters if num_clusters is not None else max(2, hidden_features // 4),
            seed=seed,
        )
        self.name = "DiffPool"

    def forward(self, adjacency: CSRGraph, features: np.ndarray) -> DiffPoolOutput:
        return self.level.forward(adjacency, features)

    def workload(
        self, adjacency: CSRGraph, features: np.ndarray, *, sparse_aware: bool = True
    ) -> LayerWorkload:
        return self.level.workload(adjacency, features, sparse_aware=sparse_aware)
