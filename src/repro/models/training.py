"""Minimal NumPy training loop for the Fig. 1 accuracy-ordering study.

Fig. 1 of the paper motivates GNNIE's versatility by showing that GATs reach
higher accuracy than GraphSAGE variants, which in turn beat GCNs, on the PPI
multi-label task — i.e. more computation buys more accuracy.  Reproducing the
absolute micro-F1 numbers would require full PyTorch training; what matters
for the reproduction is the *ordering*, which emerges from the models'
expressiveness on a task where attention over neighbors helps.

To keep training tractable in NumPy we train only the final linear layer of
each model on top of frozen message-passing features (a standard "random
features + linear probe" protocol).  GAT's trainable attention is
approximated by a degree-weighted aggregation, which preserves its advantage
of non-uniform neighbor weighting; GraphSAGE-pool applies an elementwise max;
GraphSAGE-mean averages; GCN uses symmetric normalization.  The probe is
trained with full-batch gradient descent on a sigmoid cross-entropy loss.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.csr import CSRGraph
from repro.graph.graph import Graph
from repro.models.layers import glorot_init, leaky_relu, relu, segment_max, segment_softmax, segment_sum, sigmoid

__all__ = ["AccuracyResult", "micro_f1", "encode_features", "train_linear_probe", "accuracy_study"]


@dataclass(frozen=True)
class AccuracyResult:
    """Micro-F1 of one model variant on the synthetic multi-label task."""

    model: str
    micro_f1: float
    relative_compute: float


def micro_f1(predictions: np.ndarray, labels: np.ndarray) -> float:
    """Micro-averaged F1 score for multi-label indicator matrices."""
    predictions = np.asarray(predictions).astype(bool)
    labels = np.asarray(labels).astype(bool)
    true_positives = np.sum(predictions & labels)
    false_positives = np.sum(predictions & ~labels)
    false_negatives = np.sum(~predictions & labels)
    denominator = 2 * true_positives + false_positives + false_negatives
    if denominator == 0:
        return 0.0
    return float(2 * true_positives / denominator)


def _propagate(adjacency: CSRGraph, features: np.ndarray, variant: str, seed: int) -> np.ndarray:
    """One frozen message-passing round in the style of each GNN variant."""
    num_vertices = adjacency.num_vertices
    edges = adjacency.edge_array()
    self_loops = np.stack([np.arange(num_vertices)] * 2, axis=1)
    all_edges = np.concatenate([edges, self_loops], axis=0)
    if variant == "gcn":
        degrees = adjacency.degrees().astype(np.float64) + 1.0
        coefficients = 1.0 / np.sqrt(degrees[all_edges[:, 0]] * degrees[all_edges[:, 1]])
        messages = features[all_edges[:, 0]] * coefficients[:, None]
        return segment_sum(messages, all_edges[:, 1], num_vertices)
    if variant == "graphsage_mean":
        totals = segment_sum(features[all_edges[:, 0]], all_edges[:, 1], num_vertices)
        counts = np.bincount(all_edges[:, 1], minlength=num_vertices).astype(np.float64)
        return totals / np.maximum(counts, 1.0)[:, None]
    if variant in ("graphsage_pool", "graphsage_lstm"):
        rng = np.random.default_rng(seed)
        pool_weight = glorot_init(features.shape[1], features.shape[1], seed=seed + 5)
        transformed = relu(features @ pool_weight)
        pooled = segment_max(transformed[all_edges[:, 0]], all_edges[:, 1], num_vertices)
        if variant == "graphsage_lstm":
            # Order-sensitive mixing stands in for the LSTM aggregator: blend
            # max-pooled context with a mean over a permuted neighbor order.
            permutation = rng.permutation(num_vertices)
            mean_part = _propagate(adjacency, features[permutation], "graphsage_mean", seed)
            return 0.5 * pooled + 0.5 * mean_part
        return pooled
    if variant == "gat":
        # Attention scores from a learned-style projection (fixed random a),
        # softmax-normalized per destination: preserves GAT's non-uniform
        # neighbor weighting.
        attention = glorot_init(features.shape[1], 2, seed=seed + 9)
        projected = leaky_relu(features @ attention)
        scores = projected[all_edges[:, 1], 0] + projected[all_edges[:, 0], 1]
        alphas = segment_softmax(scores, all_edges[:, 1], num_vertices)
        messages = features[all_edges[:, 0]] * alphas[:, None]
        return segment_sum(messages, all_edges[:, 1], num_vertices)
    raise ValueError(f"unknown variant {variant!r}")


def encode_features(graph: Graph, variant: str, *, hidden: int = 64, seed: int = 0) -> np.ndarray:
    """Two frozen propagation rounds with a random projection in between."""
    projection = glorot_init(graph.feature_length, hidden, seed=seed)
    hidden_features = relu(graph.features @ projection)
    first = _propagate(graph.adjacency, hidden_features, variant, seed)
    second = _propagate(graph.adjacency, relu(first), variant, seed + 1)
    return np.concatenate([relu(first), relu(second)], axis=1)


def train_linear_probe(
    features: np.ndarray,
    labels: np.ndarray,
    *,
    epochs: int = 200,
    learning_rate: float = 0.5,
    l2: float = 1e-4,
    seed: int = 0,
) -> np.ndarray:
    """Train a multi-label linear classifier with full-batch gradient descent.

    Returns the learned weight matrix of shape ``(F + 1, num_labels)`` (the
    last row is the bias).
    """
    features = np.asarray(features, dtype=np.float64)
    labels = np.asarray(labels, dtype=np.float64)
    if labels.ndim != 2:
        raise ValueError("labels must be a multi-label indicator matrix")
    # Standardize and append a bias column for stable full-batch training.
    mean = features.mean(axis=0)
    std = features.std(axis=0) + 1e-8
    normalized = (features - mean) / std
    design = np.concatenate([normalized, np.ones((features.shape[0], 1))], axis=1)
    rng = np.random.default_rng(seed)
    weights = rng.normal(scale=0.01, size=(design.shape[1], labels.shape[1]))
    num_samples = design.shape[0]
    for _ in range(epochs):
        logits = design @ weights
        probabilities = sigmoid(logits)
        gradient = design.T @ (probabilities - labels) / num_samples + l2 * weights
        weights -= learning_rate * gradient
    return weights


#: Relative inference compute of each variant (normalized to GCN = 1.0),
#: estimated from the Table I operation structure — used for the Fig. 1
#: accuracy-vs-computation tradeoff axis.
_RELATIVE_COMPUTE = {
    "gcn": 1.0,
    "graphsage_mean": 1.1,
    "graphsage_lstm": 2.3,
    "graphsage_pool": 1.6,
    "gat": 3.0,
}

_DISPLAY_NAMES = {
    "gcn": "GCN",
    "graphsage_mean": "GraphSAGE-mean",
    "graphsage_lstm": "GraphSAGE-LSTM",
    "graphsage_pool": "GraphSAGE-pool",
    "gat": "GAT",
}


def accuracy_study(
    graph: Graph,
    *,
    train_fraction: float = 0.7,
    hidden: int = 64,
    epochs: int = 200,
    seed: int = 0,
) -> list[AccuracyResult]:
    """Run the Fig. 1 accuracy comparison on a multi-label graph.

    Returns one :class:`AccuracyResult` per model variant, evaluated on a
    held-out vertex split.  The expected ordering (checked by the benchmark)
    is GAT ≥ GraphSAGE variants ≥ GCN.
    """
    if graph.labels is None or graph.labels.ndim != 2:
        raise ValueError("accuracy_study requires a multi-label graph (e.g. the PPI stand-in)")
    rng = np.random.default_rng(seed)
    num_vertices = graph.num_vertices
    permutation = rng.permutation(num_vertices)
    split = int(train_fraction * num_vertices)
    train_idx, test_idx = permutation[:split], permutation[split:]
    labels = graph.labels.astype(np.float64)

    results = []
    for variant in ("gcn", "graphsage_mean", "graphsage_lstm", "graphsage_pool", "gat"):
        encoded = encode_features(graph, variant, hidden=hidden, seed=seed)
        weights = train_linear_probe(
            encoded[train_idx], labels[train_idx], epochs=epochs, seed=seed
        )
        mean = encoded[train_idx].mean(axis=0)
        std = encoded[train_idx].std(axis=0) + 1e-8
        normalized = (encoded[test_idx] - mean) / std
        design = np.concatenate([normalized, np.ones((test_idx.size, 1))], axis=1)
        predictions = sigmoid(design @ weights) > 0.5
        results.append(
            AccuracyResult(
                model=_DISPLAY_NAMES[variant],
                micro_f1=micro_f1(predictions, labels[test_idx]),
                relative_compute=_RELATIVE_COMPUTE[variant],
            )
        )
    return results
