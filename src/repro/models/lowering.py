"""Lowering rules: Table III model configurations → inference plans.

Each GNN family is a pure function from a
:class:`~repro.models.zoo.ModelConfig` and a dataset shape to an
:class:`~repro.plan.ir.InferencePlan`.  The former engine special cases are
ordinary ops here: GINConv's pre-MLP aggregation is an
:class:`~repro.plan.ir.AggregationOp` with ``pre_weighting=True``,
GraphSAGE's neighbor sampling is a :class:`~repro.plan.ir.SampleOp` feeding
a ``sampled`` adjacency handle, and DiffPool's coarsening products (Sᵀ A S
and Sᵀ Z) are a :class:`~repro.plan.ir.DenseMatmulOp`.

The module registers its rules on import; :mod:`repro.plan.lowering` imports
it lazily on first lookup.
"""

from __future__ import annotations

from repro.models.zoo import ModelConfig
from repro.plan.ir import (
    FULL_ADJACENCY,
    HIDDEN_DENSITY,
    AdjacencyRef,
    AggregationOp,
    AttentionOp,
    DenseMatmulOp,
    InferencePlan,
    PhaseOp,
    PlanLayer,
    PreprocessOp,
    SampleOp,
    WeightingOp,
)
from repro.plan.lowering import register_lowering

__all__ = [
    "lower_gcn",
    "lower_gat",
    "lower_graphsage",
    "lower_ginconv",
    "lower_diffpool",
    "DEFAULT_SAMPLE_SIZE",
]

#: GraphSAGE neighborhood size when the configuration leaves it unset
#: (25 neighbors, Table III).
DEFAULT_SAMPLE_SIZE = 25


def _message_passing_plan(
    cfg: ModelConfig,
    in_features: int,
    out_features: int,
    *,
    attention: bool = False,
    sample_size: int | None = None,
    pre_weighting: bool = False,
    use_mlp: bool = False,
) -> InferencePlan:
    """Shared lowering for the layer-stacked message-passing families."""
    adjacency = (
        AdjacencyRef("sampled", sample_size) if sample_size is not None else FULL_ADJACENCY
    )
    layers: list[PlanLayer] = []
    for index, (f_in, f_out) in enumerate(cfg.layer_dimensions(in_features, out_features)):
        is_input = index == 0
        ops: list[PhaseOp] = []
        if sample_size is not None:
            ops.append(SampleOp(sample_size))
        ops.append(
            WeightingOp(
                in_features=f_in,
                out_features=f_out,
                is_input_layer=is_input,
                density=None if is_input else HIDDEN_DENSITY,
                mlp_hidden=(cfg.mlp_hidden or f_out) if use_mlp else None,
            )
        )
        if attention:
            ops.append(AttentionOp(out_features=f_out, adjacency=adjacency))
        ops.append(
            AggregationOp(
                in_features=f_in,
                out_features=f_out,
                adjacency=adjacency,
                pre_weighting=pre_weighting,
                weighted=attention,
                aggregator=cfg.aggregator,
            )
        )
        layers.append(PlanLayer(index, f_in, f_out, tuple(ops)))
    return InferencePlan(
        family=cfg.family.lower(),
        in_features=in_features,
        out_features=out_features,
        layers=tuple(layers),
        global_ops=(PreprocessOp("degree_binning"),),
    )


@register_lowering("gcn")
def lower_gcn(cfg: ModelConfig, in_features: int, out_features: int) -> InferencePlan:
    """GCN: weighting then sum-aggregation over the full adjacency."""
    return _message_passing_plan(cfg, in_features, out_features)


@register_lowering("gat")
def lower_gat(cfg: ModelConfig, in_features: int, out_features: int) -> InferencePlan:
    """GAT: adds per-edge attention and a weighted aggregation."""
    return _message_passing_plan(cfg, in_features, out_features, attention=True)


@register_lowering("graphsage")
def lower_graphsage(cfg: ModelConfig, in_features: int, out_features: int) -> InferencePlan:
    """GraphSAGE: aggregation over a sampled neighborhood."""
    return _message_passing_plan(
        cfg, in_features, out_features, sample_size=cfg.sample_size or DEFAULT_SAMPLE_SIZE
    )


@register_lowering("ginconv")
def lower_ginconv(cfg: ModelConfig, in_features: int, out_features: int) -> InferencePlan:
    """GINConv: raw features aggregate *before* the per-vertex MLP."""
    return _message_passing_plan(
        cfg, in_features, out_features, pre_weighting=True, use_mlp=True
    )


@register_lowering("diffpool")
def lower_diffpool(cfg: ModelConfig, in_features: int, out_features: int) -> InferencePlan:
    """DiffPool: embedding GCN + pooling GCN + dense coarsening products.

    Both constituent GCNs read the raw input features; the third stage
    computes S = softmax(pool output), Sᵀ A S and Sᵀ Z as dense products
    whose MAC count is ``E·C + V·C² + V·C·H`` for C clusters and hidden
    width H.
    """
    hidden = cfg.hidden_features
    clusters = max(2, hidden // 4)
    gcn_layers = []
    for index, width in enumerate((hidden, clusters)):
        gcn_layers.append(
            PlanLayer(
                index,
                in_features,
                width,
                (
                    WeightingOp(
                        in_features=in_features,
                        out_features=width,
                        is_input_layer=True,
                        density=None,
                    ),
                    AggregationOp(
                        in_features=in_features,
                        out_features=width,
                        adjacency=FULL_ADJACENCY,
                        aggregator=cfg.aggregator,
                    ),
                ),
            )
        )
    coarsening = PlanLayer(
        2,
        clusters,
        hidden,
        (
            DenseMatmulOp(
                in_features=clusters,
                out_features=hidden,
                macs_per_edge=clusters,
                macs_per_vertex=clusters * clusters + clusters * hidden,
                softmax_ops_per_vertex=clusters,
                output_values=clusters * (clusters + hidden),
            ),
        ),
    )
    return InferencePlan(
        family=cfg.family.lower(),
        in_features=in_features,
        out_features=out_features,
        layers=(*gcn_layers, coarsening),
        global_ops=(PreprocessOp("degree_binning"),),
    )
