"""Standard model configurations used by the paper's evaluation (Table III).

Every GNN is evaluated as a two-layer model whose hidden layer has 128
channels (the paper aligns with HyGCN's convention of 128 hidden channels for
cross-platform comparison).  :func:`build_model` constructs the functional
reference model for a given family and dataset shape; the same configuration
object drives the accelerator simulation, so the performance and functional
paths always agree on layer dimensions.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.models.base import GNNModel
from repro.models.diffpool import DiffPoolModel
from repro.models.gat import GATLayer
from repro.models.gcn import GCNLayer
from repro.models.ginconv import GINConvLayer
from repro.models.graphsage import GraphSAGELayer

__all__ = ["ModelConfig", "MODEL_FAMILIES", "model_config", "build_model", "TABLE3_CONFIGS"]

#: GNN families evaluated in the paper (Fig. 12, Table III).
MODEL_FAMILIES = ("gcn", "gat", "graphsage", "ginconv", "diffpool")


@dataclass(frozen=True)
class ModelConfig:
    """One row of Table III: layer widths and aggregation settings."""

    family: str
    hidden_features: int = 128
    num_layers: int = 2
    aggregator: str = "sum"
    sample_size: int | None = None
    mlp_hidden: int | None = None

    def layer_dimensions(self, in_features: int, out_features: int) -> list[tuple[int, int]]:
        """(in, out) dimensions of each layer for a given dataset shape."""
        dims = []
        current = in_features
        for index in range(self.num_layers):
            is_last = index == self.num_layers - 1
            out = out_features if is_last else self.hidden_features
            dims.append((current, out))
            current = out
        return dims


#: Table III configurations keyed by family name.
TABLE3_CONFIGS: dict[str, ModelConfig] = {
    "gcn": ModelConfig(family="gcn", aggregator="sum"),
    "gat": ModelConfig(family="gat", aggregator="sum"),
    "graphsage": ModelConfig(family="graphsage", aggregator="max", sample_size=25),
    "ginconv": ModelConfig(family="ginconv", aggregator="sum", mlp_hidden=128),
    "diffpool": ModelConfig(family="diffpool", aggregator="sum"),
}


def model_config(family: str) -> ModelConfig:
    """Look up the Table III configuration for a GNN family."""
    key = family.strip().lower()
    if key not in TABLE3_CONFIGS:
        raise KeyError(f"unknown GNN family {family!r}; known: {sorted(TABLE3_CONFIGS)}")
    return TABLE3_CONFIGS[key]


def build_model(
    family: str,
    in_features: int,
    out_features: int,
    *,
    config: ModelConfig | None = None,
    seed: int = 0,
):
    """Build the functional reference model for a GNN family.

    Returns a :class:`~repro.models.base.GNNModel` for the message-passing
    families and a :class:`~repro.models.diffpool.DiffPoolModel` for
    DiffPool (whose output is a coarsened graph rather than per-vertex
    features).
    """
    cfg = config if config is not None else model_config(family)
    family_key = cfg.family.lower()
    if family_key == "diffpool":
        return DiffPoolModel(in_features, cfg.hidden_features, seed=seed)
    layers = []
    for index, (dim_in, dim_out) in enumerate(cfg.layer_dimensions(in_features, out_features)):
        is_last = index == cfg.num_layers - 1
        activation = "none" if is_last else "relu"
        layer_seed = seed + 13 * index
        if family_key == "gcn":
            layers.append(GCNLayer(dim_in, dim_out, activation=activation, seed=layer_seed))
        elif family_key == "gat":
            layers.append(GATLayer(dim_in, dim_out, activation=activation, seed=layer_seed))
        elif family_key == "graphsage":
            layers.append(
                GraphSAGELayer(
                    dim_in,
                    dim_out,
                    aggregator=cfg.aggregator,
                    sample_size=cfg.sample_size or 25,
                    activation=activation,
                    seed=layer_seed,
                )
            )
        elif family_key == "ginconv":
            layers.append(
                GINConvLayer(
                    dim_in,
                    dim_out,
                    hidden_features=cfg.mlp_hidden,
                    activation=activation,
                    seed=layer_seed,
                )
            )
        else:
            raise KeyError(f"unknown GNN family {family!r}")
    return GNNModel(layers, name=family_key.upper())
