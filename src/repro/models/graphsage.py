"""GraphSAGE layer [Hamilton et al. 2017].

Layer rule (Table I of the paper):

    h^l_i = σ( a_k( h^{l-1}_j W^l  ∀ j ∈ {i} ∪ SN(i) ) )

where ``SN(i)`` is a fixed-size random sample of the neighborhood and ``a_k``
is the aggregator (mean, max/pooling, or sum).  The paper's evaluation uses
max aggregation with a sample size of 25 (Table III) and counts the cost of
neighbor sampling — performed by cycling through a pregenerated stream of
random numbers — in the reported speedups; :class:`NeighborSampler` mirrors
that pregenerated-stream approach so the simulator can charge the same cost.
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph
from repro.models.base import GNNLayer, apply_activation
from repro.models.layers import glorot_init, segment_max, segment_mean, segment_sum

__all__ = ["GraphSAGELayer", "NeighborSampler"]


class NeighborSampler:
    """Uniform neighbor sampler driven by a pregenerated random stream.

    The paper notes that "neighborhood sampling for GraphSAGE is based on
    cycling through a pregenerated set of random numbers" and includes the
    generation cost; this class reproduces that structure: a fixed pool of
    uniform draws is generated once and consumed round-robin, making the
    sampled subgraph deterministic given the seed.
    """

    def __init__(self, *, pool_size: int = 1 << 16, seed: int = 0) -> None:
        if pool_size <= 0:
            raise ValueError("pool_size must be positive")
        rng = np.random.default_rng(seed)
        self._pool = rng.random(pool_size)
        self._cursor = 0

    def _next(self, count: int) -> np.ndarray:
        """Take ``count`` pregenerated uniforms, cycling through the pool."""
        positions = (self._cursor + np.arange(count)) % self._pool.size
        self._cursor = int((self._cursor + count) % self._pool.size)
        return self._pool[positions]

    def sample_edges(self, adjacency: CSRGraph, sample_size: int) -> np.ndarray:
        """Sampled (source, destination) edge array with ≤ ``sample_size`` in-edges per vertex."""
        if sample_size <= 0:
            raise ValueError("sample_size must be positive")
        sources = []
        destinations = []
        for vertex in range(adjacency.num_vertices):
            neighbors = adjacency.neighbors(vertex)
            if neighbors.size == 0:
                continue
            if neighbors.size <= sample_size:
                chosen = neighbors
            else:
                draws = self._next(sample_size)
                chosen = neighbors[(draws * neighbors.size).astype(np.int64)]
            sources.append(chosen)
            destinations.append(np.full(chosen.size, vertex, dtype=np.int64))
        if not sources:
            return np.empty((0, 2), dtype=np.int64)
        return np.stack(
            [np.concatenate(sources), np.concatenate(destinations)], axis=1
        )


class GraphSAGELayer(GNNLayer):
    """GraphSAGE layer with mean / max / sum aggregation over sampled neighbors."""

    model_name = "GraphSAGE"

    def __init__(
        self,
        in_features: int,
        out_features: int,
        *,
        aggregator: str = "max",
        sample_size: int = 25,
        activation: str = "relu",
        seed: int = 0,
    ) -> None:
        super().__init__(in_features, out_features, activation=activation)
        if aggregator not in ("mean", "max", "sum"):
            raise ValueError("aggregator must be one of 'mean', 'max', 'sum'")
        if sample_size <= 0:
            raise ValueError("sample_size must be positive")
        self.aggregator = aggregator
        self.sample_size = sample_size
        self.weight = glorot_init(in_features, out_features, seed=seed)
        self.sampler = NeighborSampler(seed=seed + 101)

    def weight_matrices(self) -> list[np.ndarray]:
        return [self.weight]

    def forward(self, adjacency: CSRGraph, features: np.ndarray) -> np.ndarray:
        features = np.asarray(features, dtype=np.float64)
        if features.shape[1] != self.in_features:
            raise ValueError(
                f"expected {self.in_features} input features, got {features.shape[1]}"
            )
        weighted = features @ self.weight
        edges = self.sampler.sample_edges(adjacency, self.sample_size)
        num_vertices = adjacency.num_vertices
        if edges.size == 0:
            aggregated = np.zeros_like(weighted)
        else:
            messages = weighted[edges[:, 0]]
            if self.aggregator == "mean":
                aggregated = segment_mean(messages, edges[:, 1], num_vertices)
            elif self.aggregator == "max":
                aggregated = segment_max(messages, edges[:, 1], num_vertices)
            else:
                aggregated = segment_sum(messages, edges[:, 1], num_vertices)
        # Include the vertex's own weighted features ({i} ∪ SN(i)).
        if self.aggregator == "max":
            aggregated = np.maximum(aggregated, weighted)
        else:
            aggregated = aggregated + weighted
        return apply_activation(aggregated, self.activation)

    def workload(self, adjacency, features, *, sparse_aware: bool = True):
        workload = super().workload(adjacency, features, sparse_aware=sparse_aware)
        # Aggregation only touches the sampled edges, not the full edge list.
        sampled_edges = int(
            np.minimum(adjacency.degrees(), self.sample_size).sum()
        )
        aggregation_ops = (sampled_edges + adjacency.num_vertices) * self.out_features
        return type(workload)(
            weighting_macs=workload.weighting_macs,
            aggregation_ops=int(aggregation_ops),
            attention_ops=workload.attention_ops,
            dram_bytes=workload.dram_bytes,
        )
