"""Graph Convolutional Network (GCN) layer [Kipf & Welling 2017].

Layer rule (Table I of the paper):

    h^l_i = σ( Σ_{j ∈ {i} ∪ N(i)}  (1 / sqrt(d_i d_j)) · h^{l-1}_j W^l )

GNNIE computes this as Ã (h W) — Weighting first, then Aggregation over the
normalized adjacency — because that ordering needs an order of magnitude
fewer operations (Section III, Eq. (5)).  The functional model here does the
same so that intermediate values (the weighted features ηw) line up with what
the accelerator mapping produces.
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph
from repro.models.base import GNNLayer, apply_activation, symmetric_normalization_coefficients
from repro.models.layers import glorot_init, segment_sum

__all__ = ["GCNLayer"]


class GCNLayer(GNNLayer):
    """One GCN layer with symmetric degree normalization and self-loops."""

    model_name = "GCN"

    def __init__(
        self,
        in_features: int,
        out_features: int,
        *,
        activation: str = "relu",
        seed: int = 0,
    ) -> None:
        super().__init__(in_features, out_features, activation=activation)
        self.weight = glorot_init(in_features, out_features, seed=seed)

    def weight_matrices(self) -> list[np.ndarray]:
        return [self.weight]

    def forward(self, adjacency: CSRGraph, features: np.ndarray) -> np.ndarray:
        features = np.asarray(features, dtype=np.float64)
        if features.shape[1] != self.in_features:
            raise ValueError(
                f"expected {self.in_features} input features, got {features.shape[1]}"
            )
        # Weighting: ηw_i = h_i W   (dense GEMM; zeros contribute nothing).
        weighted = features @ self.weight

        # Aggregation: Σ_j (1/sqrt(d_i d_j)) ηw_j over j ∈ {i} ∪ N(i).
        degrees = adjacency.degrees().astype(np.float64) + 1.0
        inv_sqrt = 1.0 / np.sqrt(degrees)
        edges = adjacency.edge_array()
        coefficients = symmetric_normalization_coefficients(adjacency)
        messages = weighted[edges[:, 0]] * coefficients[:, None]
        aggregated = segment_sum(messages, edges[:, 1], adjacency.num_vertices)
        # Self-loop contribution: 1/d_i · ηw_i.
        aggregated += weighted * (inv_sqrt * inv_sqrt)[:, None]
        return apply_activation(aggregated, self.activation)
