"""Exporters: Chrome-trace JSON, metrics JSON/CSV, flame-style tables.

The Chrome trace-event output loads in ``chrome://tracing`` and in Perfetto
(https://ui.perfetto.dev — *Open trace file*).  Spans are emitted as matched
``B``/``E`` duration events with microsecond timestamps rebased to the
earliest span, grouped into tracks:

* ``track="pid"`` — one track per producing process (fleet sweeps: one row
  per worker, the merged multi-worker timeline);
* ``track="layer"`` — one track per GNN layer (single inferences: the
  ``layer``/phase-op spans of layer *i* land on thread ``i+1``, the
  inference root and global preprocessing on thread 0).

Host wall time is the span extent; modeled attribution (cycles, MACs, DRAM
bytes, energy) rides in each event's ``args`` so Perfetto's selection panel
shows both.  :func:`flame_rows` aggregates the same spans into a flat
name-path table for terminal output.
"""

from __future__ import annotations

import csv
import io
import json
from pathlib import Path
from typing import Iterable, Sequence

from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import SpanRecord

__all__ = [
    "chrome_trace_events",
    "chrome_trace_document",
    "write_chrome_trace",
    "metrics_to_json",
    "metrics_to_csv",
    "flame_rows",
]


def _jsonable(value):
    if isinstance(value, (bool, int, float, str)) or value is None:
        return value
    item = getattr(value, "item", None)  # NumPy scalars
    if callable(item):
        return item()
    return str(value)


def _track_id(span: SpanRecord, track: str) -> int:
    if track == "layer":
        layer = span.attrs.get("layer")
        if isinstance(layer, int) and layer >= 0:
            return layer + 1
        return 0
    return 0


def chrome_trace_events(
    spans: Sequence[SpanRecord], *, track: str = "pid"
) -> list[dict]:
    """Trace-event list (B/E pairs plus naming metadata) for ``spans``.

    Within each ``(pid, tid)`` track spans are properly nested (they come
    from per-process call stacks), so sorting by start time and closing by
    interval containment yields matched, monotonically-timestamped B/E
    pairs — the invariants :func:`repro.obs.schema.validate_chrome_trace`
    checks.
    """
    if track not in ("pid", "layer"):
        raise ValueError(f"unknown track mode {track!r}; known: pid, layer")
    spans = list(spans)
    if not spans:
        return []
    origin = min(span.start_s for span in spans)

    def ts(seconds: float) -> float:
        return round((seconds - origin) * 1e6, 3)

    groups: dict[tuple[int, int], list[SpanRecord]] = {}
    for span in spans:
        groups.setdefault((span.pid, _track_id(span, track)), []).append(span)

    events: list[dict] = []
    for (pid, tid) in sorted(groups):
        if track == "pid":
            process_label = f"worker-{pid}"
            thread_label = "timeline"
        else:
            process_label = f"pid-{pid}"
            thread_label = f"layer {tid - 1}" if tid else "inference"
        events.append(
            {
                "ph": "M",
                "name": "process_name",
                "pid": pid,
                "tid": tid,
                "args": {"name": process_label},
            }
        )
        events.append(
            {
                "ph": "M",
                "name": "thread_name",
                "pid": pid,
                "tid": tid,
                "args": {"name": thread_label},
            }
        )

    for (pid, tid), group in sorted(groups.items()):
        group.sort(key=lambda s: (s.start_s, -s.end_s, s.span_id))
        stack: list[SpanRecord] = []
        for span in group:
            while stack and stack[-1].end_s <= span.start_s:
                closed = stack.pop()
                events.append(
                    {"ph": "E", "name": closed.name, "pid": pid, "tid": tid,
                     "ts": ts(max(closed.end_s, closed.start_s))}
                )
            events.append(
                {
                    "ph": "B",
                    "name": span.name,
                    "cat": span.category,
                    "pid": pid,
                    "tid": tid,
                    "ts": ts(span.start_s),
                    "args": {key: _jsonable(value) for key, value in span.attrs.items()},
                }
            )
            stack.append(span)
        while stack:
            closed = stack.pop()
            events.append(
                {"ph": "E", "name": closed.name, "pid": pid, "tid": tid,
                 "ts": ts(max(closed.end_s, closed.start_s))}
            )
    return events


def chrome_trace_document(
    spans: Sequence[SpanRecord],
    *,
    track: str = "pid",
    metrics: MetricsRegistry | None = None,
    metadata: dict | None = None,
) -> dict:
    """Full Chrome-trace JSON object (``traceEvents`` + metadata)."""
    document = {
        "traceEvents": chrome_trace_events(spans, track=track),
        "displayTimeUnit": "ms",
        "metadata": {"tool": "repro.obs", **(metadata or {})},
    }
    if metrics is not None:
        document["metadata"]["metrics"] = metrics.snapshot()
    return document


def write_chrome_trace(
    path: str | Path,
    spans: Sequence[SpanRecord],
    *,
    track: str = "pid",
    metrics: MetricsRegistry | None = None,
    metadata: dict | None = None,
) -> Path:
    """Write the Chrome-trace document to ``path`` and return it."""
    path = Path(path)
    document = chrome_trace_document(
        spans, track=track, metrics=metrics, metadata=metadata
    )
    path.write_text(json.dumps(document, indent=2) + "\n")
    return path


# ---------------------------------------------------------------------- #
# Metrics dumps
# ---------------------------------------------------------------------- #
def metrics_to_json(metrics: MetricsRegistry, *, indent: int = 2) -> str:
    """Flat JSON document of every instrument."""
    return json.dumps({"metrics": metrics.snapshot()}, indent=indent)


def metrics_to_csv(metrics: MetricsRegistry) -> str:
    """One CSV row per instrument (labels flattened to ``k=v`` pairs)."""
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=["name", "kind", "labels", "value"])
    writer.writeheader()
    for row in metrics.snapshot():
        writer.writerow(
            {
                "name": row["name"],
                "kind": row["kind"],
                "labels": ";".join(f"{k}={v}" for k, v in sorted(row["labels"].items())),
                "value": row["value"],
            }
        )
    return buffer.getvalue()


# ---------------------------------------------------------------------- #
# Flame-style text table
# ---------------------------------------------------------------------- #
def flame_rows(spans: Iterable[SpanRecord]) -> list[dict]:
    """Aggregate spans into per-name-path rows (flame-graph-as-a-table).

    The path is the ``/``-joined span-name chain from the root; rows carry
    call counts, summed host wall time and the summed modeled attribution.
    Sorted deepest-spender-first by modeled cycles, then host time.
    """
    spans = list(spans)
    by_id = {(span.pid, span.span_id): span for span in spans}

    def path(span: SpanRecord) -> str:
        parts = [span.name]
        seen = {(span.pid, span.span_id)}
        current = span
        while current.parent_id is not None:
            parent = by_id.get((current.pid, current.parent_id))
            if parent is None or (parent.pid, parent.span_id) in seen:
                break
            seen.add((parent.pid, parent.span_id))
            parts.append(parent.name)
            current = parent
        return "/".join(reversed(parts))

    aggregated: dict[str, dict] = {}
    for span in spans:
        row = aggregated.setdefault(
            path(span),
            {
                "span": None,
                "calls": 0,
                "host_ms": 0.0,
                "cycles": 0,
                "macs": 0,
                "dram_bytes": 0,
                "energy_pj": 0.0,
            },
        )
        row["span"] = row["span"] or path(span)
        row["calls"] += 1
        row["host_ms"] += span.duration_s * 1e3
        row["cycles"] += int(span.attrs.get("cycles", 0) or 0)
        row["macs"] += int(span.attrs.get("mac_operations", 0) or 0)
        row["dram_bytes"] += int(span.attrs.get("dram_bytes", 0) or 0)
        row["energy_pj"] += float(span.attrs.get("energy_pj", 0.0) or 0.0)

    rows = list(aggregated.values())
    rows.sort(key=lambda row: (-row["cycles"], -row["host_ms"], row["span"]))
    for row in rows:
        row["host_ms"] = round(row["host_ms"], 3)
        row["energy_pj"] = round(row["energy_pj"], 1)
    return rows
