"""Counter/gauge metrics registry for the executor, cache and fleet layers.

A :class:`MetricsRegistry` hands out get-or-create :class:`Counter` and
:class:`Gauge` instruments keyed by ``(name, labels)`` — e.g. the miss-path
hierarchy registers ``cache.miss_path.hits{mechanism=victim}`` per
mechanism, the sweep runner ``sweep.cells.executed`` and the tune loop
``tune.proposals``.  Instruments are plain attribute-increment objects (no
locks — the repo's fleet parallelism is process-based, each process holds
its own registry and ships aggregates, not instruments).

The disabled default is :data:`NULL_METRICS`, whose instruments are one
shared no-op object, so instrumented code needs no ``if`` guards and costs
one method call per event when observability is off.
"""

from __future__ import annotations

from typing import Iterable

__all__ = [
    "Counter",
    "Gauge",
    "MetricsRegistry",
    "NullMetricsRegistry",
    "NULL_METRICS",
]


def _label_key(labels: dict) -> tuple:
    return tuple(sorted(labels.items()))


class Counter:
    """Monotonically increasing count (int or float amounts)."""

    __slots__ = ("name", "labels", "value")
    kind = "counter"

    def __init__(self, name: str, labels: dict) -> None:
        self.name = name
        self.labels = labels
        self.value: float = 0

    def inc(self, amount: float = 1) -> None:
        self.value += amount


class Gauge:
    """Last-written value (worker counts, Pareto-front sizes, ...)."""

    __slots__ = ("name", "labels", "value")
    kind = "gauge"

    def __init__(self, name: str, labels: dict) -> None:
        self.name = name
        self.labels = labels
        self.value: float = 0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1) -> None:
        self.value += amount


class MetricsRegistry:
    """Get-or-create instrument store keyed by ``(name, sorted labels)``."""

    enabled = True

    def __init__(self) -> None:
        self._instruments: dict[tuple, Counter | Gauge] = {}

    def _get(self, cls, name: str, labels: dict):
        key = (name, _label_key(labels))
        instrument = self._instruments.get(key)
        if instrument is None:
            instrument = cls(name, labels)
            self._instruments[key] = instrument
        elif not isinstance(instrument, cls):
            raise TypeError(
                f"metric {name!r}{labels or ''} already registered as "
                f"{instrument.kind}, not {cls.kind}"
            )
        return instrument

    def counter(self, name: str, **labels) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        return self._get(Gauge, name, labels)

    def instruments(self) -> Iterable[Counter | Gauge]:
        """All instruments, sorted by (name, labels) for stable output."""
        return [self._instruments[key] for key in sorted(self._instruments)]

    def snapshot(self) -> list[dict]:
        """Flat, JSON-ready rows — one per instrument."""
        return [
            {
                "name": instrument.name,
                "kind": instrument.kind,
                "labels": dict(instrument.labels),
                "value": instrument.value,
            }
            for instrument in self.instruments()
        ]

    def merge(self, snapshot: Iterable[dict]) -> None:
        """Fold a foreign snapshot in (counters add, gauges overwrite)."""
        for row in snapshot:
            cls = Counter if row.get("kind", "counter") == "counter" else Gauge
            instrument = self._get(cls, row["name"], dict(row.get("labels", {})))
            if cls is Counter:
                instrument.inc(row["value"])
            else:
                instrument.set(row["value"])


class NullMetricsRegistry(MetricsRegistry):
    """Disabled registry: every instrument is one shared no-op."""

    enabled = False

    class _NullInstrument:
        __slots__ = ()
        name = "null"
        kind = "null"
        labels: dict = {}
        value = 0

        def inc(self, amount: float = 1) -> None:
            pass

        def set(self, value: float) -> None:
            pass

    _INSTRUMENT = _NullInstrument()

    def __init__(self) -> None:
        super().__init__()

    def counter(self, name: str, **labels):
        return self._INSTRUMENT

    def gauge(self, name: str, **labels):
        return self._INSTRUMENT

    def instruments(self):
        return []

    def snapshot(self) -> list[dict]:
        return []

    def merge(self, snapshot) -> None:
        pass


#: Shared disabled registry — the default for every instrumented component.
NULL_METRICS = NullMetricsRegistry()
