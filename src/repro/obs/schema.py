"""Chrome trace-event schema validation (used by tests and the CI smoke job).

The trace-event format is loosely specified (Google's "Trace Event Format"
document); this module checks the invariants our exporter guarantees and
that ``chrome://tracing`` / Perfetto rely on to render a timeline at all:

* the document is a JSON object with a ``traceEvents`` list;
* every event is an object with a ``ph`` phase string;
* duration events (``B``/``E``/``X``) carry numeric ``ts`` and integer
  ``pid``/``tid``; ``B``/``X`` are named; ``X`` has a non-negative ``dur``;
* per ``(pid, tid)`` track, timestamps are monotonically non-decreasing and
  every ``B`` has a matching later ``E`` (properly nested, none left open).
"""

from __future__ import annotations

from typing import Any

__all__ = ["validate_chrome_trace", "assert_valid_chrome_trace"]

#: Phases that must carry ts/pid/tid.
_TIMED_PHASES = {"B", "E", "X", "C", "i", "I"}


def validate_chrome_trace(document: Any) -> list[str]:
    """Return a list of problems (empty means the trace is valid)."""
    problems: list[str] = []
    if not isinstance(document, dict):
        return [f"document must be a JSON object, got {type(document).__name__}"]
    events = document.get("traceEvents")
    if not isinstance(events, list):
        return ["document must hold a 'traceEvents' list"]

    tracks: dict[tuple, dict] = {}
    for index, event in enumerate(events):
        where = f"event {index}"
        if not isinstance(event, dict):
            problems.append(f"{where}: not an object")
            continue
        phase = event.get("ph")
        if not isinstance(phase, str) or not phase:
            problems.append(f"{where}: missing 'ph' phase")
            continue
        if phase not in _TIMED_PHASES:
            continue  # metadata and async/flow events are out of scope
        ts = event.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            problems.append(f"{where}: ph={phase} needs a non-negative numeric 'ts'")
            continue
        if not isinstance(event.get("pid"), int) or not isinstance(event.get("tid"), int):
            problems.append(f"{where}: ph={phase} needs integer 'pid' and 'tid'")
            continue
        if phase in ("B", "X") and not isinstance(event.get("name"), str):
            problems.append(f"{where}: ph={phase} needs a 'name'")
        if phase == "X":
            duration = event.get("dur")
            if not isinstance(duration, (int, float)) or duration < 0:
                problems.append(f"{where}: ph=X needs a non-negative 'dur'")

        track = tracks.setdefault(
            (event["pid"], event["tid"]), {"last_ts": None, "stack": []}
        )
        if track["last_ts"] is not None and ts < track["last_ts"]:
            problems.append(
                f"{where}: ts {ts} goes backwards on track "
                f"(pid={event['pid']}, tid={event['tid']}, last {track['last_ts']})"
            )
        track["last_ts"] = ts
        if phase == "B":
            track["stack"].append((event.get("name"), ts, index))
        elif phase == "E":
            if not track["stack"]:
                problems.append(
                    f"{where}: E without a matching B on track "
                    f"(pid={event['pid']}, tid={event['tid']})"
                )
            else:
                name, begin_ts, _ = track["stack"].pop()
                if ts < begin_ts:
                    problems.append(f"{where}: E at {ts} before its B at {begin_ts}")
                ename = event.get("name")
                if isinstance(ename, str) and isinstance(name, str) and ename != name:
                    problems.append(
                        f"{where}: E named {ename!r} closes B named {name!r}"
                    )

    for (pid, tid), track in sorted(tracks.items()):
        for name, _, index in track["stack"]:
            problems.append(
                f"event {index}: B {name!r} never closed on track (pid={pid}, tid={tid})"
            )
    return problems


def assert_valid_chrome_trace(document: Any) -> None:
    """Raise ``AssertionError`` listing every schema violation found."""
    problems = validate_chrome_trace(document)
    if problems:
        raise AssertionError(
            "invalid Chrome trace:\n" + "\n".join(f"  - {p}" for p in problems)
        )
