"""`repro.obs` — zero-cost-when-disabled observability for the whole stack.

Three layers, all defaulting to disabled no-ops:

* :mod:`repro.obs.tracer` — hierarchical span tracing
  (``inference → layer → phase-op`` in the GNNIE executor,
  ``sweep → cell`` in the fleet runner), carrying both host wall time and
  modeled attribution (cycles / MACs / DRAM bytes / energy);
* :mod:`repro.obs.metrics` — a counter/gauge registry fed by the cache
  miss-path hierarchy, the sweep runner and the tune loop;
* :mod:`repro.obs.export` — Chrome-trace/Perfetto JSON (validated by
  :mod:`repro.obs.schema`), metrics JSON/CSV dumps and flame-style tables.

Surfaced by ``repro profile`` and the ``--trace`` flag on
``repro sweep`` / ``repro tune``.
"""

from repro.obs.export import (
    chrome_trace_document,
    chrome_trace_events,
    flame_rows,
    metrics_to_csv,
    metrics_to_json,
    write_chrome_trace,
)
from repro.obs.metrics import (
    NULL_METRICS,
    Counter,
    Gauge,
    MetricsRegistry,
    NullMetricsRegistry,
)
from repro.obs.schema import assert_valid_chrome_trace, validate_chrome_trace
from repro.obs.tracer import NULL_TRACER, NullTracer, Span, SpanRecord, Tracer

__all__ = [
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "Span",
    "SpanRecord",
    "MetricsRegistry",
    "NullMetricsRegistry",
    "NULL_METRICS",
    "Counter",
    "Gauge",
    "chrome_trace_events",
    "chrome_trace_document",
    "write_chrome_trace",
    "metrics_to_json",
    "metrics_to_csv",
    "flame_rows",
    "validate_chrome_trace",
    "assert_valid_chrome_trace",
]
