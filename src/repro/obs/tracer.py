"""Hierarchical span tracer: who spent the time, host-side and modeled.

A :class:`Tracer` records a tree of :class:`SpanRecord`\\ s — ``inference →
layer → phase-op`` for a single simulation, ``sweep → cell → inference`` for
a fleet run.  Every span carries two kinds of attribution:

* **host** — wall-clock start/end captured with ``time.perf_counter`` (the
  simulator's own Python cost, what a profiler of the *reproduction* sees);
* **modeled** — attributes the instrumented code attaches (``cycles``,
  ``mac_operations``, ``dram_bytes``, ``energy_pj`` from the phase records,
  what the *modeled accelerator* spends).

The default everywhere is :data:`NULL_TRACER`, whose ``span()`` returns one
shared no-op context manager: no allocation per span beyond the call's
argument tuple, no recording, no timing — the instrumented code paths are
byte-identical to their un-instrumented behavior (pinned by the golden and
sweep byte-identity tests).

Spans are plain picklable dataclasses so worker processes can ship their
segments back to the parent (:meth:`Tracer.absorb`); start/end times are
anchored to the Unix epoch (``time.time`` at tracer creation plus
``perf_counter`` offsets), so segments recorded in different processes merge
onto one timeline.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Iterable

__all__ = ["SpanRecord", "Span", "Tracer", "NullTracer", "NULL_TRACER"]


@dataclass
class SpanRecord:
    """One finished (or still-open) span."""

    span_id: int
    parent_id: int | None
    name: str
    category: str
    #: Unix-epoch-anchored start/end, seconds (monotonic within a process).
    start_s: float
    end_s: float
    pid: int
    attrs: dict = field(default_factory=dict)

    @property
    def duration_s(self) -> float:
        return max(0.0, self.end_s - self.start_s)

    def as_dict(self) -> dict:
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "category": self.category,
            "start_s": self.start_s,
            "end_s": self.end_s,
            "pid": self.pid,
            "attrs": dict(self.attrs),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SpanRecord":
        return cls(
            span_id=data["span_id"],
            parent_id=data["parent_id"],
            name=data["name"],
            category=data["category"],
            start_s=data["start_s"],
            end_s=data["end_s"],
            pid=data["pid"],
            attrs=dict(data.get("attrs", {})),
        )


class Span:
    """Context manager for one live span; ``set()`` attaches attribution.

    The record stays referenced after ``__exit__``, so instrumented code can
    attach *final* modeled attribution once it is known (the GNNIE executor
    re-derives memory stalls at layer level after every op has run).
    """

    __slots__ = ("_tracer", "record")

    def __init__(self, tracer: "Tracer", record: SpanRecord) -> None:
        self._tracer = tracer
        self.record = record

    def set(self, **attrs) -> None:
        """Attach (or overwrite) attribution attributes."""
        self.record.attrs.update(attrs)

    def __enter__(self) -> "Span":
        self._tracer._enter(self.record)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._tracer._exit(self.record)
        return False


class Tracer:
    """Collects a span tree for one process (single-threaded use)."""

    enabled = True

    def __init__(self) -> None:
        self._records: list[SpanRecord] = []
        self._stack: list[int] = []
        self._next_id = 1
        self._pid = os.getpid()
        #: Offset converting ``perf_counter`` readings to Unix-epoch seconds.
        self._epoch_offset = time.time() - time.perf_counter()  # repro-check: disable=D102 (display-only epoch anchor)

    # ------------------------------------------------------------------ #
    # Span lifecycle
    # ------------------------------------------------------------------ #
    def span(self, name: str, category: str = "span", **attrs) -> Span:
        """Open a span; use as ``with tracer.span("layer0") as s:``."""
        record = SpanRecord(
            span_id=self._next_id,
            parent_id=self._stack[-1] if self._stack else None,
            name=name,
            category=category,
            start_s=0.0,
            end_s=0.0,
            pid=self._pid,
            attrs=dict(attrs),
        )
        self._next_id += 1
        return Span(self, record)

    def _enter(self, record: SpanRecord) -> None:
        self._stack.append(record.span_id)
        record.start_s = self._now()

    def _exit(self, record: SpanRecord) -> None:
        record.end_s = self._now()
        if self._stack and self._stack[-1] == record.span_id:
            self._stack.pop()
        self._records.append(record)

    def _now(self) -> float:
        return self._epoch_offset + time.perf_counter()

    # ------------------------------------------------------------------ #
    # Access / merging
    # ------------------------------------------------------------------ #
    @property
    def records(self) -> list[SpanRecord]:
        """Finished spans, in completion order."""
        return self._records

    def absorb(self, records: Iterable[SpanRecord | dict]) -> None:
        """Merge foreign span records (e.g. a worker process's segment).

        Absorbed spans keep their own ids/parents and pid — they form their
        own subtree on their own timeline track; only local span-id
        collisions are avoided by namespacing nothing (consumers group by
        ``(pid, span_id)``).
        """
        for record in records:
            if isinstance(record, dict):
                record = SpanRecord.from_dict(record)
            self._records.append(record)


class NullTracer:
    """The zero-cost disabled tracer: one shared no-op span for every call."""

    enabled = False
    records: tuple = ()

    class _NullSpan:
        __slots__ = ()

        def __enter__(self):
            return self

        def __exit__(self, exc_type, exc, tb):
            return False

        def set(self, **attrs) -> None:
            pass

    _SPAN = _NullSpan()

    def span(self, name: str, category: str = "span", **attrs):
        return self._SPAN

    def absorb(self, records) -> None:
        pass


#: Shared disabled tracer — the default for every instrumented component.
NULL_TRACER = NullTracer()
