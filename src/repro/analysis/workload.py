"""Per-CPE-row Weighting workload profiles (Fig. 16) and the β metric (Fig. 17).

Fig. 16 plots the cycles each CPE row needs during Weighting for three
policies — the position-based baseline, Flexible MAC binning (FM), and FM
plus Load Redistribution (FM+LR) — showing that each step flattens the
profile and lowers the maximum.  Fig. 17 defines

    β = (baseline cycles − design cycles) / (design MACs − baseline MACs),

the speedup gain per added MAC, and shows that the flexible-MAC design E
achieves a much higher β than uniformly adding MACs (designs B–D).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.graph import Graph
from repro.hw.config import AcceleratorConfig, design_preset
from repro.mapping.binning import baseline_assignment, flexible_mac_assignment
from repro.mapping.load_redistribution import redistribute_load
from repro.sparse.feature_matrix import block_nonzero_counts

__all__ = ["RowWorkloadProfile", "weighting_row_profile", "beta_metric", "design_beta_study"]


@dataclass(frozen=True)
class RowWorkloadProfile:
    """Per-row Weighting cycles under the three balancing policies."""

    dataset: str
    baseline_cycles: np.ndarray
    fm_cycles: np.ndarray
    fm_lr_cycles: np.ndarray

    @staticmethod
    def _imbalance(cycles: np.ndarray) -> float:
        mean = float(cycles.mean()) if cycles.size else 0.0
        return float(cycles.max() / mean) if mean else 1.0

    @property
    def baseline_imbalance(self) -> float:
        return self._imbalance(self.baseline_cycles)

    @property
    def fm_imbalance(self) -> float:
        return self._imbalance(self.fm_cycles)

    @property
    def fm_lr_imbalance(self) -> float:
        return self._imbalance(self.fm_lr_cycles)

    @property
    def fm_cycle_reduction(self) -> float:
        """Fractional reduction of the pass-gating (max) cycles from FM."""
        baseline_max = float(self.baseline_cycles.max())
        if baseline_max == 0:
            return 0.0
        return 1.0 - float(self.fm_cycles.max()) / baseline_max

    @property
    def fm_lr_cycle_reduction(self) -> float:
        baseline_max = float(self.baseline_cycles.max())
        if baseline_max == 0:
            return 0.0
        return 1.0 - float(self.fm_lr_cycles.max()) / baseline_max


def weighting_row_profile(
    graph: Graph, config: AcceleratorConfig | None = None
) -> RowWorkloadProfile:
    """Compute the Fig. 16 per-row cycle profile for one dataset."""
    cfg = config or AcceleratorConfig()
    block_size = -(-graph.feature_length // cfg.num_rows)
    blocks = block_nonzero_counts(graph.features, block_size)
    # The baseline design uses 4 MACs/CPE uniformly (Design A).
    baseline_cfg = design_preset("A")
    baseline = baseline_assignment(blocks, baseline_cfg)
    fm = flexible_mac_assignment(blocks, cfg)
    lr = redistribute_load(fm.row_cycles)
    return RowWorkloadProfile(
        dataset=graph.name,
        baseline_cycles=baseline.row_cycles,
        fm_cycles=fm.row_cycles,
        fm_lr_cycles=lr.cycles_after,
    )


def beta_metric(
    baseline_cycles: int, design_cycles: int, baseline_macs: int, design_macs: int
) -> float:
    """β = cycle reduction per added MAC (Eq. (9) of the paper)."""
    added_macs = design_macs - baseline_macs
    if added_macs <= 0:
        raise ValueError("the design must add MACs relative to the baseline")
    return (baseline_cycles - design_cycles) / added_macs


def design_beta_study(graph: Graph, designs: tuple[str, ...] = ("B", "C", "D", "E")) -> dict[str, float]:
    """β of each named design relative to Design A for one dataset (Fig. 17).

    The cycle count used is the pass-gating Weighting cycle count (the
    maximum per-row cycles), which is what added MACs buy down.
    """
    baseline_cfg = design_preset("A")
    block_size = -(-graph.feature_length // baseline_cfg.num_rows)
    blocks = block_nonzero_counts(graph.features, block_size)
    baseline = baseline_assignment(blocks, baseline_cfg)
    baseline_cycles = baseline.max_cycles
    baseline_macs = baseline_cfg.total_macs

    betas: dict[str, float] = {}
    for name in designs:
        cfg = design_preset(name)
        if cfg.enable_flexible_mac:
            assignment = flexible_mac_assignment(blocks, cfg)
        else:
            assignment = baseline_assignment(blocks, cfg)
        betas[name] = beta_metric(
            baseline_cycles, assignment.max_cycles, baseline_macs, cfg.total_macs
        )
    return betas
