"""Speedup and energy-efficiency comparison helpers (Figs. 12, 13, 15)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.baselines.platform import PlatformModel, PlatformResult
from repro.graph.graph import Graph
from repro.plan.lowering import lower
from repro.sim.results import InferenceResult

__all__ = ["SpeedupEntry", "compare_against_platform", "geometric_mean", "speedup_table"]


@dataclass(frozen=True)
class SpeedupEntry:
    """GNNIE versus one baseline platform for one (dataset, model) pair."""

    dataset: str
    model: str
    platform: str
    gnnie_latency_s: float
    baseline_latency_s: float
    gnnie_energy_j: float
    baseline_energy_j: float

    @property
    def speedup(self) -> float:
        if self.gnnie_latency_s <= 0:
            return float("inf")
        return self.baseline_latency_s / self.gnnie_latency_s

    @property
    def energy_efficiency_gain(self) -> float:
        if self.gnnie_energy_j <= 0:
            return float("inf")
        return self.baseline_energy_j / self.gnnie_energy_j


def compare_against_platform(
    gnnie_result: InferenceResult,
    graph: Graph,
    platform: PlatformModel,
    *,
    out_features: int | None = None,
) -> SpeedupEntry:
    """Evaluate one baseline platform on the same plan and form the ratio."""
    plan = lower(gnnie_result.model.lower(), graph, out_features=out_features)
    baseline: PlatformResult = platform.execute(plan, graph)
    return SpeedupEntry(
        dataset=graph.name,
        model=gnnie_result.model,
        platform=platform.name,
        gnnie_latency_s=gnnie_result.latency_seconds,
        baseline_latency_s=baseline.latency_seconds,
        gnnie_energy_j=gnnie_result.energy_joules,
        baseline_energy_j=baseline.energy_joules,
    )


def geometric_mean(values: list[float]) -> float:
    """Geometric mean (the paper's "average speedup" across datasets)."""
    array = np.asarray([value for value in values if value > 0], dtype=np.float64)
    if array.size == 0:
        return 0.0
    return float(np.exp(np.mean(np.log(array))))


def speedup_table(entries: list[SpeedupEntry]) -> dict[str, dict[str, float]]:
    """Nested {model: {dataset: speedup}} mapping for reporting."""
    table: dict[str, dict[str, float]] = {}
    for entry in entries:
        table.setdefault(entry.model, {})[entry.dataset] = entry.speedup
    return table
