"""Mechanism-ablation tables for the miss-path hierarchy.

These helpers back the ``repro cache`` CLI subcommand and the
``benchmarks/test_ablation_miss_path.py`` table: they run the hit-path
policy simulators with trace collection, filter each trace through victim
cache / miss cache / stream buffer configurations, and emit rows ready for
:func:`repro.analysis.format_table` — one row per (policy, mechanism) with
the snippet-1 statistics (accesses, hits, hit rate) plus the recovered
random-DRAM traffic.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, Iterable, Sequence

from repro.cache.controller import DegreeAwareCacheController, simulate_vertex_order_baseline
from repro.cache.hierarchy import MissPathConfig, MissPathHierarchy
from repro.cache.policies import (
    simulate_lru_policy,
    simulate_mru_policy,
    simulate_static_partition_policy,
)
from repro.cache.policy import CachePolicyConfig, CacheSimulationResult
from repro.graph.csr import CSRGraph

__all__ = [
    "TRACE_POLICIES",
    "simulate_policy_with_trace",
    "miss_path_ablation_rows",
]


def _degree_aware_with_trace(
    adjacency: CSRGraph, capacity: int, bytes_per_vertex: int, gamma: int
) -> CacheSimulationResult:
    controller = DegreeAwareCacheController(
        adjacency,
        CachePolicyConfig(capacity_vertices=capacity, gamma=gamma),
        bytes_per_vertex=bytes_per_vertex,
    )
    return controller.run(collect_trace=True)


#: Hit-path policies that can emit a miss/eviction trace, by name.
TRACE_POLICIES: dict[str, Callable[..., CacheSimulationResult]] = {
    "vertex_order": lambda adjacency, capacity, bytes_per_vertex, gamma: (
        simulate_vertex_order_baseline(
            adjacency, capacity, bytes_per_vertex=bytes_per_vertex, collect_trace=True
        )
    ),
    "lru": lambda adjacency, capacity, bytes_per_vertex, gamma: simulate_lru_policy(
        adjacency, capacity, bytes_per_vertex=bytes_per_vertex, collect_trace=True
    ),
    "mru": lambda adjacency, capacity, bytes_per_vertex, gamma: simulate_mru_policy(
        adjacency, capacity, bytes_per_vertex=bytes_per_vertex, collect_trace=True
    ),
    "static_partition": lambda adjacency, capacity, bytes_per_vertex, gamma: (
        simulate_static_partition_policy(
            adjacency, capacity, bytes_per_vertex=bytes_per_vertex, collect_trace=True
        )
    ),
    "degree_aware": _degree_aware_with_trace,
}


def simulate_policy_with_trace(
    adjacency: CSRGraph,
    policy: str,
    capacity: int,
    *,
    bytes_per_vertex: int = 256,
    gamma: int = 5,
) -> CacheSimulationResult:
    """Run one named hit-path policy with miss/eviction trace collection."""
    try:
        simulator = TRACE_POLICIES[policy]
    except KeyError:
        raise KeyError(
            f"unknown cache policy {policy!r}; known: {sorted(TRACE_POLICIES)}"
        ) from None
    return simulator(adjacency, capacity, bytes_per_vertex, gamma)


def miss_path_ablation_rows(
    adjacency: CSRGraph,
    *,
    capacity: int,
    bytes_per_vertex: int = 256,
    policies: Sequence[str] = ("vertex_order",),
    mechanisms: Iterable[str] = ("victim", "miss", "stream"),
    miss_config: MissPathConfig | None = None,
    gamma: int = 5,
    dataset: str | None = None,
) -> list[dict[str, object]]:
    """One table row per (policy, mechanism), plus a combined row.

    Mechanisms are probed in parallel, so each mechanism's hit mask is
    independent of its co-residents: one combined hierarchy filter per
    policy yields both the per-mechanism statistics (each mechanism's own
    hits are exactly the random DRAM accesses it would avoid alone) and the
    union row (:meth:`~repro.cache.hierarchy.HierarchyResult.rows`).
    ``sequential_fetches`` is repeated on every row so ablations can assert
    the hit path was left untouched.
    """
    sizing = miss_config or MissPathConfig()
    mechanism_list = tuple(mechanisms)
    hierarchy = MissPathHierarchy(replace(sizing, mechanisms=mechanism_list))
    rows: list[dict[str, object]] = []
    for policy in policies:
        result = simulate_policy_with_trace(
            adjacency, policy, capacity, bytes_per_vertex=bytes_per_vertex, gamma=gamma
        )
        trace = result.trace
        assert trace is not None
        outcome = hierarchy.filter(trace)
        for mechanism_row in outcome.rows():
            row: dict[str, object] = {}
            if dataset is not None:
                row["dataset"] = dataset
            row["policy"] = policy
            row.update(mechanism_row)
            row["dram_random_remaining"] = int(row["accesses"]) - int(row["hits"])
            row["sequential_fetches"] = result.vertex_fetches
            rows.append(row)
    return rows
