"""α-distribution analysis across cache Rounds (Fig. 10 of the paper).

Fig. 10 shows the histogram of the unprocessed-edge counters α of the
vertices still in flight after each Round of the degree-aware caching policy
on Pubmed: the initial distribution follows the power-law degree
distribution, and each successive Round flattens it — both the peak
frequency and the maximum α drop — demonstrating that the policy works down
the power-law tail round by round.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cache.policy import CacheSimulationResult

__all__ = ["AlphaRoundHistogram", "alpha_round_histograms"]


@dataclass(frozen=True)
class AlphaRoundHistogram:
    """Histogram of α values of unfinished vertices after one Round."""

    round_index: int
    bin_edges: np.ndarray
    counts: np.ndarray
    max_alpha: int
    peak_frequency: int
    unfinished_vertices: int


def alpha_round_histograms(
    result: CacheSimulationResult, *, num_bins: int = 30
) -> list[AlphaRoundHistogram]:
    """Per-Round α histograms from a cache simulation result.

    The bin edges are shared across rounds (derived from the first-round
    snapshot) so the flattening is directly comparable, as in Fig. 10.
    """
    histograms: list[AlphaRoundHistogram] = []
    if not result.alpha_round_snapshots:
        return histograms
    first = result.alpha_round_snapshots[0]
    max_alpha = int(first.max()) if first.size else 1
    edges = np.linspace(0, max(max_alpha, 1), num_bins + 1)
    for round_index, snapshot in enumerate(result.alpha_round_snapshots, start=1):
        counts, _ = np.histogram(snapshot, bins=edges)
        histograms.append(
            AlphaRoundHistogram(
                round_index=round_index,
                bin_edges=edges,
                counts=counts,
                max_alpha=int(snapshot.max()) if snapshot.size else 0,
                peak_frequency=int(counts.max()) if counts.size else 0,
                unfinished_vertices=int(snapshot.size),
            )
        )
    return histograms
