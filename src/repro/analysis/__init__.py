"""Analysis and reporting helpers backing the figure/table reproductions."""

from repro.analysis.alpha_rounds import AlphaRoundHistogram, alpha_round_histograms
from repro.analysis.miss_path import (
    TRACE_POLICIES,
    miss_path_ablation_rows,
    simulate_policy_with_trace,
)
from repro.analysis.reporting import format_scientific, format_series, format_table
from repro.analysis.roofline import PhaseRoofline, RooflineSummary, roofline_analysis
from repro.analysis.sparsity import NonzeroHistogram, feature_nonzero_histogram
from repro.analysis.speedup import (
    SpeedupEntry,
    compare_against_platform,
    geometric_mean,
    speedup_table,
)
from repro.analysis.sweep_aggregate import (
    backend_geomeans,
    beta_rows,
    design_points_from_rows,
    geomean_table_rows,
    load_rows,
    pareto_rows,
    speedup_rows,
)
from repro.analysis.tune_report import tune_report, tune_table_rows
from repro.analysis.workload import (
    RowWorkloadProfile,
    beta_metric,
    design_beta_study,
    weighting_row_profile,
)

__all__ = [
    "AlphaRoundHistogram",
    "alpha_round_histograms",
    "TRACE_POLICIES",
    "miss_path_ablation_rows",
    "simulate_policy_with_trace",
    "NonzeroHistogram",
    "PhaseRoofline",
    "RooflineSummary",
    "roofline_analysis",
    "feature_nonzero_histogram",
    "SpeedupEntry",
    "compare_against_platform",
    "geometric_mean",
    "speedup_table",
    "backend_geomeans",
    "beta_rows",
    "design_points_from_rows",
    "geomean_table_rows",
    "load_rows",
    "pareto_rows",
    "speedup_rows",
    "tune_report",
    "tune_table_rows",
    "RowWorkloadProfile",
    "weighting_row_profile",
    "beta_metric",
    "design_beta_study",
    "format_table",
    "format_series",
    "format_scientific",
]
