"""Store-backed reporting for autotuning runs (`repro.tune`).

A tuning run leaves its evaluated cells in the same JSONL
:class:`~repro.sweep.store.ResultStore` format as any sweep, so the report
is a pure function of the store — rebuild it any time, from any process,
without re-simulating:

* the latency/area Pareto front among the evaluated designs,
* β versus the baseline design (Eq. 9, the Fig. 17 metric) for every
  design, and the best-β winner,
* per-backend geometric means, when the store also holds baseline-platform
  rows (a tuner store sweeping only GNNIE reports an empty table).
"""

from __future__ import annotations

import os
from typing import Iterable

from repro.analysis.sweep_aggregate import (
    backend_geomeans,
    beta_rows,
    design_points_from_rows,
    load_rows,
    pareto_rows,
)
from repro.hw.config import AcceleratorConfig
from repro.sweep.store import ResultStore

__all__ = ["tune_report", "tune_table_rows"]


def tune_report(
    store: ResultStore | str | os.PathLike | Iterable[dict],
    *,
    dataset: str | None = None,
    family: str | None = None,
    baseline: AcceleratorConfig | str = "Design A",
) -> dict:
    """Aggregate a (finished or in-progress) tuning store into one report.

    Args:
        store: A result store, its path, or an iterable of rows.
        dataset / family: Optional filters when one store mixes workloads.
        baseline: β reference — a config matched by content or a design
            name; designs adding no MACs over it carry a null β.

    Returns:
        A dict with ``cells`` (GNNIE rows aggregated), ``best`` (highest-β
        entry or None), ``beta`` (every design, best first), ``pareto``
        (front, fastest first) and ``geomeans``.
    """
    if isinstance(store, (str, os.PathLike, ResultStore)):
        rows = load_rows(store)
    else:
        rows = list(store)
    if dataset is not None:
        rows = [row for row in rows if row["dataset"] == dataset.lower()]
    if family is not None:
        rows = [row for row in rows if row["family"] == family.lower()]

    points = design_points_from_rows(rows)
    try:
        betas = beta_rows(rows, baseline=baseline) if points else []
    except ValueError:
        # The baseline was not part of this store (e.g. a filtered view).
        betas = []
    best = next((entry for entry in betas if entry["beta"] is not None), None)
    front = pareto_rows(rows)
    return {
        "cells": len(points),
        "best": best,
        "beta": betas,
        "pareto": [
            {
                "name": point.name,
                "total_macs": point.total_macs,
                "cycles": point.cycles,
                "area_mm2": round(point.area_mm2, 3),
                "latency_us": round(point.latency_seconds * 1e6, 3),
            }
            for point in front
        ],
        "geomeans": backend_geomeans(rows),
    }


def tune_table_rows(report: dict, *, limit: int = 10) -> list[dict]:
    """The report's β ranking as printable table rows (CLI, benchmarks)."""
    rows = []
    for entry in report["beta"][:limit]:
        rows.append(
            {
                "design": entry["name"],
                "total_macs": entry["total_macs"],
                "cycles": entry["cycles"],
                "area_mm2": round(entry["area_mm2"], 3),
                "beta": None if entry["beta"] is None else round(entry["beta"], 4),
            }
        )
    return rows
