"""Roofline / bottleneck analysis of simulated inferences.

Given an :class:`~repro.sim.results.InferenceResult`, classify every phase of
every layer as compute-bound or memory-bound, compute its arithmetic
intensity (MACs per DRAM byte), and summarize where the cycles go.  This is
the analysis behind statements such as "Weighting is not memory-bounded"
(Section IV-A) and explains the utilization differences across datasets in
Table IV.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw.config import AcceleratorConfig
from repro.sim.results import InferenceResult, PhaseResult

__all__ = ["PhaseRoofline", "RooflineSummary", "roofline_analysis"]


@dataclass(frozen=True)
class PhaseRoofline:
    """Bottleneck classification of one phase of one layer."""

    layer_index: int
    phase: str
    compute_cycles: int
    streaming_memory_cycles: int
    exposed_stall_cycles: int
    arithmetic_intensity: float
    bound: str

    @property
    def total_cycles(self) -> int:
        return self.compute_cycles + self.exposed_stall_cycles


@dataclass(frozen=True)
class RooflineSummary:
    """Whole-inference roofline summary."""

    phases: tuple[PhaseRoofline, ...]
    machine_balance_macs_per_byte: float

    @property
    def compute_bound_fraction(self) -> float:
        """Fraction of total cycles spent in compute-bound phases."""
        total = sum(phase.total_cycles for phase in self.phases)
        if total == 0:
            return 0.0
        compute_bound = sum(
            phase.total_cycles for phase in self.phases if phase.bound == "compute"
        )
        return compute_bound / total

    def dominant_phase(self) -> str:
        """Name of the phase type consuming the most cycles."""
        totals: dict[str, int] = {}
        for phase in self.phases:
            totals[phase.phase] = totals.get(phase.phase, 0) + phase.total_cycles
        return max(totals, key=totals.get)


def _classify(phase: PhaseResult, machine_balance: float) -> tuple[float, str]:
    dram_bytes = max(1, phase.dram_bytes)
    intensity = phase.mac_operations / dram_bytes
    busy = phase.compute_cycles + phase.sfu_cycles
    memory = phase.streaming_memory_cycles + phase.memory_stall_cycles
    if phase.memory_stall_cycles > 0 or (memory > busy and intensity < machine_balance):
        return intensity, "memory"
    return intensity, "compute"


def roofline_analysis(
    result: InferenceResult, config: AcceleratorConfig | None = None
) -> RooflineSummary:
    """Classify every phase of a simulated inference."""
    cfg = config or AcceleratorConfig()
    # Machine balance: MACs the array can retire per byte of DRAM bandwidth.
    machine_balance = cfg.total_macs / cfg.dram_bytes_per_cycle
    phases: list[PhaseRoofline] = []
    for layer in result.layers:
        for phase in layer.phases():
            intensity, bound = _classify(phase, machine_balance)
            phases.append(
                PhaseRoofline(
                    layer_index=layer.layer_index,
                    phase=phase.name,
                    compute_cycles=phase.compute_cycles + phase.sfu_cycles,
                    streaming_memory_cycles=phase.streaming_memory_cycles,
                    exposed_stall_cycles=phase.memory_stall_cycles,
                    arithmetic_intensity=round(intensity, 4),
                    bound=bound,
                )
            )
    return RooflineSummary(phases=tuple(phases), machine_balance_macs_per_byte=machine_balance)
