"""Store-backed aggregation over scenario-sweep result rows.

A finished sweep leaves one JSONL row per (dataset, family, backend,
config) cell in its :class:`~repro.sweep.store.ResultStore`.  This module
turns those rows back into the repo's analysis vocabulary without re-running
any simulation:

* :func:`design_points_from_rows` / :func:`pareto_rows` — rebuild
  :class:`~repro.sim.design_space.DesignPoint` objects from GNNIE rows and
  reuse :func:`~repro.sim.design_space.pareto_front` for the latency/area
  front of a configuration sweep,
* :func:`speedup_rows` / :func:`backend_geomeans` — GNNIE-relative speedups
  per (dataset, family) and the per-backend geometric means the paper
  headlines (Figs. 12–13), via :func:`~repro.analysis.speedup.geometric_mean`.
"""

from __future__ import annotations

import json
import math
import os
from typing import Iterable

from repro.analysis.speedup import geometric_mean
from repro.hw.config import AcceleratorConfig
from repro.sim.design_space import DesignPoint, pareto_front
from repro.sweep.matrix import config_from_dict
from repro.sweep.store import ResultStore, is_failed_row

__all__ = [
    "load_rows",
    "design_points_from_rows",
    "pareto_rows",
    "speedup_rows",
    "beta_rows",
    "backend_geomeans",
    "geomean_table_rows",
]


def _config_key(row: dict) -> str:
    """Content key of a row's serialized configuration.

    Reference rows used to be keyed by ``config_name``, so two distinct
    configurations sharing a display name (two ``replace()``-built variants
    both named "GNNIE") silently collapsed to whichever row came last; the
    canonical JSON of the full config dict cannot collide that way.
    """
    return json.dumps(row["config"], sort_keys=True, separators=(",", ":"))


def _axis_key(row: dict) -> tuple:
    """The full pairing key of a row: every axis that changes the workload.

    A GNNIE reference and a baseline row are comparable only when they ran
    the *same* simulation input — dataset name alone is not enough once a
    store holds several scales, seeds or chip counts of one dataset.  Keying
    on (dataset, scale, seed, chips, family, config) makes cross-scale or
    cross-seed pairing (the last-loaded-wins bug) impossible.
    """
    return (
        row["dataset"],
        row.get("scale"),
        row.get("seed"),
        row.get("chips", 1),
        row["family"],
        _config_key(row),
    )


def load_rows(store: ResultStore | str | os.PathLike) -> list[dict]:
    """All rows of a result store (accepts a store object or its path)."""
    if not isinstance(store, ResultStore):
        store = ResultStore(store)
    return list(store.rows())


def _gnnie_rows(rows: Iterable[dict]) -> list[dict]:
    return [
        row
        for row in rows
        if row["backend"] == "gnnie"
        and not is_failed_row(row)
        and row["supported"]
        and row["metrics"] is not None
    ]


def design_points_from_rows(rows: Iterable[dict]) -> list[DesignPoint]:
    """Rebuild design points from the GNNIE rows of a sweep.

    The row's serialized configuration round-trips back into an
    :class:`~repro.hw.config.AcceleratorConfig`, so downstream consumers
    (β studies, Pareto extraction) see the same objects a live
    :func:`~repro.sim.design_space.sweep_designs` call would produce.
    """
    points: list[DesignPoint] = []
    for row in _gnnie_rows(rows):
        config = config_from_dict(row["config"])
        metrics = row["metrics"]
        points.append(
            DesignPoint(
                name=config.name,
                config=config,
                total_macs=metrics["total_macs"],
                area_mm2=metrics["area_mm2"],
                cycles=metrics["cycles"],
                latency_seconds=metrics["latency_seconds"],
                energy_joules=metrics["energy_joules"],
            )
        )
    return points


def pareto_rows(rows: Iterable[dict]) -> list[DesignPoint]:
    """Latency/area Pareto-optimal designs among a sweep's GNNIE rows."""
    return pareto_front(design_points_from_rows(rows))


def beta_rows(
    rows: Iterable[dict], *, baseline: AcceleratorConfig | str = "Design A"
) -> list[dict]:
    """β (speedup gain per added MAC, Eq. 9) of every GNNIE design in a sweep.

    ``baseline`` selects the reference design — an
    :class:`~repro.hw.config.AcceleratorConfig` matched by content, or a
    design name matched against ``DesignPoint.name``.  Designs that add no
    MACs over the baseline (including the baseline itself) carry a null β,
    mirroring :meth:`~repro.sim.design_space.DesignPoint.beta_versus`.
    Entries are sorted by β, best first (nulls last).
    """
    points = design_points_from_rows(rows)
    if isinstance(baseline, str):
        references = [point for point in points if point.name == baseline]
    else:
        references = [point for point in points if point.config == baseline]
    if not references:
        raise ValueError(f"no GNNIE row matches the β baseline {baseline!r}")
    reference = references[0]
    entries = []
    for point in points:
        beta = point.beta_versus(reference)
        entries.append(
            {
                "name": point.name,
                "total_macs": point.total_macs,
                "cycles": point.cycles,
                "area_mm2": point.area_mm2,
                "beta": None if math.isnan(beta) else beta,
            }
        )
    entries.sort(key=lambda entry: (entry["beta"] is None, -(entry["beta"] or 0.0)))
    return entries


def speedup_rows(rows: Iterable[dict]) -> list[dict]:
    """GNNIE-relative speedup and energy-gain per workload and backend.

    For every (dataset, scale, seed, chips, family, config) with a GNNIE
    row, each supported baseline row becomes one entry: ``speedup`` is
    baseline latency over GNNIE latency, ``energy_gain`` the same ratio for
    energy — the quantities plotted in Figs. 12, 13 and 15.  Pairing uses
    the full :func:`_axis_key`, so a multi-scale/multi-seed store compares
    each baseline row against the GNNIE row of *its own* workload instead
    of whichever scale's reference loaded last; failed rows never pair.
    """
    rows = list(rows)
    gnnie = {_axis_key(row): row["metrics"] for row in _gnnie_rows(rows)}
    entries: list[dict] = []
    for row in rows:
        if (
            row["backend"] == "gnnie"
            or is_failed_row(row)
            or not row["supported"]
            or row["metrics"] is None
        ):
            continue
        reference = gnnie.get(_axis_key(row))
        if reference is None or reference["latency_seconds"] <= 0:
            continue
        metrics = row["metrics"]
        entries.append(
            {
                "dataset": row["dataset"],
                "scale": row.get("scale"),
                "seed": row.get("seed"),
                "family": row["family"],
                "backend": row["backend"],
                "speedup": metrics["latency_seconds"] / reference["latency_seconds"],
                "energy_gain": (
                    metrics["energy_joules"] / reference["energy_joules"]
                    if reference["energy_joules"] > 0
                    else float("inf")
                ),
            }
        )
    return entries


def backend_geomeans(rows: Iterable[dict]) -> dict[str, dict[str, float]]:
    """Per-backend geometric-mean speedup/energy-gain across all cells.

    Failed rows (``status="failed"``) are excluded from every ratio but
    surfaced per backend as a ``failed`` count, so a partially-broken sweep
    reads as "geomean over N cells, M failed" instead of silently shrinking
    its population.  A backend whose rows *all* failed still appears (zero
    cells, zero geomeans) rather than vanishing from the table.
    """
    rows = list(rows)
    failed_counts: dict[str, int] = {}
    for row in rows:
        if is_failed_row(row):
            backend = row["backend"]
            failed_counts[backend] = failed_counts.get(backend, 0) + 1
    entries = speedup_rows(rows)
    backends = sorted({entry["backend"] for entry in entries} | set(failed_counts))
    return {
        backend: {
            "geomean_speedup": geometric_mean(
                [e["speedup"] for e in entries if e["backend"] == backend]
            ),
            "geomean_energy_gain": geometric_mean(
                [e["energy_gain"] for e in entries if e["backend"] == backend]
            ),
            "cells": sum(1 for e in entries if e["backend"] == backend),
            "failed": failed_counts.get(backend, 0),
        }
        for backend in backends
    }


def geomean_table_rows(rows: Iterable[dict]) -> list[dict]:
    """The headline geomean summary as printable table rows (CLI, benchmarks)."""
    return [
        {
            "backend": backend,
            "cells": stats["cells"],
            "failed": stats["failed"],
            "gnnie_geomean_speedup": round(stats["geomean_speedup"], 2),
            "gnnie_geomean_energy_gain": round(stats["geomean_energy_gain"], 2),
        }
        for backend, stats in backend_geomeans(rows).items()
    ]
