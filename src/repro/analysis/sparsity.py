"""Feature-sparsity analysis (Fig. 2 of the paper).

Fig. 2 plots the histogram of nonzero counts of the input vertex feature
vectors of Cora: a broad distribution with a sparse "Region A" and a denser
"Region B", which is the source of the rabbit/turtle workload imbalance that
the Flexible MAC architecture addresses.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.graph import Graph

__all__ = ["NonzeroHistogram", "feature_nonzero_histogram"]


@dataclass(frozen=True)
class NonzeroHistogram:
    """Histogram of per-vertex feature nonzero counts."""

    bin_edges: np.ndarray
    counts: np.ndarray
    mean_nonzeros: float
    median_nonzeros: float
    max_nonzeros: int
    sparsity: float

    @property
    def num_vertices(self) -> int:
        return int(self.counts.sum())

    def spread_ratio(self) -> float:
        """90th-to-10th percentile ratio of nonzero counts.

        A large spread (Cora's histogram spans roughly 5x) is what creates
        rabbits and turtles; a ratio near 1 would mean uniform rows.
        """
        cumulative = np.cumsum(self.counts) / max(1, self.counts.sum())
        centers = 0.5 * (self.bin_edges[:-1] + self.bin_edges[1:])
        p10 = centers[np.searchsorted(cumulative, 0.1)]
        p90 = centers[min(np.searchsorted(cumulative, 0.9), centers.size - 1)]
        return float(p90 / max(p10, 1e-9))


def feature_nonzero_histogram(graph: Graph, *, num_bins: int = 40) -> NonzeroHistogram:
    """Compute the Fig. 2 histogram for a dataset graph."""
    nonzeros = graph.per_vertex_nonzeros()
    counts, edges = np.histogram(nonzeros, bins=num_bins)
    return NonzeroHistogram(
        bin_edges=edges,
        counts=counts,
        mean_nonzeros=float(nonzeros.mean()),
        median_nonzeros=float(np.median(nonzeros)),
        max_nonzeros=int(nonzeros.max()),
        sparsity=graph.feature_sparsity(),
    )
