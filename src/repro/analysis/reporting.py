"""Plain-text table/series formatting for benchmark output.

The benchmark harness prints the rows and series of every reproduced table
and figure; these helpers render dictionaries and row lists as aligned ASCII
tables so the benches are readable directly from the pytest output and from
``bench_output.txt``.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

__all__ = ["format_table", "format_series", "format_scientific"]


def format_scientific(value: float, digits: int = 2) -> str:
    """Compact scientific/engineering formatting for wide-range values."""
    if value == 0:
        return "0"
    if abs(value) >= 1e4 or abs(value) < 1e-3:
        return f"{value:.{digits}e}"
    if abs(value) >= 100:
        return f"{value:.0f}"
    return f"{value:.{digits}f}"


def format_table(
    rows: Sequence[Mapping[str, object]],
    *,
    title: str | None = None,
    columns: Sequence[str] | None = None,
) -> str:
    """Render a list of dict rows as an aligned ASCII table."""
    if not rows:
        return f"{title or 'table'}: (empty)"
    keys = list(columns) if columns is not None else list(rows[0].keys())
    rendered: list[list[str]] = []
    for row in rows:
        rendered.append(
            [
                format_scientific(value) if isinstance(value, float) else str(value)
                for value in (row.get(key, "") for key in keys)
            ]
        )
    widths = [
        max(len(key), max(len(line[index]) for line in rendered)) for index, key in enumerate(keys)
    ]
    lines = []
    if title:
        lines.append(title)
    header = " | ".join(key.ljust(width) for key, width in zip(keys, widths))
    lines.append(header)
    lines.append("-+-".join("-" * width for width in widths))
    for line in rendered:
        lines.append(" | ".join(cell.ljust(width) for cell, width in zip(line, widths)))
    return "\n".join(lines)


def format_series(
    series: Mapping[str, Iterable[float]] | Mapping[str, Mapping[str, float]],
    *,
    title: str | None = None,
) -> str:
    """Render named numeric series (one line per series)."""
    lines = []
    if title:
        lines.append(title)
    for name, values in series.items():
        if isinstance(values, Mapping):
            joined = ", ".join(
                f"{key}={format_scientific(float(value))}" for key, value in values.items()
            )
        else:
            joined = ", ".join(format_scientific(float(value)) for value in values)
        lines.append(f"  {name}: {joined}")
    return "\n".join(lines)
