"""Degree-aware vertex reordering and binning (GNNIE preprocessing).

The paper's graph-specific caching policy (Section VI) requires vertices to
be laid out contiguously in DRAM in *descending degree order* so that every
off-chip fetch is sequential: the highest-degree vertices are brought on chip
first, and replacement candidates are fetched from the next DRAM locations in
order.  The preprocessing is deliberately cheap — linear-time binning rather
than a full sort — and its cost is included in the paper's reported speedups.

This module provides:

* :func:`degree_ordering` — an exact descending-degree permutation with
  dictionary-order (vertex-id) tie breaking, matching the paper's statement
  that "ties are broken in dictionary order of vertex IDs".
* :func:`degree_binning` — the linear-time bin-based approximation the paper
  actually advocates for preprocessing cost accounting.
* :class:`ReorderResult` — permutation plus its inverse plus the bookkeeping
  needed to charge preprocessing time in the simulator.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.csr import CSRGraph

__all__ = ["ReorderResult", "degree_ordering", "degree_binning", "apply_vertex_permutation"]


@dataclass(frozen=True)
class ReorderResult:
    """Outcome of degree-aware vertex reordering.

    Attributes:
        permutation: ``permutation[new_id] = old_id`` — position ``i`` of the
            DRAM layout holds original vertex ``permutation[i]``.
        inverse: ``inverse[old_id] = new_id``.
        num_bins: Number of degree bins used (0 for exact sort).
        preprocessing_operations: Abstract operation count charged by the
            simulator for this preprocessing step (linear in |V|).
    """

    permutation: np.ndarray
    inverse: np.ndarray
    num_bins: int
    preprocessing_operations: int

    @property
    def num_vertices(self) -> int:
        return int(self.permutation.size)


def degree_ordering(graph: CSRGraph) -> ReorderResult:
    """Exact descending-degree ordering with vertex-id tie breaking."""
    degrees = graph.degrees()
    # np.lexsort sorts by the last key first; we want descending degree then
    # ascending vertex id.
    vertex_ids = np.arange(graph.num_vertices)
    permutation = np.lexsort((vertex_ids, -degrees)).astype(np.int64)
    inverse = np.empty_like(permutation)
    inverse[permutation] = np.arange(permutation.size)
    return ReorderResult(
        permutation=permutation,
        inverse=inverse,
        num_bins=0,
        preprocessing_operations=int(graph.num_vertices * max(1, np.log2(max(graph.num_vertices, 2)))),
    )


def degree_binning(graph: CSRGraph, num_bins: int = 8) -> ReorderResult:
    """Linear-time degree binning (the paper's preprocessing scheme).

    Vertices are placed into ``num_bins`` bins by degree (bin boundaries are
    logarithmically spaced between 1 and the maximum degree, which separates
    the hub vertices from the low-degree mass under a power law).  Bins are
    emitted from highest-degree to lowest-degree; within a bin the original
    vertex-id order is preserved (dictionary order), so the whole pass is a
    stable counting sort and costs O(|V| + num_bins).
    """
    if num_bins < 1:
        raise ValueError("num_bins must be at least 1")
    degrees = graph.degrees()
    max_degree = max(int(degrees.max()) if degrees.size else 1, 1)
    # Logarithmic bin edges: [1, ..., max_degree]; vertices with degree 0 go
    # to the last (lowest) bin.
    edges = np.unique(
        np.round(np.logspace(0, np.log10(max_degree + 1), num_bins + 1)).astype(np.int64)
    )
    bin_of = np.digitize(degrees, edges[1:-1], right=False)
    # bin_of is ascending with degree; emit descending.
    order_bins = np.argsort(-bin_of, kind="stable").astype(np.int64)
    inverse = np.empty_like(order_bins)
    inverse[order_bins] = np.arange(order_bins.size)
    return ReorderResult(
        permutation=order_bins,
        inverse=inverse,
        num_bins=int(edges.size - 1),
        preprocessing_operations=int(graph.num_vertices + num_bins),
    )


def apply_vertex_permutation(graph: CSRGraph, permutation: np.ndarray) -> CSRGraph:
    """Relabel the graph so that new vertex ``i`` is old vertex ``permutation[i]``."""
    permutation = np.asarray(permutation, dtype=np.int64)
    if permutation.size != graph.num_vertices:
        raise ValueError("permutation length must equal the number of vertices")
    if np.any(np.sort(permutation) != np.arange(graph.num_vertices)):
        raise ValueError("permutation must be a bijection over vertex ids")
    inverse = np.empty_like(permutation)
    inverse[permutation] = np.arange(permutation.size)
    edges = graph.edge_array()
    remapped = np.stack([inverse[edges[:, 0]], inverse[edges[:, 1]]], axis=1)
    return CSRGraph.from_edge_list(
        remapped, num_vertices=graph.num_vertices, symmetric=False, deduplicate=False
    )
