"""Vertex-set and multi-chip graph partitioning helpers.

The Weighting phase processes vertices in *sets* of ``s`` at a time, where
``s`` is bounded by the input buffer capacity (paper, Section IV-A), and the
Aggregation phase processes *subgraphs* induced by the vertices currently
resident in the input buffer (Section VI).  This module implements the simple
sequential-chunk partitioner for Weighting and buffer-capacity sizing helpers
shared by the Weighting and Aggregation schedulers.

It also implements the *chip-level* edge-cut partitioner used by
``repro.scaleout``: assign every vertex to one of N simulated GNNIE chips and
account the directed edges whose endpoints land on different chips (the
halo-exchange traffic each aggregation layer must pay for).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from repro.graph.csr import CSRGraph

__all__ = [
    "GraphPartition",
    "PARTITION_METHODS",
    "VertexSet",
    "partition_graph",
    "sequential_vertex_sets",
    "vertices_per_buffer",
]


@dataclass(frozen=True)
class VertexSet:
    """A contiguous chunk of vertex ids processed together in one pass."""

    index: int
    vertex_ids: np.ndarray

    @property
    def size(self) -> int:
        return int(self.vertex_ids.size)


def vertices_per_buffer(
    buffer_bytes: int,
    feature_length: int,
    *,
    bytes_per_value: int = 1,
    connectivity_overhead_bytes: int = 8,
) -> int:
    """How many vertices fit in an on-chip buffer.

    Each resident vertex needs its feature vector (``feature_length`` values)
    plus a small amount of connectivity metadata (CSR offsets and the
    unprocessed-edge counter α during Aggregation).

    Args:
        buffer_bytes: Buffer capacity in bytes.
        feature_length: Elements per vertex feature vector.
        bytes_per_value: Storage size of a feature element (the paper uses
            1-byte quantized weights/features for buffer sizing).
        connectivity_overhead_bytes: Per-vertex metadata bytes.

    Returns:
        Number of vertices, at least 1.
    """
    if buffer_bytes <= 0:
        raise ValueError("buffer_bytes must be positive")
    if feature_length <= 0:
        raise ValueError("feature_length must be positive")
    per_vertex = feature_length * bytes_per_value + connectivity_overhead_bytes
    return max(1, buffer_bytes // per_vertex)


def sequential_vertex_sets(num_vertices: int, set_size: int) -> Iterator[VertexSet]:
    """Yield ⌈|V| / s⌉ contiguous vertex sets of at most ``set_size`` vertices."""
    if num_vertices < 0:
        raise ValueError("num_vertices must be non-negative")
    if set_size <= 0:
        raise ValueError("set_size must be positive")
    for index, start in enumerate(range(0, num_vertices, set_size)):
        end = min(start + set_size, num_vertices)
        yield VertexSet(index=index, vertex_ids=np.arange(start, end, dtype=np.int64))


# --------------------------------------------------------------------------- #
# Multi-chip edge-cut partitioning
# --------------------------------------------------------------------------- #

#: Supported chip-partitioning strategies, in documentation order.
PARTITION_METHODS: tuple[str, ...] = ("chunk", "balanced")


@dataclass(frozen=True)
class GraphPartition:
    """An edge-cut assignment of every vertex to one of ``num_parts`` chips.

    Attributes:
        num_parts: Number of chips (parts).  Parts may be empty when the
            graph has fewer vertices than parts.
        method: Partitioning strategy that produced the assignment (one of
            :data:`PARTITION_METHODS`).
        assignments: ``(V,)`` int64 array mapping vertex id → owning part.
        parts: Per-part sorted arrays of owned vertex ids.
        cut_edges: Number of stored *directed* edges whose endpoints live on
            different parts (self-loops are never cut).
        halo_counts: Per-part count of *distinct* remote vertices whose
            features the part must receive to aggregate its owned vertices
            (its halo).
    """

    num_parts: int
    method: str
    assignments: np.ndarray = field(repr=False)
    parts: tuple[np.ndarray, ...] = field(repr=False)
    cut_edges: int
    halo_counts: tuple[int, ...]

    @property
    def num_vertices(self) -> int:
        return int(self.assignments.size)

    def part_sizes(self) -> tuple[int, ...]:
        """Owned-vertex count of every part."""
        return tuple(int(part.size) for part in self.parts)

    def imbalance(self) -> float:
        """``max(part size) / mean(non-zero ideal share)`` — 1.0 is perfect.

        Uses the ideal share ``V / num_parts`` as the denominator so an
        empty part still shows up as imbalance rather than hiding it.
        """
        if self.num_vertices == 0 or self.num_parts == 0:
            return 1.0
        ideal = self.num_vertices / self.num_parts
        return max(self.part_sizes()) / ideal

    def total_halo_vertices(self) -> int:
        """Sum of per-part halo sizes (remote features received, in vertices)."""
        return int(sum(self.halo_counts))


def partition_graph(
    adjacency: CSRGraph, num_parts: int, *, method: str = "chunk"
) -> GraphPartition:
    """Partition a CSR adjacency across ``num_parts`` chips (edge-cut).

    Methods:
        ``"chunk"``: contiguous vertex-id ranges via ``np.array_split`` —
            the degenerate-but-deterministic baseline matching the
            Weighting-phase sequential chunking.
        ``"balanced"``: deterministic greedy degree balancing — vertices in
            descending-degree order (ties by vertex id) each go to the part
            with the least accumulated degree (ties by part index), evening
            out aggregation work at the cost of locality.

    Both methods are pure functions of the graph content, so partitions are
    byte-reproducible across processes.
    """
    if num_parts < 1:
        raise ValueError("num_parts must be at least 1")
    if method not in PARTITION_METHODS:
        raise ValueError(
            f"unknown partition method {method!r}; expected one of {PARTITION_METHODS}"
        )
    num_vertices = adjacency.num_vertices
    assignments = np.zeros(num_vertices, dtype=np.int64)
    if method == "chunk":
        for part, chunk in enumerate(
            np.array_split(np.arange(num_vertices, dtype=np.int64), num_parts)
        ):
            assignments[chunk] = part
    else:  # balanced
        degrees = adjacency.degrees()
        # Descending degree, ascending vertex id on ties: np.argsort is
        # stable with kind="stable", so sorting -degrees keeps id order.
        order = np.argsort(-degrees, kind="stable")
        loads = np.zeros(num_parts, dtype=np.int64)
        counts = np.zeros(num_parts, dtype=np.int64)
        for vertex in order:
            # Least-loaded part; break degree ties toward the emptier part
            # so zero-degree tails still spread evenly, then by part index.
            part = int(np.lexsort((np.arange(num_parts), counts, loads))[0])
            assignments[vertex] = part
            loads[part] += degrees[vertex]
            counts[part] += 1
    parts = tuple(
        np.flatnonzero(assignments == part).astype(np.int64)
        for part in range(num_parts)
    )
    cut_edges, halo_counts = _cut_statistics(adjacency, assignments, num_parts)
    return GraphPartition(
        num_parts=num_parts,
        method=method,
        assignments=assignments,
        parts=parts,
        cut_edges=cut_edges,
        halo_counts=halo_counts,
    )


def _cut_statistics(
    adjacency: CSRGraph, assignments: np.ndarray, num_parts: int
) -> tuple[int, tuple[int, ...]]:
    """Vectorized cut-edge count and per-part distinct halo sizes.

    A directed stored edge ``(src, dst)`` is *cut* when its endpoints live on
    different parts; self-loops (``src == dst``) share a part by construction
    and are never cut.  The halo of part ``p`` is the set of distinct remote
    vertices ``dst`` appearing as a neighbor of some owned ``src`` — the
    features ``p`` must receive before it can aggregate.
    """
    if adjacency.num_edges == 0 or adjacency.num_vertices == 0:
        return 0, (0,) * num_parts
    src_all = np.repeat(
        np.arange(adjacency.num_vertices, dtype=np.int64), adjacency.degrees()
    )
    dst_all = adjacency.indices
    cross = assignments[src_all] != assignments[dst_all]
    cut_edges = int(np.count_nonzero(cross))
    if cut_edges == 0:
        return 0, (0,) * num_parts
    # Distinct (owning part, remote vertex) pairs, counted per part.
    keys = np.unique(
        assignments[src_all[cross]] * np.int64(adjacency.num_vertices)
        + dst_all[cross]
    )
    per_part = np.bincount(keys // adjacency.num_vertices, minlength=num_parts)
    return cut_edges, tuple(int(count) for count in per_part)
