"""Vertex-set partitioning helpers.

The Weighting phase processes vertices in *sets* of ``s`` at a time, where
``s`` is bounded by the input buffer capacity (paper, Section IV-A), and the
Aggregation phase processes *subgraphs* induced by the vertices currently
resident in the input buffer (Section VI).  This module implements the simple
sequential-chunk partitioner for Weighting and buffer-capacity sizing helpers
shared by the Weighting and Aggregation schedulers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

__all__ = ["VertexSet", "sequential_vertex_sets", "vertices_per_buffer"]


@dataclass(frozen=True)
class VertexSet:
    """A contiguous chunk of vertex ids processed together in one pass."""

    index: int
    vertex_ids: np.ndarray

    @property
    def size(self) -> int:
        return int(self.vertex_ids.size)


def vertices_per_buffer(
    buffer_bytes: int,
    feature_length: int,
    *,
    bytes_per_value: int = 1,
    connectivity_overhead_bytes: int = 8,
) -> int:
    """How many vertices fit in an on-chip buffer.

    Each resident vertex needs its feature vector (``feature_length`` values)
    plus a small amount of connectivity metadata (CSR offsets and the
    unprocessed-edge counter α during Aggregation).

    Args:
        buffer_bytes: Buffer capacity in bytes.
        feature_length: Elements per vertex feature vector.
        bytes_per_value: Storage size of a feature element (the paper uses
            1-byte quantized weights/features for buffer sizing).
        connectivity_overhead_bytes: Per-vertex metadata bytes.

    Returns:
        Number of vertices, at least 1.
    """
    if buffer_bytes <= 0:
        raise ValueError("buffer_bytes must be positive")
    if feature_length <= 0:
        raise ValueError("feature_length must be positive")
    per_vertex = feature_length * bytes_per_value + connectivity_overhead_bytes
    return max(1, buffer_bytes // per_vertex)


def sequential_vertex_sets(num_vertices: int, set_size: int) -> Iterator[VertexSet]:
    """Yield ⌈|V| / s⌉ contiguous vertex sets of at most ``set_size`` vertices."""
    if num_vertices < 0:
        raise ValueError("num_vertices must be non-negative")
    if set_size <= 0:
        raise ValueError("set_size must be positive")
    for index, start in enumerate(range(0, num_vertices, set_size)):
        end = min(start + set_size, num_vertices)
        yield VertexSet(index=index, vertex_ids=np.arange(start, end, dtype=np.int64))
