"""Synthetic graph topology generators.

The benchmark datasets of the paper (Table II) are real-world graphs with
power-law vertex degree distributions: most vertices have very low degree and
a handful have extremely high degree (e.g. in Reddit, 11% of vertices cover
88% of all edges).  GNNIE's caching policy and Aggregation load balancing are
designed around exactly this skew, so the synthetic substitutes must
reproduce it.

Three topology families are provided:

* :func:`power_law_graph` — a Chung–Lu style expected-degree model that hits
  a target edge count with a configurable power-law exponent.  Used for the
  citation networks and for scaled Reddit.
* :func:`community_graph` — a stochastic block model with power-law degrees
  inside communities, used for PPI-like graphs (dense biological modules).
* :func:`erdos_renyi_graph` — a uniform random graph used as a control in
  tests (no power-law skew, so degree-aware caching should give little gain).

All generators are deterministic given ``seed``.
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph

__all__ = [
    "power_law_graph",
    "community_graph",
    "erdos_renyi_graph",
    "power_law_degree_sequence",
]


def power_law_degree_sequence(
    num_vertices: int,
    target_average_degree: float,
    exponent: float,
    *,
    min_degree: int = 1,
    max_degree: int | None = None,
    seed: int = 0,
) -> np.ndarray:
    """Draw an integer degree sequence from a truncated power law.

    The sequence is rescaled so that its mean matches
    ``target_average_degree`` as closely as integer rounding permits.

    Args:
        num_vertices: Length of the sequence.
        target_average_degree: Desired mean degree.
        exponent: Power-law exponent (typically 2.0–3.0 for real graphs;
            smaller means heavier tail).
        min_degree: Smallest allowed degree.
        max_degree: Largest allowed degree (defaults to ``num_vertices - 1``).
        seed: RNG seed.
    """
    if num_vertices <= 0:
        raise ValueError("num_vertices must be positive")
    if target_average_degree <= 0:
        raise ValueError("target_average_degree must be positive")
    if exponent <= 1.0:
        raise ValueError("exponent must be > 1 for a normalizable power law")
    rng = np.random.default_rng(seed)
    if max_degree is None:
        max_degree = max(min_degree + 1, num_vertices - 1)
    # Inverse-CDF sampling of a Pareto-like distribution truncated to
    # [min_degree, max_degree].
    uniform = rng.random(num_vertices)
    low = float(min_degree)
    high = float(max_degree)
    power = 1.0 - exponent
    raw = (low**power + uniform * (high**power - low**power)) ** (1.0 / power)
    # Rescale to the target mean, then clip back into range.
    raw *= target_average_degree / raw.mean()
    degrees = np.clip(np.round(raw), min_degree, max_degree).astype(np.int64)
    return degrees


def power_law_graph(
    num_vertices: int,
    target_num_edges: int,
    *,
    exponent: float = 2.3,
    max_degree: int | None = None,
    seed: int = 0,
) -> CSRGraph:
    """Chung–Lu expected-degree power-law graph.

    Each undirected edge ``(u, v)`` is included with probability proportional
    to ``w_u * w_v`` where ``w`` is a power-law weight sequence, and the
    weights are scaled so the expected number of undirected edges is
    ``target_num_edges``.  The construction is vectorized per high-degree
    "hub" block so graphs with a few hundred thousand edges generate in
    well under a second.

    Returns:
        A symmetric :class:`CSRGraph` (each undirected edge stored twice).
    """
    if num_vertices < 2:
        raise ValueError("num_vertices must be at least 2")
    if target_num_edges <= 0:
        raise ValueError("target_num_edges must be positive")
    rng = np.random.default_rng(seed)
    average_degree = 2.0 * target_num_edges / num_vertices
    weights = power_law_degree_sequence(
        num_vertices,
        target_average_degree=max(average_degree, 1.0),
        exponent=exponent,
        max_degree=max_degree,
        seed=seed,
    ).astype(np.float64)
    total_weight = weights.sum()

    # Expected-degree (Chung-Lu) sampling: for every vertex u draw its
    # neighbor count from a Poisson with mean w_u, then choose neighbors with
    # probability proportional to w_v.  This is O(E) and captures the hub
    # structure that matters for GNNIE's cache policy.
    probabilities = weights / total_weight
    expected_out = weights * target_num_edges / total_weight
    out_counts = rng.poisson(expected_out)
    total_samples = int(out_counts.sum())
    if total_samples == 0:
        out_counts[rng.integers(num_vertices)] = 1
        total_samples = 1
    sources = np.repeat(np.arange(num_vertices), out_counts)
    destinations = rng.choice(num_vertices, size=total_samples, p=probabilities)
    edges = np.stack([sources, destinations], axis=1)
    # Drop self-loops; CSRGraph.from_edge_list deduplicates and symmetrizes.
    edges = edges[edges[:, 0] != edges[:, 1]]
    graph = CSRGraph.from_edge_list(edges, num_vertices=num_vertices, symmetric=True)
    graph = _ensure_connected_minimum_degree(graph, rng)
    return graph


def community_graph(
    num_vertices: int,
    num_communities: int,
    *,
    intra_average_degree: float = 20.0,
    inter_edge_fraction: float = 0.05,
    exponent: float = 2.1,
    seed: int = 0,
) -> CSRGraph:
    """Stochastic-block-model-like graph with power-law intra-community degrees.

    Approximates protein-protein interaction networks (PPI): dense modules
    with comparatively few cross-module edges.
    """
    if num_communities <= 0:
        raise ValueError("num_communities must be positive")
    if not 0.0 <= inter_edge_fraction < 1.0:
        raise ValueError("inter_edge_fraction must be in [0, 1)")
    rng = np.random.default_rng(seed)
    community_of = rng.integers(num_communities, size=num_vertices)
    all_edges = []
    for community in range(num_communities):
        members = np.flatnonzero(community_of == community)
        if members.size < 2:
            continue
        intra_edges = int(members.size * intra_average_degree / 2)
        sub = power_law_graph(
            members.size,
            max(intra_edges, 1),
            exponent=exponent,
            seed=seed + 17 * (community + 1),
        )
        local = sub.edge_array()
        all_edges.append(np.stack([members[local[:, 0]], members[local[:, 1]]], axis=1))
    intra_total = sum(block.shape[0] for block in all_edges) // 2
    inter_total = int(intra_total * inter_edge_fraction)
    if inter_total > 0:
        src = rng.integers(num_vertices, size=inter_total)
        dst = rng.integers(num_vertices, size=inter_total)
        keep = src != dst
        all_edges.append(np.stack([src[keep], dst[keep]], axis=1))
    edges = np.concatenate(all_edges, axis=0) if all_edges else np.empty((0, 2), dtype=np.int64)
    graph = CSRGraph.from_edge_list(edges, num_vertices=num_vertices, symmetric=True)
    return _ensure_connected_minimum_degree(graph, rng)


def erdos_renyi_graph(
    num_vertices: int,
    target_num_edges: int,
    *,
    seed: int = 0,
) -> CSRGraph:
    """Uniform random graph with approximately ``target_num_edges`` edges."""
    rng = np.random.default_rng(seed)
    src = rng.integers(num_vertices, size=target_num_edges)
    dst = rng.integers(num_vertices, size=target_num_edges)
    keep = src != dst
    edges = np.stack([src[keep], dst[keep]], axis=1)
    graph = CSRGraph.from_edge_list(edges, num_vertices=num_vertices, symmetric=True)
    return _ensure_connected_minimum_degree(graph, rng)


def _ensure_connected_minimum_degree(graph: CSRGraph, rng: np.random.Generator) -> CSRGraph:
    """Attach every isolated vertex to one random neighbor.

    Real benchmark graphs have no isolated vertices; more importantly the
    Aggregation kernels and the cache controller assume every vertex has at
    least one edge to process.
    """
    degrees = graph.degrees()
    isolated = np.flatnonzero(degrees == 0)
    if isolated.size == 0:
        return graph
    partners = rng.integers(graph.num_vertices, size=isolated.size)
    # Avoid accidental self-loops for the repair edges.
    partners = np.where(partners == isolated, (partners + 1) % graph.num_vertices, partners)
    repair = np.stack([isolated, partners], axis=1)
    edges = np.concatenate([graph.edge_array(), repair, repair[:, ::-1]], axis=0)
    return CSRGraph.from_edge_list(
        edges, num_vertices=graph.num_vertices, symmetric=False, deduplicate=True
    )
