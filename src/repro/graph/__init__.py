"""Graph data structures, generators and preprocessing for the GNNIE reproduction."""

from repro.graph.csr import CSRGraph
from repro.graph.graph import Graph, GraphStats
from repro.graph.generators import (
    community_graph,
    erdos_renyi_graph,
    power_law_degree_sequence,
    power_law_graph,
)
from repro.graph.partition import (
    GraphPartition,
    PARTITION_METHODS,
    VertexSet,
    partition_graph,
    sequential_vertex_sets,
    vertices_per_buffer,
)
from repro.graph.reorder import (
    ReorderResult,
    apply_vertex_permutation,
    degree_binning,
    degree_ordering,
)

__all__ = [
    "CSRGraph",
    "Graph",
    "GraphStats",
    "power_law_graph",
    "community_graph",
    "erdos_renyi_graph",
    "power_law_degree_sequence",
    "VertexSet",
    "GraphPartition",
    "PARTITION_METHODS",
    "partition_graph",
    "sequential_vertex_sets",
    "vertices_per_buffer",
    "ReorderResult",
    "degree_ordering",
    "degree_binning",
    "apply_vertex_permutation",
]
