"""Compressed Sparse Row (CSR) adjacency structure.

GNNIE stores the graph adjacency matrix in CSR form (paper, Section III and
Section VI): a *coordinate array* listing the neighbors of each vertex and an
*offset array* giving the starting position of each vertex's neighbor list.
This module provides an immutable CSR container with the query operations the
scheduler and the cache controller need (degrees, neighbor slices, induced
subgraph edge enumeration) plus conversions to/from edge lists, dense
matrices and ``scipy.sparse`` matrices.

All vertex indices are ``int``; arrays are NumPy ``int64``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

import numpy as np

__all__ = ["CSRGraph"]


@dataclass(frozen=True)
class CSRGraph:
    """Immutable CSR adjacency of an unweighted directed graph.

    For undirected graphs (the common case for the GNN benchmark datasets)
    each undirected edge is stored twice, once in each direction, so that
    ``neighbors(v)`` returns the full one-hop neighborhood of ``v``.

    Attributes:
        indptr: Offset array of length ``num_vertices + 1``.  The neighbors
            of vertex ``v`` are ``indices[indptr[v]:indptr[v + 1]]``.
        indices: Coordinate array of length ``num_edges`` holding neighbor
            vertex ids.
    """

    indptr: np.ndarray
    indices: np.ndarray

    def __post_init__(self) -> None:
        indptr = np.asarray(self.indptr, dtype=np.int64)
        indices = np.asarray(self.indices, dtype=np.int64)
        if indptr.ndim != 1 or indices.ndim != 1:
            raise ValueError("indptr and indices must be one-dimensional")
        if indptr.size == 0:
            raise ValueError("indptr must contain at least one entry")
        if indptr[0] != 0:
            raise ValueError("indptr must start at 0")
        if indptr[-1] != indices.size:
            raise ValueError(
                f"indptr[-1]={int(indptr[-1])} must equal len(indices)={indices.size}"
            )
        if np.any(np.diff(indptr) < 0):
            raise ValueError("indptr must be non-decreasing")
        num_vertices = indptr.size - 1
        if indices.size and (indices.min() < 0 or indices.max() >= num_vertices):
            raise ValueError("indices contains vertex ids outside [0, num_vertices)")
        object.__setattr__(self, "indptr", indptr)
        object.__setattr__(self, "indices", indices)

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_edge_list(
        cls,
        edges: Iterable[tuple[int, int]] | np.ndarray,
        num_vertices: int,
        *,
        symmetric: bool = True,
        deduplicate: bool = True,
    ) -> "CSRGraph":
        """Build a CSR graph from an edge list.

        Args:
            edges: Iterable of ``(src, dst)`` pairs or an ``(E, 2)`` array.
            num_vertices: Total number of vertices.
            symmetric: If True, add the reverse of every edge so that the
                result is an undirected adjacency.
            deduplicate: If True, remove duplicate edges and self-loops that
                appear more than once (a single self-loop per vertex is kept
                if present in the input).
        """
        edge_array = np.asarray(list(edges) if not isinstance(edges, np.ndarray) else edges)
        if edge_array.size == 0:
            edge_array = edge_array.reshape(0, 2)
        edge_array = edge_array.astype(np.int64, copy=False).reshape(-1, 2)
        if edge_array.size and (
            edge_array.min() < 0 or edge_array.max() >= num_vertices
        ):
            raise ValueError("edge endpoints must be in [0, num_vertices)")
        if symmetric and edge_array.size:
            reversed_edges = edge_array[:, ::-1]
            edge_array = np.concatenate([edge_array, reversed_edges], axis=0)
        if deduplicate and edge_array.size and num_vertices < 3_037_000_499:
            # Row-wise np.unique(axis=0) sorts a structured view, which is
            # an order of magnitude slower than a scalar sort.  Encoding
            # each pair as src * V + dst (dst < V, so the key fits int64 for
            # V < sqrt(2^63)) makes unique-and-sort a scalar operation with
            # the exact same lexicographic (src, dst) result.
            keys = np.unique(edge_array[:, 0] * np.int64(num_vertices) + edge_array[:, 1])
            src = keys // num_vertices
            dst = keys % num_vertices
        else:
            if deduplicate and edge_array.size:  # pragma: no cover - huge-V fallback
                edge_array = np.unique(edge_array, axis=0)
            src = edge_array[:, 0]
            dst = edge_array[:, 1]
            order = np.lexsort((dst, src))
            src = src[order]
            dst = dst[order]
        counts = np.bincount(src, minlength=num_vertices)
        indptr = np.concatenate([[0], np.cumsum(counts)]).astype(np.int64)
        return cls(indptr=indptr, indices=dst)

    @classmethod
    def from_dense(cls, adjacency: np.ndarray) -> "CSRGraph":
        """Build a CSR graph from a dense 0/1 adjacency matrix."""
        adjacency = np.asarray(adjacency)
        if adjacency.ndim != 2 or adjacency.shape[0] != adjacency.shape[1]:
            raise ValueError("adjacency must be a square matrix")
        src, dst = np.nonzero(adjacency)
        edges = np.stack([src, dst], axis=1)
        return cls.from_edge_list(
            edges, num_vertices=adjacency.shape[0], symmetric=False, deduplicate=False
        )

    @classmethod
    def from_scipy(cls, matrix) -> "CSRGraph":
        """Build from a ``scipy.sparse`` matrix (any format)."""
        csr = matrix.tocsr()
        if csr.shape[0] != csr.shape[1]:
            raise ValueError("adjacency must be square")
        return cls(
            indptr=np.asarray(csr.indptr, dtype=np.int64),
            indices=np.asarray(csr.indices, dtype=np.int64),
        )

    # ------------------------------------------------------------------ #
    # Basic properties
    # ------------------------------------------------------------------ #
    @property
    def num_vertices(self) -> int:
        return int(self.indptr.size - 1)

    @property
    def num_edges(self) -> int:
        """Number of stored directed edges (2x undirected edge count)."""
        return int(self.indices.size)

    @property
    def num_undirected_edges(self) -> int:
        """Approximate undirected edge count assuming symmetric storage."""
        self_loops = int(np.sum(self.degrees_with_self_loops_mask()))
        return (self.num_edges - self_loops) // 2 + self_loops

    def degrees(self) -> np.ndarray:
        """Out-degree of every vertex (== in-degree for symmetric storage)."""
        return np.diff(self.indptr)

    def degree(self, vertex: int) -> int:
        self._check_vertex(vertex)
        return int(self.indptr[vertex + 1] - self.indptr[vertex])

    def degrees_with_self_loops_mask(self) -> np.ndarray:
        """Boolean mask over vertices that have a self-loop stored."""
        mask = np.zeros(self.num_vertices, dtype=bool)
        for vertex in range(self.num_vertices):
            start, end = self.indptr[vertex], self.indptr[vertex + 1]
            if np.any(self.indices[start:end] == vertex):
                mask[vertex] = True
        return mask

    def neighbors(self, vertex: int) -> np.ndarray:
        """Neighbor ids of ``vertex`` as a read-only view."""
        self._check_vertex(vertex)
        start, end = self.indptr[vertex], self.indptr[vertex + 1]
        view = self.indices[start:end]
        view.flags.writeable = False
        return view

    def has_edge(self, src: int, dst: int) -> bool:
        return bool(np.any(self.neighbors(src) == dst))

    def sparsity(self) -> float:
        """Fraction of zero entries in the dense adjacency matrix."""
        total = self.num_vertices * self.num_vertices
        if total == 0:
            return 1.0
        return 1.0 - self.num_edges / total

    def max_degree(self) -> int:
        degrees = self.degrees()
        return int(degrees.max()) if degrees.size else 0

    def average_degree(self) -> float:
        degrees = self.degrees()
        return float(degrees.mean()) if degrees.size else 0.0

    # ------------------------------------------------------------------ #
    # Iteration and subgraph support
    # ------------------------------------------------------------------ #
    def iter_edges(self) -> Iterator[tuple[int, int]]:
        """Yield every stored directed edge as ``(src, dst)``."""
        for vertex in range(self.num_vertices):
            start, end = self.indptr[vertex], self.indptr[vertex + 1]
            for dst in self.indices[start:end]:
                yield vertex, int(dst)

    def edge_array(self) -> np.ndarray:
        """All stored directed edges as an ``(E, 2)`` array."""
        src = np.repeat(np.arange(self.num_vertices), self.degrees())
        return np.stack([src, self.indices], axis=1)

    def induced_edges(self, vertex_set: Sequence[int] | np.ndarray) -> np.ndarray:
        """Directed edges of the subgraph induced by ``vertex_set``.

        This is the operation the cache controller performs every iteration:
        given the set of vertices currently resident in the input buffer,
        enumerate the edges whose both endpoints are resident (paper,
        Section VI, "Subgraph in the Input Buffer").

        Returns an ``(E_sub, 2)`` array of ``(src, dst)`` pairs using the
        *original* vertex ids.
        """
        vertex_array = np.asarray(vertex_set, dtype=np.int64)
        if vertex_array.size == 0:
            return np.empty((0, 2), dtype=np.int64)
        membership = np.zeros(self.num_vertices, dtype=bool)
        membership[vertex_array] = True
        degrees = self.degrees()
        src_all = np.repeat(np.arange(self.num_vertices), degrees)
        keep = membership[src_all] & membership[self.indices]
        return np.stack([src_all[keep], self.indices[keep]], axis=1)

    def subgraph(self, vertex_set: Sequence[int] | np.ndarray) -> "CSRGraph":
        """CSR of the induced subgraph with vertices relabeled to 0..k-1."""
        vertex_array = np.asarray(sorted(set(int(v) for v in vertex_set)), dtype=np.int64)
        relabel = -np.ones(self.num_vertices, dtype=np.int64)
        relabel[vertex_array] = np.arange(vertex_array.size)
        edges = self.induced_edges(vertex_array)
        remapped = np.stack([relabel[edges[:, 0]], relabel[edges[:, 1]]], axis=1)
        return CSRGraph.from_edge_list(
            remapped, num_vertices=vertex_array.size, symmetric=False, deduplicate=False
        )

    # ------------------------------------------------------------------ #
    # Conversions
    # ------------------------------------------------------------------ #
    def to_dense(self) -> np.ndarray:
        """Dense 0/1 adjacency matrix (only for small graphs)."""
        dense = np.zeros((self.num_vertices, self.num_vertices), dtype=np.float64)
        edges = self.edge_array()
        dense[edges[:, 0], edges[:, 1]] = 1.0
        return dense

    def to_scipy(self):
        """Convert to a ``scipy.sparse.csr_matrix``."""
        from scipy.sparse import csr_matrix

        data = np.ones(self.num_edges, dtype=np.float64)
        return csr_matrix(
            (data, self.indices, self.indptr),
            shape=(self.num_vertices, self.num_vertices),
        )

    def with_self_loops(self) -> "CSRGraph":
        """Return a copy in which every vertex has a self-loop.

        GCN/GAT/GINConv aggregate over ``{i} ∪ N(i)`` (paper, Section II);
        adding explicit self-loops lets the aggregation kernels treat the
        self-contribution uniformly as just another edge.
        """
        loops = np.stack([np.arange(self.num_vertices)] * 2, axis=1)
        edges = np.concatenate([self.edge_array(), loops], axis=0)
        return CSRGraph.from_edge_list(
            edges, num_vertices=self.num_vertices, symmetric=False, deduplicate=True
        )

    def memory_footprint_bytes(self, bytes_per_entry: int = 4) -> int:
        """Storage size of the CSR arrays in DRAM."""
        return int((self.indptr.size + self.indices.size) * bytes_per_entry)

    # ------------------------------------------------------------------ #
    # Internal helpers
    # ------------------------------------------------------------------ #
    def _check_vertex(self, vertex: int) -> None:
        if not 0 <= vertex < self.num_vertices:
            raise IndexError(
                f"vertex {vertex} out of range for graph with {self.num_vertices} vertices"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"CSRGraph(num_vertices={self.num_vertices}, num_edges={self.num_edges}, "
            f"sparsity={self.sparsity():.4f})"
        )
