"""Vertex-featured graph container used throughout the reproduction.

A :class:`Graph` bundles a CSR adjacency (:class:`~repro.graph.csr.CSRGraph`)
with a dense vertex feature matrix, optional labels, and a name — the same
information a PyTorch Geometric ``Data`` object would carry for the benchmark
datasets in Table II of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.graph.csr import CSRGraph

__all__ = ["Graph", "GraphStats"]


@dataclass(frozen=True)
class GraphStats:
    """Summary statistics of a dataset graph (mirrors Table II columns)."""

    name: str
    num_vertices: int
    num_edges: int
    feature_length: int
    num_labels: int
    feature_sparsity: float
    adjacency_sparsity: float
    max_degree: int
    average_degree: float

    def as_row(self) -> dict[str, object]:
        """Row suitable for tabular reporting (Table II benchmark)."""
        return {
            "dataset": self.name,
            "vertices": self.num_vertices,
            "edges": self.num_edges,
            "feature_length": self.feature_length,
            "labels": self.num_labels,
            "feature_sparsity_pct": round(100.0 * self.feature_sparsity, 2),
            "adjacency_sparsity_pct": round(100.0 * self.adjacency_sparsity, 4),
            "max_degree": self.max_degree,
            "avg_degree": round(self.average_degree, 2),
        }


@dataclass
class Graph:
    """A graph with dense node features and optional labels.

    Attributes:
        adjacency: CSR adjacency structure (symmetric storage for the
            undirected benchmark graphs).
        features: ``(num_vertices, feature_length)`` float array of input
            vertex feature vectors ``h^0_i``.  These are highly sparse for
            the citation datasets (Cora 98.73% zero, Table II).
        labels: Optional ``(num_vertices,)`` integer class labels or
            ``(num_vertices, num_labels)`` multi-label indicator matrix.
        name: Dataset name used in reports.
    """

    adjacency: CSRGraph
    features: np.ndarray
    labels: Optional[np.ndarray] = None
    name: str = "graph"
    num_label_classes: int = field(default=0)

    def __post_init__(self) -> None:
        self.features = np.asarray(self.features, dtype=np.float64)
        if self.features.ndim != 2:
            raise ValueError("features must be a 2-D (num_vertices, F) array")
        if self.features.shape[0] != self.adjacency.num_vertices:
            raise ValueError(
                f"features has {self.features.shape[0]} rows but the adjacency has "
                f"{self.adjacency.num_vertices} vertices"
            )
        if self.labels is not None:
            self.labels = np.asarray(self.labels)
            if self.labels.shape[0] != self.adjacency.num_vertices:
                raise ValueError("labels must have one entry per vertex")
            if self.num_label_classes == 0:
                if self.labels.ndim == 1:
                    self.num_label_classes = int(self.labels.max()) + 1 if self.labels.size else 0
                else:
                    self.num_label_classes = int(self.labels.shape[1])

    # ------------------------------------------------------------------ #
    # Convenience accessors
    # ------------------------------------------------------------------ #
    @property
    def num_vertices(self) -> int:
        return self.adjacency.num_vertices

    @property
    def num_edges(self) -> int:
        return self.adjacency.num_edges

    @property
    def feature_length(self) -> int:
        return int(self.features.shape[1])

    def degrees(self) -> np.ndarray:
        return self.adjacency.degrees()

    def feature_sparsity(self) -> float:
        """Fraction of zero entries in the input feature matrix."""
        total = self.features.size
        if total == 0:
            return 1.0
        return 1.0 - np.count_nonzero(self.features) / total

    def per_vertex_nonzeros(self) -> np.ndarray:
        """Nonzero count of each input feature vector (Fig. 2 histogram)."""
        return np.count_nonzero(self.features, axis=1)

    def stats(self) -> GraphStats:
        return GraphStats(
            name=self.name,
            num_vertices=self.num_vertices,
            num_edges=self.num_edges,
            feature_length=self.feature_length,
            num_labels=self.num_label_classes,
            feature_sparsity=self.feature_sparsity(),
            adjacency_sparsity=self.adjacency.sparsity(),
            max_degree=self.adjacency.max_degree(),
            average_degree=self.adjacency.average_degree(),
        )

    def memory_footprint_bytes(self, bytes_per_value: int = 4) -> int:
        """Rough DRAM footprint: CSR arrays + dense feature matrix."""
        return (
            self.adjacency.memory_footprint_bytes(bytes_per_value)
            + self.features.size * bytes_per_value
        )

    def with_features(self, features: np.ndarray) -> "Graph":
        """Return a copy of this graph with a different feature matrix."""
        return Graph(
            adjacency=self.adjacency,
            features=features,
            labels=self.labels,
            name=self.name,
            num_label_classes=self.num_label_classes,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"Graph(name={self.name!r}, vertices={self.num_vertices}, "
            f"edges={self.num_edges}, F={self.feature_length})"
        )
