"""The M×N processing-element array (CPEs + MPEs + SFU columns).

This assembles the per-component models (:class:`~repro.hw.cpe.ComputePE`,
:class:`~repro.hw.mpe.MergePE`, :class:`~repro.hw.sfu.SpecialFunctionUnit`)
into the array structure of Fig. 3: ``num_rows × num_cols`` CPEs whose row
group determines their MAC count, one MPE per column, and interleaved SFU
columns shared across the array.

The array exposes row-level cycle accounting, which is the granularity the
paper analyses (Fig. 16 plots per-CPE-row Weighting workload) and the
granularity the Flexible MAC binning and Load Redistribution operate at.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.hw.config import AcceleratorConfig
from repro.hw.cpe import ComputePE, CPEConfig
from repro.hw.mpe import MergePE, MPEConfig
from repro.hw.sfu import SpecialFunctionUnit

__all__ = ["PEArray", "RowWorkload"]


@dataclass
class RowWorkload:
    """Workload assigned to one CPE row during a Weighting pass."""

    row_index: int
    num_macs_per_cpe: int
    nonzero_operations: int
    cycles: int

    @property
    def effective_throughput(self) -> float:
        """Nonzero MACs retired per cycle by this row."""
        if self.cycles == 0:
            return 0.0
        return self.nonzero_operations / self.cycles


class PEArray:
    """Structural model of the GNNIE PE array."""

    def __init__(self, config: AcceleratorConfig, *, num_sfu_columns: int = 4) -> None:
        self.config = config
        self.num_sfu_columns = num_sfu_columns
        macs_per_row = config.macs_per_row
        self.cpes: list[list[ComputePE]] = [
            [
                ComputePE(CPEConfig(num_macs=macs_per_row[row]))
                for _ in range(config.num_cols)
            ]
            for row in range(config.num_rows)
        ]
        self.mpes: list[MergePE] = [
            MergePE(MPEConfig(psum_slots=config.psum_slots_per_mpe))
            for _ in range(config.num_cols)
        ]
        self.sfus: list[SpecialFunctionUnit] = [
            SpecialFunctionUnit() for _ in range(num_sfu_columns)
        ]

    # ------------------------------------------------------------------ #
    # Structure queries
    # ------------------------------------------------------------------ #
    @property
    def num_rows(self) -> int:
        return self.config.num_rows

    @property
    def num_cols(self) -> int:
        return self.config.num_cols

    def row_mac_counts(self) -> np.ndarray:
        """MACs per CPE for every row (length ``num_rows``)."""
        return np.asarray(self.config.macs_per_row, dtype=np.int64)

    def row_total_macs(self) -> np.ndarray:
        """Total MACs in each row (MACs per CPE × columns)."""
        return self.row_mac_counts() * self.config.num_cols

    def total_macs(self) -> int:
        return int(self.row_total_macs().sum())

    # ------------------------------------------------------------------ #
    # Row-level cycle accounting
    # ------------------------------------------------------------------ #
    def row_weighting_cycles(self, row_nonzero_operations: np.ndarray) -> np.ndarray:
        """Cycles each row needs to retire its assigned nonzero MAC operations.

        ``row_nonzero_operations[r]`` is the number of nonzero
        feature-element × weight multiplications assigned to row ``r`` for
        one pass.  Work within a row is spread over its ``num_cols`` CPEs,
        each retiring ``macs_per_cpe`` operations per cycle.
        """
        operations = np.asarray(row_nonzero_operations, dtype=np.float64)
        if operations.size != self.num_rows:
            raise ValueError(
                f"expected one workload entry per row ({self.num_rows}), got {operations.size}"
            )
        throughput = self.row_total_macs().astype(np.float64)
        return np.ceil(operations / np.maximum(throughput, 1.0)).astype(np.int64)

    def array_aggregation_cycles(self, pairwise_additions: int) -> int:
        """Cycles for the whole array to retire ``pairwise_additions`` adds."""
        if pairwise_additions < 0:
            raise ValueError("pairwise_additions must be non-negative")
        throughput = float(self.total_macs())
        return int(np.ceil(pairwise_additions / throughput)) if pairwise_additions else 0

    def describe_rows(self, row_nonzero_operations: np.ndarray) -> list[RowWorkload]:
        """Per-row workload report (used for the Fig. 16 benchmark)."""
        cycles = self.row_weighting_cycles(row_nonzero_operations)
        macs = self.row_mac_counts()
        return [
            RowWorkload(
                row_index=row,
                num_macs_per_cpe=int(macs[row]),
                nonzero_operations=int(row_nonzero_operations[row]),
                cycles=int(cycles[row]),
            )
            for row in range(self.num_rows)
        ]

    def reset(self) -> None:
        for row in self.cpes:
            for cpe in row:
                cpe.reset()
        for mpe in self.mpes:
            mpe.reset()
