"""Merge Processing Element (MPE) model.

One MPE sits at the foot of each CPE column (paper, Section III).  It
collects tagged partial results from the CPEs in its column, accumulates them
per vertex in a bank of partial-sum (psum) scratchpads, and forwards
completed vertex-feature elements to the output buffer.  Because CPEs finish
their k-blocks at irregular times (the rabbit/turtle disparity of
Section IV-C), the MPE may track partial sums for many vertices at once; the
number of psum slots bounds how many, and exceeding it forces stalls — which
is precisely the pressure the Flexible MAC load balancing relieves.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["MPEConfig", "MergePE", "MPEStats"]


@dataclass(frozen=True)
class MPEConfig:
    """Static parameters of one merge PE."""

    psum_slots: int = 64
    accumulate_latency_cycles: int = 1
    drain_latency_cycles: int = 1


@dataclass
class MPEStats:
    """Counters accumulated by an MPE over a simulation phase."""

    accumulations: int = 0
    completed_vertices: int = 0
    stall_cycles: int = 0
    peak_live_vertices: int = 0


@dataclass
class MergePE:
    """Accumulator model for one CPE column."""

    config: MPEConfig
    stats: MPEStats = field(default_factory=MPEStats)
    _live: dict[int, int] = field(default_factory=dict)

    def accumulate(self, vertex_id: int, partial_blocks: int, total_blocks: int) -> int:
        """Record ``partial_blocks`` partial-sum arrivals for ``vertex_id``.

        Args:
            vertex_id: Tag of the vertex whose partial results arrived.
            partial_blocks: Number of k-block partial results delivered.
            total_blocks: Blocks required before the vertex's element is
                complete and can be drained to the output buffer.

        Returns:
            Cycles consumed (accumulation plus any stall waiting for a free
            psum slot plus drain on completion).
        """
        if partial_blocks < 0 or total_blocks <= 0:
            raise ValueError("block counts must be positive")
        cycles = partial_blocks * self.config.accumulate_latency_cycles
        if vertex_id not in self._live:
            if len(self._live) >= self.config.psum_slots:
                # No free psum slot: stall until one drains.  The model
                # charges a drain latency and evicts the oldest complete or
                # most-complete entry (hardware would backpressure the CPEs).
                cycles += self.config.drain_latency_cycles
                self.stats.stall_cycles += self.config.drain_latency_cycles
                evict = max(self._live, key=self._live.get)
                del self._live[evict]
            self._live[vertex_id] = 0
        self._live[vertex_id] += partial_blocks
        self.stats.accumulations += partial_blocks
        self.stats.peak_live_vertices = max(self.stats.peak_live_vertices, len(self._live))
        if self._live[vertex_id] >= total_blocks:
            del self._live[vertex_id]
            self.stats.completed_vertices += 1
            cycles += self.config.drain_latency_cycles
        return cycles

    @property
    def live_vertices(self) -> int:
        return len(self._live)

    def reset(self) -> None:
        self.stats = MPEStats()
        self._live.clear()
