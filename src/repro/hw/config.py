"""Accelerator configuration (the GNNIE design point and its ablation variants).

All architectural parameters reported in Section VIII-A of the paper are
captured in :class:`AcceleratorConfig`:

* 16×16 CPE array at 1.3 GHz,
* the Flexible MAC allocation — 4 MACs/CPE for rows 1–8, 5 for rows 9–12 and
  6 for rows 13–16 (1216 MACs in total),
* 256 KB / 512 KB input buffer (small / large datasets), 1 MB output buffer,
  128 KB double-buffered weight buffer,
* HBM 2.0 at 256 GB/s,
* cache eviction threshold γ = 5.

The named design points of the optimization analysis (Section VIII-E) are
provided as constructors: Design A (uniform 4 MACs/CPE baseline), B (5), C
(6), D (7) and E (the flexible-MAC GNNIE configuration).  Feature flags allow
the ablation benchmarks (Figs. 16–18) to disable individual optimizations
without touching code paths.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

__all__ = ["AcceleratorConfig", "DESIGN_PRESETS", "design_preset"]


@dataclass(frozen=True)
class AcceleratorConfig:
    """Architectural and policy parameters of a GNNIE instance."""

    # --- CPE array ----------------------------------------------------- #
    num_rows: int = 16
    num_cols: int = 16
    #: MACs per CPE for each row group; groups split the rows evenly from
    #: top (fewest MACs) to bottom (most MACs).  Paper: (4, 5, 6) over row
    #: groups 1-8, 9-12, 13-16 — encoded here with explicit group sizes.
    macs_per_group: tuple[int, ...] = (4, 5, 6)
    #: Number of CPE rows in each group (must sum to num_rows).
    rows_per_group: tuple[int, ...] = (8, 4, 4)
    frequency_hz: float = 1.3e9

    # --- On-chip buffers ------------------------------------------------ #
    #: Input-buffer capacity.  ``None`` is the auto-sizing sentinel: "use the
    #: paper's per-dataset sizing" (256 KB small / 512 KB large, Section
    #: VIII-A), resolved against a dataset exactly once, in
    #: :meth:`resolve_input_buffer`.  An explicit integer is respected
    #: everywhere — simulation, area and energy all see the same capacity —
    #: which is what makes input-buffer sweeps meaningful.
    input_buffer_bytes: int | None = None
    output_buffer_bytes: int = 1024 * 1024
    weight_buffer_bytes: int = 128 * 1024
    #: Partial-sum slots available per MPE (limits in-flight vertices).
    psum_slots_per_mpe: int = 64
    bytes_per_value: int = 1

    # --- Off-chip memory ------------------------------------------------ #
    dram_bandwidth_bytes_per_s: float = 256e9
    dram_energy_pj_per_bit: float = 3.97

    # --- Inter-chip link (multi-chip scale-out) ------------------------- #
    #: Chip-to-chip link bandwidth for halo-feature exchange when a graph is
    #: partitioned across several GNNIE instances (``repro.scaleout``).  The
    #: 64 GB/s default models a PCIe-5.0-x16-class serial link — a quarter of
    #: HBM bandwidth, the usual package-escape penalty.
    link_bandwidth_bytes_per_s: float = 64e9
    #: Fixed per-layer link latency (synchronization + first-flit) in core
    #: cycles, charged once per halo exchange regardless of volume.
    link_latency_cycles: int = 500

    # --- Cache policy ----------------------------------------------------#
    gamma: int = 5
    cache_associativity: int = 4

    # --- Miss-path hierarchy behind the input buffer -------------------- #
    #: Mechanism names from :data:`repro.cache.MECHANISM_REGISTRY` (built in:
    #: "victim", "miss", "stream"; extensible via ``register_mechanism``),
    #: probed in parallel on every input-buffer miss; empty tuple disables
    #: the hierarchy (the seed behavior: every miss goes straight to DRAM).
    #: Names are validated against the live registry when the hierarchy is
    #: built (``repro.hw`` cannot import ``repro.cache``), so plug-in
    #: mechanisms registered at runtime work here too.
    miss_path_mechanisms: tuple[str, ...] = ()
    victim_cache_entries: int = 64
    #: Tag-only structure, so a tag store exceeding the input buffer's
    #: vertex capacity is still cheap (4-byte tags vs ~256-byte records).
    miss_cache_entries: int = 4096
    stream_buffer_count: int = 4
    stream_buffer_depth: int = 16

    # --- Optimization feature flags (for ablations) --------------------- #
    enable_flexible_mac: bool = True
    enable_load_redistribution: bool = True
    enable_degree_aware_caching: bool = True
    enable_aggregation_load_balancing: bool = True
    enable_zero_skipping: bool = True

    name: str = "GNNIE"

    # ------------------------------------------------------------------ #
    # Derived quantities
    # ------------------------------------------------------------------ #
    def __post_init__(self) -> None:
        if self.num_rows <= 0 or self.num_cols <= 0:
            raise ValueError("array dimensions must be positive")
        if len(self.macs_per_group) != len(self.rows_per_group):
            raise ValueError("macs_per_group and rows_per_group must have equal length")
        if sum(self.rows_per_group) != self.num_rows:
            raise ValueError(
                f"rows_per_group {self.rows_per_group} must sum to num_rows={self.num_rows}"
            )
        if any(macs <= 0 for macs in self.macs_per_group):
            raise ValueError("every row group needs at least one MAC per CPE")
        if list(self.macs_per_group) != sorted(self.macs_per_group):
            raise ValueError(
                "macs_per_group must be monotonically non-decreasing (paper, Section IV-C)"
            )
        if self.gamma < 0:
            raise ValueError("gamma must be non-negative")
        if self.input_buffer_bytes is not None and self.input_buffer_bytes <= 0:
            raise ValueError(
                "input_buffer_bytes must be positive (or None for the paper's "
                "per-dataset auto sizing)"
            )
        if self.link_bandwidth_bytes_per_s <= 0:
            raise ValueError("link_bandwidth_bytes_per_s must be positive")
        if self.link_latency_cycles < 0:
            raise ValueError("link_latency_cycles must be non-negative")
        if self.victim_cache_entries <= 0 or self.miss_cache_entries <= 0:
            raise ValueError("victim/miss cache capacities must be positive")
        if self.stream_buffer_count <= 0 or self.stream_buffer_depth <= 0:
            raise ValueError("stream buffer count and depth must be positive")

    @property
    def num_groups(self) -> int:
        return len(self.macs_per_group)

    @property
    def macs_per_row(self) -> tuple[int, ...]:
        """MACs per CPE for each of the ``num_rows`` rows, top to bottom."""
        per_row: list[int] = []
        for macs, rows in zip(self.macs_per_group, self.rows_per_group):
            per_row.extend([macs] * rows)
        return tuple(per_row)

    @property
    def total_macs(self) -> int:
        """Total MAC units across the CPE array (paper: 1216 for GNNIE)."""
        return sum(macs * self.num_cols for macs in self.macs_per_row)

    @property
    def num_cpes(self) -> int:
        return self.num_rows * self.num_cols

    @property
    def row_group_of(self) -> tuple[int, ...]:
        """Group index of every CPE row."""
        groups: list[int] = []
        for group_index, rows in enumerate(self.rows_per_group):
            groups.extend([group_index] * rows)
        return tuple(groups)

    @property
    def cycle_time_s(self) -> float:
        return 1.0 / self.frequency_hz

    @property
    def dram_bytes_per_cycle(self) -> float:
        return self.dram_bandwidth_bytes_per_s / self.frequency_hz

    @property
    def link_bytes_per_cycle(self) -> float:
        return self.link_bandwidth_bytes_per_s / self.frequency_hz

    @property
    def peak_ops_per_second(self) -> float:
        """Peak throughput counting one MAC as two operations (mult + add)."""
        return 2.0 * self.total_macs * self.frequency_hz

    @property
    def miss_path_enabled(self) -> bool:
        return bool(self.miss_path_mechanisms)

    def with_miss_path(self, *mechanisms: str, **sizing: int) -> "AcceleratorConfig":
        """Copy with the given miss-path mechanisms enabled.

        ``sizing`` forwards the hierarchy knobs (``victim_cache_entries``,
        ``miss_cache_entries``, ``stream_buffer_count``,
        ``stream_buffer_depth``).
        """
        return replace(self, miss_path_mechanisms=tuple(mechanisms), **sizing)

    @property
    def input_buffer_bytes_or_default(self) -> int:
        """Concrete input-buffer capacity for dataset-independent consumers.

        The area model (and anything else that needs a capacity without a
        dataset in hand) cannot resolve the per-dataset auto sizing, so the
        sentinel falls back to the paper's large-dataset 512 KB — the value
        the field used to default to, keeping default-config areas
        byte-identical across the sentinel change.
        """
        if self.input_buffer_bytes is not None:
            return self.input_buffer_bytes
        return 512 * 1024

    def with_input_buffer_for(self, dataset_abbreviation: str) -> "AcceleratorConfig":
        """Return a copy with the paper's per-dataset input buffer sizing.

        256 KB for the small citation graphs (Cora, Citeseer), 512 KB for
        Pubmed, PPI and Reddit (Section VIII-A).  This *always* applies the
        paper sizing, overwriting any explicit capacity; callers honouring
        explicit overrides should use :meth:`resolve_input_buffer` instead.
        """
        small = dataset_abbreviation.upper() in ("CR", "CS", "CORA", "CITESEER")
        size = 256 * 1024 if small else 512 * 1024
        return replace(self, input_buffer_bytes=size)

    def resolve_input_buffer(self, dataset_abbreviation: str) -> "AcceleratorConfig":
        """Resolve the auto-sizing sentinel against a dataset.

        The single place the ``input_buffer_bytes is None`` sentinel turns
        into a concrete capacity: when no explicit size is set, apply the
        paper's per-dataset sizing; an explicit size is returned untouched,
        so sweep cells that pin ``input_buffer_bytes`` actually simulate the
        capacity they claim (the input-buffer axis regression).
        """
        if self.input_buffer_bytes is not None:
            return self
        return self.with_input_buffer_for(dataset_abbreviation)

    def without_optimizations(self) -> "AcceleratorConfig":
        """Baseline variant: uniform MACs, no LR, no degree caching, no LB."""
        return replace(
            self,
            macs_per_group=(self.macs_per_group[0],),
            rows_per_group=(self.num_rows,),
            enable_flexible_mac=False,
            enable_load_redistribution=False,
            enable_degree_aware_caching=False,
            enable_aggregation_load_balancing=False,
            name=f"{self.name}-baseline",
        )


def _uniform_design(name: str, macs_per_cpe: int) -> AcceleratorConfig:
    return AcceleratorConfig(
        macs_per_group=(macs_per_cpe,),
        rows_per_group=(16,),
        enable_flexible_mac=False,
        enable_load_redistribution=False,
        name=name,
    )


#: Design points of the β study (Fig. 17) and ablations (Section VIII-E).
DESIGN_PRESETS: dict[str, AcceleratorConfig] = {
    # Design A: baseline, 4 MACs/CPE uniform (1024 MACs).
    "A": _uniform_design("Design A", 4),
    # Designs B-D: uniformly more MACs per CPE.
    "B": _uniform_design("Design B", 5),
    "C": _uniform_design("Design C", 6),
    "D": _uniform_design("Design D", 7),
    # Design E: GNNIE's flexible MAC architecture (1216 MACs).
    "E": AcceleratorConfig(name="Design E (GNNIE)"),
}


def design_preset(name: str) -> AcceleratorConfig:
    """Look up one of the named design points A–E."""
    key = name.strip().upper()
    if key not in DESIGN_PRESETS:
        raise KeyError(f"unknown design {name!r}; known: {sorted(DESIGN_PRESETS)}")
    return DESIGN_PRESETS[key]
