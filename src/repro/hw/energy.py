"""Energy, power and area model of the GNNIE accelerator.

The paper extracts component energies from Synopsys Design Compiler synthesis
at 32 nm and CACTI 6.5 for the on-chip buffers, and reports:

* chip area 15.6 mm², clock 1.3 GHz, power 3.9 W,
* HBM 2.0 energy 3.97 pJ/bit,
* an energy breakdown (Fig. 14) dominated by DRAM traffic from the output
  buffer (partial-sum spills), and
* energy efficiency between 7.4×10³ and 6.7×10⁶ inferences/kJ (Fig. 15).

We encode per-operation and per-byte energy constants representative of a
32 nm node (MAC ≈ 1 pJ, SRAM access a few pJ/byte scaled by capacity —
CACTI-like square-root scaling) and calibrate the aggregate so the chip-level
numbers above are reproduced.  The *breakdown shape* is what the benchmarks
check; the constants are documented here so a user can re-derive them.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hw.config import AcceleratorConfig

__all__ = ["EnergyModel", "EnergyBreakdown", "AreaModel"]


@dataclass
class EnergyBreakdown:
    """Energy (in picojoules) attributed to each architectural component."""

    mac_pj: float = 0.0
    sfu_pj: float = 0.0
    input_buffer_pj: float = 0.0
    output_buffer_pj: float = 0.0
    weight_buffer_pj: float = 0.0
    dram_input_pj: float = 0.0
    dram_output_pj: float = 0.0
    dram_weight_pj: float = 0.0
    static_pj: float = 0.0

    @property
    def dram_pj(self) -> float:
        return self.dram_input_pj + self.dram_output_pj + self.dram_weight_pj

    @property
    def on_chip_buffer_pj(self) -> float:
        return self.input_buffer_pj + self.output_buffer_pj + self.weight_buffer_pj

    @property
    def total_pj(self) -> float:
        return (
            self.mac_pj
            + self.sfu_pj
            + self.on_chip_buffer_pj
            + self.dram_pj
            + self.static_pj
        )

    @property
    def total_joules(self) -> float:
        return self.total_pj * 1e-12

    def as_dict(self) -> dict[str, float]:
        return {
            "mac_pj": self.mac_pj,
            "sfu_pj": self.sfu_pj,
            "input_buffer_pj": self.input_buffer_pj,
            "output_buffer_pj": self.output_buffer_pj,
            "weight_buffer_pj": self.weight_buffer_pj,
            "dram_input_pj": self.dram_input_pj,
            "dram_output_pj": self.dram_output_pj,
            "dram_weight_pj": self.dram_weight_pj,
            "static_pj": self.static_pj,
            "total_pj": self.total_pj,
        }

    def __add__(self, other: "EnergyBreakdown") -> "EnergyBreakdown":
        return EnergyBreakdown(
            mac_pj=self.mac_pj + other.mac_pj,
            sfu_pj=self.sfu_pj + other.sfu_pj,
            input_buffer_pj=self.input_buffer_pj + other.input_buffer_pj,
            output_buffer_pj=self.output_buffer_pj + other.output_buffer_pj,
            weight_buffer_pj=self.weight_buffer_pj + other.weight_buffer_pj,
            dram_input_pj=self.dram_input_pj + other.dram_input_pj,
            dram_output_pj=self.dram_output_pj + other.dram_output_pj,
            dram_weight_pj=self.dram_weight_pj + other.dram_weight_pj,
            static_pj=self.static_pj + other.static_pj,
        )


@dataclass(frozen=True)
class EnergyModel:
    """Per-operation / per-byte energy constants (32 nm class)."""

    mac_energy_pj: float = 1.0
    sfu_op_energy_pj: float = 2.5
    #: SRAM access energies per byte, CACTI-6.5-like values for the paper's
    #: buffer capacities (larger arrays cost more per access).
    input_buffer_pj_per_byte: float = 0.8
    output_buffer_pj_per_byte: float = 1.2
    weight_buffer_pj_per_byte: float = 0.6
    dram_pj_per_bit: float = 3.97
    #: Static (leakage + clock) power of the 15.6 mm² chip at 32 nm.
    static_power_watts: float = 0.9

    def mac_energy(self, num_macs: int) -> float:
        return self.mac_energy_pj * num_macs

    def sfu_energy(self, num_ops: int) -> float:
        return self.sfu_op_energy_pj * num_ops

    def buffer_energy(self, buffer_name: str, num_bytes: int) -> float:
        per_byte = {
            "input": self.input_buffer_pj_per_byte,
            "output": self.output_buffer_pj_per_byte,
            "weight": self.weight_buffer_pj_per_byte,
        }.get(buffer_name)
        if per_byte is None:
            raise ValueError(f"unknown buffer {buffer_name!r}")
        return per_byte * num_bytes

    def dram_energy(self, num_bytes: int) -> float:
        return self.dram_pj_per_bit * 8.0 * num_bytes

    def static_energy(self, cycles: int, frequency_hz: float) -> float:
        """Leakage/clock energy over ``cycles`` at the given frequency, in pJ."""
        seconds = cycles / frequency_hz
        return self.static_power_watts * seconds * 1e12


@dataclass(frozen=True)
class AreaModel:
    """Area model reproducing the paper's 15.6 mm² at 32 nm.

    Component densities are representative 32 nm figures: a fixed-point MAC
    plus its registers ≈ 2600 µm², SRAM ≈ 4.5 mm² per MB including periphery,
    plus a fixed overhead for the controller, scheduler, RLC decoder,
    activation unit and the HBM PHY.
    """

    mac_area_mm2: float = 0.0028
    sram_area_mm2_per_mb: float = 5.5
    sfu_area_mm2: float = 0.015
    fixed_overhead_mm2: float = 2.3

    def chip_area_mm2(self, config: AcceleratorConfig, *, num_sfu_columns: int = 4) -> float:
        buffer_mb = (
            config.input_buffer_bytes_or_default
            + config.output_buffer_bytes
            + config.weight_buffer_bytes
        ) / (1024 * 1024)
        return (
            self.mac_area_mm2 * config.total_macs
            + self.sram_area_mm2_per_mb * buffer_mb
            + self.sfu_area_mm2 * num_sfu_columns * config.num_rows
            + self.fixed_overhead_mm2
        )
