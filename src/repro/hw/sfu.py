"""Special Function Unit (SFU) model.

The CPE array interleaves columns of SFUs that provide the nonlinearities
GNNs need beyond MACs: exponentiation (for the softmax in GAT attention and
in DiffPool's assignment matrix), LeakyReLU, ReLU, and division for the
softmax normalization (paper, Section III).  Exponentiation uses an accurate
low-area lookup-table implementation [Nilsson et al. 2014]; the functional
model here reproduces a table-plus-interpolation scheme so the numeric error
of the hardware approximation can be bounded in tests, and the cycle model
charges the latencies the interleaved placement achieves.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["SFUConfig", "SpecialFunctionUnit"]


@dataclass(frozen=True)
class SFUConfig:
    """Latency (cycles) and LUT parameters of the special function unit."""

    exp_latency_cycles: int = 2
    leaky_relu_latency_cycles: int = 1
    relu_latency_cycles: int = 1
    divide_latency_cycles: int = 4
    #: Number of LUT segments for the exponential approximation.
    exp_lut_entries: int = 256
    #: Input range covered by the LUT; inputs are clamped into it (softmax
    #: arguments are max-shifted, so the range [-16, 0] dominates).
    exp_lut_min: float = -16.0
    exp_lut_max: float = 8.0


class SpecialFunctionUnit:
    """Functional + cycle model of one SFU column."""

    def __init__(self, config: SFUConfig | None = None) -> None:
        self.config = config or SFUConfig()
        self._lut_inputs = np.linspace(
            self.config.exp_lut_min, self.config.exp_lut_max, self.config.exp_lut_entries
        )
        self._lut_values = np.exp(self._lut_inputs)
        self.invocation_counts: dict[str, int] = {"exp": 0, "leaky_relu": 0, "relu": 0, "divide": 0}

    # ------------------------------------------------------------------ #
    # Functional behaviour (LUT-approximated exponential)
    # ------------------------------------------------------------------ #
    def exp(self, values: np.ndarray) -> np.ndarray:
        """LUT-based exponential with linear interpolation between entries."""
        values = np.asarray(values, dtype=np.float64)
        clamped = np.clip(values, self.config.exp_lut_min, self.config.exp_lut_max)
        result = np.interp(clamped, self._lut_inputs, self._lut_values)
        self.invocation_counts["exp"] += int(np.size(values))
        return result

    def leaky_relu(self, values: np.ndarray, negative_slope: float = 0.2) -> np.ndarray:
        values = np.asarray(values, dtype=np.float64)
        self.invocation_counts["leaky_relu"] += int(np.size(values))
        return np.where(values > 0.0, values, negative_slope * values)

    def relu(self, values: np.ndarray) -> np.ndarray:
        values = np.asarray(values, dtype=np.float64)
        self.invocation_counts["relu"] += int(np.size(values))
        return np.maximum(values, 0.0)

    def divide(self, numerators: np.ndarray, denominators: np.ndarray) -> np.ndarray:
        numerators = np.asarray(numerators, dtype=np.float64)
        denominators = np.asarray(denominators, dtype=np.float64)
        self.invocation_counts["divide"] += int(np.size(numerators))
        return numerators / np.maximum(np.abs(denominators), 1e-30) * np.sign(
            np.where(denominators == 0.0, 1.0, denominators)
        )

    def exp_max_relative_error(self) -> float:
        """Worst-case relative error of the LUT exponential over its range."""
        probe = np.linspace(self.config.exp_lut_min, self.config.exp_lut_max, 10001)
        approx = np.interp(probe, self._lut_inputs, self._lut_values)
        exact = np.exp(probe)
        return float(np.max(np.abs(approx - exact) / exact))

    # ------------------------------------------------------------------ #
    # Cycle accounting
    # ------------------------------------------------------------------ #
    def cycles_for(self, operation: str, count: int) -> int:
        """Cycles to perform ``count`` scalar operations of the given kind."""
        latency = {
            "exp": self.config.exp_latency_cycles,
            "leaky_relu": self.config.leaky_relu_latency_cycles,
            "relu": self.config.relu_latency_cycles,
            "divide": self.config.divide_latency_cycles,
        }.get(operation)
        if latency is None:
            raise ValueError(f"unknown SFU operation {operation!r}")
        if count < 0:
            raise ValueError("count must be non-negative")
        return int(latency * count)
