"""Hardware component models of the GNNIE accelerator."""

from repro.hw.buffers import BufferStats, DoubleBuffer, OnChipBuffer
from repro.hw.config import DESIGN_PRESETS, AcceleratorConfig, design_preset
from repro.hw.cpe import ComputePE, CPEConfig
from repro.hw.dram import DRAMStats, HBMModel
from repro.hw.energy import AreaModel, EnergyBreakdown, EnergyModel
from repro.hw.mpe import MergePE, MPEConfig, MPEStats
from repro.hw.pe_array import PEArray, RowWorkload
from repro.hw.sfu import SFUConfig, SpecialFunctionUnit

__all__ = [
    "AcceleratorConfig",
    "DESIGN_PRESETS",
    "design_preset",
    "ComputePE",
    "CPEConfig",
    "MergePE",
    "MPEConfig",
    "MPEStats",
    "SpecialFunctionUnit",
    "SFUConfig",
    "PEArray",
    "RowWorkload",
    "OnChipBuffer",
    "DoubleBuffer",
    "BufferStats",
    "HBMModel",
    "DRAMStats",
    "EnergyModel",
    "EnergyBreakdown",
    "AreaModel",
]
