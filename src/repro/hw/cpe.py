"""Computation Processing Element (CPE) model.

Each CPE holds two scratchpads and a (row-group-dependent) number of MAC
units (paper, Section III).  During Weighting a CPE multiplies k-element
blocks of a vertex feature vector against the k weight-matrix rows resident
in its scratchpad, skipping zero operands; during Aggregation a CPE performs
pairwise additions of operands placed in its two scratchpads (one step of an
adder tree) or the edge computation of Fig. 7 for GATs.

The class models cycle cost and operand traffic; the functional arithmetic
itself is carried out by the mapping layer with NumPy for speed, and
cross-checked against the reference models in the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["CPEConfig", "ComputePE"]


@dataclass(frozen=True)
class CPEConfig:
    """Static parameters of one CPE."""

    num_macs: int
    #: Scratchpad capacity in values (holds a k-block of weights or features).
    spad_entries: int = 512
    #: Pipeline latency of issuing one group of MAC operations.
    mac_issue_latency_cycles: int = 1


@dataclass
class ComputePE:
    """Cycle/occupancy model of a single computation PE."""

    config: CPEConfig
    busy_cycles: int = 0
    mac_operations: int = 0
    skipped_zero_operations: int = 0
    spad_accesses: int = 0

    @property
    def num_macs(self) -> int:
        return self.config.num_macs

    def weighting_cycles(self, nonzero_operands: int, *, zero_operands: int = 0) -> int:
        """Cycles to MAC ``nonzero_operands`` scalars against resident weights.

        With zero skipping only the nonzero elements of the k-block occupy
        MAC slots; the CPE retires up to ``num_macs`` multiplies per cycle.
        Zero operands are skipped by the zero-detection buffer at no MAC cost
        (they are counted so utilization statistics can report the savings).
        """
        if nonzero_operands < 0 or zero_operands < 0:
            raise ValueError("operand counts must be non-negative")
        cycles = -(-nonzero_operands // self.config.num_macs) if nonzero_operands else 0
        self.busy_cycles += cycles
        self.mac_operations += nonzero_operands
        self.skipped_zero_operations += zero_operands
        self.spad_accesses += 2 * nonzero_operands  # weight + feature operand reads
        return cycles

    def aggregation_cycles(self, pairwise_additions: int) -> int:
        """Cycles to perform ``pairwise_additions`` adder-tree additions.

        Aggregation additions reuse the MAC adders, so a CPE retires up to
        ``num_macs`` additions per cycle.
        """
        if pairwise_additions < 0:
            raise ValueError("pairwise_additions must be non-negative")
        cycles = -(-pairwise_additions // self.config.num_macs) if pairwise_additions else 0
        self.busy_cycles += cycles
        self.mac_operations += pairwise_additions
        self.spad_accesses += 2 * pairwise_additions
        return cycles

    def utilization(self, elapsed_cycles: int) -> float:
        """Fraction of elapsed cycles this CPE was busy."""
        if elapsed_cycles <= 0:
            return 0.0
        return min(1.0, self.busy_cycles / elapsed_cycles)

    def reset(self) -> None:
        self.busy_cycles = 0
        self.mac_operations = 0
        self.skipped_zero_operations = 0
        self.spad_accesses = 0
