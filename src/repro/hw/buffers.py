"""On-chip buffer models (input, output and weight buffers).

The memory interface of GNNIE (paper, Section III) uses three double-buffered
SRAM structures:

* the **input buffer** holds the vertex features (RLC-encoded for the input
  layer) and the connectivity of the resident subgraph,
* the **output buffer** caches partial and completed vertex feature results
  before they are written back to DRAM, and
* the **weight buffer** holds N columns of the weight matrix under the
  weight-stationary scheme (plus the attention vector during GAT
  Aggregation).

The model tracks capacity, occupancy, access counts (for the energy model)
and overflow traffic that has to spill to DRAM.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["BufferStats", "OnChipBuffer", "DoubleBuffer"]


@dataclass
class BufferStats:
    """Access counters used by the energy model."""

    reads: int = 0
    writes: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    spill_bytes: int = 0
    peak_occupancy_bytes: int = 0


@dataclass
class OnChipBuffer:
    """A single SRAM buffer with capacity tracking.

    Attributes:
        name: Buffer name used in reports ("input", "output", "weight").
        capacity_bytes: Usable capacity.
    """

    name: str
    capacity_bytes: int
    stats: BufferStats = field(default_factory=BufferStats)
    _occupancy: int = 0

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0:
            raise ValueError("capacity_bytes must be positive")

    @property
    def occupancy_bytes(self) -> int:
        return self._occupancy

    @property
    def free_bytes(self) -> int:
        return self.capacity_bytes - self._occupancy

    def fits(self, num_bytes: int) -> bool:
        return num_bytes <= self.free_bytes

    def allocate(self, num_bytes: int) -> int:
        """Reserve space; returns the number of bytes that spilled to DRAM.

        If the request exceeds the free space, the excess is counted as
        spill traffic (the caller charges the corresponding DRAM transfer).
        """
        if num_bytes < 0:
            raise ValueError("num_bytes must be non-negative")
        spill = max(0, num_bytes - self.free_bytes)
        kept = num_bytes - spill
        self._occupancy += kept
        self.stats.spill_bytes += spill
        self.stats.peak_occupancy_bytes = max(self.stats.peak_occupancy_bytes, self._occupancy)
        return spill

    def release(self, num_bytes: int) -> None:
        if num_bytes < 0:
            raise ValueError("num_bytes must be non-negative")
        self._occupancy = max(0, self._occupancy - num_bytes)

    def read(self, num_bytes: int) -> None:
        """Record a read access of ``num_bytes`` (for energy accounting)."""
        if num_bytes < 0:
            raise ValueError("num_bytes must be non-negative")
        self.stats.reads += 1
        self.stats.bytes_read += num_bytes

    def write(self, num_bytes: int) -> None:
        """Record a write access of ``num_bytes`` (for energy accounting)."""
        if num_bytes < 0:
            raise ValueError("num_bytes must be non-negative")
        self.stats.writes += 1
        self.stats.bytes_written += num_bytes

    def reset(self) -> None:
        self.stats = BufferStats()
        self._occupancy = 0


@dataclass
class DoubleBuffer:
    """Two ping-pong halves used to overlap DRAM fetches with computation.

    The paper uses double buffering for both the input buffer (fetch the next
    vertex set while the CPEs compute) and the weight buffer (fetch the next
    N weight columns during the current pass).  The model answers the only
    question the scheduler needs: given the compute time of the current half
    and the fetch time of the next half, how many cycles of exposed stall
    remain?
    """

    name: str
    capacity_bytes: int

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0:
            raise ValueError("capacity_bytes must be positive")
        self.half_capacity_bytes = self.capacity_bytes // 2
        self.exposed_stall_cycles = 0
        self.hidden_fetch_cycles = 0

    def overlap(self, compute_cycles: int, fetch_cycles: int) -> int:
        """Cycles for one phase when fetch overlaps compute.

        Returns ``max(compute, fetch)`` and tracks how much fetch latency was
        hidden versus exposed.
        """
        if compute_cycles < 0 or fetch_cycles < 0:
            raise ValueError("cycle counts must be non-negative")
        exposed = max(0, fetch_cycles - compute_cycles)
        self.exposed_stall_cycles += exposed
        self.hidden_fetch_cycles += min(compute_cycles, fetch_cycles)
        return max(compute_cycles, fetch_cycles)
