"""Off-chip HBM DRAM model.

The original evaluation integrates Ramulator to model HBM 2.0 at 256 GB/s;
the reproduction replaces it with a bandwidth/latency/energy model that
distinguishes the two access patterns GNNIE's caching policy is designed
around:

* **sequential (streaming) transfers** — the only kind GNNIE issues, charged
  at the full burst bandwidth, and
* **random accesses** — charged a per-access row-activation penalty, used by
  the baseline models (and by GNNIE with degree-aware caching disabled) to
  quantify the cost the policy avoids.

Energy uses the paper's 3.97 pJ/bit figure for HBM 2.0.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["DRAMStats", "HBMModel"]


@dataclass
class DRAMStats:
    """Traffic counters accumulated over a simulation."""

    sequential_bytes: int = 0
    random_bytes: int = 0
    random_accesses: int = 0
    total_cycles: int = 0
    #: Random accesses that were resolved by the miss-path hierarchy
    #: (victim cache / miss cache / stream buffers) and therefore never
    #: reached DRAM; tracked so ablations can report recovered traffic.
    random_accesses_avoided: int = 0
    random_bytes_avoided: int = 0

    @property
    def total_bytes(self) -> int:
        return self.sequential_bytes + self.random_bytes

    @property
    def random_accesses_issued(self) -> int:
        """Random accesses before miss-path filtering (issued by the policy)."""
        return self.random_accesses + self.random_accesses_avoided


@dataclass
class HBMModel:
    """Bandwidth/latency/energy model of the HBM 2.0 interface.

    Attributes:
        bandwidth_bytes_per_s: Peak sustained bandwidth (256 GB/s).
        frequency_hz: Accelerator clock used to convert time to cycles.
        energy_pj_per_bit: Access energy (3.97 pJ/bit, paper Section VIII-A).
        random_access_penalty_cycles: Extra cycles charged per random access
            (row activation + column access at the accelerator clock).
        random_access_granularity_bytes: Minimum burst transferred per random
            access (a 32-byte HBM access granule).
        random_access_parallelism: Outstanding random requests the HBM
            channels/banks service concurrently (memory-level parallelism);
            the per-access penalty is amortized over this factor.
    """

    bandwidth_bytes_per_s: float = 256e9
    frequency_hz: float = 1.3e9
    energy_pj_per_bit: float = 3.97
    random_access_penalty_cycles: int = 40
    random_access_granularity_bytes: int = 32
    random_access_parallelism: int = 8
    stats: DRAMStats = field(default_factory=DRAMStats)

    def __post_init__(self) -> None:
        if self.bandwidth_bytes_per_s <= 0 or self.frequency_hz <= 0:
            raise ValueError("bandwidth and frequency must be positive")

    @property
    def bytes_per_cycle(self) -> float:
        return self.bandwidth_bytes_per_s / self.frequency_hz

    # ------------------------------------------------------------------ #
    # Transfers
    # ------------------------------------------------------------------ #
    def sequential_transfer_cycles(self, num_bytes: int) -> int:
        """Cycles to stream ``num_bytes`` sequentially at peak bandwidth."""
        if num_bytes < 0:
            raise ValueError("num_bytes must be non-negative")
        cycles = int(-(-num_bytes // self.bytes_per_cycle)) if num_bytes else 0
        self.stats.sequential_bytes += num_bytes
        self.stats.total_cycles += cycles
        return cycles

    def random_transfer_cycles(self, num_accesses: int, bytes_per_access: int | None = None) -> int:
        """Cycles for ``num_accesses`` random accesses.

        Each access pays the activation penalty and transfers at least one
        access granule, so random access bandwidth is far below streaming
        bandwidth — the gap GNNIE's caching policy exploits.
        """
        if num_accesses < 0:
            raise ValueError("num_accesses must be non-negative")
        granule = bytes_per_access or self.random_access_granularity_bytes
        transfer_bytes = num_accesses * max(granule, self.random_access_granularity_bytes)
        stream_cycles = int(-(-transfer_bytes // self.bytes_per_cycle)) if transfer_bytes else 0
        penalty_cycles = int(
            np.ceil(
                num_accesses
                * self.random_access_penalty_cycles
                / max(1, self.random_access_parallelism)
            )
        )
        cycles = penalty_cycles + stream_cycles
        self.stats.random_bytes += transfer_bytes
        self.stats.random_accesses += num_accesses
        self.stats.total_cycles += cycles
        return cycles

    def note_avoided_random_accesses(
        self, num_accesses: int, bytes_per_access: int | None = None
    ) -> None:
        """Record random accesses the miss-path hierarchy filtered out.

        No random-access cycles or energy are charged here: victim/miss-cache
        hits are served on chip, and stream-buffer hits are charged by the
        caller as *sequential* prefetch traffic instead.  This only keeps
        the statistics honest about how much random traffic disappeared.
        """
        if num_accesses < 0:
            raise ValueError("num_accesses must be non-negative")
        granule = bytes_per_access or self.random_access_granularity_bytes
        self.stats.random_accesses_avoided += num_accesses
        self.stats.random_bytes_avoided += num_accesses * max(
            granule, self.random_access_granularity_bytes
        )

    # ------------------------------------------------------------------ #
    # Energy
    # ------------------------------------------------------------------ #
    def transfer_energy_pj(self, num_bytes: int) -> float:
        """Energy to move ``num_bytes`` across the HBM interface."""
        if num_bytes < 0:
            raise ValueError("num_bytes must be non-negative")
        return 8.0 * num_bytes * self.energy_pj_per_bit

    def total_energy_pj(self) -> float:
        """Energy of all traffic recorded so far."""
        return self.transfer_energy_pj(self.stats.total_bytes)

    def reset(self) -> None:
        self.stats = DRAMStats()
