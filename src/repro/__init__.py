"""repro — a Python reproduction of GNNIE (DAC 2022).

GNNIE is a GNN inference accelerator with a unified Weighting/Aggregation PE
array, Flexible-MAC load balancing, and graph-specific degree-aware caching.
This package provides:

* ``repro.graph`` / ``repro.sparse`` / ``repro.datasets`` — graph and sparse
  feature substrates plus synthetic stand-ins for the Table II datasets,
* ``repro.models`` — functional NumPy references for GCN, GAT, GraphSAGE,
  GINConv and DiffPool,
* ``repro.hw`` / ``repro.mapping`` / ``repro.cache`` — the accelerator
  component models, the Weighting/Aggregation mapping policies and the
  caching policy,
* ``repro.plan`` — the backend-neutral phase-op IR every family lowers to
  and every backend executes,
* ``repro.sim`` — the GNNIE plan executor and the cycle/energy simulator
  wrapper (:class:`~repro.sim.GNNIESimulator`),
* ``repro.baselines`` — PyG-CPU, PyG-GPU, HyGCN, AWB-GCN and EnGN cost
  models, re-expressed as plan executors,
* ``repro.sweep`` — the parallel scenario-matrix runner with its resumable
  result store (``python -m repro sweep``),
* ``repro.analysis`` — helpers behind every reproduced figure and table.

Quickstart::

    from repro.datasets import build_dataset
    from repro.sim import GNNIESimulator

    graph = build_dataset("cora")
    result = GNNIESimulator().run(graph, "gcn")
    print(result.summary())
"""

from repro.datasets import build_dataset, dataset_names, tiny_dataset
from repro.hw import AcceleratorConfig, design_preset
from repro.models import build_model
from repro.sim import GNNIESimulator, InferenceResult

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "build_dataset",
    "dataset_names",
    "tiny_dataset",
    "AcceleratorConfig",
    "design_preset",
    "build_model",
    "GNNIESimulator",
    "InferenceResult",
]
