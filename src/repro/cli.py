"""Command-line interface for the GNNIE reproduction.

Examples
--------
List the registered datasets and their Table II statistics::

    python -m repro datasets

Simulate one inference and print the per-phase report::

    python -m repro simulate --dataset cora --model gat
    python -m repro simulate --dataset pubmed --model gcn --design A --json

Profile one inference: span-by-span attribution (modeled cycles, MACs,
DRAM bytes, energy; host wall time) plus a Perfetto-loadable Chrome trace::

    python -m repro profile --dataset cora --family gcn
    python -m repro profile --dataset cora --family gcn --trace-out t.json \\
        --metrics-out metrics.csv

Show the lowered phase-op program for one (dataset, model) pair::

    python -m repro plan --dataset cora --model gat
    python -m repro plan --dataset pubmed --model diffpool --json

Compare GNNIE against the baseline platforms::

    python -m repro compare --dataset citeseer --model gcn
    python -m repro compare --dataset citeseer --model gcn --json

Sweep the named design points A–E::

    python -m repro designs --dataset cora --model gcn

Evaluate miss-path mechanisms (victim cache / miss cache / stream buffers)
behind the input buffer::

    python -m repro cache --dataset cora --mechanism victim,stream
    python -m repro cache --dataset pubmed --policy all --mechanism victim,miss,stream

Run a scenario sweep (dataset × family × backend matrix) into a resumable
result store, fanning cells across worker processes::

    python -m repro sweep --jobs 4 --store sweep.jsonl
    python -m repro sweep --datasets cora,citeseer --models gcn,gat \\
        --backends gnnie,pyg-cpu --scale 0.1 --jobs 2 --store sweep.jsonl
    python -m repro sweep --store sweep.jsonl --json   # resumes: skips done cells
    python -m repro sweep --jobs 2 --store sweep.jsonl --trace sweep-trace.json

Scale out across simulated multi-chip fleets (edge-cut partition plus
halo-exchange traffic over the chip-to-chip link)::

    python -m repro plan --dataset cora --model gcn --chips 4
    python -m repro compare --dataset cora --model gcn --chips 4
    python -m repro sweep --backends gnnie --chips 1,4,16 --store sweep.jsonl

The fleet is supervised: failing groups retry with backoff, batch groups
degrade to per-cell execution to isolate a poisoned cell, crashed workers
rebuild the pool, and permanently-failed cells land as explicit ``failed``
rows (``--strict`` raises instead).  ``--faults`` arms a deterministic
chaos plan (see :mod:`repro.faults`)::

    python -m repro sweep --jobs 2 --timeout 30 --max-attempts 3 --store s.jsonl
    python -m repro sweep --jobs 2 --faults plan.json --store s.jsonl

Inspect and heal a result store (corrupt rows are quarantined at load, the
``store`` tools excise or rewrite them)::

    python -m repro store verify --store sweep.jsonl
    python -m repro store repair --store sweep.jsonl
    python -m repro store compact --store sweep.jsonl

Close the design-space loop: generations of sweep -> aggregate -> propose,
resumable through the same store machinery::

    python -m repro tune --dataset cora --model gcn --generations 4 \\
        --population 6 --mac-budget 1280 --jobs 2 --store tune.jsonl
    python -m repro tune --dataset cora --model gcn --generations 4 \\
        --population 6 --store tune.jsonl --json   # resume: 0 executed
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Sequence

import repro
from repro.analysis import (
    TRACE_POLICIES,
    compare_against_platform,
    format_table,
    miss_path_ablation_rows,
)
from repro.analysis.roofline import roofline_analysis
from repro.baselines import AWBGCNModel, HyGCNModel, PyGCPUModel, PyGGPUModel
from repro.baselines.engn import EnGNModel
from repro.cache import MissPathConfig, mechanism_names
from repro.datasets import build_dataset, dataset_names, dataset_spec
from repro.hw import AcceleratorConfig, design_preset
from repro.models import MODEL_FAMILIES
from repro.plan import executor_names, lower
from repro.sim import GNNIESimulator, input_buffer_capacity
from repro.sim.trace import phase_table, result_to_json
from repro.sweep import (
    ResultStore,
    RetryPolicy,
    ScenarioMatrix,
    SweepError,
    compact_store,
    is_failed_row,
    repair_store,
    run_sweep,
    verify_store,
)

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="GNNIE (DAC 2022) reproduction: simulate GNN inference on the GNNIE accelerator model.",
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {repro.__version__}"
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    datasets_parser = subparsers.add_parser("datasets", help="list registered datasets")
    datasets_parser.set_defaults(handler=_cmd_datasets)

    simulate_parser = subparsers.add_parser("simulate", help="simulate one inference")
    _add_workload_arguments(simulate_parser)
    simulate_parser.add_argument("--json", action="store_true", help="emit the full JSON report")
    simulate_parser.add_argument(
        "--roofline", action="store_true", help="append a per-phase bottleneck analysis"
    )
    simulate_parser.set_defaults(handler=_cmd_simulate)

    profile_parser = subparsers.add_parser(
        "profile",
        help="profile one inference: per-span attribution + Chrome-trace export",
    )
    profile_parser.add_argument(
        "--dataset", default="cora", choices=dataset_names(), help="benchmark dataset"
    )
    profile_parser.add_argument(
        "--family",
        "--model",
        dest="family",
        default="gcn",
        choices=list(MODEL_FAMILIES),
        help="GNN family (Table III); --model is accepted as an alias",
    )
    profile_parser.add_argument(
        "--scale", type=float, default=None, help="dataset scale factor in (0, 1]"
    )
    profile_parser.add_argument("--seed", type=int, default=0, help="dataset generation seed")
    profile_parser.add_argument(
        "--design",
        default=None,
        choices=["A", "B", "C", "D", "E"],
        help="use a named design point instead of the default GNNIE configuration",
    )
    profile_parser.add_argument(
        "--trace-out",
        default=None,
        metavar="PATH",
        help="write a Chrome trace-event JSON (chrome://tracing / Perfetto), "
        "one track per GNN layer",
    )
    profile_parser.add_argument(
        "--metrics-out",
        default=None,
        metavar="PATH",
        help="write the metrics registry (.csv -> CSV, anything else -> JSON)",
    )
    profile_parser.add_argument(
        "--json", action="store_true", help="emit the profile report as JSON"
    )
    profile_parser.set_defaults(handler=_cmd_profile)

    plan_parser = subparsers.add_parser(
        "plan", help="show the lowered phase-op program for a (dataset, model) pair"
    )
    _add_workload_arguments(plan_parser)
    plan_parser.add_argument(
        "--chips",
        type=int,
        default=1,
        help="partition across N simulated chips and show each chip's plan "
        "with its spliced halo-exchange ops (default: 1, the plain plan)",
    )
    plan_parser.add_argument(
        "--check",
        action="store_true",
        help="verify the plan (and every chip plan with --chips > 1) against "
        "the repro.check verifier rules before printing",
    )
    plan_parser.add_argument("--json", action="store_true", help="emit the plan as JSON")
    plan_parser.set_defaults(handler=_cmd_plan)

    check_parser = subparsers.add_parser(
        "check",
        help="static analysis: determinism linter over src/repro plus plan "
        "verification across every registered family x dataset",
    )
    check_parser.add_argument(
        "--lint",
        action="store_true",
        help="run only the determinism linter (default: linter + plans)",
    )
    check_parser.add_argument(
        "--plans",
        action="store_true",
        help="run only plan verification (default: linter + plans)",
    )
    check_parser.add_argument(
        "--paths",
        nargs="+",
        default=["src/repro"],
        help="files or directories to lint (default: src/repro)",
    )
    check_parser.add_argument(
        "--baseline",
        default="repro-check-baseline.json",
        help="committed findings baseline; only findings not in it fail "
        "(default: repro-check-baseline.json)",
    )
    check_parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline file to contain exactly the current findings",
    )
    check_parser.add_argument(
        "--json", action="store_true", help="emit the full report as JSON"
    )
    check_parser.set_defaults(handler=_cmd_check)

    compare_parser = subparsers.add_parser("compare", help="compare against baseline platforms")
    _add_workload_arguments(compare_parser)
    compare_parser.add_argument(
        "--chips",
        type=int,
        default=1,
        help="run GNNIE scaled out across N simulated chips (baselines model "
        "fixed silicon and always run single-chip; default: 1)",
    )
    compare_parser.add_argument(
        "--json", action="store_true", help="emit the comparison rows as JSON"
    )
    compare_parser.set_defaults(handler=_cmd_compare)

    designs_parser = subparsers.add_parser("designs", help="evaluate design points A-E")
    _add_workload_arguments(designs_parser)
    designs_parser.set_defaults(handler=_cmd_designs)

    cache_parser = subparsers.add_parser(
        "cache",
        help="evaluate miss-path mechanisms (victim/miss/stream) behind the input buffer",
    )
    cache_parser.add_argument(
        "--dataset", default="cora", choices=dataset_names(), help="benchmark dataset"
    )
    cache_parser.add_argument(
        "--scale", type=float, default=None, help="dataset scale factor in (0, 1]"
    )
    cache_parser.add_argument("--seed", type=int, default=0, help="dataset generation seed")
    cache_parser.add_argument(
        "--mechanism",
        default="victim,miss,stream",
        help=(
            "comma-separated miss-path mechanisms to evaluate "
            f"(known: {', '.join(mechanism_names())}); each is evaluated alone "
            "plus one combined hierarchy row when several are given"
        ),
    )
    cache_parser.add_argument(
        "--policy",
        default="vertex_order",
        choices=sorted(TRACE_POLICIES) + ["all"],
        help="hit-path policy whose miss trace is filtered (default: the "
        "vertex-order baseline, the policy with the random-traffic problem)",
    )
    cache_parser.add_argument(
        "--feature-length",
        type=int,
        default=128,
        help="aggregated feature length used to size one vertex record",
    )
    cache_parser.add_argument(
        "--victim-entries", type=int, default=None, help="victim cache entries"
    )
    cache_parser.add_argument(
        "--miss-entries", type=int, default=None, help="miss cache tag entries"
    )
    cache_parser.add_argument(
        "--stream-buffers", type=int, default=None, help="number of stream buffers"
    )
    cache_parser.add_argument(
        "--stream-depth", type=int, default=None, help="prefetch depth per stream buffer"
    )
    cache_parser.set_defaults(handler=_cmd_cache)

    sweep_parser = subparsers.add_parser(
        "sweep",
        help="run a (dataset × model × backend) scenario matrix into a resumable store",
    )
    sweep_parser.add_argument(
        "--datasets",
        default="all",
        help="comma-separated dataset names, or 'all' (default: all five)",
    )
    sweep_parser.add_argument(
        "--models",
        default="all",
        help="comma-separated GNN families, or 'all' (default: all five)",
    )
    sweep_parser.add_argument(
        "--backends",
        default="all",
        help=(
            "comma-separated executor backends, or 'all' "
            f"(default: {', '.join(executor_names())})"
        ),
    )
    sweep_parser.add_argument(
        "--designs",
        default=None,
        help="comma-separated design points A-E to sweep as configurations "
        "(default: the GNNIE configuration); baseline platforms model fixed "
        "silicon and are swept once regardless",
    )
    sweep_parser.add_argument(
        "--scale", type=float, default=None,
        help="dataset scale override in (0, 1] applied to every dataset "
        "(default: each dataset's registry scale)",
    )
    sweep_parser.add_argument(
        "--seed", type=int, default=0,
        help="base seed; per-dataset seeds are derived deterministically from it",
    )
    sweep_parser.add_argument(
        "--chips",
        default="1",
        help="comma-separated chip counts to sweep as a scale-out axis "
        "(e.g. '1,4,16'); counts above 1 apply only to backends that "
        "support scale-out (default: 1)",
    )
    sweep_parser.add_argument(
        "--jobs", type=int, default=1, help="worker processes (1 = run in-process)"
    )
    sweep_parser.add_argument(
        "--store", default="sweep.jsonl", help="result store path (JSONL, one row per cell)"
    )
    sweep_parser.add_argument(
        "--no-resume",
        action="store_true",
        help="truncate an existing store instead of skipping its completed cells",
    )
    sweep_parser.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="trace the fleet and write a merged Chrome trace-event JSON "
        "(one track per worker process); rows are unchanged",
    )
    sweep_parser.add_argument(
        "--max-attempts",
        type=int,
        default=None,
        metavar="N",
        help="executions a failing group is charged before it degrades / "
        "fails permanently (default: 2)",
    )
    sweep_parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="wall-clock budget per dispatched group under --jobs > 1; an "
        "expired group's worker is terminated and the group charged one "
        "attempt (default: no timeout)",
    )
    sweep_parser.add_argument(
        "--strict",
        action="store_true",
        help="raise one SweepError aggregating every permanent failure "
        "instead of landing explicit failed rows",
    )
    sweep_parser.add_argument(
        "--faults",
        default=None,
        metavar="PLAN",
        help="arm a deterministic fault-injection plan: a JSON file path or "
        "inline JSON (chaos testing; see repro.faults)",
    )
    sweep_parser.add_argument(
        "--json", action="store_true", help="emit the summary and all rows as JSON"
    )
    sweep_parser.set_defaults(handler=_cmd_sweep)

    store_parser = subparsers.add_parser(
        "store",
        help="inspect and heal a result store (verify / repair / compact)",
    )
    store_subparsers = store_parser.add_subparsers(dest="store_command", required=True)
    for action, description in (
        ("verify", "read-only health report; exit 1 if damage is found"),
        ("repair", "excise corrupt lines into a .quarantine sidecar, drop a partial tail"),
        ("compact", "rewrite one canonical checksummed line per key (last write wins)"),
    ):
        action_parser = store_subparsers.add_parser(action, help=description)
        action_parser.add_argument(
            "--store", required=True, help="result store path (JSONL)"
        )
        action_parser.add_argument(
            "--json", action="store_true", help="emit the report as JSON"
        )
        action_parser.set_defaults(handler=_cmd_store, store_command=action)

    tune_parser = subparsers.add_parser(
        "tune",
        help="closed-loop autotuner: sweep -> aggregate -> propose over generations",
    )
    tune_parser.add_argument(
        "--dataset", default="cora", choices=dataset_names(), help="benchmark dataset"
    )
    tune_parser.add_argument(
        "--model", default="gcn", choices=list(MODEL_FAMILIES), help="GNN family (Table III)"
    )
    tune_parser.add_argument(
        "--scale", type=float, default=None, help="dataset scale factor in (0, 1]"
    )
    tune_parser.add_argument(
        "--seed", type=int, default=0,
        help="base seed for the dataset and the per-generation proposer RNG",
    )
    tune_parser.add_argument(
        "--generations", type=int, default=4, help="generations of the closed loop"
    )
    tune_parser.add_argument(
        "--population", type=int, default=6, help="candidate configurations per generation"
    )
    tune_parser.add_argument(
        "--mac-budget", type=int, default=1280,
        help="total-MAC admissibility budget for proposed allocations",
    )
    tune_parser.add_argument(
        "--jobs", type=int, default=1, help="worker processes per generation sweep"
    )
    tune_parser.add_argument(
        "--store", default="tune.jsonl", help="resumable result store path (JSONL)"
    )
    tune_parser.add_argument(
        "--no-resume",
        action="store_true",
        help="truncate an existing store instead of serving its completed cells",
    )
    tune_parser.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="trace the tuning fleet (one generation span per sweep) and "
        "write a merged Chrome trace-event JSON",
    )
    tune_parser.add_argument(
        "--json", action="store_true", help="emit the full tuning report as JSON"
    )
    tune_parser.set_defaults(handler=_cmd_tune)

    return parser


def _add_workload_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--dataset", default="cora", choices=dataset_names(), help="benchmark dataset"
    )
    parser.add_argument(
        "--model", default="gcn", choices=list(MODEL_FAMILIES), help="GNN family (Table III)"
    )
    parser.add_argument(
        "--scale", type=float, default=None, help="dataset scale factor in (0, 1]"
    )
    parser.add_argument("--seed", type=int, default=0, help="dataset generation seed")
    parser.add_argument(
        "--design",
        default=None,
        choices=["A", "B", "C", "D", "E"],
        help="use a named design point instead of the default GNNIE configuration",
    )


def _load(args: argparse.Namespace):
    graph = build_dataset(args.dataset, scale=args.scale, seed=args.seed)
    config = design_preset(args.design) if args.design else AcceleratorConfig()
    return graph, config


def _cmd_datasets(args: argparse.Namespace) -> int:
    rows = []
    for name in dataset_names():
        spec = dataset_spec(name)
        rows.append(
            {
                "dataset": spec.name,
                "abbrev": spec.abbreviation,
                "vertices": spec.num_vertices,
                "edges": spec.num_edges,
                "features": spec.feature_length,
                "labels": spec.num_labels,
                "feature_sparsity_pct": round(100 * spec.feature_sparsity, 2),
                "default_scale": spec.default_scale,
            }
        )
    print(format_table(rows, title="Registered datasets (Table II)"))
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    graph, config = _load(args)
    result = GNNIESimulator(config).run(graph, args.model)
    if args.json:
        print(result_to_json(result))
        return 0
    print(format_table([result.summary()], title=f"GNNIE {args.model.upper()} on {graph.name}"))
    print()
    print(format_table(phase_table(result), title="Per-phase breakdown"))
    if args.roofline:
        summary = roofline_analysis(result, config)
        rows = [
            {
                "layer": phase.layer_index,
                "phase": phase.phase,
                "cycles": phase.total_cycles,
                "intensity_macs_per_byte": phase.arithmetic_intensity,
                "bound": phase.bound,
            }
            for phase in summary.phases
        ]
        print()
        print(format_table(rows, title="Roofline classification"))
        print(f"compute-bound fraction: {summary.compute_bound_fraction:.2f}")
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    from repro.obs import (
        MetricsRegistry,
        Tracer,
        flame_rows,
        metrics_to_csv,
        metrics_to_json,
        write_chrome_trace,
    )

    graph, config = _load(args)
    tracer = Tracer()
    metrics = MetricsRegistry()
    result = GNNIESimulator(config, tracer=tracer, metrics=metrics).run(graph, args.family)

    metadata = {
        "dataset": graph.name,
        "family": args.family,
        "config": config.name,
        "total_cycles": result.total_cycles,
        "latency_seconds": result.latency_seconds,
    }
    trace_path = None
    if args.trace_out:
        trace_path = write_chrome_trace(
            args.trace_out,
            tracer.records,
            track="layer",
            metrics=metrics,
            metadata=metadata,
        )
    if args.metrics_out:
        text = (
            metrics_to_csv(metrics)
            if args.metrics_out.endswith(".csv")
            else metrics_to_json(metrics) + "\n"
        )
        with open(args.metrics_out, "w") as handle:
            handle.write(text)

    flame = flame_rows(tracer.records)
    if args.json:
        print(
            json.dumps(
                {
                    "summary": result.summary(),
                    "spans": flame,
                    "metrics": metrics.snapshot(),
                    "trace": str(trace_path) if trace_path else None,
                },
                indent=2,
            )
        )
        return 0
    print(
        format_table(
            [result.summary()], title=f"GNNIE {args.family.upper()} on {graph.name}"
        )
    )
    print()
    print(format_table(flame, title="Span attribution (modeled cycles + host time)"))
    snapshot = metrics.snapshot()
    if snapshot:
        rows = [
            {
                "metric": entry["name"],
                "kind": entry["kind"],
                "labels": ";".join(f"{k}={v}" for k, v in sorted(entry["labels"].items()))
                or "-",
                "value": entry["value"],
            }
            for entry in snapshot
        ]
        print()
        print(format_table(rows, title="Metrics"))
    if trace_path is not None:
        print(f"\nChrome trace written to {trace_path} (load in Perfetto or chrome://tracing)")
    return 0


def _check_plans(plans: "list[tuple[str, object]]") -> int:
    """Verify labeled plans, printing violations; 0 when all are clean."""
    from repro.check import plan_violations

    failures = 0
    for label, plan in plans:
        violations = plan_violations(plan)  # type: ignore[arg-type]
        if violations:
            failures += 1
            for violation in violations:
                print(f"{label}: {violation.describe()}", file=sys.stderr)
    return failures


def _cmd_plan(args: argparse.Namespace) -> int:
    if args.chips < 1:
        print("--chips must be >= 1", file=sys.stderr)
        return 2
    graph, _ = _load(args)
    plan = lower(args.model, graph)
    if args.check and args.chips == 1:
        if _check_plans([(f"{args.model}/{graph.name}", plan)]):
            return 1
        print(f"plan verified clean: {args.model} on {graph.name}", file=sys.stderr)
    if args.chips == 1:
        if args.json:
            print(plan.to_json())
            return 0
        title = (
            f"Inference plan: {plan.family.upper()} on {graph.name} "
            f"({plan.num_layers} layers, {plan.in_features} -> {plan.out_features} features)"
        )
        print(format_table(plan.op_rows(), title=title))
        return 0

    from repro.scaleout import partition_workload

    workload = partition_workload(graph, plan, args.chips)
    partition = workload.partition
    if args.check:
        labeled = [(f"{args.model}/{graph.name}", plan)] + [
            (f"{args.model}/{graph.name}/chip{chip}", chip_plan)
            for chip, chip_plan in enumerate(workload.chip_plans)
        ]
        if _check_plans(labeled):
            return 1
        print(
            f"plan verified clean: {args.model} on {graph.name} "
            f"(+{len(workload.chip_plans)} chip plans)",
            file=sys.stderr,
        )
    if args.json:
        print(
            json.dumps(
                {
                    "chips": args.chips,
                    "method": partition.method,
                    "part_sizes": [int(size) for size in partition.part_sizes()],
                    "halo_vertices": [int(count) for count in partition.halo_counts],
                    "cut_edges": int(partition.cut_edges),
                    "imbalance": partition.imbalance(),
                    "plans": [
                        json.loads(chip_plan.to_json()) for chip_plan in workload.chip_plans
                    ],
                },
                indent=2,
            )
        )
        return 0
    summary_rows = [
        {
            "chip": chip,
            "vertices": int(partition.part_sizes()[chip]),
            "halo_vertices": int(partition.halo_counts[chip]),
        }
        for chip in range(args.chips)
    ]
    print(
        format_table(
            summary_rows,
            title=(
                f"Partition: {graph.name} across {args.chips} chips "
                f"({partition.method}, {partition.cut_edges} cut edges, "
                f"imbalance {partition.imbalance():.2f})"
            ),
        )
    )
    for chip, chip_plan in enumerate(workload.chip_plans):
        print()
        print(
            format_table(
                chip_plan.op_rows(),
                title=f"Chip {chip} plan: {chip_plan.family.upper()} on {graph.name}",
            )
        )
    return 0


def _cmd_check(args: argparse.Namespace) -> int:
    from repro.check import (
        filter_findings,
        lint_paths,
        load_baseline,
        verify_registered_plans,
        write_baseline,
    )

    run_lint = args.lint or not args.plans
    run_plans = args.plans or not args.lint

    findings = lint_paths(args.paths, root=".") if run_lint else []
    baseline = load_baseline(args.baseline) if run_lint else set()
    new_findings = filter_findings(findings, baseline)
    if run_lint and args.update_baseline:
        write_baseline(findings, args.baseline)
        new_findings = []

    plan_rows = verify_registered_plans() if run_plans else []
    bad_plans = [row for row in plan_rows if not row["ok"]]

    ok = not new_findings and not bad_plans
    if args.json:
        print(
            json.dumps(
                {
                    "ok": ok,
                    "lint": {
                        "findings": [finding.to_dict() for finding in findings],
                        "baselined": len(findings) - len(new_findings),
                        "new": [finding.to_dict() for finding in new_findings],
                    }
                    if run_lint
                    else None,
                    "plans": plan_rows if run_plans else None,
                },
                indent=2,
                sort_keys=True,
            )
        )
        return 0 if ok else 1

    if run_lint:
        for finding in findings:
            marker = "" if finding.key() not in baseline else " (baselined)"
            print(f"{finding.describe()}{marker}")
        print(
            f"lint: {len(findings)} finding(s), "
            f"{len(new_findings)} not in baseline"
        )
    if run_plans:
        for row in bad_plans:
            for violation in row["violations"]:
                print(f"{row['family']}/{row['dataset']}: {violation}", file=sys.stderr)
        print(
            f"plans: {len(plan_rows)} family x dataset pair(s) verified, "
            f"{len(bad_plans)} with violations"
        )
    if not ok:
        print("repro check: FAILED", file=sys.stderr)
        return 1
    print("repro check: ok")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    if args.chips < 1:
        print("--chips must be >= 1", file=sys.stderr)
        return 2
    graph, config = _load(args)
    if args.chips == 1:
        result = GNNIESimulator(config).run(graph, args.model)
        gnnie_label = "GNNIE"
    else:
        from repro.scaleout import execute_scaleout
        from repro.sim import GNNIEExecutor

        plan = lower(args.model, graph)
        result = execute_scaleout(
            GNNIEExecutor(config), plan, graph, config, chips=args.chips
        )
        gnnie_label = f"GNNIE x{args.chips}"
    platforms = [PyGCPUModel(), PyGGPUModel(), HyGCNModel(), AWBGCNModel(), EnGNModel()]
    rows = [
        {
            "platform": gnnie_label,
            "supported": True,
            "latency_ms": round(result.latency_seconds * 1e3, 4),
            "speedup": 1.0,
        }
    ]
    for platform in platforms:
        if not platform.supports(args.model):
            rows.append(
                {
                    "platform": platform.name,
                    "supported": False,
                    "latency_ms": None,
                    "speedup": None,
                }
            )
            continue
        entry = compare_against_platform(result, graph, platform)
        rows.append(
            {
                "platform": platform.name,
                "supported": True,
                "latency_ms": round(entry.baseline_latency_s * 1e3, 4),
                "speedup": round(entry.speedup, 2),
            }
        )
    if args.json:
        report = {"dataset": graph.name, "model": args.model.upper(), "rows": rows}
        if args.chips != 1:
            report["chips"] = args.chips
        print(json.dumps(report, indent=2))
        return 0
    table_rows = [
        {
            "platform": row["platform"],
            "latency_ms": row["latency_ms"] if row["supported"] else "unsupported",
            "speedup": row["speedup"] if row["supported"] else "-",
        }
        for row in rows
    ]
    print(
        format_table(table_rows, title=f"{args.model.upper()} on {graph.name}: GNNIE vs baselines")
    )
    return 0


def _cmd_designs(args: argparse.Namespace) -> int:
    graph, _ = _load(args)
    rows = []
    for name in ("A", "B", "C", "D", "E"):
        config = design_preset(name)
        result = GNNIESimulator(config).run(graph, args.model)
        rows.append(
            {
                "design": config.name,
                "total_macs": config.total_macs,
                "cycles": result.total_cycles,
                "latency_us": round(result.latency_seconds * 1e6, 2),
                "energy_uJ": round(result.energy_joules * 1e6, 2),
            }
        )
    print(format_table(rows, title=f"Design points A-E: {args.model.upper()} on {graph.name}"))
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    graph = build_dataset(args.dataset, scale=args.scale, seed=args.seed)
    config = AcceleratorConfig().resolve_input_buffer(graph.name)
    try:
        capacity, record_bytes = input_buffer_capacity(
            graph.adjacency, config, args.feature_length
        )
    except ValueError as error:
        print(f"invalid --feature-length: {error}", file=sys.stderr)
        return 2
    mechanisms = tuple(
        dict.fromkeys(name.strip() for name in args.mechanism.split(",") if name.strip())
    )
    if not mechanisms:
        print("no mechanisms given (use e.g. --mechanism victim,stream)", file=sys.stderr)
        return 2
    unknown = set(mechanisms) - set(mechanism_names())
    if unknown:
        print(
            f"unknown mechanisms {sorted(unknown)}; known: {', '.join(mechanism_names())}",
            file=sys.stderr,
        )
        return 2
    overrides = {
        "victim_entries": args.victim_entries,
        "miss_entries": args.miss_entries,
        "stream_buffers": args.stream_buffers,
        "stream_depth": args.stream_depth,
    }
    try:
        sizing = MissPathConfig(
            **{key: value for key, value in overrides.items() if value is not None}
        )
    except ValueError as error:
        print(f"invalid miss-path sizing: {error}", file=sys.stderr)
        return 2
    policies = sorted(TRACE_POLICIES) if args.policy == "all" else [args.policy]
    rows = miss_path_ablation_rows(
        graph.adjacency,
        capacity=capacity,
        bytes_per_vertex=record_bytes,
        policies=policies,
        mechanisms=mechanisms,
        miss_config=sizing,
        dataset=graph.name,
    )
    title = (
        f"Miss-path hierarchy on {graph.name} "
        f"(buffer capacity {capacity} vertices, record {record_bytes} B)"
    )
    print(format_table(rows, title=title))
    return 0


def _split_axis(value: str, *, all_values: Sequence[str], axis: str) -> list[str]:
    """Parse a comma-separated axis argument, expanding the 'all' shorthand."""
    if value.strip().lower() == "all":
        return list(all_values)
    names = [name.strip().lower() for name in value.split(",") if name.strip()]
    unknown = set(names) - set(all_values)
    if not names or unknown:
        raise ValueError(
            f"unknown {axis} {sorted(unknown) if unknown else value!r}; "
            f"known: {', '.join(all_values)}"
        )
    return names


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.analysis import geomean_table_rows

    try:
        if args.jobs < 1:
            raise ValueError("--jobs must be >= 1")
        if args.scale is not None and not 0 < args.scale <= 1:
            raise ValueError("--scale must be in (0, 1]")
        datasets = _split_axis(args.datasets, all_values=dataset_names(), axis="datasets")
        models = _split_axis(args.models, all_values=list(MODEL_FAMILIES), axis="models")
        backends = _split_axis(args.backends, all_values=executor_names(), axis="backends")
        chips = [int(part) for part in args.chips.split(",") if part.strip()]
        if not chips or any(count < 1 for count in chips):
            raise ValueError("--chips must be a comma-separated list of integers >= 1")
        configs = (
            [design_preset(name) for name in args.designs.split(",") if name.strip()]
            if args.designs
            else None
        )
        retry = RetryPolicy(
            max_attempts=args.max_attempts if args.max_attempts is not None else 2,
            timeout_seconds=args.timeout,
            failed_rows=not args.strict,
        )
        if args.faults:
            from repro.faults import install_plan

            # Validate eagerly so a bad plan fails here, not inside a worker.
            from repro.faults import FaultPlan

            if args.faults.lstrip().startswith("{"):
                FaultPlan.from_json(args.faults)
            else:
                with open(args.faults) as handle:
                    FaultPlan.from_json(handle.read())
            install_plan(args.faults)
        store = ResultStore(args.store, resume=not args.no_resume)
    except (OSError, ValueError, KeyError) as error:
        print(str(error), file=sys.stderr)
        return 2
    matrix = ScenarioMatrix.build(
        datasets,
        models,
        backends=backends,
        configs=configs,
        scale=args.scale,
        seed=args.seed,
        chips=chips,
    )

    tracer = metrics = None
    if args.trace:
        from repro.obs import MetricsRegistry, Tracer

        tracer = Tracer()
        metrics = MetricsRegistry()

    started = time.perf_counter()

    def progress(cell, row, done, total, cached, wall_s):
        if is_failed_row(row):
            status = f"failed ({row['error']['type']}, {row['attempts']} attempts)"
        else:
            status = "ok" if row["supported"] else "unsupported"
        status += " (resumed)" if cached else f" ({wall_s:.2f}s)"
        elapsed = time.perf_counter() - started
        rate = done / elapsed if elapsed > 0 else 0.0
        eta = (total - done) / rate if rate > 0 else 0.0
        print(
            f"  [{done}/{total}] {cell.describe()}: {status} "
            f"| {rate:.1f} rows/s, eta {eta:.0f}s",
            file=sys.stderr,
        )

    try:
        summary = run_sweep(
            matrix,
            store=store,
            jobs=args.jobs,
            progress=progress,
            tracer=tracer,
            metrics=metrics,
            retry=retry,
        )
    except ValueError as error:  # e.g. an old-format store
        print(str(error), file=sys.stderr)
        return 2
    except SweepError as error:  # --strict with permanent failures
        print(f"sweep failed: {error}", file=sys.stderr)
        return 1
    if args.trace:
        from repro.obs import write_chrome_trace

        write_chrome_trace(
            args.trace,
            tracer.records,
            track="pid",
            metrics=metrics,
            metadata={"command": "sweep", "jobs": args.jobs, "cells": summary.total},
        )
        print(f"fleet trace written to {args.trace}", file=sys.stderr)
    if args.json:
        print(json.dumps(summary.as_dict(), indent=2))
        return 0
    fault_note = ""
    if summary.failed or summary.retries or summary.timeouts or summary.pool_rebuilds:
        fault_note = (
            f", {summary.failed} failed [{summary.retries} retries, "
            f"{summary.timeouts} timeouts, {summary.pool_rebuilds} pool rebuilds]"
        )
    print(
        f"sweep: {summary.total} cells ({summary.executed} executed, "
        f"{summary.skipped} resumed, {summary.unsupported} unsupported"
        f"{fault_note}) "
        f"in {summary.wall_seconds:.2f}s ({summary.rows_per_second:.1f} rows/s) "
        f"-> {summary.store_path}"
    )
    rows = geomean_table_rows(summary.rows)
    if rows:
        print()
        print(format_table(rows, title="GNNIE geomean speedup / energy gain per backend"))
    return 0


def _cmd_store(args: argparse.Namespace) -> int:
    import os

    if not os.path.exists(args.store):
        print(f"no such store: {args.store}", file=sys.stderr)
        return 2
    action = {"verify": verify_store, "repair": repair_store, "compact": compact_store}[
        args.store_command
    ]
    report = action(args.store)
    if args.json:
        print(json.dumps(report.as_dict(), indent=2))
    else:
        print(
            f"{report.action} {report.path}: {report.lines} line(s), "
            f"{report.rows} row(s) ({report.failed_rows} failed, "
            f"{report.duplicate_keys} duplicate key(s), "
            f"{report.unchecksummed_rows} without checksum)"
        )
        for number, reason in report.corrupt:
            print(f"  corrupt line {number}: {reason}")
        if report.partial_tail:
            print("  partial tail (torn final write)")
        if report.removed_lines:
            print(f"  removed {report.removed_lines} line(s)")
        if report.quarantine_path:
            print(f"  quarantined evidence -> {report.quarantine_path}")
    if args.store_command == "verify":
        return 0 if report.clean else 1
    return 0


def _cmd_tune(args: argparse.Namespace) -> int:
    from repro.analysis import tune_table_rows
    from repro.analysis.tune_report import tune_report
    from repro.tune import TuneSpec, run_tune

    try:
        if args.jobs < 1:
            raise ValueError("--jobs must be >= 1")
        if args.scale is not None and not 0 < args.scale <= 1:
            raise ValueError("--scale must be in (0, 1]")
        spec = TuneSpec(
            dataset=args.dataset,
            family=args.model,
            scale=args.scale,
            seed=args.seed,
            generations=args.generations,
            population=args.population,
            mac_budget=args.mac_budget,
        )
        store = ResultStore(args.store, resume=not args.no_resume)
    except (ValueError, KeyError) as error:
        print(str(error), file=sys.stderr)
        return 2

    tracer = metrics = None
    if args.trace:
        from repro.obs import MetricsRegistry, Tracer

        tracer = Tracer()
        metrics = MetricsRegistry()
    try:
        result = run_tune(
            spec,
            store=store,
            jobs=args.jobs,
            log=lambda line: print(line, file=sys.stderr),
            tracer=tracer,
            metrics=metrics,
        )
    except ValueError as error:  # e.g. an old-format store
        print(str(error), file=sys.stderr)
        return 2
    if args.trace:
        from repro.obs import write_chrome_trace

        write_chrome_trace(
            args.trace,
            tracer.records,
            track="pid",
            metrics=metrics,
            metadata={"command": "tune", "dataset": spec.dataset, "family": spec.family},
        )
        print(f"tuning trace written to {args.trace}", file=sys.stderr)
    if args.json:
        print(json.dumps(result.as_dict(), indent=2))
        return 0
    print(
        f"tune: {len(result.generations)} generations, "
        f"{result.evaluated_cells} unique cells "
        f"({result.executed_cells} executed, "
        f"{result.evaluated_cells - result.executed_cells} resumed) -> {result.store_path}"
    )
    report = tune_report(
        store, dataset=spec.dataset, family=spec.family, baseline=spec.baseline
    )
    rows = tune_table_rows(report)
    if rows:
        print()
        print(
            format_table(
                rows,
                title=f"Autotuned designs by β ({spec.family.upper()} on {spec.dataset}, "
                f"baseline {spec.baseline.name})",
            )
        )
    if result.best is not None:
        print(f"\nbest design: {result.best['name']} (β = {result.best['beta']:.4f})")
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    sys.exit(main())
