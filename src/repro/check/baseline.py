"""Committed findings baseline for the `repro check` CI gate.

A baseline lets the gate turn on green the moment it lands: known
findings are committed as a sorted, canonical JSON list and only *new*
findings fail the build.  This repo's baseline
(``repro-check-baseline.json``) is burned down to an empty list within
the PR that introduces it — the file stays committed so CI can assert it
*remains* empty.

Findings match baseline entries by ``(path, rule, line)``; the message is
recorded for humans but ignored for matching so rewording a diagnostic
does not resurrect a baselined finding.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Sequence

from repro.check.lint import Finding

__all__ = ["filter_findings", "load_baseline", "write_baseline"]

BaselineKey = tuple[str, str, int]


def load_baseline(path: str | Path) -> set[BaselineKey]:
    """Load the baseline as a set of ``(path, rule, line)`` keys.

    A missing file is an empty baseline (the gate runs everywhere, even
    before a baseline is first committed).
    """
    baseline_path = Path(path)
    if not baseline_path.exists():
        return set()
    entries = json.loads(baseline_path.read_text(encoding="utf-8"))
    if not isinstance(entries, list):
        raise ValueError(f"baseline {baseline_path} must be a JSON list, got {type(entries).__name__}")
    keys: set[BaselineKey] = set()
    for entry in entries:
        if not isinstance(entry, dict):
            raise ValueError(f"baseline entry must be an object, got {entry!r}")
        keys.add((str(entry["path"]), str(entry["rule"]), int(entry["line"])))
    return keys


def filter_findings(
    findings: Iterable[Finding], baseline: set[BaselineKey]
) -> list[Finding]:
    """The findings not covered by ``baseline`` (i.e. the ones that fail CI)."""
    return [finding for finding in findings if finding.key() not in baseline]


def write_baseline(findings: Sequence[Finding], path: str | Path) -> None:
    """Write a canonical baseline file: sorted entries, sorted keys, LF rows.

    Canonical form keeps the committed file byte-deterministic — the same
    findings always serialize to the same bytes, so `--update-baseline`
    runs are diffable.
    """
    entries = [
        finding.to_dict()
        for finding in sorted(findings, key=lambda finding: finding.key())
    ]
    payload = json.dumps(entries, indent=2, sort_keys=True) + "\n"
    Path(path).write_text(payload, encoding="utf-8")
