"""Plan-IR verification pass: validate the dataflow before executing it.

Compiler IR verifiers check structural invariants once, before any pass
consumes the IR; this module applies the same discipline to
:class:`~repro.plan.ir.InferencePlan`.  Every rule is a registry entry with
an ID and a docstring naming the contract it protects; a violated rule
raises a typed :class:`PlanVerificationError` carrying ``(rule, layer,
op)`` so executors fail loudly *before* pricing anything.

Rules split into two tiers:

* **Universal rules** (``P0xx``) hold for every plan any executor may see,
  including plans of plug-in families this repo knows nothing about:
  known op types, sound layer indexing, op placement/ordering legality,
  finite non-negative quantities.
* **Family contracts** (``P1xx``) encode the per-family structure the
  lowering registry guarantees for the built-in Table III families (e.g.
  a GAT layer carries exactly one :class:`~repro.plan.ir.AttentionOp`,
  message-passing widths flow layer to layer).  Plug-in families opt in
  via :func:`register_family_contract`; unregistered families get the
  universal tier only.

:func:`verify_plan` memoizes by plan content (plans are frozen, hence
hashable), so the sweep fleet's batch path verifies each distinct plan
once no matter how many configs it prices — :func:`verify_counters`
exposes ``runs``/``hits`` so tests can pin that.  ``REPRO_NO_VERIFY=1``
disables verification entirely (escape hatch; rows are byte-identical
either way, which the overhead tests also pin).
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass, fields
from typing import Callable, Iterable, Iterator

from repro.plan.ir import (
    AdjacencyRef,
    AggregationOp,
    AttentionOp,
    DenseMatmulOp,
    HaloExchangeOp,
    InferencePlan,
    PlanLayer,
    PreprocessOp,
    SampleOp,
    WeightingOp,
)

__all__ = [
    "PlanVerificationError",
    "Violation",
    "family_contract",
    "plan_violations",
    "register_family_contract",
    "register_verifier_rule",
    "verifier_rules",
    "verify_counters",
    "verify_plan",
    "verify_registered_plans",
]

#: Environment variable disabling verification (the escape hatch).
NO_VERIFY_ENV = "REPRO_NO_VERIFY"

#: Op types every executor-facing plan may contain.
_KNOWN_OPS = (
    WeightingOp,
    AttentionOp,
    AggregationOp,
    DenseMatmulOp,
    HaloExchangeOp,
    SampleOp,
    PreprocessOp,
)


@dataclass(frozen=True)
class Violation:
    """One broken invariant: the rule, where, and what went wrong."""

    rule: str
    message: str
    layer: int | None = None
    op: str | None = None

    def describe(self) -> str:
        where = "global" if self.layer is None else f"layer {self.layer}"
        subject = f"{where}/{self.op}" if self.op else where
        return f"[{self.rule}] {subject}: {self.message}"


class PlanVerificationError(ValueError):
    """A plan failed verification.

    Carries the first violation's ``(rule, layer, op)`` as attributes plus
    every violation found on :attr:`violations`, so callers can report the
    full list while ``except`` sites match on the typed error.
    """

    def __init__(self, plan: InferencePlan, violations: tuple[Violation, ...]) -> None:
        first = violations[0]
        self.family = plan.family
        self.rule = first.rule
        self.layer = first.layer
        self.op = first.op
        self.violations = violations
        lines = "; ".join(violation.describe() for violation in violations)
        super().__init__(
            f"invalid {plan.family!r} plan ({len(violations)} violation(s)): {lines}"
        )


VerifierRule = Callable[[InferencePlan], Iterable[Violation]]

_RULES: dict[str, VerifierRule] = {}


def register_verifier_rule(rule_id: str) -> Callable[[VerifierRule], VerifierRule]:
    """Decorator registering one verification rule under a unique ID.

    Duplicate IDs raise immediately: a rule registry that silently
    overwrote entries would re-create exactly the foot-gun the lowering
    and executor registries warn about.
    """

    def decorator(rule: VerifierRule) -> VerifierRule:
        if rule_id in _RULES:
            raise ValueError(f"verifier rule {rule_id!r} is already registered")
        _RULES[rule_id] = rule
        return rule

    return decorator


def verifier_rules() -> dict[str, VerifierRule]:
    """Registered rules by ID (copy; registration order preserved)."""
    return dict(_RULES)


# --------------------------------------------------------------------- #
# Family contracts
# --------------------------------------------------------------------- #

FamilyCheck = Callable[[InferencePlan], Iterable[Violation]]


@dataclass(frozen=True)
class FamilyContract:
    """Per-family structural contract derived from the lowering registry.

    ``chain`` declares the message-passing shape — layer *k*'s output width
    is layer *k+1*'s input width, the first layer reads
    ``plan.in_features`` and the last produces ``plan.out_features`` — the
    width-flow rule (``P101``) checks for chain families.  ``check`` adds
    family-specific structure (``P102``).
    """

    family: str
    chain: bool = True
    check: FamilyCheck | None = None


_CONTRACTS: dict[str, FamilyContract] = {}


def register_family_contract(contract: FamilyContract) -> FamilyContract:
    """Register (or replace) the structural contract for one family."""
    _CONTRACTS[contract.family.lower()] = contract
    return contract


def family_contract(family: str) -> FamilyContract | None:
    """The registered contract for ``family``, or ``None`` (universal tier only)."""
    return _CONTRACTS.get(family.lower())


# --------------------------------------------------------------------- #
# Universal rules
# --------------------------------------------------------------------- #

def _iter_ops(plan: InferencePlan) -> Iterator[tuple[int | None, object]]:
    """Every op with its layer index (``None`` for inference-global ops)."""
    for op in plan.global_ops:
        yield None, op
    for layer in plan.layers:
        for op in layer.ops:
            yield layer.index, op


@register_verifier_rule("P001")
def _rule_known_ops(plan: InferencePlan) -> Iterator[Violation]:
    """Every op is a known phase-op type.

    Executors dispatch on op type; an unknown op would either crash the
    per-op handler mid-execution or be silently mispriced by a cost model
    that pattern-matches more loosely.
    """
    for layer_index, op in _iter_ops(plan):
        if not isinstance(op, _KNOWN_OPS):
            yield Violation(
                rule="P001",
                message=f"unknown op type {type(op).__name__}",
                layer=layer_index,
                op=type(op).__name__,
            )


@register_verifier_rule("P002")
def _rule_layer_structure(plan: InferencePlan) -> Iterator[Violation]:
    """Layers are non-empty, contiguously indexed, and positively sized.

    Downstream accounting (``LayerResult`` pairing, scale-out per-layer
    MAX-combining, span attribution) addresses layers by position and
    assumes ``layer.index`` agrees with it.
    """
    if not plan.layers:
        yield Violation(rule="P002", message="plan has no layers")
        return
    for position, layer in enumerate(plan.layers):
        if layer.index != position:
            yield Violation(
                rule="P002",
                message=f"layer at position {position} carries index {layer.index}",
                layer=layer.index,
            )
        if layer.in_features <= 0 or layer.out_features <= 0:
            yield Violation(
                rule="P002",
                message=(
                    f"non-positive layer width "
                    f"({layer.in_features} -> {layer.out_features})"
                ),
                layer=layer.index,
            )
        if not layer.ops:
            yield Violation(rule="P002", message="layer has no ops", layer=layer.index)


@register_verifier_rule("P003")
def _rule_preprocess_placement(plan: InferencePlan) -> Iterator[Violation]:
    """Host-side preprocessing only precedes the pipeline.

    :class:`PreprocessOp` is charged once per inference before any layer
    runs (degree binning reorders vertices for the whole run); one inside
    a later layer would claim a mid-pipeline reorder no executor models.
    Legal positions: the plan's ``global_ops`` or layer 0.
    """
    for layer in plan.layers:
        if layer.index == 0:
            continue
        for op in layer.ops:
            if isinstance(op, PreprocessOp):
                yield Violation(
                    rule="P003",
                    message="PreprocessOp outside global ops / layer 0",
                    layer=layer.index,
                    op="PreprocessOp",
                )


@register_verifier_rule("P004")
def _rule_sample_order(plan: InferencePlan) -> Iterator[Violation]:
    """A sampled adjacency is produced before anything aggregates over it.

    Executors resolve ``AdjacencyRef("sampled", k)`` against the subgraph
    a :class:`SampleOp` with the same ``k`` produces; an op referencing a
    sample no earlier op in its layer produced would price a subgraph
    that does not exist.
    """
    for layer in plan.layers:
        sampled: set[int] = set()
        for op in layer.ops:
            if isinstance(op, SampleOp):
                if op.sample_size <= 0:
                    yield Violation(
                        rule="P004",
                        message=f"non-positive sample size {op.sample_size}",
                        layer=layer.index,
                        op="SampleOp",
                    )
                else:
                    sampled.add(op.sample_size)
                continue
            ref = getattr(op, "adjacency", None)
            if not isinstance(ref, AdjacencyRef):
                continue
            if ref.kind not in ("full", "sampled"):
                yield Violation(
                    rule="P004",
                    message=f"unknown adjacency kind {ref.kind!r}",
                    layer=layer.index,
                    op=type(op).__name__,
                )
            elif ref.kind == "sampled":
                if ref.sample_size is None or ref.sample_size <= 0:
                    yield Violation(
                        rule="P004",
                        message="sampled adjacency without a positive sample size",
                        layer=layer.index,
                        op=type(op).__name__,
                    )
                elif ref.sample_size not in sampled:
                    yield Violation(
                        rule="P004",
                        message=(
                            f"sampled(k={ref.sample_size}) adjacency has no "
                            "preceding SampleOp in this layer"
                        ),
                        layer=layer.index,
                        op=type(op).__name__,
                    )


@register_verifier_rule("P005")
def _rule_halo_placement(plan: InferencePlan) -> Iterator[Violation]:
    """Halo exchanges feed the aggregation immediately after them.

    The scale-out lowering splices one :class:`HaloExchangeOp` directly
    before the :class:`AggregationOp` it feeds, at that op's reduction
    width, and only for multi-chip (``chips > 1``) plans — the executor
    prices the exchange as communication overlapping nothing, so a halo
    op anywhere else would charge link traffic no aggregation consumes.
    """
    for layer in plan.layers:
        for position, op in enumerate(layer.ops):
            if not isinstance(op, HaloExchangeOp):
                continue
            if op.chips <= 1:
                yield Violation(
                    rule="P005",
                    message=f"halo exchange in a {op.chips}-chip plan",
                    layer=layer.index,
                    op="HaloExchangeOp",
                )
            follower = layer.ops[position + 1] if position + 1 < len(layer.ops) else None
            if not isinstance(follower, AggregationOp):
                yield Violation(
                    rule="P005",
                    message="HaloExchangeOp is not immediately followed by an AggregationOp",
                    layer=layer.index,
                    op="HaloExchangeOp",
                )
            elif op.features != follower.width:
                yield Violation(
                    rule="P005",
                    message=(
                        f"halo width {op.features} != aggregation width "
                        f"{follower.width}"
                    ),
                    layer=layer.index,
                    op="HaloExchangeOp",
                )
    for op in plan.global_ops:
        if isinstance(op, HaloExchangeOp):
            yield Violation(
                rule="P005",
                message="HaloExchangeOp among inference-global ops",
                op="HaloExchangeOp",
            )


#: Numeric op fields that must be strictly positive when set.
_POSITIVE_FIELDS = frozenset(
    {"in_features", "out_features", "features", "mlp_hidden", "sample_size", "chips"}
)
#: Numeric op fields that may be zero but never negative.
_NON_NEGATIVE_FIELDS = frozenset(
    {
        "halo_vertices",
        "macs_per_edge",
        "macs_per_vertex",
        "softmax_ops_per_vertex",
        "output_values",
    }
)


@register_verifier_rule("P006")
def _rule_finite_quantities(plan: InferencePlan) -> Iterator[Violation]:
    """Every quantity on every frozen op is finite and correctly signed.

    Cost models multiply these quantities into cycle and energy totals; a
    NaN, infinity or negative count would flow silently into result rows
    (and through geomeans into every aggregate) instead of failing here.
    Widths are strictly positive, work counts non-negative, modeled
    densities in (0, 1].
    """
    for layer_index, op in _iter_ops(plan):
        op_name = type(op).__name__
        for spec in fields(op):  # type: ignore[arg-type]
            value = getattr(op, spec.name)
            if value is None or isinstance(value, bool) or not isinstance(value, (int, float)):
                continue
            if not math.isfinite(value):
                yield Violation(
                    rule="P006",
                    message=f"{spec.name} is not finite ({value!r})",
                    layer=layer_index,
                    op=op_name,
                )
            elif spec.name == "density":
                if not 0.0 < value <= 1.0:
                    yield Violation(
                        rule="P006",
                        message=f"density {value!r} outside (0, 1]",
                        layer=layer_index,
                        op=op_name,
                    )
            elif spec.name in _POSITIVE_FIELDS:
                if value <= 0:
                    yield Violation(
                        rule="P006",
                        message=f"{spec.name} must be positive, got {value!r}",
                        layer=layer_index,
                        op=op_name,
                    )
            elif spec.name in _NON_NEGATIVE_FIELDS:
                if value < 0:
                    yield Violation(
                        rule="P006",
                        message=f"{spec.name} must be non-negative, got {value!r}",
                        layer=layer_index,
                        op=op_name,
                    )


# --------------------------------------------------------------------- #
# Family-contract rules
# --------------------------------------------------------------------- #

def _non_halo_ops(layer: PlanLayer) -> list[object]:
    return [op for op in layer.ops if not isinstance(op, HaloExchangeOp)]


@register_verifier_rule("P101")
def _rule_width_flow(plan: InferencePlan) -> Iterator[Violation]:
    """Feature widths flow layer to layer for chain-shaped families.

    For the message-passing families the lowering registry guarantees
    layer *k*'s output width equals layer *k+1*'s input width, the first
    layer reads the dataset feature length and the last produces the
    label width — the dataflow executors rely on when they pick record
    sizes and buffer capacities per layer.  Families whose contract
    declares ``chain=False`` (DiffPool's two parallel GCN stages both
    read the raw input) check their shape in their own contract.
    """
    contract = family_contract(plan.family)
    if contract is None or not contract.chain or not plan.layers:
        return
    first = plan.layers[0]
    if first.in_features != plan.in_features:
        yield Violation(
            rule="P101",
            message=(
                f"first layer reads {first.in_features} features, "
                f"plan input is {plan.in_features}"
            ),
            layer=first.index,
        )
    last = plan.layers[-1]
    if last.out_features != plan.out_features:
        yield Violation(
            rule="P101",
            message=(
                f"last layer produces {last.out_features} features, "
                f"plan output is {plan.out_features}"
            ),
            layer=last.index,
        )
    for previous, current in zip(plan.layers, plan.layers[1:]):
        if previous.out_features != current.in_features:
            yield Violation(
                rule="P101",
                message=(
                    f"layer {previous.index} output width {previous.out_features} "
                    f"!= layer {current.index} input width {current.in_features}"
                ),
                layer=current.index,
            )


@register_verifier_rule("P102")
def _rule_family_structure(plan: InferencePlan) -> Iterator[Violation]:
    """The plan matches its family's registered structural contract.

    Derived from the lowering registry's guarantees: a GAT layer carries
    exactly one :class:`AttentionOp` feeding a weighted aggregation, a
    GraphSAGE layer samples before it aggregates, GINConv aggregates raw
    features before its MLP, DiffPool is two GCN stages plus one dense
    coarsening layer.  Families without a registered contract (plug-ins)
    are exempt — register one via :func:`register_family_contract`.
    """
    contract = family_contract(plan.family)
    if contract is None or contract.check is None:
        return
    yield from contract.check(plan)


def _op_width_mismatches(layer: PlanLayer) -> Iterator[Violation]:
    """Shared helper: ops of a chain layer run at the layer's widths."""
    for op in layer.ops:
        if isinstance(op, (WeightingOp, AggregationOp)):
            if op.in_features != layer.in_features or op.out_features != layer.out_features:
                yield Violation(
                    rule="P102",
                    message=(
                        f"{type(op).__name__} widths "
                        f"({op.in_features} -> {op.out_features}) != layer widths "
                        f"({layer.in_features} -> {layer.out_features})"
                    ),
                    layer=layer.index,
                    op=type(op).__name__,
                )
        elif isinstance(op, AttentionOp) and op.out_features != layer.out_features:
            yield Violation(
                rule="P102",
                message=(
                    f"AttentionOp width {op.out_features} != layer output "
                    f"width {layer.out_features}"
                ),
                layer=layer.index,
                op="AttentionOp",
            )


def _message_passing_check(
    *,
    attention: bool,
    sampled: bool,
    pre_weighting: bool,
    mlp: bool,
) -> FamilyCheck:
    """Contract factory for the four layer-stacked message-passing families."""

    def check(plan: InferencePlan) -> Iterator[Violation]:
        for layer in plan.layers:
            yield from _op_width_mismatches(layer)
            ops = _non_halo_ops(layer)
            weightings = [op for op in ops if isinstance(op, WeightingOp)]
            aggregations = [op for op in ops if isinstance(op, AggregationOp)]
            attentions = [op for op in ops if isinstance(op, AttentionOp)]
            samples = [op for op in ops if isinstance(op, SampleOp)]
            if len(weightings) != 1 or len(aggregations) != 1:
                yield Violation(
                    rule="P102",
                    message=(
                        f"expected exactly one WeightingOp and one AggregationOp, "
                        f"got {len(weightings)} and {len(aggregations)}"
                    ),
                    layer=layer.index,
                )
                continue
            aggregation = aggregations[0]
            weighting = weightings[0]
            if len(attentions) != (1 if attention else 0):
                yield Violation(
                    rule="P102",
                    message=(
                        f"expected exactly {'one' if attention else 'no'} "
                        f"AttentionOp, got {len(attentions)}"
                    ),
                    layer=layer.index,
                    op="AttentionOp",
                )
            if aggregation.weighted != attention:
                yield Violation(
                    rule="P102",
                    message=(
                        "attention-weighted aggregation"
                        if aggregation.weighted
                        else "aggregation is not attention-weighted"
                    ),
                    layer=layer.index,
                    op="AggregationOp",
                )
            if attention and attentions and attentions[0].adjacency != aggregation.adjacency:
                yield Violation(
                    rule="P102",
                    message="attention and aggregation run over different adjacencies",
                    layer=layer.index,
                    op="AttentionOp",
                )
            if len(samples) != (1 if sampled else 0):
                yield Violation(
                    rule="P102",
                    message=(
                        f"expected exactly {'one' if sampled else 'no'} SampleOp, "
                        f"got {len(samples)}"
                    ),
                    layer=layer.index,
                    op="SampleOp",
                )
            expected_kind = "sampled" if sampled else "full"
            if aggregation.adjacency.kind != expected_kind:
                yield Violation(
                    rule="P102",
                    message=(
                        f"aggregation over {aggregation.adjacency.kind!r} adjacency, "
                        f"expected {expected_kind!r}"
                    ),
                    layer=layer.index,
                    op="AggregationOp",
                )
            if aggregation.pre_weighting != pre_weighting:
                yield Violation(
                    rule="P102",
                    message=(
                        "pre-weighting aggregation"
                        if aggregation.pre_weighting
                        else "aggregation is not pre-weighting"
                    ),
                    layer=layer.index,
                    op="AggregationOp",
                )
            if mlp and weighting.mlp_hidden is None:
                yield Violation(
                    rule="P102",
                    message="weighting is not an MLP (mlp_hidden unset)",
                    layer=layer.index,
                    op="WeightingOp",
                )
    return check


def _diffpool_check(plan: InferencePlan) -> Iterator[Violation]:
    """DiffPool: two GCN stages over the raw input plus a dense coarsening."""
    if len(plan.layers) != 3:
        yield Violation(
            rule="P102",
            message=f"expected 3 layers (embed, pool, coarsen), got {len(plan.layers)}",
        )
        return
    for layer in plan.layers[:2]:
        yield from _op_width_mismatches(layer)
        if layer.in_features != plan.in_features:
            yield Violation(
                rule="P102",
                message=(
                    f"GCN stage reads {layer.in_features} features, "
                    f"both stages read the raw input ({plan.in_features})"
                ),
                layer=layer.index,
            )
        ops = _non_halo_ops(layer)
        if not any(isinstance(op, AggregationOp) for op in ops) or any(
            isinstance(op, (AttentionOp, SampleOp, DenseMatmulOp)) for op in ops
        ):
            yield Violation(
                rule="P102",
                message="GCN stage must be weighting + aggregation only",
                layer=layer.index,
            )
    coarsening = plan.layers[2]
    dense = [op for op in coarsening.ops if isinstance(op, DenseMatmulOp)]
    if len(dense) != 1:
        yield Violation(
            rule="P102",
            message=f"coarsening layer carries {len(dense)} DenseMatmulOps, expected 1",
            layer=coarsening.index,
            op="DenseMatmulOp",
        )
        return
    if coarsening.in_features != plan.layers[1].out_features:
        yield Violation(
            rule="P102",
            message=(
                f"coarsening reads {coarsening.in_features} features, "
                f"pooling stage produced {plan.layers[1].out_features}"
            ),
            layer=coarsening.index,
        )
    yield from _op_width_mismatches(coarsening)


register_family_contract(
    FamilyContract(
        family="gcn",
        check=_message_passing_check(
            attention=False, sampled=False, pre_weighting=False, mlp=False
        ),
    )
)
register_family_contract(
    FamilyContract(
        family="gat",
        check=_message_passing_check(
            attention=True, sampled=False, pre_weighting=False, mlp=False
        ),
    )
)
register_family_contract(
    FamilyContract(
        family="graphsage",
        check=_message_passing_check(
            attention=False, sampled=True, pre_weighting=False, mlp=False
        ),
    )
)
register_family_contract(
    FamilyContract(
        family="ginconv",
        check=_message_passing_check(
            attention=False, sampled=False, pre_weighting=True, mlp=True
        ),
    )
)
register_family_contract(
    FamilyContract(family="diffpool", chain=False, check=_diffpool_check)
)


# --------------------------------------------------------------------- #
# Entry points
# --------------------------------------------------------------------- #

#: Verified-plan memo keyed by plan content (plans are frozen/hashable).
_MEMO: dict[InferencePlan, tuple[Violation, ...]] = {}
_MEMO_LIMIT = 4096

_COUNTERS = {"runs": 0, "hits": 0}


def verify_counters() -> dict[str, int]:
    """Snapshot of the memo counters (``runs`` = full rule passes)."""
    return dict(_COUNTERS)


def verification_disabled() -> bool:
    """Whether the ``REPRO_NO_VERIFY=1`` escape hatch is armed."""
    return os.environ.get(NO_VERIFY_ENV, "") == "1"


def plan_violations(plan: InferencePlan) -> tuple[Violation, ...]:
    """Run every registered rule over ``plan`` and return all violations."""
    violations: list[Violation] = []
    for rule in _RULES.values():
        violations.extend(rule(plan))
    return tuple(violations)


def verify_plan(plan: InferencePlan, *, force: bool = False) -> InferencePlan:
    """Verify a plan, raising :class:`PlanVerificationError` on violations.

    Memoized by plan content: re-verifying an already-seen plan (the batch
    path pricing thousands of configs against one plan, or a sweep
    re-lowering an identical plan per cell) costs one dict lookup.
    Returns the plan so call sites can verify inline.  ``force`` bypasses
    the ``REPRO_NO_VERIFY`` escape hatch (used by ``repro check``, which
    must verify even in an environment that disabled the executor gate).
    """
    if not force and verification_disabled():
        return plan
    cached = _MEMO.get(plan)
    if cached is None:
        _COUNTERS["runs"] += 1
        cached = plan_violations(plan)
        if len(_MEMO) >= _MEMO_LIMIT:
            _MEMO.clear()
        _MEMO[plan] = cached
    else:
        _COUNTERS["hits"] += 1
    if cached:
        raise PlanVerificationError(plan, cached)
    return plan


def verify_registered_plans(
    *,
    families: Iterable[str] | None = None,
    datasets: Iterable[str] | None = None,
) -> list[dict[str, object]]:
    """Lower and verify every (family, dataset-shape) pair; return a report.

    Drives the lowering registry against the dataset registry's shapes
    (feature length, label count) — no graphs are built, so the full
    5 x 5 matrix verifies in milliseconds.  One report row per pair:
    ``{"family", "dataset", "ok", "violations"}``.
    """
    from repro.datasets.registry import dataset_names, dataset_spec
    from repro.models.zoo import model_config
    from repro.plan.lowering import lower_model, lowering_families

    family_names = list(families) if families is not None else list(lowering_families())
    dataset_list = list(datasets) if datasets is not None else list(dataset_names())
    rows: list[dict[str, object]] = []
    for family in family_names:
        config = model_config(family)
        for dataset in dataset_list:
            spec = dataset_spec(dataset)
            plan = lower_model(config, spec.feature_length, max(spec.num_labels, 2))
            violations = plan_violations(plan)
            rows.append(
                {
                    "family": family,
                    "dataset": dataset,
                    "ok": not violations,
                    "violations": [violation.describe() for violation in violations],
                }
            )
    return rows
