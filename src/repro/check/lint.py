"""Determinism linter: AST rules encoding the fleet's byte-determinism contracts.

The sweep fleet's exactly-once resume, chaos replay, and scale-out
byte-diffs all assume that re-running a cell reproduces its row byte for
byte.  Each rule here encodes one way that contract has broken (or nearly
broken) in practice, with an ID and a docstring naming the contract it
protects:

=====  ================================================================
ID     Contract
=====  ================================================================
D101   No unseeded global RNG (``random.*`` / ``np.random.*``); use
       ``random.Random(seed)`` / ``np.random.default_rng(seed)``.
D102   No wall clock (``time.time``, ``datetime.now``, …) — rows keyed
       or filled from the clock differ across runs.
D103   No ``id()``-derived keys: ids are reused after garbage
       collection, so an ``id()``-keyed memo can alias two objects.
       The weakref-guarded pricing-context idiom is the sanctioned
       exception (suppressed per line).
D104   ``json.dumps`` in store-row paths must pass ``sort_keys=True``;
       dict order is insertion order, so unsorted dumps encode call
       history into bytes.
D105   No iteration over set displays/constructors: set order varies
       with insertion history and hash seeding.
D106   No mutable default arguments: shared defaults accumulate state
       across calls, making output depend on call history.
=====  ================================================================

Suppress a finding on its line with ``# repro-check: disable=D103`` (a
comma list, or ``disable=all``).  Suppressions are parsed from the token
stream, so they work on any physical line of a multi-line statement.
"""

from __future__ import annotations

import ast
import io
import tokenize
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterable, Iterator

__all__ = [
    "Finding",
    "LintRule",
    "lint_file",
    "lint_paths",
    "lint_rules",
    "lint_source",
]

_SUPPRESS_PREFIX = "# repro-check:"


@dataclass(frozen=True)
class Finding:
    """One linter finding, addressable for baseline matching."""

    rule: str
    path: str
    line: int
    message: str

    def key(self) -> tuple[str, str, int]:
        return (self.path, self.rule, self.line)

    def describe(self) -> str:
        return f"{self.path}:{self.line}: {self.rule} {self.message}"

    def to_dict(self) -> dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "message": self.message,
        }


@dataclass(frozen=True)
class LintContext:
    """What a rule sees: the parsed module plus its display path."""

    path: str
    tree: ast.Module


RuleCheck = Callable[[LintContext], Iterable[Finding]]


@dataclass(frozen=True)
class LintRule:
    """A registered rule: ID, one-line contract, and its check."""

    rule_id: str
    contract: str
    check: RuleCheck


_RULES: dict[str, LintRule] = {}


def _register(rule_id: str, contract: str) -> Callable[[RuleCheck], RuleCheck]:
    def decorator(check: RuleCheck) -> RuleCheck:
        if rule_id in _RULES:
            raise ValueError(f"lint rule {rule_id!r} is already registered")
        _RULES[rule_id] = LintRule(rule_id=rule_id, contract=contract, check=check)
        return check

    return decorator


def lint_rules() -> dict[str, LintRule]:
    """Registered rules by ID (copy; registration order preserved)."""
    return dict(_RULES)


# --------------------------------------------------------------------- #
# AST helpers
# --------------------------------------------------------------------- #

def _dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _walk_calls(tree: ast.Module) -> Iterator[ast.Call]:
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            yield node


# --------------------------------------------------------------------- #
# Rules
# --------------------------------------------------------------------- #

#: ``random.*`` attributes that do NOT touch the global RNG stream.
_RANDOM_SAFE = frozenset({"Random", "SystemRandom", "getstate", "setstate"})
#: ``np.random`` / ``numpy.random`` attributes that are generator-safe.
_NP_RANDOM_SAFE = frozenset({"default_rng", "Generator", "SeedSequence", "PCG64"})


@_register(
    "D101",
    "no unseeded global RNG — use random.Random(seed) / np.random.default_rng(seed)",
)
def _check_unseeded_random(context: LintContext) -> Iterator[Finding]:
    """Fleet rows must replay byte-identically; the global ``random`` and
    legacy ``np.random`` streams are process-wide mutable state that any
    import can perturb, so every draw must come from an explicitly seeded
    generator object instead."""
    for call in _walk_calls(context.tree):
        name = _dotted_name(call.func)
        if name is None or "." not in name:
            continue
        head, _, attr = name.rpartition(".")
        if head == "random" and attr not in _RANDOM_SAFE:
            yield Finding(
                rule="D101",
                path=context.path,
                line=call.lineno,
                message=f"call to global-stream random.{attr}(); seed an explicit random.Random",
            )
        elif head in ("np.random", "numpy.random") and attr not in _NP_RANDOM_SAFE:
            yield Finding(
                rule="D101",
                path=context.path,
                line=call.lineno,
                message=f"call to legacy {head}.{attr}(); use np.random.default_rng(seed)",
            )


#: Clock calls that leak wall time (monotonic/perf counters are fine for
#: *measuring*, but only the wall-clock family can leak into row bytes).
_WALL_CLOCK = frozenset(
    {
        "time.time",
        "time.time_ns",
        "datetime.now",
        "datetime.utcnow",
        "datetime.today",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "date.today",
        "datetime.date.today",
    }
)


@_register("D102", "no wall clock — rows keyed or filled from the clock never replay")
def _check_wall_clock(context: LintContext) -> Iterator[Finding]:
    """Cell keys, row content, and chaos schedules must be pure functions
    of their inputs; ``time.time()``/``datetime.now()`` make them
    functions of when the fleet happened to run.  ``time.perf_counter``
    and ``time.monotonic`` are allowed (measurement, not content)."""
    for call in _walk_calls(context.tree):
        name = _dotted_name(call.func)
        if name in _WALL_CLOCK:
            yield Finding(
                rule="D102",
                path=context.path,
                line=call.lineno,
                message=f"wall-clock call {name}(); timestamps never replay",
            )


@_register(
    "D103",
    "no id()-derived keys outside the weakref-guarded pricing-context idiom",
)
def _check_id_keys(context: LintContext) -> Iterator[Finding]:
    """CPython reuses object ids after garbage collection, so an
    ``id()``-keyed memo can silently serve entry A's value for object B
    (the PR 9 pricing-context bug).  The one sanctioned idiom — an
    ``id()`` key paired with a ``weakref.finalize`` evicting the entry
    before reuse — carries a per-line suppression."""
    for call in _walk_calls(context.tree):
        if isinstance(call.func, ast.Name) and call.func.id == "id" and call.args:
            yield Finding(
                rule="D103",
                path=context.path,
                line=call.lineno,
                message="id()-derived key; ids are reused after garbage collection",
            )


#: Modules whose bytes land in (or feed hashes of) store rows.
_STORE_PATH_MARKERS = (
    "repro/sweep/",
    "repro/faults/",
    "repro/analysis/",
    "repro/check/",
)


def _in_store_path(path: str) -> bool:
    posix = path.replace("\\", "/")
    return any(marker in posix for marker in _STORE_PATH_MARKERS)


@_register("D104", "json.dumps in store-row paths must pass sort_keys=True")
def _check_json_sort_keys(context: LintContext) -> Iterator[Finding]:
    """Store rows are canonical JSON: dict order is insertion order, so a
    dump without ``sort_keys=True`` encodes the *construction history* of
    a dict into row bytes, breaking resume byte-diffs the moment a field
    is assembled in a different order.  Scoped to modules whose output
    lands in (or keys) store rows."""
    if not _in_store_path(context.path):
        return
    for call in _walk_calls(context.tree):
        name = _dotted_name(call.func)
        if name not in ("json.dumps", "json.dump"):
            continue
        sorted_keys = False
        for keyword in call.keywords:
            if keyword.arg == "sort_keys":
                value = keyword.value
                sorted_keys = isinstance(value, ast.Constant) and value.value is True
        if not sorted_keys:
            yield Finding(
                rule="D104",
                path=context.path,
                line=call.lineno,
                message=f"{name} without sort_keys=True in a store-row path",
            )


def _is_set_expression(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    return False


@_register("D105", "no iteration over set displays/constructors — order is unstable")
def _check_set_iteration(context: LintContext) -> Iterator[Finding]:
    """Set iteration order depends on insertion history and hash values,
    so a loop over a set feeding a hash, a JSON row, or a schedule is
    order-nondeterministic.  Iterate ``sorted(...)`` instead — the rule
    flags only *direct* iteration over a set display, comprehension, or
    ``set()``/``frozenset()`` call."""
    iterables: list[tuple[ast.AST, int]] = []
    for node in ast.walk(context.tree):
        if isinstance(node, (ast.For, ast.AsyncFor)):
            iterables.append((node.iter, node.iter.lineno))
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
            for comp in node.generators:
                iterables.append((comp.iter, comp.iter.lineno))
    for expr, line in iterables:
        if _is_set_expression(expr):
            yield Finding(
                rule="D105",
                path=context.path,
                line=line,
                message="iteration over an unordered set; wrap in sorted(...)",
            )


@_register("D106", "no mutable default arguments — shared defaults accumulate state")
def _check_mutable_defaults(context: LintContext) -> Iterator[Finding]:
    """A mutable default is evaluated once and shared by every call, so
    output comes to depend on call history — the same class of bug as an
    unseeded RNG, just slower to surface."""
    for node in ast.walk(context.tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        defaults = list(node.args.defaults) + [
            default for default in node.args.kw_defaults if default is not None
        ]
        for default in defaults:
            mutable = isinstance(default, (ast.List, ast.Dict, ast.Set)) or (
                isinstance(default, ast.Call)
                and isinstance(default.func, ast.Name)
                and default.func.id in ("list", "dict", "set", "bytearray")
            )
            if mutable:
                yield Finding(
                    rule="D106",
                    path=context.path,
                    line=default.lineno,
                    message=f"mutable default argument in {node.name}()",
                )


# --------------------------------------------------------------------- #
# Suppressions and entry points
# --------------------------------------------------------------------- #

def _suppressions(source: str) -> dict[int, frozenset[str] | None]:
    """Per-line suppressed rule IDs; ``None`` means every rule (``all``).

    Parsed from the token stream so a directive anywhere on a multi-line
    statement's physical line applies to findings reported on that line.
    """
    suppressed: dict[int, frozenset[str] | None] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            comment = token.string.strip()
            if not comment.startswith(_SUPPRESS_PREFIX):
                continue
            directive = comment[len(_SUPPRESS_PREFIX):].strip()
            if not directive.startswith("disable="):
                continue
            spec = directive[len("disable="):].split()[0]
            line = token.start[0]
            existing = suppressed.get(line, frozenset())
            if spec == "all" or existing is None:
                suppressed[line] = None
            else:
                rules = frozenset(part.strip() for part in spec.split(",") if part.strip())
                suppressed[line] = rules | existing
    except tokenize.TokenError:
        pass
    return suppressed


def lint_source(
    source: str,
    path: str = "<string>",
    *,
    rules: Iterable[str] | None = None,
) -> list[Finding]:
    """Lint one module's source, honoring per-line suppressions.

    ``rules`` restricts the pass to a subset of rule IDs (unknown IDs
    raise).  Findings are sorted by (line, rule).
    """
    selected = _select_rules(rules)
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as error:
        line = error.lineno or 1
        return [
            Finding(rule="D100", path=path, line=line, message=f"syntax error: {error.msg}")
        ]
    context = LintContext(path=path, tree=tree)
    suppressed = _suppressions(source)
    findings: list[Finding] = []
    for rule in selected:
        for finding in rule.check(context):
            disabled = suppressed.get(finding.line, frozenset())
            if disabled is None or finding.rule in disabled:
                continue
            findings.append(finding)
    return sorted(findings, key=lambda finding: (finding.line, finding.rule))


def _select_rules(rules: Iterable[str] | None) -> list[LintRule]:
    if rules is None:
        return list(_RULES.values())
    selected: list[LintRule] = []
    for rule_id in rules:
        if rule_id not in _RULES:
            raise KeyError(f"unknown lint rule {rule_id!r}; known: {sorted(_RULES)}")
        selected.append(_RULES[rule_id])
    return selected


def lint_file(
    path: str | Path,
    *,
    root: str | Path | None = None,
    rules: Iterable[str] | None = None,
) -> list[Finding]:
    """Lint one file; display paths are relative to ``root`` when given."""
    file_path = Path(path)
    display = _display_path(file_path, root)
    return lint_source(file_path.read_text(encoding="utf-8"), display, rules=rules)


def lint_paths(
    paths: Iterable[str | Path],
    *,
    root: str | Path | None = None,
    rules: Iterable[str] | None = None,
) -> list[Finding]:
    """Lint every ``.py`` file under ``paths`` (files or directories).

    Files are visited in sorted order so output — and therefore baseline
    content — is deterministic.  Returns findings sorted by
    (path, line, rule).
    """
    files: set[Path] = set()
    for entry in paths:
        entry_path = Path(entry)
        if entry_path.is_dir():
            files.update(entry_path.rglob("*.py"))
        else:
            files.add(entry_path)
    findings: list[Finding] = []
    for file_path in sorted(files):
        findings.extend(lint_file(file_path, root=root, rules=rules))
    return sorted(findings, key=lambda finding: (finding.path, finding.line, finding.rule))


def _display_path(path: Path, root: str | Path | None) -> str:
    resolved = path.resolve()
    if root is not None:
        try:
            return resolved.relative_to(Path(root).resolve()).as_posix()
        except ValueError:
            pass
    return path.as_posix()
