"""Static analysis for the repo's two load-bearing contracts.

The codebase rests on contracts that executors and the sweep fleet assume
but, before this package, never checked:

* every GNN family lowers to a structurally valid
  :class:`~repro.plan.ir.InferencePlan` that executors price without
  re-validating (the compile-then-execute split), and
* the entire fleet — content-hashed cell keys, chaos replay, resume,
  scale-out byte-diffs — depends on byte determinism.

``repro.check`` makes both machine-checked:

* :mod:`repro.check.verifier` — an IR verification pass over
  :class:`~repro.plan.ir.InferencePlan` in the spirit of compiler IR
  verifiers: a rule registry validating op ordering, dataflow widths,
  finiteness and per-family structure *before* execution.  Wired into
  every executor (``GNNIEExecutor.execute``, ``PlatformModel.execute``,
  ``execute_scaleout``), memoized per plan content, disabled with
  ``REPRO_NO_VERIFY=1``.
* :mod:`repro.check.lint` — an AST linter over the source tree whose rules
  encode this repo's fleet-safety contracts (no unseeded RNG, no wall
  clock feeding row content, no ``id()``-keyed memos outside the
  weakref-guarded idiom, canonical JSON in store paths, no unordered-set
  iteration feeding hashes, no mutable default arguments).  Per-line
  suppression via ``# repro-check: disable=RULE``.
* :mod:`repro.check.baseline` — a committed findings baseline so the CI
  gate starts green while findings are burned down.

Surfaced as ``python -m repro check`` and ``repro plan --check``.
"""

from repro.check.baseline import (
    filter_findings,
    load_baseline,
    write_baseline,
)
from repro.check.lint import (
    Finding,
    LintRule,
    lint_file,
    lint_paths,
    lint_rules,
    lint_source,
)
from repro.check.verifier import (
    PlanVerificationError,
    Violation,
    family_contract,
    plan_violations,
    register_family_contract,
    register_verifier_rule,
    verifier_rules,
    verify_counters,
    verify_plan,
    verify_registered_plans,
)

__all__ = [
    "Finding",
    "LintRule",
    "PlanVerificationError",
    "Violation",
    "family_contract",
    "filter_findings",
    "lint_file",
    "lint_paths",
    "lint_rules",
    "lint_source",
    "load_baseline",
    "plan_violations",
    "register_family_contract",
    "register_verifier_rule",
    "verifier_rules",
    "verify_counters",
    "verify_plan",
    "verify_registered_plans",
]
