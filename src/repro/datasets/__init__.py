"""Benchmark dataset registry (Table II) and synthetic builders."""

from repro.datasets.registry import DATASET_SPECS, DatasetSpec, dataset_names, dataset_spec
from repro.datasets.synthetic import build_all_datasets, build_dataset, tiny_dataset

__all__ = [
    "DATASET_SPECS",
    "DatasetSpec",
    "dataset_spec",
    "dataset_names",
    "build_dataset",
    "build_all_datasets",
    "tiny_dataset",
]
