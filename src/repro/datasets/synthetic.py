"""Synthetic stand-ins for the benchmark datasets of Table II.

The original evaluation uses the PyTorch Geometric copies of Cora, Citeseer,
Pubmed, PPI and Reddit.  Those are unavailable in this offline environment,
so :func:`build_dataset` constructs deterministic synthetic graphs that match
each dataset's published statistics — vertex count, edge count, feature
length, label count, feature sparsity, and a power-law degree distribution —
which are the only properties GNNIE's mechanisms are sensitive to.

The two large graphs (PPI, Reddit) default to scaled-down versions (see
``DatasetSpec.default_scale``); pass ``scale=1.0`` to build them full size.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.registry import DatasetSpec, dataset_names, dataset_spec
from repro.graph.csr import CSRGraph
from repro.graph.generators import community_graph, power_law_graph
from repro.graph.graph import Graph
from repro.sparse.feature_matrix import generate_sparse_features

__all__ = ["build_dataset", "build_all_datasets", "tiny_dataset"]


def _build_topology(spec: DatasetSpec, num_vertices: int, num_edges: int, seed: int) -> CSRGraph:
    if spec.topology == "community":
        communities = max(2, num_vertices // 2500)
        return community_graph(
            num_vertices,
            communities,
            intra_average_degree=2.0 * num_edges / num_vertices,
            exponent=spec.degree_exponent,
            seed=seed,
        )
    # Respect the real dataset's power-law cutoff (its maximum degree); for
    # scaled-down builds the cap is additionally bounded by the graph size.
    max_degree = spec.max_degree if spec.max_degree > 0 else None
    if max_degree is not None:
        max_degree = max(16, min(max_degree, num_vertices // 4))
    return power_law_graph(
        num_vertices,
        num_edges,
        exponent=spec.degree_exponent,
        max_degree=max_degree,
        seed=seed,
    )


def _build_labels(
    spec: DatasetSpec,
    num_vertices: int,
    adjacency: CSRGraph,
    seed: int,
    features: np.ndarray | None = None,
) -> np.ndarray:
    """Labels with structure a GNN can learn.

    Multi-class datasets get homophilous labels (neighbors tend to agree).
    Multi-label datasets (the PPI stand-in) get labels generated from an
    attention-like relational process — each vertex aggregates its neighbors'
    feature projections weighted by feature similarity — so that relational
    models outperform purely local ones and similarity-weighted aggregation
    (GAT-style) carries signal beyond uniform averaging (GCN-style), which is
    the property Fig. 1 of the paper relies on.
    """
    rng = np.random.default_rng(seed + 1)
    if spec.multilabel:
        if features is None:
            raise ValueError("multilabel label generation requires features")
        hidden = 32
        projection = rng.normal(scale=1.0, size=(features.shape[1], hidden))
        signal = np.tanh(features @ projection)
        edges = adjacency.edge_array()
        self_loops = np.stack([np.arange(num_vertices)] * 2, axis=1)
        all_edges = np.concatenate([edges, self_loops], axis=0)
        # Attention-like neighbor weighting: similarity of projected features.
        similarity = np.einsum("ij,ij->i", signal[all_edges[:, 0]], signal[all_edges[:, 1]])
        similarity = np.exp(similarity / np.sqrt(hidden))
        weighted_sum = np.zeros((num_vertices, hidden))
        weight_total = np.zeros(num_vertices)
        np.add.at(weighted_sum, all_edges[:, 1], signal[all_edges[:, 0]] * similarity[:, None])
        np.add.at(weight_total, all_edges[:, 1], similarity)
        aggregated = weighted_sum / np.maximum(weight_total, 1e-12)[:, None]
        readout = rng.normal(scale=1.0, size=(hidden, spec.num_labels))
        scores = aggregated @ readout + 0.25 * rng.normal(size=(num_vertices, spec.num_labels))
        # Activate labels above a per-label quantile so each label has a
        # realistic (sparse) positive rate.
        thresholds = np.quantile(scores, 0.85, axis=0)
        labels = (scores > thresholds).astype(np.int64)
        empty = labels.sum(axis=1) == 0
        labels[empty, rng.integers(spec.num_labels, size=int(empty.sum()))] = 1
        return labels
    labels = rng.integers(spec.num_labels, size=num_vertices)
    # One smoothing round: each vertex adopts the majority label of its
    # neighborhood with probability 0.6, giving label assortativity similar
    # to citation networks.
    smoothed = labels.copy()
    adopt = rng.random(num_vertices) < 0.6
    for vertex in np.flatnonzero(adopt):
        neighbors = adjacency.neighbors(vertex)
        if neighbors.size:
            values, counts = np.unique(labels[neighbors], return_counts=True)
            smoothed[vertex] = values[np.argmax(counts)]
    return smoothed


def build_dataset(name: str, *, scale: float | None = None, seed: int = 0) -> Graph:
    """Build the synthetic stand-in for a Table II dataset.

    Args:
        name: Dataset name or abbreviation ("cora", "CS", "Pubmed", ...).
        scale: Optional down-scaling factor in (0, 1]; defaults to the
            registry's per-dataset default (1.0 for the citation graphs,
            smaller for PPI and Reddit).
        seed: Seed controlling topology, features and labels.

    Returns:
        A :class:`~repro.graph.graph.Graph` whose ``name`` is the dataset's
        abbreviation from Table II.
    """
    spec = dataset_spec(name)
    scaled = spec.scaled(scale)
    adjacency = _build_topology(spec, scaled.num_vertices, scaled.num_edges, seed)
    features = generate_sparse_features(
        scaled.num_vertices,
        spec.feature_length,
        spec.feature_sparsity,
        seed=seed + 7,
        column_skew=spec.column_skew,
    )
    labels = _build_labels(spec, scaled.num_vertices, adjacency, seed, features=features)
    return Graph(
        adjacency=adjacency,
        features=features,
        labels=labels,
        name=spec.abbreviation,
        num_label_classes=spec.num_labels,
    )


def build_all_datasets(*, scale: float | None = None, seed: int = 0) -> dict[str, Graph]:
    """Build every registered dataset; keys are canonical lowercase names."""
    return {name: build_dataset(name, scale=scale, seed=seed) for name in dataset_names()}


def tiny_dataset(
    *,
    num_vertices: int = 64,
    feature_length: int = 32,
    num_labels: int = 4,
    average_degree: float = 6.0,
    feature_sparsity: float = 0.8,
    seed: int = 0,
    name: str = "tiny",
) -> Graph:
    """A small power-law graph for unit tests and quick examples."""
    num_edges = int(num_vertices * average_degree / 2)
    adjacency = power_law_graph(num_vertices, num_edges, exponent=2.3, seed=seed)
    features = generate_sparse_features(
        num_vertices, feature_length, feature_sparsity, seed=seed + 3
    )
    rng = np.random.default_rng(seed + 11)
    labels = rng.integers(num_labels, size=num_vertices)
    return Graph(
        adjacency=adjacency,
        features=features,
        labels=labels,
        name=name,
        num_label_classes=num_labels,
    )
