"""Benchmark dataset registry (Table II of the paper).

Each entry records the published statistics of one of the five evaluation
datasets: Cora, Citeseer, Pubmed, PPI, and Reddit.  The synthetic builders in
:mod:`repro.datasets.synthetic` target these statistics; the Table II
benchmark checks how closely the generated graphs match them.

Because the two large graphs (PPI: 1.63M edges, Reddit: 114.6M edges) are too
expensive to simulate at full scale in pure Python, the registry also carries
a default *scale factor* used when building the synthetic stand-in.  The
scaled vertex/edge counts preserve the average degree and the power-law shape
so the caching and load-balancing behaviour under study is unchanged; see
DESIGN.md (substitutions) and EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["DatasetSpec", "DATASET_SPECS", "dataset_spec", "dataset_names"]


@dataclass(frozen=True)
class DatasetSpec:
    """Published statistics of a benchmark dataset (one row of Table II)."""

    name: str
    abbreviation: str
    num_vertices: int
    num_edges: int
    feature_length: int
    num_labels: int
    feature_sparsity: float
    #: Power-law exponent used by the synthetic generator (fit to the real
    #: degree distribution shape: citation graphs are steep, Reddit is heavy
    #: tailed).
    degree_exponent: float
    #: Zipf exponent of the feature-column popularity distribution used by
    #: the synthetic generator (bag-of-words vocabularies are Zipfian; denser
    #: TF-IDF style features such as Pubmed's are more skewed per block).
    column_skew: float = 1.0
    #: Largest vertex degree of the real dataset (natural cutoff of the
    #: power-law tail); 0 means "no explicit cap".
    max_degree: int = 0
    #: Whether the dataset is multi-label (PPI) rather than multi-class.
    multilabel: bool = False
    #: Default down-scaling factor for simulation (1 = full scale).
    default_scale: float = 1.0
    #: Topology family used by the synthetic builder.
    topology: str = "power_law"

    @property
    def average_degree(self) -> float:
        """Average undirected degree implied by the published counts."""
        return 2.0 * self.num_edges / self.num_vertices

    def scaled(self, scale: float | None = None) -> "ScaledDatasetSpec":
        """Vertex/edge counts after applying a scale factor."""
        factor = self.default_scale if scale is None else scale
        if factor <= 0 or factor > 1:
            raise ValueError("scale must be in (0, 1]")
        num_vertices = max(64, int(round(self.num_vertices * factor)))
        num_edges = max(num_vertices, int(round(self.num_edges * factor)))
        # Keep the scaled adjacency sparse: very dense graphs (Reddit at a
        # small vertex scale) would lose the sparsity property that GNNIE's
        # mechanisms are designed around, so the edge count is capped at a
        # 5% adjacency density.
        density_cap = int(0.05 * num_vertices * num_vertices / 2)
        num_edges = max(num_vertices, min(num_edges, density_cap))
        return ScaledDatasetSpec(spec=self, scale=factor, num_vertices=num_vertices, num_edges=num_edges)


@dataclass(frozen=True)
class ScaledDatasetSpec:
    """A dataset spec with scaling applied, ready for the synthetic builder."""

    spec: DatasetSpec
    scale: float
    num_vertices: int
    num_edges: int

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def is_scaled(self) -> bool:
        return self.scale < 1.0


# Table II of the paper [Sen et al. 2008 / Hamilton et al. 2017 statistics].
# Reddit's "48.4%" feature sparsity reflects dense embeddings; the citation
# graphs use bag-of-words features and are ultra sparse.
DATASET_SPECS: dict[str, DatasetSpec] = {
    "cora": DatasetSpec(
        name="Cora",
        abbreviation="CR",
        num_vertices=2708,
        num_edges=10556,
        feature_length=1433,
        num_labels=7,
        feature_sparsity=0.9873,
        degree_exponent=2.7,
        column_skew=0.9,
        max_degree=168,
    ),
    "citeseer": DatasetSpec(
        name="Citeseer",
        abbreviation="CS",
        num_vertices=3327,
        num_edges=9104,
        feature_length=3703,
        num_labels=6,
        feature_sparsity=0.9915,
        degree_exponent=2.8,
        column_skew=1.0,
        max_degree=99,
    ),
    "pubmed": DatasetSpec(
        name="Pubmed",
        abbreviation="PB",
        num_vertices=19717,
        num_edges=88648,
        feature_length=500,
        num_labels=3,
        feature_sparsity=0.90,
        degree_exponent=2.4,
        column_skew=1.3,
        max_degree=171,
    ),
    "ppi": DatasetSpec(
        name="Protein-protein interaction",
        abbreviation="PPI",
        num_vertices=56944,
        num_edges=1_630_000,
        feature_length=50,
        num_labels=121,
        feature_sparsity=0.981,
        degree_exponent=2.0,
        column_skew=0.8,
        max_degree=721,
        multilabel=True,
        default_scale=0.25,
        topology="community",
    ),
    "reddit": DatasetSpec(
        name="Reddit",
        abbreviation="RD",
        num_vertices=232_965,
        num_edges=114_600_000,
        feature_length=602,
        num_labels=41,
        feature_sparsity=0.484,
        degree_exponent=1.8,
        column_skew=0.4,
        max_degree=21657,
        default_scale=0.02,
    ),
}


def dataset_spec(name: str) -> DatasetSpec:
    """Look up a dataset spec by name or abbreviation (case insensitive)."""
    key = name.strip().lower()
    if key in DATASET_SPECS:
        return DATASET_SPECS[key]
    for spec in DATASET_SPECS.values():
        if spec.abbreviation.lower() == key or spec.name.lower() == key:
            return spec
    raise KeyError(f"unknown dataset {name!r}; known: {sorted(DATASET_SPECS)}")


def dataset_names() -> list[str]:
    """Canonical lowercase names of all registered datasets."""
    return list(DATASET_SPECS.keys())
