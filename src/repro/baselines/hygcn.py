"""HyGCN baseline cost model [Yan et al., HPCA 2020].

HyGCN couples an *Aggregation engine* (32 SIMD16 cores operating on graph
data) with a *Combination engine* (8 systolic arrays, 32×128 MACs) in a
pipeline.  The paper (Sections I and VII) attributes GNNIE's ~35× average
advantage to four structural differences, all of which the model charges:

* HyGCN aggregates first — (Ã H) W — so Aggregation runs at the input
  feature width (e.g. 1433 for Cora) instead of the hidden width (128),
* the Combination engine does not exploit input-feature sparsity (dense
  MACs),
* shard-based windowing has limited efficacy on highly sparse adjacency
  matrices: a substantial fraction of neighbor fetches still go to DRAM
  randomly, and the power-law distribution is not addressed,
* the two engines are imbalanced, so the pipeline stalls (modeled as a
  pipeline efficiency factor on the max of the two stage times).

HyGCN does not implement the softmax-over-neighborhood needed by GATs and is
therefore only compared on GCN, GraphSAGE and GINConv (Fig. 13).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.platform import PlatformModel
from repro.baselines.workload import WorkloadEstimate
from repro.graph.graph import Graph

__all__ = ["HyGCNModel"]


@dataclass
class HyGCNModel(PlatformModel):
    """Dual-engine pipeline model of HyGCN."""

    name: str = "HyGCN"
    supported_families: tuple[str, ...] = ("gcn", "graphsage", "ginconv")
    frequency_hz: float = 1.0e9
    #: Combination engine: 8 systolic arrays with 128x32 = 4096 total MACs
    #: (HyGCN paper configuration), dense (no zero skipping).
    combination_macs: int = 4096
    combination_utilization: float = 0.75
    #: Aggregation engine: 32 SIMD16 cores = 512 lanes.
    aggregation_lanes: int = 512
    aggregation_utilization: float = 0.8
    #: Fraction of neighbor accesses that miss the sliding-window shard and
    #: go to DRAM with random-access cost.
    shard_miss_fraction: float = 0.35
    dram_bandwidth: float = 256e9
    random_access_penalty_seconds: float = 60e-9
    #: Pipeline efficiency capturing Aggregation/Combination imbalance.
    pipeline_efficiency: float = 0.7
    average_power_watts: float = 6.7

    def power_watts(self) -> float:
        return self.average_power_watts

    def latency_seconds(self, graph: Graph, workload: WorkloadEstimate) -> float:
        # Combination: dense weighting MACs (no input-sparsity exploitation).
        combination_cycles = workload.dense_weighting_macs / (
            self.combination_macs * self.combination_utilization
        )
        # Aggregation runs before Combination, at the input feature width.
        aggregation_cycles = workload.aggregation_ops_aggregation_first / (
            self.aggregation_lanes * self.aggregation_utilization
        )
        stage_seconds = (
            max(combination_cycles, aggregation_cycles)
            / self.frequency_hz
            / self.pipeline_efficiency
        )
        # Random DRAM penalty for shard-window misses during Aggregation.
        missed_edges = self.shard_miss_fraction * graph.num_edges
        random_seconds = missed_edges * self.random_access_penalty_seconds
        # Streaming traffic floor.
        stream_seconds = 4.0 * workload.dram_bytes / self.dram_bandwidth
        return stage_seconds + random_seconds + stream_seconds
