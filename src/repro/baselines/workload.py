"""Analytic per-layer workload estimation for the baseline platform models.

The cross-platform comparisons (Figs. 12, 13, 15) need the *amount of work*
each GNN performs on each dataset — dense and sparse-aware MAC counts for
Weighting, scalar operation counts for Aggregation and attention, and the
minimum DRAM traffic — without paying for a full functional forward pass on
the larger graphs.  This module derives those counts from graph statistics
and the Table III layer configuration, for both operation orders:

* ``weighting_first`` (GNNIE, AWB-GCN): Aggregation runs on F_out-wide
  weighted features — Ã (H W),
* ``aggregation_first`` (HyGCN): Aggregation runs on F_in-wide raw features —
  (Ã H) W, which is roughly an order of magnitude more work for the
  high-dimensional input layers (paper, Sections III and VII).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.graph import Graph
from repro.models.zoo import ModelConfig, model_config

__all__ = ["LayerCosts", "WorkloadEstimate", "estimate_workload"]

#: Density modeled for post-ReLU hidden-layer features.
HIDDEN_DENSITY = 0.6


@dataclass(frozen=True)
class LayerCosts:
    """Operation counts of one layer of one GNN on one graph."""

    layer_index: int
    in_features: int
    out_features: int
    dense_weighting_macs: int
    sparse_weighting_macs: int
    aggregation_ops_weighting_first: int
    aggregation_ops_aggregation_first: int
    attention_ops: int
    sampling_ops: int
    dram_bytes: int


@dataclass(frozen=True)
class WorkloadEstimate:
    """Per-layer costs plus totals for one (graph, GNN family) pair."""

    dataset: str
    family: str
    layers: tuple[LayerCosts, ...]

    def total(self, attribute: str) -> int:
        return int(sum(getattr(layer, attribute) for layer in self.layers))

    @property
    def dense_weighting_macs(self) -> int:
        return self.total("dense_weighting_macs")

    @property
    def sparse_weighting_macs(self) -> int:
        return self.total("sparse_weighting_macs")

    @property
    def aggregation_ops(self) -> int:
        return self.total("aggregation_ops_weighting_first")

    @property
    def aggregation_ops_aggregation_first(self) -> int:
        return self.total("aggregation_ops_aggregation_first")

    @property
    def attention_ops(self) -> int:
        return self.total("attention_ops")

    @property
    def sampling_ops(self) -> int:
        return self.total("sampling_ops")

    @property
    def dram_bytes(self) -> int:
        return self.total("dram_bytes")


def estimate_workload(
    graph: Graph,
    family: str,
    *,
    out_features: int | None = None,
    config: ModelConfig | None = None,
) -> WorkloadEstimate:
    """Estimate the per-layer operation counts for a GNN on a graph."""
    cfg = config or model_config(family)
    family_key = cfg.family.lower()
    labels = out_features if out_features is not None else max(graph.num_label_classes, 2)
    num_vertices = graph.num_vertices
    num_edges = graph.num_edges  # directed (2x undirected)
    input_nonzeros = int(np.count_nonzero(graph.features))

    if family_key == "diffpool":
        return _estimate_diffpool(graph, cfg, labels, input_nonzeros)

    if family_key == "graphsage":
        sampled_edges = int(np.minimum(graph.degrees(), cfg.sample_size or 25).sum())
    else:
        sampled_edges = num_edges

    layers: list[LayerCosts] = []
    for index, (in_features, out_features_layer) in enumerate(
        cfg.layer_dimensions(graph.feature_length, labels)
    ):
        if index == 0:
            nonzeros = input_nonzeros
        else:
            nonzeros = int(round(HIDDEN_DENSITY * num_vertices * in_features))
        dense_macs = num_vertices * in_features * out_features_layer
        sparse_macs = nonzeros * out_features_layer
        if family_key == "ginconv":
            hidden = cfg.mlp_hidden or out_features_layer
            dense_macs = num_vertices * (in_features * hidden + hidden * out_features_layer)
            sparse_macs = nonzeros * hidden + num_vertices * hidden * out_features_layer
        edges_for_layer = sampled_edges
        aggregation_wf = (edges_for_layer + num_vertices) * out_features_layer
        aggregation_af = (edges_for_layer + num_vertices) * in_features
        if family_key == "ginconv":
            # GIN aggregates raw features before the MLP in both orderings.
            aggregation_wf = (edges_for_layer + num_vertices) * in_features
            aggregation_af = aggregation_wf
        attention_ops = 0
        if family_key == "gat":
            attention_ops = 2 * num_vertices * out_features_layer + 5 * edges_for_layer
        sampling_ops = 0
        if family_key == "graphsage":
            sampling_ops = num_vertices * (cfg.sample_size or 25)
        dram_bytes = (
            (nonzeros if index == 0 else num_vertices * in_features)
            + num_vertices * out_features_layer
            + in_features * out_features_layer
        )
        layers.append(
            LayerCosts(
                layer_index=index,
                in_features=in_features,
                out_features=out_features_layer,
                dense_weighting_macs=int(dense_macs),
                sparse_weighting_macs=int(sparse_macs),
                aggregation_ops_weighting_first=int(aggregation_wf),
                aggregation_ops_aggregation_first=int(aggregation_af),
                attention_ops=int(attention_ops),
                sampling_ops=int(sampling_ops),
                dram_bytes=int(dram_bytes),
            )
        )
    return WorkloadEstimate(dataset=graph.name, family=family_key, layers=tuple(layers))


def _estimate_diffpool(
    graph: Graph, cfg: ModelConfig, labels: int, input_nonzeros: int
) -> WorkloadEstimate:
    """DiffPool = embedding GCN + pooling GCN + coarsening products."""
    num_vertices = graph.num_vertices
    num_edges = graph.num_edges
    hidden = cfg.hidden_features
    clusters = max(2, hidden // 4)
    in_features = graph.feature_length

    def gcn_layer(index: int, out_dim: int) -> LayerCosts:
        dense = num_vertices * in_features * out_dim
        sparse = input_nonzeros * out_dim
        return LayerCosts(
            layer_index=index,
            in_features=in_features,
            out_features=out_dim,
            dense_weighting_macs=int(dense),
            sparse_weighting_macs=int(sparse),
            aggregation_ops_weighting_first=int((num_edges + num_vertices) * out_dim),
            aggregation_ops_aggregation_first=int((num_edges + num_vertices) * in_features),
            attention_ops=0,
            sampling_ops=0,
            dram_bytes=int(input_nonzeros + num_vertices * out_dim + in_features * out_dim),
        )

    coarsening_macs = (
        num_edges * clusters
        + num_vertices * clusters * clusters
        + num_vertices * clusters * hidden
    )
    coarsening = LayerCosts(
        layer_index=2,
        in_features=clusters,
        out_features=hidden,
        dense_weighting_macs=int(coarsening_macs),
        sparse_weighting_macs=int(coarsening_macs),
        aggregation_ops_weighting_first=0,
        aggregation_ops_aggregation_first=0,
        attention_ops=int(num_vertices * clusters),
        sampling_ops=0,
        dram_bytes=int(clusters * (clusters + hidden)),
    )
    return WorkloadEstimate(
        dataset=graph.name,
        family="diffpool",
        layers=(gcn_layer(0, hidden), gcn_layer(1, clusters), coarsening),
    )
