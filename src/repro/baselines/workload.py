"""Per-layer workload accounting derived from inference plans.

The cross-platform comparisons (Figs. 12, 13, 15) need the *amount of work*
each GNN performs on each dataset — dense and sparse-aware MAC counts for
Weighting, scalar operation counts for Aggregation and attention, and the
minimum DRAM traffic — without paying for a full functional forward pass on
the larger graphs.  Historically this module re-derived those counts from
the family name in parallel with the simulation engine; it now *consumes*
the same :class:`~repro.plan.ir.InferencePlan` the GNNIE executor runs, so
every platform prices exactly one shared description of the workload.

Both operation orders are accounted:

* ``weighting_first`` (GNNIE, AWB-GCN): Aggregation runs on F_out-wide
  weighted features — Ã (H W),
* ``aggregation_first`` (HyGCN): Aggregation runs on F_in-wide raw features —
  (Ã H) W, which is roughly an order of magnitude more work for the
  high-dimensional input layers (paper, Sections III and VII).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.graph import Graph
from repro.models.zoo import ModelConfig, model_config
from repro.plan.ir import (
    AdjacencyRef,
    AggregationOp,
    AttentionOp,
    DenseMatmulOp,
    InferencePlan,
    PreprocessOp,
    SampleOp,
    WeightingOp,
)
from repro.plan.lowering import lower_model

__all__ = [
    "LayerCosts",
    "WorkloadEstimate",
    "estimate_workload",
    "workload_from_plan",
]

#: Density modeled for post-ReLU hidden-layer features (kept as an alias of
#: the plan-IR constant for backwards compatibility).
from repro.plan.ir import HIDDEN_DENSITY  # noqa: E402  (re-export)


@dataclass(frozen=True)
class LayerCosts:
    """Operation counts of one layer of one GNN on one graph."""

    layer_index: int
    in_features: int
    out_features: int
    dense_weighting_macs: int
    sparse_weighting_macs: int
    aggregation_ops_weighting_first: int
    aggregation_ops_aggregation_first: int
    attention_ops: int
    sampling_ops: int
    dram_bytes: int


@dataclass(frozen=True)
class WorkloadEstimate:
    """Per-layer costs plus totals for one (graph, GNN family) pair."""

    dataset: str
    family: str
    layers: tuple[LayerCosts, ...]

    def total(self, attribute: str) -> int:
        return int(sum(getattr(layer, attribute) for layer in self.layers))

    @property
    def dense_weighting_macs(self) -> int:
        return self.total("dense_weighting_macs")

    @property
    def sparse_weighting_macs(self) -> int:
        return self.total("sparse_weighting_macs")

    @property
    def aggregation_ops(self) -> int:
        return self.total("aggregation_ops_weighting_first")

    @property
    def aggregation_ops_aggregation_first(self) -> int:
        return self.total("aggregation_ops_aggregation_first")

    @property
    def attention_ops(self) -> int:
        return self.total("attention_ops")

    @property
    def sampling_ops(self) -> int:
        return self.total("sampling_ops")

    @property
    def dram_bytes(self) -> int:
        return self.total("dram_bytes")


def workload_from_plan(plan: InferencePlan, graph: Graph) -> WorkloadEstimate:
    """Price an inference plan on a concrete graph, op by op.

    This is the single workload derivation shared by all baseline platform
    executors: every op contributes its analytic operation counts, resolved
    against the graph's vertex/edge statistics.
    """
    from repro.sim.batch import pricing_context

    num_vertices = graph.num_vertices
    num_edges = graph.num_edges  # directed (2x undirected)
    input_nonzeros = pricing_context(graph).input_nonzeros()
    edge_counts: dict[AdjacencyRef, int] = {}

    def resolve_edges(ref: AdjacencyRef) -> int:
        if ref not in edge_counts:
            if ref.kind == "sampled":
                edge_counts[ref] = int(
                    np.minimum(graph.degrees(), ref.sample_size or 25).sum()
                )
            else:
                edge_counts[ref] = num_edges
        return edge_counts[ref]

    layers: list[LayerCosts] = []
    for stage in plan.layers:
        dense_macs = sparse_macs = 0
        aggregation_wf = aggregation_af = 0
        attention_ops = sampling_ops = 0
        dram_bytes = 0
        for op in stage.ops:
            if isinstance(op, WeightingOp):
                if op.density is None:
                    nonzeros = input_nonzeros
                else:
                    nonzeros = int(round(op.density * num_vertices * op.in_features))
                if op.mlp_hidden is not None:
                    hidden = op.mlp_hidden
                    dense_macs += num_vertices * (
                        op.in_features * hidden + hidden * op.out_features
                    )
                    sparse_macs += (
                        nonzeros * hidden + num_vertices * hidden * op.out_features
                    )
                else:
                    dense_macs += num_vertices * op.in_features * op.out_features
                    sparse_macs += nonzeros * op.out_features
                dram_bytes += (
                    (nonzeros if op.density is None else num_vertices * op.in_features)
                    + num_vertices * op.out_features
                    + op.in_features * op.out_features
                )
            elif isinstance(op, AggregationOp):
                edges = resolve_edges(op.adjacency)
                aggregation_wf += (edges + num_vertices) * op.width
                aggregation_af += (edges + num_vertices) * op.in_features
            elif isinstance(op, AttentionOp):
                edges = resolve_edges(op.adjacency)
                attention_ops += 2 * num_vertices * op.out_features + 5 * edges
            elif isinstance(op, SampleOp):
                sampling_ops += num_vertices * op.sample_size
            elif isinstance(op, DenseMatmulOp):
                macs = (
                    num_edges * op.macs_per_edge + num_vertices * op.macs_per_vertex
                )
                dense_macs += macs
                sparse_macs += macs
                attention_ops += num_vertices * op.softmax_ops_per_vertex
                dram_bytes += op.output_values
            elif isinstance(op, PreprocessOp):
                pass  # host-side work, not charged to the platforms
            else:
                raise TypeError(f"workload estimation cannot price op {op!r}")
        layers.append(
            LayerCosts(
                layer_index=stage.index,
                in_features=stage.in_features,
                out_features=stage.out_features,
                dense_weighting_macs=int(dense_macs),
                sparse_weighting_macs=int(sparse_macs),
                aggregation_ops_weighting_first=int(aggregation_wf),
                aggregation_ops_aggregation_first=int(aggregation_af),
                attention_ops=int(attention_ops),
                sampling_ops=int(sampling_ops),
                dram_bytes=int(dram_bytes),
            )
        )
    return WorkloadEstimate(dataset=graph.name, family=plan.family, layers=tuple(layers))


def estimate_workload(
    graph: Graph,
    family: str,
    *,
    out_features: int | None = None,
    config: ModelConfig | None = None,
) -> WorkloadEstimate:
    """Estimate the per-layer operation counts for a GNN on a graph.

    Compatibility wrapper: lowers the family to a plan and prices it with
    :func:`workload_from_plan`.
    """
    cfg = config or model_config(family)
    labels = out_features if out_features is not None else max(graph.num_label_classes, 2)
    plan = lower_model(cfg, graph.feature_length, labels)
    return workload_from_plan(plan, graph)
