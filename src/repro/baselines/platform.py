"""Common result type and base class for baseline platform cost models.

Every platform model is also a plan *executor*
(:class:`~repro.plan.executor.Executor`): :meth:`PlatformModel.execute`
prices the same :class:`~repro.plan.ir.InferencePlan` the GNNIE simulator
runs, via the shared :func:`~repro.baselines.workload.workload_from_plan`
derivation, and applies the platform's roofline-style cost model to it.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

from repro.baselines.workload import WorkloadEstimate, workload_from_plan
from repro.check.verifier import verify_plan
from repro.graph.graph import Graph
from repro.obs.tracer import NULL_TRACER
from repro.plan.ir import InferencePlan

__all__ = ["PlatformResult", "PlatformModel"]


@dataclass(frozen=True)
class PlatformResult:
    """Latency and energy of one inference on one baseline platform."""

    platform: str
    dataset: str
    model: str
    latency_seconds: float
    energy_joules: float

    @property
    def inferences_per_kilojoule(self) -> float:
        if self.energy_joules <= 0:
            return float("inf")
        return 1000.0 / self.energy_joules


class PlatformModel(ABC):
    """A roofline-style cost model of a baseline platform."""

    #: Name used in reports ("PyG-CPU", "PyG-GPU", "HyGCN", "AWB-GCN").
    name: str = "platform"
    #: GNN families the platform supports (HyGCN cannot run GATs; AWB-GCN
    #: runs GCN only).
    supported_families: tuple[str, ...] = ("gcn", "gat", "graphsage", "ginconv", "diffpool")
    #: Span tracer (``repro.obs``); the shared no-op by default, overridden
    #: per instance when a profiling/fleet run wants platform spans.
    tracer = NULL_TRACER
    #: Baseline platforms price a (plan, graph) workload that does not depend
    #: on the accelerator config, so a config batch derives the workload once
    #: and reuses it for every config (see :meth:`execute_batch`).
    uses_shared_workload = True

    def supports(self, family: str) -> bool:
        return family.lower() in self.supported_families

    @abstractmethod
    def latency_seconds(self, graph: Graph, workload: WorkloadEstimate) -> float:
        """Inference latency of the workload on this platform."""

    @abstractmethod
    def power_watts(self) -> float:
        """Average power draw during inference."""

    def evaluate(self, graph: Graph, workload: WorkloadEstimate) -> PlatformResult:
        """Latency + energy for one workload."""
        if not self.supports(workload.family):
            raise ValueError(f"{self.name} does not support {workload.family!r}")
        latency = self.latency_seconds(graph, workload)
        return PlatformResult(
            platform=self.name,
            dataset=workload.dataset,
            model=workload.family.upper(),
            latency_seconds=latency,
            energy_joules=latency * self.power_watts(),
        )

    def execute(
        self,
        plan: InferencePlan,
        graph: Graph,
        config: object | None = None,
        *,
        workload: WorkloadEstimate | None = None,
    ) -> PlatformResult:
        """Executor protocol: price an inference plan on this platform.

        ``config`` is accepted for protocol compatibility and ignored — the
        baseline platforms model fixed published hardware.  ``workload`` lets
        a batch caller supply a pre-derived
        :func:`~repro.baselines.workload.workload_from_plan` result; deriving
        it is a pure function of (plan, graph), so sharing it cannot change
        the priced result.
        """
        verify_plan(plan)
        del config
        with self.tracer.span(
            f"platform:{self.name}",
            category="inference",
            platform=self.name,
            dataset=graph.name,
            family=plan.family,
        ) as span:
            if workload is None:
                workload = workload_from_plan(plan, graph)
            result = self.evaluate(graph, workload)
        span.set(latency_s=result.latency_seconds, energy_j=result.energy_joules)
        return result

    def execute_batch(
        self,
        plan: InferencePlan,
        graph: Graph,
        configs: list[object | None],
        *,
        workload: WorkloadEstimate | None = None,
    ) -> list[PlatformResult]:
        """Price one (plan, graph) under a batch of accelerator configs.

        Baseline platforms ignore the accelerator config, so the workload is
        derived once and each config yields the same priced row — the batch
        exists so the sweep runner can dispatch baselines and GNNIE cells
        through one code path.
        """
        if workload is None:
            workload = workload_from_plan(plan, graph)
        return [
            self.execute(plan, graph, config, workload=workload) for config in configs
        ]
