"""Baseline platform cost models: PyG-CPU, PyG-GPU, HyGCN, AWB-GCN."""

from repro.baselines.awb_gcn import AWBGCNModel
from repro.baselines.cpu import PyGCPUModel
from repro.baselines.engn import EnGNModel
from repro.baselines.gpu import PyGGPUModel
from repro.baselines.hygcn import HyGCNModel
from repro.baselines.platform import PlatformModel, PlatformResult
from repro.baselines.workload import LayerCosts, WorkloadEstimate, estimate_workload

__all__ = [
    "PlatformModel",
    "PlatformResult",
    "PyGCPUModel",
    "PyGGPUModel",
    "HyGCNModel",
    "AWBGCNModel",
    "EnGNModel",
    "LayerCosts",
    "WorkloadEstimate",
    "estimate_workload",
]
