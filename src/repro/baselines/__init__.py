"""Baseline platform cost models: PyG-CPU, PyG-GPU, HyGCN, AWB-GCN, EnGN.

Each platform is a plan executor over the shared
:class:`~repro.plan.ir.InferencePlan` IR and is registered with the backend
registry, so ``repro.plan.executor("hygcn")`` (etc.) resolves here.
"""

from repro.baselines.awb_gcn import AWBGCNModel
from repro.baselines.cpu import PyGCPUModel
from repro.baselines.engn import EnGNModel
from repro.baselines.gpu import PyGGPUModel
from repro.baselines.hygcn import HyGCNModel
from repro.baselines.platform import PlatformModel, PlatformResult
from repro.baselines.workload import (
    LayerCosts,
    WorkloadEstimate,
    estimate_workload,
    workload_from_plan,
)
from repro.plan.executor import register_executor

__all__ = [
    "PlatformModel",
    "PlatformResult",
    "PyGCPUModel",
    "PyGGPUModel",
    "HyGCNModel",
    "AWBGCNModel",
    "EnGNModel",
    "LayerCosts",
    "WorkloadEstimate",
    "estimate_workload",
    "workload_from_plan",
]

register_executor("pyg-cpu", PyGCPUModel)
register_executor("pyg-gpu", PyGGPUModel)
register_executor("hygcn", HyGCNModel)
register_executor("awb-gcn", AWBGCNModel)
register_executor("engn", EnGNModel)
