"""EnGN baseline cost model [Liang et al., IEEE TC 2020].

EnGN is the third accelerator the paper discusses (Section VII): a 128×16
ring-edge-reduce (RER) PE array at 1 GHz where each PE broadcasts its partial
results to the other PEs of its column during Aggregation.  The paper's
critique, which this model charges explicitly:

* the RER ring adds one hop of inter-PE communication per aggregation step,
  an energy/latency overhead that grows with the (sparse) neighbor count,
* the edge reordering EnGN performs to reduce that communication is an
  expensive preprocessing step repeated as cached edges are replaced,
* its dimension-aware stage reordering picks the cheaper of the two phase
  orders per layer, so it does benefit from weighting-first on these
  workloads (modeled via the same workload estimate GNNIE uses).

EnGN supports the common message-passing GNNs but, like HyGCN, does not
implement the softmax-over-neighborhood that GATs need.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.platform import PlatformModel
from repro.baselines.workload import WorkloadEstimate
from repro.graph.graph import Graph

__all__ = ["EnGNModel"]


@dataclass
class EnGNModel(PlatformModel):
    """Ring-edge-reduce PE-array model of EnGN."""

    name: str = "EnGN"
    supported_families: tuple[str, ...] = ("gcn", "graphsage", "ginconv")
    frequency_hz: float = 1.0e9
    #: 128 x 16 PE array.
    num_pes: int = 2048
    pe_utilization: float = 0.7
    #: Extra cycles per aggregation operation spent on the RER ring hop.
    ring_overhead_factor: float = 0.35
    #: Edge-reordering preprocessing cost, charged per edge per layer.
    reorder_seconds_per_edge: float = 2.0e-9
    dram_bandwidth: float = 256e9
    average_power_watts: float = 8.5

    def power_watts(self) -> float:
        return self.average_power_watts

    def latency_seconds(self, graph: Graph, workload: WorkloadEstimate) -> float:
        effective_pes = self.num_pes * self.pe_utilization
        weighting_cycles = workload.sparse_weighting_macs / effective_pes
        aggregation_cycles = (
            workload.aggregation_ops * (1.0 + self.ring_overhead_factor) / effective_pes
        )
        compute_seconds = (weighting_cycles + aggregation_cycles) / self.frequency_hz
        reorder_seconds = (
            self.reorder_seconds_per_edge * graph.num_edges * len(workload.layers)
        )
        memory_seconds = 4.0 * workload.dram_bytes / self.dram_bandwidth
        return max(compute_seconds, memory_seconds) + reorder_seconds
