"""AWB-GCN baseline cost model [Geng et al., MICRO 2020].

AWB-GCN treats GCN inference as two chained sparse-dense matrix
multiplications on a 4096-PE array (Intel D5005 FPGA, ~330 MHz) with three
rounds of runtime workload autotuning (distribution smoothing, remote
switching, row remapping).  The paper's comparison points (Section VII,
Fig. 13):

* AWB-GCN exploits sparsity and balances load well (high PE utilization),
  but its SpMM formulation is graph-agnostic: the adjacency matrix is
  streamed from off-chip repeatedly, with no degree-aware reuse,
* the runtime rebalancing rounds cost inter-PE communication,
* its zero-skipping targets ~75% sparsity and is less effective on the
  ultra-sparse (>98%) input feature layer,
* it implements GCNs only.

GNNIE achieves an average 2.1× speedup over it while using 3.4× fewer MACs
(1216 vs 4096).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.platform import PlatformModel
from repro.baselines.workload import WorkloadEstimate
from repro.graph.graph import Graph

__all__ = ["AWBGCNModel"]


@dataclass
class AWBGCNModel(PlatformModel):
    """SpMM-chain model of AWB-GCN (GCN only)."""

    name: str = "AWB-GCN"
    supported_families: tuple[str, ...] = ("gcn",)
    frequency_hz: float = 330e6
    num_macs: int = 4096
    #: Utilization after runtime rebalancing on moderately sparse matrices.
    utilization: float = 0.85
    #: Utilization on the ultra-sparse input layer (zero skipping tuned for
    #: ~75% sparsity loses efficiency beyond that).
    input_layer_utilization: float = 0.5
    #: Rebalancing/communication overhead as a fraction of compute time.
    rebalancing_overhead: float = 0.12
    #: Off-chip bandwidth of the FPGA board (DDR4).
    dram_bandwidth: float = 77e9
    #: Bytes of adjacency data streamed per aggregation pass (CSR index +
    #: value per edge).
    adjacency_bytes_per_edge: float = 8.0
    average_power_watts: float = 35.0

    def power_watts(self) -> float:
        return self.average_power_watts

    def latency_seconds(self, graph: Graph, workload: WorkloadEstimate) -> float:
        compute_cycles = 0.0
        for layer in workload.layers:
            utilization = (
                self.input_layer_utilization if layer.layer_index == 0 else self.utilization
            )
            weighting_cycles = layer.sparse_weighting_macs / (self.num_macs * utilization)
            aggregation_cycles = layer.aggregation_ops_weighting_first / (
                self.num_macs * self.utilization
            )
            compute_cycles += weighting_cycles + aggregation_cycles
        compute_seconds = compute_cycles * (1.0 + self.rebalancing_overhead) / self.frequency_hz
        # Graph-agnostic SpMM: the adjacency is streamed from DRAM for every
        # output-feature tile of every layer.
        tiles = max(1, workload.layers[0].out_features // 16)
        adjacency_bytes = graph.num_edges * self.adjacency_bytes_per_edge * tiles
        feature_bytes = 4.0 * workload.dram_bytes
        memory_seconds = (adjacency_bytes + feature_bytes) / self.dram_bandwidth
        return max(compute_seconds, memory_seconds) + 0.15 * min(compute_seconds, memory_seconds)
