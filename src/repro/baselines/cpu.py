"""PyG-CPU baseline cost model (Intel Xeon Gold 6132 + PyTorch Geometric).

The paper's CPU baseline runs the PyG implementations of the five GNNs on a
14-core Xeon Gold 6132 at 2.6 GHz with 768 GB of DDR4.  Its performance is
bounded by three effects that the cost model captures:

* dense GEMM throughput for Weighting (the CPU does not skip the ~99% zero
  input features),
* scatter/gather-dominated Aggregation, which runs orders of magnitude below
  peak FLOPS because of random memory access and framework dispatch,
* fixed per-operator framework overhead (PyTorch op dispatch, Python glue),
  which dominates on the small citation graphs and is the main reason the
  measured GNNIE speedups over PyG-CPU reach 10³–10⁵×,
* pregenerated-random-number neighbor sampling for GraphSAGE, charged per
  sampled neighbor.

The constants below are representative of published PyG CPU measurements on
these datasets (tens of milliseconds for a 2-layer GCN on Cora); the
benchmarks check speedup *shapes*, not exact values.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.platform import PlatformModel
from repro.baselines.workload import WorkloadEstimate
from repro.graph.graph import Graph

__all__ = ["PyGCPUModel"]


@dataclass
class PyGCPUModel(PlatformModel):
    """Roofline + framework-overhead model of PyG on a Xeon Gold 6132."""

    name: str = "PyG-CPU"
    #: Peak fp32 throughput: 14 cores x 2.6 GHz x 32 FLOP/cycle (AVX-512 FMA).
    peak_flops: float = 1.16e12
    dense_gemm_efficiency: float = 0.45
    #: Aggregation (scatter_add / index_select) efficiency relative to peak:
    #: PyG's CPU scatter kernels are latency bound and run at a few GFLOP/s.
    aggregation_efficiency: float = 0.004
    #: Sustained memory bandwidth (six DDR4-2666 channels).
    memory_bandwidth: float = 100e9
    #: Fixed overhead per PyTorch operator invocation.
    op_dispatch_seconds: float = 50e-6
    #: Framework operators issued per layer for each GNN family.
    ops_per_layer: int = 30
    #: Extra per-sampled-neighbor cost of GraphSAGE sampling.
    sampling_seconds_per_edge: float = 0.4e-6
    #: Per-attention-edge softmax/scatter overhead for GATs.
    attention_seconds_per_op: float = 2.0e-12
    #: Average package power while running PyG inference.
    average_power_watts: float = 150.0

    def power_watts(self) -> float:
        return self.average_power_watts

    def latency_seconds(self, graph: Graph, workload: WorkloadEstimate) -> float:
        # Dense Weighting GEMMs: the CPU multiplies full dense matrices.
        gemm_flops = 2.0 * workload.dense_weighting_macs
        gemm_seconds = gemm_flops / (self.peak_flops * self.dense_gemm_efficiency)

        # Aggregation: scatter-add over edges, latency/bandwidth bound.
        aggregation_flops = 2.0 * workload.aggregation_ops
        aggregation_seconds = aggregation_flops / (
            self.peak_flops * self.aggregation_efficiency
        )

        # Memory traffic floor (features + weights + intermediates).
        bytes_moved = 4.0 * workload.dram_bytes  # fp32 tensors
        memory_seconds = bytes_moved / self.memory_bandwidth

        # Framework dispatch: ops per layer, more for attention models.
        num_layers = len(workload.layers)
        ops = self.ops_per_layer * num_layers
        if workload.family == "gat":
            ops += 15 * num_layers
        dispatch_seconds = ops * self.op_dispatch_seconds

        attention_seconds = workload.attention_ops * self.attention_seconds_per_op
        sampling_seconds = workload.sampling_ops * self.sampling_seconds_per_edge

        compute_seconds = max(gemm_seconds + aggregation_seconds, memory_seconds)
        return compute_seconds + dispatch_seconds + attention_seconds + sampling_seconds
