"""PyG-GPU baseline cost model (NVIDIA Tesla V100S + PyTorch Geometric).

The GPU baseline is far stronger than the CPU one — dense GEMMs run near
cuBLAS peak and scatter-based aggregation benefits from HBM2 bandwidth — but
it still loses to GNNIE because of

* kernel-launch and framework overhead that dominates small graphs (the
  citation datasets finish their useful work in microseconds),
* low efficiency of irregular scatter/gather aggregation kernels,
* host-side neighbor sampling for GraphSAGE (the paper's measured 2427×
  average GNNIE speedup for GraphSAGE on GPU is driven by this),
* no exploitation of the ~99% input-feature sparsity.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.platform import PlatformModel
from repro.baselines.workload import WorkloadEstimate
from repro.graph.graph import Graph

__all__ = ["PyGGPUModel"]


@dataclass
class PyGGPUModel(PlatformModel):
    """Roofline + launch-overhead model of PyG on a Tesla V100S."""

    name: str = "PyG-GPU"
    #: Peak fp32 throughput of the V100S.
    peak_flops: float = 16.4e12
    dense_gemm_efficiency: float = 0.55
    #: Scatter/gather aggregation efficiency relative to peak FLOPS.
    aggregation_efficiency: float = 0.02
    #: HBM2 bandwidth with a realistic utilization factor applied.
    memory_bandwidth: float = 0.65 * 1134e9
    #: Kernel launch + framework overhead per operator.
    kernel_launch_seconds: float = 12e-6
    kernels_per_layer: int = 30
    #: Host-side neighbor sampling for GraphSAGE (per sampled neighbor).
    sampling_seconds_per_edge: float = 0.8e-6
    attention_seconds_per_op: float = 0.15e-12
    average_power_watts: float = 250.0

    def power_watts(self) -> float:
        return self.average_power_watts

    def latency_seconds(self, graph: Graph, workload: WorkloadEstimate) -> float:
        gemm_seconds = 2.0 * workload.dense_weighting_macs / (
            self.peak_flops * self.dense_gemm_efficiency
        )
        aggregation_seconds = 2.0 * workload.aggregation_ops / (
            self.peak_flops * self.aggregation_efficiency
        )
        memory_seconds = 4.0 * workload.dram_bytes / self.memory_bandwidth

        num_layers = len(workload.layers)
        kernels = self.kernels_per_layer * num_layers
        if workload.family == "gat":
            kernels += 20 * num_layers
        launch_seconds = kernels * self.kernel_launch_seconds

        attention_seconds = workload.attention_ops * self.attention_seconds_per_op
        sampling_seconds = workload.sampling_ops * self.sampling_seconds_per_edge

        compute_seconds = max(gemm_seconds + aggregation_seconds, memory_seconds)
        return compute_seconds + launch_seconds + attention_seconds + sampling_seconds
