"""Cache policy definitions and result records for Aggregation caching.

GNNIE's graph-specific caching (paper, Section VI) keeps a set of vertices —
the densest first — resident in the input buffer, processes the edges of the
induced subgraph, and evicts vertices whose unprocessed-edge counter α has
fallen below the threshold γ, replacing them with the next vertices of the
descending-degree DRAM stream.  All DRAM fetches are sequential; every
random access is confined to the on-chip buffer.

This module holds the policy/record dataclasses; the simulation loop lives in
:mod:`repro.cache.controller`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cache.hierarchy import HierarchyResult
    from repro.cache.trace import VertexAccessTrace

__all__ = ["CachePolicyConfig", "IterationRecord", "CacheSimulationResult"]


@dataclass(frozen=True)
class CachePolicyConfig:
    """Parameters of the degree-aware caching policy.

    Attributes:
        capacity_vertices: Vertices that fit in the input buffer (derived
            from the buffer capacity and the per-vertex record size).
        gamma: Eviction threshold on the unprocessed-edge counter α; the
            paper uses a static γ = 5.
        replacement_count: Number of vertices replaced per iteration (r).
        degree_ordered: Whether vertices are streamed in descending degree
            order (GNNIE) or in raw vertex-id order (the ablation baseline).
        max_iterations: Safety bound on the number of iterations simulated.
    """

    capacity_vertices: int
    gamma: int = 5
    replacement_count: int | None = None
    degree_ordered: bool = True
    max_iterations: int = 2_000_000

    def __post_init__(self) -> None:
        if self.capacity_vertices <= 0:
            raise ValueError("capacity_vertices must be positive")
        if self.gamma < 0:
            raise ValueError("gamma must be non-negative")
        if self.replacement_count is not None and self.replacement_count <= 0:
            raise ValueError("replacement_count must be positive when given")

    @property
    def effective_replacement_count(self) -> int:
        """r; defaults to one eighth of the buffer capacity."""
        if self.replacement_count is not None:
            return self.replacement_count
        return max(1, self.capacity_vertices // 8)


@dataclass(frozen=True)
class IterationRecord:
    """What happened in one cached-subgraph iteration."""

    iteration: int
    round_index: int
    edges_processed: int
    max_edges_per_vertex: int
    vertices_fetched: int
    resident_vertices: int
    evicted_vertices: int


@dataclass
class CacheSimulationResult:
    """Aggregate outcome of simulating the caching policy on one graph."""

    iterations: list[IterationRecord] = field(default_factory=list)
    num_rounds: int = 0
    total_edges_processed: int = 0
    vertex_fetches: int = 0
    sequential_fetch_bytes: int = 0
    random_accesses: int = 0
    random_access_bytes: int = 0
    alpha_writeback_bytes: int = 0
    deadlock_events: int = 0
    #: Snapshot of the α values of all not-yet-finished vertices at the end
    #: of each round (Fig. 10 histograms).
    alpha_round_snapshots: list[np.ndarray] = field(default_factory=list)
    #: Miss/eviction trace of the run (only collected when requested, e.g.
    #: when a miss-path hierarchy is configured).
    trace: "VertexAccessTrace | None" = None
    #: Outcome of filtering ``trace`` through the miss-path hierarchy.
    miss_path: "HierarchyResult | None" = None

    @property
    def num_iterations(self) -> int:
        return len(self.iterations)

    @property
    def random_accesses_avoided(self) -> int:
        """Random accesses recovered on chip by the miss-path hierarchy."""
        return self.miss_path.random_accesses_avoided if self.miss_path else 0

    @property
    def random_bytes_avoided(self) -> int:
        return self.miss_path.random_bytes_avoided if self.miss_path else 0

    @property
    def net_random_accesses(self) -> int:
        """Random DRAM accesses that survive the miss-path hierarchy."""
        return max(0, self.random_accesses - self.random_accesses_avoided)

    @property
    def net_random_access_bytes(self) -> int:
        return max(0, self.random_access_bytes - self.random_bytes_avoided)

    @property
    def total_dram_accesses(self) -> int:
        """Vertex fetches plus net random accesses (the Fig. 11 y-axis).

        Without a miss-path hierarchy the net equals the gross count, so the
        seed semantics are unchanged; with one attached this stays
        consistent with the phase model, which also charges net traffic.
        """
        return self.vertex_fetches + self.net_random_accesses

    @property
    def total_dram_bytes(self) -> int:
        prefetch = self.miss_path.sequential_prefetch_bytes if self.miss_path else 0
        return (
            self.sequential_fetch_bytes
            + self.net_random_access_bytes
            + prefetch
            + self.alpha_writeback_bytes
        )

    def edges_per_iteration(self) -> np.ndarray:
        return np.asarray([record.edges_processed for record in self.iterations], dtype=np.int64)
