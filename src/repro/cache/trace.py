"""Vertex access/eviction traces emitted by the cache-policy simulators.

The miss-path hierarchy (:mod:`repro.cache.hierarchy`) is *trace driven*: the
existing controllers — degree-aware, LRU/MRU, static partition and the
vertex-order baseline — record the chronological sequence of input-buffer
**misses** (neighbor accesses that would go to DRAM as random accesses) and
**evictions** (vertex records leaving the input buffer) while they simulate
the hit path unchanged.  The hierarchy then filters that trace through victim
cache / miss cache / stream buffer structures to determine how many of the
random DRAM accesses a cheap miss-path structure would have recovered,
without perturbing the baseline simulation itself (the same stats-only
augmentation shape as the SimpleScalar DL1 miss-path studies).

A trace also carries the DRAM *layout order* of the vertex stream
(descending-degree for GNNIE's policy, vertex-id order for the baselines),
because stream buffers prefetch along that layout: a miss on a vertex at
layout position ``p`` pulls positions ``p+1 .. p+depth`` into a prefetch
window.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["MISS", "EVICT", "TraceRecorder", "VertexAccessTrace"]

#: Event kinds recorded on the miss path.
MISS: int = 0
EVICT: int = 1


@dataclass(frozen=True)
class VertexAccessTrace:
    """Chronological miss/eviction trace of one cache-policy simulation.

    Attributes:
        kinds: ``int8`` array of event kinds (:data:`MISS` / :data:`EVICT`).
        vertices: Vertex id of each event, aligned with ``kinds``.
        num_vertices: Vertex count of the traced graph.
        stream_positions: Layout position of every vertex in the DRAM vertex
            stream (``stream_positions[v]`` is ``v``'s index in the stream).
        bytes_per_vertex: Size of one vertex record, used to convert
            recovered accesses into recovered bytes.
        policy: Name of the policy that produced the trace.
    """

    kinds: np.ndarray
    vertices: np.ndarray
    num_vertices: int
    stream_positions: np.ndarray
    bytes_per_vertex: int = 256
    policy: str = "unknown"

    def __post_init__(self) -> None:
        kinds = np.asarray(self.kinds, dtype=np.int8)
        vertices = np.asarray(self.vertices, dtype=np.int64)
        if kinds.shape != vertices.shape:
            raise ValueError("kinds and vertices must have equal length")
        positions = np.asarray(self.stream_positions, dtype=np.int64)
        if positions.size != self.num_vertices:
            raise ValueError("stream_positions must cover every vertex")
        object.__setattr__(self, "kinds", kinds)
        object.__setattr__(self, "vertices", vertices)
        object.__setattr__(self, "stream_positions", positions)

    # ------------------------------------------------------------------ #
    # Views
    # ------------------------------------------------------------------ #
    @property
    def num_events(self) -> int:
        return int(self.kinds.size)

    @property
    def num_misses(self) -> int:
        return int(np.count_nonzero(self.kinds == MISS))

    @property
    def num_evictions(self) -> int:
        return int(np.count_nonzero(self.kinds == EVICT))

    def miss_vertices(self) -> np.ndarray:
        """Vertex ids of the misses, in trace order."""
        return self.vertices[self.kinds == MISS]

    def miss_stream_positions(self) -> np.ndarray:
        """DRAM layout positions of the missed vertices, in trace order."""
        return self.stream_positions[self.miss_vertices()]

    def miss_event_indices(self) -> np.ndarray:
        """Indices into the event arrays where the misses sit."""
        return np.flatnonzero(self.kinds == MISS)


@dataclass
class TraceRecorder:
    """Incremental builder used by the simulators while they run.

    Appending to Python lists keeps the per-event overhead negligible on the
    hit path; :meth:`finish` converts to the packed NumPy arrays the
    vectorized mechanism filters consume.
    """

    num_vertices: int
    bytes_per_vertex: int = 256
    policy: str = "unknown"
    #: Layout order of the vertex stream; identity (vertex-id order) when None.
    stream_order: np.ndarray | None = None
    _kinds: list[int] = field(default_factory=list)
    _vertices: list[int] = field(default_factory=list)

    def miss(self, vertex: int) -> None:
        self._kinds.append(MISS)
        self._vertices.append(int(vertex))

    def evict(self, vertex: int) -> None:
        self._kinds.append(EVICT)
        self._vertices.append(int(vertex))

    def evict_many(self, vertices: np.ndarray) -> None:
        self._kinds.extend([EVICT] * len(vertices))
        self._vertices.extend(int(v) for v in vertices)

    def finish(self) -> VertexAccessTrace:
        if self.stream_order is None:
            positions = np.arange(self.num_vertices, dtype=np.int64)
        else:
            order = np.asarray(self.stream_order, dtype=np.int64)
            positions = np.empty(self.num_vertices, dtype=np.int64)
            positions[order] = np.arange(order.size, dtype=np.int64)
        return VertexAccessTrace(
            kinds=np.asarray(self._kinds, dtype=np.int8),
            vertices=np.asarray(self._vertices, dtype=np.int64),
            num_vertices=self.num_vertices,
            stream_positions=positions,
            bytes_per_vertex=self.bytes_per_vertex,
            policy=self.policy,
        )
