"""Configurable miss-path hierarchy behind the input buffer.

:class:`MissPathHierarchy` glues the registered mechanisms
(:mod:`repro.cache.mechanisms`) into one filter: every input-buffer miss in
a :class:`~repro.cache.trace.VertexAccessTrace` probes all configured
structures in parallel, any hit keeps the access on chip, and only the
remaining misses go to DRAM as random accesses.  The outcome is a
:class:`HierarchyResult` with per-mechanism statistics (accesses, hits, hit
rate — the counters the SimpleScalar miss-path studies report) plus the
combined recovered-traffic totals the DRAM and cycle models consume.

The hierarchy is configured either directly via :class:`MissPathConfig` or
from the accelerator-level knobs on
:class:`repro.hw.config.AcceleratorConfig` (``miss_path_mechanisms``,
``victim_cache_entries``, ``miss_cache_entries``, ``stream_buffer_count``,
``stream_buffer_depth``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cache.mechanisms import (
    MechanismStats,
    MissPathMechanism,
    build_mechanism,
    mechanism_names,
)
from repro.cache.trace import VertexAccessTrace

__all__ = ["MissPathConfig", "HierarchyResult", "MissPathHierarchy"]


@dataclass(frozen=True)
class MissPathConfig:
    """Sizing of the miss-path structures.

    Attributes:
        mechanisms: Registry names of the enabled structures, probed in
            parallel on every input-buffer miss.
        victim_entries: Fully associative victim cache capacity (records).
        miss_entries: Tag-only miss cache capacity (tags).
        stream_buffers: Number of stream buffers.
        stream_depth: Prefetch window length of each stream buffer.
    """

    mechanisms: tuple[str, ...] = ()
    victim_entries: int = 64
    #: Tag-only, so a tag store larger than the input buffer's vertex
    #: capacity is still cheap (4-byte tags vs ~256-byte records) — and it
    #: must be larger for reuse to land: a vertex can only re-miss after
    #: ~capacity admissions have evicted it from the input buffer.
    miss_entries: int = 4096
    stream_buffers: int = 4
    stream_depth: int = 16

    def __post_init__(self) -> None:
        unknown = set(self.mechanisms) - set(mechanism_names())
        if unknown:
            raise ValueError(
                f"unknown miss-path mechanisms {sorted(unknown)}; "
                f"known: {sorted(mechanism_names())}"
            )
        if self.victim_entries <= 0 or self.miss_entries <= 0:
            raise ValueError("victim/miss cache capacities must be positive")
        if self.stream_buffers <= 0 or self.stream_depth <= 0:
            raise ValueError("stream buffer count and depth must be positive")

    @property
    def enabled(self) -> bool:
        return bool(self.mechanisms)

    def mechanism_kwargs(self, name: str) -> dict[str, int]:
        """Constructor arguments for one registered mechanism."""
        return {
            "victim": {"entries": self.victim_entries},
            "miss": {"entries": self.miss_entries},
            "stream": {"count": self.stream_buffers, "depth": self.stream_depth},
        }.get(name, {})

    @classmethod
    def from_accelerator_config(cls, config) -> "MissPathConfig":
        """Lift the ``AcceleratorConfig`` miss-path knobs into this record."""
        return cls(
            mechanisms=tuple(config.miss_path_mechanisms),
            victim_entries=config.victim_cache_entries,
            miss_entries=config.miss_cache_entries,
            stream_buffers=config.stream_buffer_count,
            stream_depth=config.stream_buffer_depth,
        )


@dataclass
class HierarchyResult:
    """What the miss-path hierarchy recovered from one trace."""

    mechanisms: list[MechanismStats] = field(default_factory=list)
    total_misses: int = 0
    resolved: int = 0
    #: Subset of ``resolved`` served only by DRAM-filling structures (stream
    #: buffers): the random access is avoided, but the record's bytes were
    #: still fetched from DRAM — as sequential prefetch traffic.
    prefetch_resolved: int = 0
    #: Total records the DRAM-filling structures streamed in, consumed or
    #: not (stream-buffer allocations fetch ``depth`` records each).  This
    #: is reported, not charged: the cycle model charges only the consumed
    #: prefetches (``sequential_prefetch_bytes``), i.e. it assumes an ideal
    #: bypass that cancels unconsumed fills — compare this number against
    #: ``prefetch_resolved`` to see how optimistic that is per workload.
    prefetch_fill_records: int = 0
    bytes_per_vertex: int = 256
    policy: str = "unknown"

    @property
    def dram_random_accesses(self) -> int:
        """Misses that still reach DRAM after the hierarchy."""
        return self.total_misses - self.resolved

    @property
    def random_accesses_avoided(self) -> int:
        return self.resolved

    @property
    def random_bytes_avoided(self) -> int:
        return self.resolved * self.bytes_per_vertex

    @property
    def sequential_prefetch_bytes(self) -> int:
        """Bytes the stream buffers streamed from DRAM to serve their hits."""
        return self.prefetch_resolved * self.bytes_per_vertex

    @property
    def hit_rate(self) -> float:
        return self.resolved / self.total_misses if self.total_misses else 0.0

    def rows(self) -> list[dict[str, object]]:
        """Per-mechanism table rows plus the combined hierarchy row."""
        rows = [stats.as_row() for stats in self.mechanisms]
        if len(self.mechanisms) > 1:
            rows.append(
                {
                    "mechanism": "+".join(stats.name for stats in self.mechanisms),
                    "accesses": self.total_misses,
                    "hits": self.resolved,
                    "hit_rate_pct": round(100.0 * self.hit_rate, 2),
                    "dram_random_avoided": self.resolved,
                }
            )
        return rows


class MissPathHierarchy:
    """Parallel-probe composition of the configured miss-path mechanisms."""

    def __init__(self, config: MissPathConfig) -> None:
        self.config = config
        self.mechanisms: list[MissPathMechanism] = [
            build_mechanism(name, **config.mechanism_kwargs(name))
            for name in config.mechanisms
        ]

    @classmethod
    def from_accelerator_config(cls, config) -> "MissPathHierarchy":
        return cls(MissPathConfig.from_accelerator_config(config))

    def filter(self, trace: VertexAccessTrace, *, metrics=None) -> HierarchyResult:
        """Run every miss of ``trace`` through the hierarchy.

        Per-mechanism stats count each structure's own hits (parallel
        probing, so the same miss may hit several structures); the combined
        ``resolved`` count is the union — each such miss costs zero DRAM
        random accesses regardless of how many structures held it.

        ``metrics`` is an optional :class:`repro.obs.MetricsRegistry`; when
        given (and enabled), the trace's input-buffer misses/evictions and
        every mechanism's probe/hit counters are recorded under
        ``cache.input_buffer.*`` / ``cache.miss_path.*``.
        """
        result = HierarchyResult(
            total_misses=trace.num_misses,
            bytes_per_vertex=trace.bytes_per_vertex,
            policy=trace.policy,
        )
        resolved = np.zeros(trace.num_misses, dtype=bool)
        on_chip = np.zeros(trace.num_misses, dtype=bool)
        for mechanism in self.mechanisms:
            mask = mechanism.hit_mask(trace)
            resolved |= mask
            if not getattr(mechanism, "serves_from_dram", False):
                # A parallel hit in an on-chip structure serves the data
                # without DRAM, even if a stream buffer also held it.
                on_chip |= mask
            else:
                result.prefetch_fill_records += mechanism.dram_fill_records(mask)
            result.mechanisms.append(
                MechanismStats(
                    name=mechanism.name, accesses=int(mask.size), hits=int(mask.sum())
                )
            )
        result.resolved = int(resolved.sum())
        result.prefetch_resolved = int((resolved & ~on_chip).sum())
        if metrics is not None and metrics.enabled:
            metrics.counter("cache.input_buffer.misses", policy=trace.policy).inc(
                trace.num_misses
            )
            metrics.counter("cache.input_buffer.evictions", policy=trace.policy).inc(
                trace.num_evictions
            )
            for stats in result.mechanisms:
                metrics.counter("cache.miss_path.accesses", mechanism=stats.name).inc(
                    stats.accesses
                )
                metrics.counter("cache.miss_path.hits", mechanism=stats.name).inc(
                    stats.hits
                )
            metrics.counter("cache.miss_path.resolved").inc(result.resolved)
            metrics.counter("cache.miss_path.dram_random").inc(
                result.dram_random_accesses
            )
        return result
