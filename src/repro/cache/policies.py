"""Alternative cache policies for comparison with GNNIE's degree-aware scheme.

The related-work discussion (Section VII) contrasts GNNIE's dynamic,
unprocessed-edge-count ("future potential") policy against history-based
schemes such as GRASP's most-recently-used management and against static
frequency/partition-based approaches.  To make those comparisons concrete —
and to let users quantify how much of the benefit comes from degree ordering
versus from the α/γ mechanism — this module simulates Aggregation's vertex
residency under three classic policies:

* :func:`simulate_lru_policy` — least-recently-used eviction over the vertex
  working set induced by processing vertices in id order,
* :func:`simulate_mru_policy` — most-recently-used eviction (GRASP-like
  thrash protection),
* :func:`simulate_static_partition_policy` — a static degree-based partition:
  the top-capacity vertices by degree are pinned in the buffer and every
  other vertex streams through a single slot.

All three return a :class:`~repro.cache.policy.CacheSimulationResult`, so
they plug into the same Aggregation cycle model and benchmarks as the
degree-aware controller.
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

from repro.cache.policy import CacheSimulationResult, IterationRecord
from repro.cache.trace import TraceRecorder
from repro.graph.csr import CSRGraph

__all__ = [
    "simulate_lru_policy",
    "simulate_mru_policy",
    "simulate_static_partition_policy",
    "compare_cache_policies",
]


def _edge_walk_with_buffer(
    adjacency: CSRGraph,
    capacity: int,
    bytes_per_vertex: int,
    *,
    eviction: str,
    pinned: np.ndarray | None = None,
    collect_trace: bool = False,
    policy_name: str | None = None,
) -> CacheSimulationResult:
    """Process vertices in id order with an LRU/MRU-managed buffer.

    Every neighbor access that misses the buffer costs one random DRAM
    access; pinned vertices (static partition) never leave the buffer and do
    not occupy the replaceable capacity.  With ``collect_trace`` the
    miss/eviction sequence is recorded on ``result.trace`` so the miss-path
    hierarchy can filter it.
    """
    if capacity <= 0:
        raise ValueError("capacity must be positive")
    result = CacheSimulationResult()
    recorder = (
        TraceRecorder(
            num_vertices=adjacency.num_vertices,
            bytes_per_vertex=bytes_per_vertex,
            policy=policy_name or eviction,
        )
        if collect_trace
        else None
    )
    pinned_set = set(int(v) for v in pinned) if pinned is not None else set()
    replaceable_capacity = max(1, capacity - len(pinned_set))
    buffer: OrderedDict[int, None] = OrderedDict()
    undirected_edges = 0

    def admit(vertex: int) -> None:
        if vertex in pinned_set:
            return
        if vertex in buffer:
            buffer.move_to_end(vertex)
            return
        if len(buffer) >= replaceable_capacity:
            if eviction == "lru":
                evicted, _ = buffer.popitem(last=False)
            else:  # mru
                evicted, _ = buffer.popitem(last=True)
            if recorder is not None:
                recorder.evict(evicted)
        buffer[vertex] = None

    for vertex in range(adjacency.num_vertices):
        result.vertex_fetches += 1
        result.sequential_fetch_bytes += bytes_per_vertex
        admit(vertex)
        for neighbor in adjacency.neighbors(vertex):
            neighbor = int(neighbor)
            if neighbor > vertex:
                undirected_edges += 1
            if neighbor in pinned_set or neighbor in buffer:
                if neighbor in buffer:
                    buffer.move_to_end(neighbor)
                continue
            result.random_accesses += 1
            result.random_access_bytes += bytes_per_vertex
            if recorder is not None:
                recorder.miss(neighbor)
            admit(neighbor)

    result.num_rounds = 1
    result.total_edges_processed = undirected_edges
    result.iterations.append(
        IterationRecord(
            iteration=1,
            round_index=1,
            edges_processed=undirected_edges,
            max_edges_per_vertex=int(adjacency.max_degree()),
            vertices_fetched=adjacency.num_vertices,
            resident_vertices=min(capacity, adjacency.num_vertices),
            evicted_vertices=0,
        )
    )
    if recorder is not None:
        result.trace = recorder.finish()
    return result


def simulate_lru_policy(
    adjacency: CSRGraph,
    capacity_vertices: int,
    *,
    bytes_per_vertex: int = 256,
    collect_trace: bool = False,
) -> CacheSimulationResult:
    """Least-recently-used vertex buffer, id-order processing."""
    return _edge_walk_with_buffer(
        adjacency,
        capacity_vertices,
        bytes_per_vertex,
        eviction="lru",
        collect_trace=collect_trace,
    )


def simulate_mru_policy(
    adjacency: CSRGraph,
    capacity_vertices: int,
    *,
    bytes_per_vertex: int = 256,
    collect_trace: bool = False,
) -> CacheSimulationResult:
    """Most-recently-used eviction (GRASP-style thrash protection)."""
    return _edge_walk_with_buffer(
        adjacency,
        capacity_vertices,
        bytes_per_vertex,
        eviction="mru",
        collect_trace=collect_trace,
    )


def simulate_static_partition_policy(
    adjacency: CSRGraph,
    capacity_vertices: int,
    *,
    bytes_per_vertex: int = 256,
    collect_trace: bool = False,
) -> CacheSimulationResult:
    """Pin the highest-degree vertices; stream the rest through one slot.

    This is the static analogue of GNNIE's policy: it also favors hubs but
    cannot adapt as their edges get used up, so low-degree-to-low-degree
    edges still miss.
    """
    if capacity_vertices <= 0:
        raise ValueError("capacity must be positive")
    degrees = adjacency.degrees()
    pinned_count = max(1, capacity_vertices - 1)
    pinned = np.argsort(-degrees, kind="stable")[:pinned_count]
    return _edge_walk_with_buffer(
        adjacency,
        capacity_vertices,
        bytes_per_vertex,
        eviction="lru",
        pinned=pinned,
        collect_trace=collect_trace,
        policy_name="static_partition",
    )


def compare_cache_policies(
    adjacency: CSRGraph,
    capacity_vertices: int,
    *,
    bytes_per_vertex: int = 256,
    gamma: int = 5,
) -> dict[str, CacheSimulationResult]:
    """Run GNNIE's policy and the three alternatives on the same graph.

    Returns a mapping from policy name to its simulation result; the
    degree-aware policy is the only one with zero random DRAM accesses.
    """
    from repro.cache.controller import DegreeAwareCacheController
    from repro.cache.policy import CachePolicyConfig

    controller = DegreeAwareCacheController(
        adjacency,
        CachePolicyConfig(capacity_vertices=capacity_vertices, gamma=gamma),
        bytes_per_vertex=bytes_per_vertex,
    )
    return {
        "degree_aware": controller.run(),
        "lru": simulate_lru_policy(adjacency, capacity_vertices, bytes_per_vertex=bytes_per_vertex),
        "mru": simulate_mru_policy(adjacency, capacity_vertices, bytes_per_vertex=bytes_per_vertex),
        "static_partition": simulate_static_partition_policy(
            adjacency, capacity_vertices, bytes_per_vertex=bytes_per_vertex
        ),
    }
