"""Graph-specific, degree-aware caching for Aggregation (paper, Section VI)."""

from repro.cache.controller import (
    DegreeAwareCacheController,
    simulate_vertex_order_baseline,
    vertex_record_bytes,
)
from repro.cache.policies import (
    compare_cache_policies,
    simulate_lru_policy,
    simulate_mru_policy,
    simulate_static_partition_policy,
)
from repro.cache.policy import CachePolicyConfig, CacheSimulationResult, IterationRecord

__all__ = [
    "CachePolicyConfig",
    "CacheSimulationResult",
    "IterationRecord",
    "DegreeAwareCacheController",
    "simulate_vertex_order_baseline",
    "vertex_record_bytes",
    "compare_cache_policies",
    "simulate_lru_policy",
    "simulate_mru_policy",
    "simulate_static_partition_policy",
]
