"""Graph-specific, degree-aware caching for Aggregation (paper, Section VI).

Besides the hit-path policy simulators (degree-aware controller, LRU/MRU,
static partition and the vertex-order baseline), the package now contains a
trace-driven **miss-path hierarchy**: the policy simulators can emit a
miss/eviction trace (:mod:`repro.cache.trace`), which a configurable set of
classic hardware structures — victim cache, miss cache, stream buffers
(:mod:`repro.cache.mechanisms`) — filters before DRAM
(:mod:`repro.cache.hierarchy`).  Mechanisms are pluggable through
:data:`MECHANISM_REGISTRY` / :func:`register_mechanism`.
"""

from repro.cache.controller import (
    DegreeAwareCacheController,
    simulate_vertex_order_baseline,
    vertex_record_bytes,
)
from repro.cache.hierarchy import HierarchyResult, MissPathConfig, MissPathHierarchy
from repro.cache.mechanisms import (
    MECHANISM_REGISTRY,
    MechanismStats,
    MissCache,
    MissPathMechanism,
    StreamBufferArray,
    VictimCache,
    build_mechanism,
    mechanism_names,
    register_mechanism,
)
from repro.cache.policies import (
    compare_cache_policies,
    simulate_lru_policy,
    simulate_mru_policy,
    simulate_static_partition_policy,
)
from repro.cache.policy import CachePolicyConfig, CacheSimulationResult, IterationRecord
from repro.cache.trace import EVICT, MISS, TraceRecorder, VertexAccessTrace

__all__ = [
    "CachePolicyConfig",
    "CacheSimulationResult",
    "IterationRecord",
    "DegreeAwareCacheController",
    "simulate_vertex_order_baseline",
    "vertex_record_bytes",
    "compare_cache_policies",
    "simulate_lru_policy",
    "simulate_mru_policy",
    "simulate_static_partition_policy",
    # Miss-path trace
    "MISS",
    "EVICT",
    "TraceRecorder",
    "VertexAccessTrace",
    # Miss-path mechanisms + registry
    "MechanismStats",
    "MissPathMechanism",
    "VictimCache",
    "MissCache",
    "StreamBufferArray",
    "MECHANISM_REGISTRY",
    "register_mechanism",
    "mechanism_names",
    "build_mechanism",
    # Hierarchy
    "MissPathConfig",
    "HierarchyResult",
    "MissPathHierarchy",
]
