"""Classic miss-path cache mechanisms, evaluated over a vertex access trace.

Three structures from the hardware-caching literature are modeled behind the
input buffer (the shape of the SimpleScalar DL1 miss-path studies: baseline
hit path untouched, miss path augmented with stats-only structures):

* :class:`VictimCache` — a small fully associative buffer holding recently
  *evicted* vertex records.  Probed on a miss; a hit swaps the record back
  into the input buffer, so DRAM is not accessed.
* :class:`MissCache` — a tag-only structure remembering recent miss
  addresses; it captures short-term miss reuse (a vertex missed twice in
  quick succession is served the second time without DRAM).
* :class:`StreamBufferArray` — ``count`` buffers that prefetch the next
  ``depth`` vertex records of the sequential DRAM vertex stream after each
  miss.  Because the stream layout is known (descending degree for GNNIE,
  vertex-id order for the baselines), a hit is a vectorized membership test
  of the missed vertex's layout position against all active prefetch
  windows at once.

Each mechanism consumes a :class:`~repro.cache.trace.VertexAccessTrace` and
returns a boolean hit mask over the trace's misses; mechanisms are probed in
parallel on a miss (the classic arrangement), so combined configurations
(VC+SB, MC+SB, …) compose by taking the union of the masks —
:meth:`repro.cache.hierarchy.MissPathHierarchy.filter` is the one place
that union is computed.

New mechanisms plug in through :func:`register_mechanism`; the registry keys
are the names accepted by ``AcceleratorConfig.miss_path_mechanisms`` and by
the ``repro cache --mechanism`` CLI option.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Type

import numpy as np

from repro.cache.trace import EVICT, MISS, VertexAccessTrace

__all__ = [
    "MechanismStats",
    "MissPathMechanism",
    "VictimCache",
    "MissCache",
    "StreamBufferArray",
    "MECHANISM_REGISTRY",
    "register_mechanism",
    "mechanism_names",
    "build_mechanism",
]


@dataclass(frozen=True)
class MechanismStats:
    """Per-mechanism counters (the snippet-1 statistics triple)."""

    name: str
    accesses: int
    hits: int

    @property
    def misses(self) -> int:
        return self.accesses - self.hits

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    def as_row(self) -> dict[str, object]:
        """Row for :func:`repro.analysis.format_table`."""
        return {
            "mechanism": self.name,
            "accesses": self.accesses,
            "hits": self.hits,
            "hit_rate_pct": round(100.0 * self.hit_rate, 2),
            "dram_random_avoided": self.hits,
        }


class MissPathMechanism:
    """Interface of one miss-path structure.

    Subclasses implement :meth:`hit_mask`, returning a boolean array aligned
    with ``trace.miss_vertices()`` that marks the misses this structure
    resolves on its own.  They must not mutate the trace: the base
    simulation's behavior is fixed, only the destination of each miss
    (structure vs. DRAM) is decided here.
    """

    #: Registry key; set by :func:`register_mechanism`.
    name: str = "abstract"
    #: True when a hit is serviced by data this structure fetched from DRAM
    #: (stream-buffer prefetch): the hit avoids a *random* access but its
    #: bytes must still be charged as sequential DRAM traffic.  False when
    #: hits are genuinely on chip (victim/miss cache).
    serves_from_dram: bool = False

    def hit_mask(self, trace: VertexAccessTrace) -> np.ndarray:
        raise NotImplementedError

    def dram_fill_records(self, hit_mask: np.ndarray) -> int:
        """Records this structure fetched from DRAM while serving the trace.

        Zero for on-chip structures; DRAM-filling structures (stream
        buffers) report their full fill traffic — consumed *and* wasted
        prefetches — so ablations can see the bandwidth the mechanism
        burns, not just the hits it lands.
        """
        return 0


MECHANISM_REGISTRY: dict[str, Type[MissPathMechanism]] = {}


def register_mechanism(name: str) -> Callable[[Type[MissPathMechanism]], Type[MissPathMechanism]]:
    """Class decorator adding a mechanism to the registry under ``name``."""

    def deco(cls: Type[MissPathMechanism]) -> Type[MissPathMechanism]:
        cls.name = name
        MECHANISM_REGISTRY[name] = cls
        return cls

    return deco


def mechanism_names() -> tuple[str, ...]:
    return tuple(sorted(MECHANISM_REGISTRY))


def build_mechanism(name: str, **kwargs: object) -> MissPathMechanism:
    """Instantiate a registered mechanism by name."""
    try:
        cls = MECHANISM_REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown miss-path mechanism {name!r}; known: {sorted(MECHANISM_REGISTRY)}"
        ) from None
    return cls(**kwargs)  # type: ignore[call-arg]


@register_mechanism("victim")
class VictimCache(MissPathMechanism):
    """Fully associative LRU buffer of the last ``entries`` evicted records.

    Evictions fill it; a miss that finds its vertex here is served by a
    swap-back instead of DRAM (the swapped-back record leaves the victim
    cache).  The walk is inherently sequential — every event permutes the
    LRU state — so this filter is the one intentional Python loop on the
    miss path; victim caches are small (8–64 entries) and traces are a few
    tens of thousands of events, so it stays cheap.
    """

    def __init__(self, entries: int = 16) -> None:
        if entries <= 0:
            raise ValueError("victim cache needs at least one entry")
        self.entries = int(entries)

    def hit_mask(self, trace: VertexAccessTrace) -> np.ndarray:
        kinds = trace.kinds
        vertices = trace.vertices
        hits = np.zeros(trace.num_misses, dtype=bool)
        store: OrderedDict[int, None] = OrderedDict()
        miss_index = 0
        for kind, vertex in zip(kinds, vertices):
            vertex = int(vertex)
            if kind == EVICT:
                if vertex in store:
                    store.move_to_end(vertex)
                else:
                    if len(store) >= self.entries:
                        store.popitem(last=False)
                    store[vertex] = None
            else:  # MISS
                if vertex in store:
                    hits[miss_index] = True
                    del store[vertex]  # swapped back into the input buffer
                miss_index += 1
        return hits


@register_mechanism("miss")
class MissCache(MissPathMechanism):
    """Tag-only LRU cache of the last ``entries`` miss addresses.

    Unlike the victim cache it stores no data — it only detects that the
    same vertex missed again while its tag is still resident, resolving the
    repeat without a second DRAM random access.  Eviction events are
    ignored.  Sequential by construction (LRU state), same cost argument as
    :class:`VictimCache`.
    """

    def __init__(self, entries: int = 32) -> None:
        if entries <= 0:
            raise ValueError("miss cache needs at least one entry")
        self.entries = int(entries)

    def hit_mask(self, trace: VertexAccessTrace) -> np.ndarray:
        misses = trace.miss_vertices()
        hits = np.zeros(misses.size, dtype=bool)
        tags: OrderedDict[int, None] = OrderedDict()
        for index, vertex in enumerate(misses):
            vertex = int(vertex)
            if vertex in tags:
                hits[index] = True
                tags.move_to_end(vertex)
                continue
            if len(tags) >= self.entries:
                tags.popitem(last=False)
            tags[vertex] = None
        return hits


@register_mechanism("stream")
class StreamBufferArray(MissPathMechanism):
    """``count`` stream buffers prefetching ``depth`` records down the stream.

    Classic allocate/slide semantics: each buffer holds a prefetch window
    covering the next ``depth`` layout positions of the DRAM vertex stream
    after its anchor.  An input-buffer miss at layout position ``q`` probes
    all windows at once (the vectorized membership test); a hit slides that
    buffer's anchor forward to ``q`` (the buffer keeps prefetching down its
    stream), a miss allocates the least-recently-used buffer at ``q``.
    Hits never displace other buffers, so ``count`` interleaved sequential
    streams stay covered regardless of how unbalanced their activity is.

    A stream-buffer hit avoids the random DRAM access but is served by data
    the buffer prefetched *from DRAM*, so the hierarchy charges its bytes as
    sequential traffic (``serves_from_dram``).
    """

    serves_from_dram = True

    def __init__(self, count: int = 4, depth: int = 8) -> None:
        if count <= 0:
            raise ValueError("need at least one stream buffer")
        if depth <= 0:
            raise ValueError("stream buffer depth must be positive")
        self.count = int(count)
        self.depth = int(depth)

    def hit_mask(self, trace: VertexAccessTrace) -> np.ndarray:
        positions = trace.miss_stream_positions()
        hits = np.zeros(positions.size, dtype=bool)
        # Window anchors; nothing is covered until a buffer is allocated.
        anchors = np.full(self.count, -(self.depth + 1), dtype=np.int64)
        last_use = np.zeros(self.count, dtype=np.int64)
        for index, position in enumerate(positions):
            delta = position - anchors
            in_window = (delta > 0) & (delta <= self.depth)
            if in_window.any():
                buffer_id = int(np.argmax(in_window))
                hits[index] = True
            else:
                buffer_id = int(np.argmin(last_use))
            anchors[buffer_id] = position
            last_use[buffer_id] = index + 1
        return hits

    def dram_fill_records(self, hit_mask: np.ndarray) -> int:
        """Fill traffic: ``depth`` records per allocation plus one per slide.

        Every miss that hits no window allocates a buffer (a ``depth``-deep
        prefetch), and every hit slides its window one record forward; on a
        low-locality trace most of the allocated records go unused, which is
        the real bandwidth cost of stream buffers that hit counts alone
        hide.
        """
        hits = int(hit_mask.sum())
        allocations = int(hit_mask.size) - hits
        return allocations * self.depth + hits
