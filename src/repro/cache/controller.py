"""Cache controller simulation for edge-based Aggregation (paper, Section VI).

Two simulators are provided:

* :class:`DegreeAwareCacheController` — GNNIE's policy.  Vertices are laid
  out in DRAM in descending degree order and streamed sequentially into the
  input buffer; each iteration processes the unprocessed edges of the
  resident subgraph, decrements the per-vertex unprocessed-edge counter α,
  evicts up to ``r`` vertices whose α dropped below γ, and fetches the next
  vertices of the stream.  When the stream is exhausted a *Round* ends; a
  new Round re-streams the still-unfinished vertices.  Every DRAM access is
  sequential.
* :func:`simulate_vertex_order_baseline` — the ablation baseline ("no
  graph-specific caching: vertices are processed in order of ID").  Vertices
  are walked in id order and each neighbor that is not resident in a
  FIFO-managed buffer is fetched with a *random* DRAM access — the traffic
  GNNIE's policy is designed to eliminate.

Both return a :class:`~repro.cache.policy.CacheSimulationResult`, which the
Aggregation cycle model and the Fig. 10/11/18 benchmarks consume.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.cache.policy import CachePolicyConfig, CacheSimulationResult, IterationRecord
from repro.cache.trace import TraceRecorder
from repro.graph.csr import CSRGraph

__all__ = [
    "DegreeAwareCacheController",
    "UndirectedEdgeIndex",
    "simulate_vertex_order_baseline",
    "vertex_record_bytes",
]


def vertex_record_bytes(
    feature_length: int,
    average_degree: float,
    *,
    bytes_per_value: int = 1,
    index_bytes: int = 4,
) -> int:
    """Bytes of one vertex's record in the input buffer.

    A resident vertex carries its weighted feature vector ηw (``feature_length``
    values), its neighbor list in CSR form (``average_degree`` indices on
    average), and the α counter plus the CSR offset (two words).
    """
    if feature_length <= 0:
        raise ValueError("feature_length must be positive")
    return int(
        feature_length * bytes_per_value + round(average_degree) * index_bytes + 2 * index_bytes
    )


class UndirectedEdgeIndex:
    """Undirected edge list plus per-vertex incidence lists (CSR layout).

    A pure function of the adjacency, so one index can be shared across
    every cache simulation of a graph (the batch execution path builds it
    once per graph via :mod:`repro.sim.batch` and passes it in).
    """

    def __init__(self, adjacency: CSRGraph) -> None:
        directed = adjacency.edge_array()
        mask = directed[:, 0] < directed[:, 1]
        self.edges = directed[mask]
        self.num_edges = int(self.edges.shape[0])
        num_vertices = adjacency.num_vertices
        endpoints = np.concatenate([self.edges[:, 0], self.edges[:, 1]])
        others = np.concatenate([self.edges[:, 1], self.edges[:, 0]])
        edge_ids = np.concatenate([np.arange(self.num_edges)] * 2)
        order = np.argsort(endpoints, kind="stable")
        self._sorted_edge_ids = edge_ids[order]
        #: Opposite endpoint of each incidence slot, aligned with
        #: ``_sorted_edge_ids`` — lets :meth:`incident_edges_once` decide
        #: which endpoint "owns" an edge without a sort-based dedup.
        self._sorted_other = others[order]
        counts = np.bincount(endpoints, minlength=num_vertices)
        self.indptr = np.concatenate([[0], np.cumsum(counts)]).astype(np.int64)
        self.degrees = counts.astype(np.int64)
        self.num_vertices = int(num_vertices)

    def incident_edges(self, vertices: np.ndarray) -> np.ndarray:
        """Edge ids incident to any of ``vertices`` (with duplicates removed).

        The per-vertex incidence slices form a ragged gather; instead of
        materializing one array per vertex and concatenating, the slice
        offsets are expanded into a single flat index vector (the classic
        ``repeat``-of-starts plus intra-slice ramp) and applied in one go.
        """
        if vertices.size == 0:
            return np.empty(0, dtype=np.int64)
        starts = self.indptr[vertices]
        counts = self.indptr[vertices + 1] - starts
        total = int(counts.sum())
        if total == 0:
            return np.empty(0, dtype=np.int64)
        ends = counts.cumsum()
        flat = np.arange(total, dtype=np.int64) + np.repeat(starts - (ends - counts), counts)
        return np.unique(self._sorted_edge_ids[flat])

    def incident_edges_once(
        self, vertices: np.ndarray, member_mask: np.ndarray
    ) -> np.ndarray:
        """Edge ids incident to ``vertices``, each listed exactly once.

        ``vertices`` must be duplicate-free and ``member_mask`` a boolean
        vertex array that is True exactly on ``vertices``.  An edge joining
        two member vertices appears in both incidence slices; it is kept only
        from its lower-numbered endpoint, which removes duplicates with O(n)
        masking instead of the O(n log n) sort inside ``np.unique`` — the
        dominant cost of large cache simulations.  Unlike
        :meth:`incident_edges` the result is *unordered*; callers must be
        order-independent.
        """
        if vertices.size == 0:
            return np.empty(0, dtype=np.int64)
        starts = self.indptr[vertices]
        counts = self.indptr[vertices + 1] - starts
        total = int(counts.sum())
        if total == 0:
            return np.empty(0, dtype=np.int64)
        ends = counts.cumsum()
        flat = np.arange(total, dtype=np.int64) + np.repeat(starts - (ends - counts), counts)
        others = self._sorted_other[flat]
        owners = np.repeat(vertices, counts)
        keep = ~member_mask[others] | (owners < others)
        return self._sorted_edge_ids[flat[keep]]


class DegreeAwareCacheController:
    """Simulates GNNIE's degree-aware caching policy on one graph."""

    def __init__(
        self,
        adjacency: CSRGraph,
        policy: CachePolicyConfig,
        *,
        bytes_per_vertex: int = 256,
        index_bytes: int = 4,
        edge_index: UndirectedEdgeIndex | None = None,
    ) -> None:
        self.adjacency = adjacency
        self.policy = policy
        self.bytes_per_vertex = int(bytes_per_vertex)
        self.index_bytes = int(index_bytes)
        # An edge index is a pure function of the adjacency; callers running
        # many simulations of one graph (buffer/γ sweeps) pass a shared one.
        self._edge_index = edge_index if edge_index is not None else UndirectedEdgeIndex(adjacency)
        if policy.degree_ordered:
            degrees = adjacency.degrees()
            vertex_ids = np.arange(adjacency.num_vertices)
            self.stream_order = np.lexsort((vertex_ids, -degrees)).astype(np.int64)
        else:
            self.stream_order = np.arange(adjacency.num_vertices, dtype=np.int64)

    # ------------------------------------------------------------------ #
    # Simulation
    # ------------------------------------------------------------------ #
    def run(self, *, collect_trace: bool = False) -> CacheSimulationResult:
        """Run Aggregation caching until every edge has been processed.

        With ``collect_trace`` the eviction sequence is recorded so the
        miss-path hierarchy can evaluate victim-cache occupancy; the policy
        itself produces no input-buffer misses (every fetch is sequential),
        so the trace contains no MISS events and the hierarchy recovers
        nothing — which is exactly the invariant the miss-path ablation
        asserts.
        """
        recorder = (
            TraceRecorder(
                num_vertices=self.adjacency.num_vertices,
                bytes_per_vertex=self.bytes_per_vertex,
                policy="degree_aware",
                stream_order=self.stream_order,
            )
            if collect_trace
            else None
        )
        edge_index = self._edge_index
        num_vertices = self.adjacency.num_vertices
        num_edges = edge_index.num_edges
        policy = self.policy
        capacity = min(policy.capacity_vertices, num_vertices)
        replacement = min(policy.effective_replacement_count, capacity)

        alpha = edge_index.degrees.copy()
        processed = np.zeros(num_edges, dtype=bool)
        resident = np.zeros(num_vertices, dtype=bool)
        result = CacheSimulationResult()
        # The initial α distribution is the (power-law) degree distribution;
        # recording it first lets the Fig. 10 analysis show the flattening
        # relative to the starting point.
        result.alpha_round_snapshots.append(alpha[alpha > 0].copy())
        total_processed = 0
        iteration = 0

        while total_processed < num_edges:
            result.num_rounds += 1
            round_index = result.num_rounds
            resident[:] = False
            stream_position = 0
            fetched, stream_position = self._fetch(
                self.stream_order, stream_position, capacity, alpha, resident
            )
            result.vertex_fetches += fetched.size
            result.sequential_fetch_bytes += fetched.size * self.bytes_per_vertex
            resident[fetched] = True
            newly = fetched
            round_progress = False

            while iteration < policy.max_iterations:
                iteration += 1
                edges_done, max_per_vertex = self._process_new(
                    newly, resident, processed, alpha, edge_index
                )
                total_processed += edges_done
                if edges_done:
                    round_progress = True
                evicted = 0

                stream_exhausted = not self._stream_has_more(
                    self.stream_order, stream_position, alpha
                )
                if not stream_exhausted:
                    evict_ids = self._select_evictions(resident, alpha, replacement)
                    if evict_ids.size == 0:
                        # Deadlock: no vertex satisfies α < γ.  The paper
                        # raises γ dynamically; equivalently we force-evict
                        # the residents with the fewest unprocessed edges.
                        result.deadlock_events += 1
                        evict_ids = self._force_evictions(resident, alpha, replacement)
                    resident[evict_ids] = False
                    evicted = int(evict_ids.size)
                    if recorder is not None:
                        recorder.evict_many(evict_ids)
                    unfinished_evicted = evict_ids[alpha[evict_ids] > 0]
                    result.alpha_writeback_bytes += unfinished_evicted.size * self.index_bytes
                    fetched, stream_position = self._fetch(
                        self.stream_order, stream_position, evicted, alpha, resident
                    )
                    result.vertex_fetches += fetched.size
                    result.sequential_fetch_bytes += fetched.size * self.bytes_per_vertex
                    resident[fetched] = True
                    newly = fetched
                else:
                    newly = np.empty(0, dtype=np.int64)

                result.iterations.append(
                    IterationRecord(
                        iteration=iteration,
                        round_index=round_index,
                        edges_processed=edges_done,
                        max_edges_per_vertex=max_per_vertex,
                        vertices_fetched=int(newly.size),
                        resident_vertices=int(resident.sum()),
                        evicted_vertices=evicted,
                    )
                )
                if stream_exhausted:
                    break
                if newly.size == 0 and edges_done == 0:
                    break

            # End of round: write back α for unfinished residents, snapshot
            # the α distribution (Fig. 10), and check overall progress.
            unfinished_resident = np.flatnonzero(resident & (alpha > 0))
            result.alpha_writeback_bytes += unfinished_resident.size * self.index_bytes
            result.alpha_round_snapshots.append(alpha[alpha > 0].copy())
            if iteration >= policy.max_iterations:
                break
            if not round_progress and total_processed < num_edges:
                # No edge was processed in an entire round: the buffer is so
                # small that the streaming order never co-locates the
                # endpoints of the remaining edges.  Fall back to fetching
                # the endpoints of each remaining edge pairwise (still
                # sequential DRAM reads of two vertex records per edge) so
                # Aggregation always completes.
                total_processed += self._pairwise_fallback(
                    processed, alpha, edge_index, result, round_index
                )
                break

        result.total_edges_processed = total_processed
        if recorder is not None:
            result.trace = recorder.finish()
        return result

    def _pairwise_fallback(
        self,
        processed: np.ndarray,
        alpha: np.ndarray,
        edge_index: UndirectedEdgeIndex,
        result: CacheSimulationResult,
        round_index: int,
    ) -> int:
        """Process every remaining edge by fetching its two endpoints."""
        remaining = np.flatnonzero(~processed)
        if remaining.size == 0:
            return 0
        endpoints = edge_index.edges[remaining]
        processed[remaining] = True
        flattened = np.concatenate([endpoints[:, 0], endpoints[:, 1]])
        np.subtract.at(alpha, flattened, 1)
        result.vertex_fetches += int(2 * remaining.size)
        result.sequential_fetch_bytes += int(2 * remaining.size * self.bytes_per_vertex)
        result.iterations.append(
            IterationRecord(
                iteration=len(result.iterations) + 1,
                round_index=round_index,
                edges_processed=int(remaining.size),
                max_edges_per_vertex=int(np.bincount(flattened).max()),
                vertices_fetched=int(2 * remaining.size),
                resident_vertices=2,
                evicted_vertices=0,
            )
        )
        return int(remaining.size)

    # ------------------------------------------------------------------ #
    # Internal helpers
    # ------------------------------------------------------------------ #
    @staticmethod
    def _fetch(
        order: np.ndarray,
        position: int,
        count: int,
        alpha: np.ndarray,
        resident: np.ndarray,
    ) -> tuple[np.ndarray, int]:
        """Fetch up to ``count`` unfinished, non-resident vertices from the stream."""
        if count <= 0 or position >= order.size:
            return np.empty(0, dtype=np.int64), position
        remaining = order[position:]
        eligible = np.flatnonzero((alpha[remaining] > 0) & ~resident[remaining])
        taken = eligible[:count]
        fetched = remaining[taken].astype(np.int64, copy=False)
        if taken.size < count:
            # The stream ran out before filling the request: every position
            # was consumed, exactly like the scalar scan.
            return fetched, int(order.size)
        return fetched, position + int(taken[-1]) + 1

    @staticmethod
    def _stream_has_more(order: np.ndarray, position: int, alpha: np.ndarray) -> bool:
        remaining = order[position:]
        if remaining.size == 0:
            return False
        return bool(np.any(alpha[remaining] > 0))

    def _process_new(
        self,
        new_vertices: np.ndarray,
        resident: np.ndarray,
        processed: np.ndarray,
        alpha: np.ndarray,
        edge_index: UndirectedEdgeIndex,
    ) -> tuple[int, int]:
        """Process all previously unprocessed edges made resident by ``new_vertices``."""
        if new_vertices.size == 0:
            return 0, 0
        # new_vertices come from _fetch over a stream-order permutation, so
        # they are duplicate-free as incident_edges_once requires.  Every
        # consumer below (boolean masks, subtract.at, bincount) is
        # order-independent, so the unordered candidate list is equivalent
        # to the sorted one.
        member_mask = np.zeros(edge_index.num_vertices, dtype=bool)
        member_mask[new_vertices] = True
        candidates = edge_index.incident_edges_once(new_vertices, member_mask)
        if candidates.size == 0:
            return 0, 0
        candidates = candidates[~processed[candidates]]
        if candidates.size == 0:
            return 0, 0
        endpoints = edge_index.edges[candidates]
        both_resident = resident[endpoints[:, 0]] & resident[endpoints[:, 1]]
        ready = candidates[both_resident]
        if ready.size == 0:
            return 0, 0
        processed[ready] = True
        ready_endpoints = edge_index.edges[ready]
        flattened = np.concatenate([ready_endpoints[:, 0], ready_endpoints[:, 1]])
        np.subtract.at(alpha, flattened, 1)
        per_vertex = np.bincount(flattened)
        return int(ready.size), int(per_vertex.max())

    def _select_evictions(
        self, resident: np.ndarray, alpha: np.ndarray, count: int
    ) -> np.ndarray:
        """Residents with α < γ: finished vertices first, then dictionary order.

        Fully processed vertices (α = 0) occupy buffer space uselessly and
        are always evicted first.  Among the remaining candidates (0 < α < γ)
        the paper replaces up to ``r`` per iteration "using dictionary
        order" — not by smallest α — which is why the choice of γ matters: a
        large γ evicts vertices that still have several unprocessed edges
        and must be refetched in a later Round (the Fig. 11 ablation).
        """
        # flatnonzero yields ascending vertex ids and boolean selection
        # preserves that order, so both slices are already in dictionary
        # order — no sort needed.
        resident_ids = np.flatnonzero(resident)
        resident_alpha = alpha[resident_ids]
        finished = resident_ids[resident_alpha == 0]
        if finished.size >= count:
            return finished[:count]
        candidates = resident_ids[
            (resident_alpha > 0) & (resident_alpha < self.policy.gamma)
        ]
        return np.concatenate([finished, candidates[: count - finished.size]])

    @staticmethod
    def _force_evictions(resident: np.ndarray, alpha: np.ndarray, count: int) -> np.ndarray:
        resident_ids = np.flatnonzero(resident)
        order = np.argsort(alpha[resident_ids], kind="stable")
        return resident_ids[order][:count]


def simulate_vertex_order_baseline(
    adjacency: CSRGraph,
    capacity_vertices: int,
    *,
    bytes_per_vertex: int = 256,
    collect_trace: bool = False,
) -> CacheSimulationResult:
    """Ablation baseline: no degree ordering, no subgraph-confined processing.

    Vertices are processed in raw id order; aggregating vertex ``v`` requires
    the weighted features of all its neighbors, and every neighbor that is
    not currently resident in the FIFO-managed buffer is fetched with a
    random DRAM access.  This is the access pattern whose elimination gives
    the CP bars of Fig. 18.  With ``collect_trace`` the miss/eviction
    sequence is recorded on ``result.trace`` for the miss-path hierarchy.
    """
    if capacity_vertices <= 0:
        raise ValueError("capacity_vertices must be positive")
    result = CacheSimulationResult()
    recorder = (
        TraceRecorder(
            num_vertices=adjacency.num_vertices,
            bytes_per_vertex=bytes_per_vertex,
            policy="vertex_order",
        )
        if collect_trace
        else None
    )
    buffer_fifo: deque[int] = deque()
    buffer_set: set[int] = set()
    num_vertices = adjacency.num_vertices
    undirected_edges = 0
    for vertex in range(num_vertices):
        # The vertex itself streams in sequentially.
        result.vertex_fetches += 1
        result.sequential_fetch_bytes += bytes_per_vertex
        _admit(vertex, buffer_fifo, buffer_set, capacity_vertices, recorder)
        neighbors = adjacency.neighbors(vertex)
        for neighbor in neighbors:
            neighbor = int(neighbor)
            if neighbor > vertex:
                undirected_edges += 1
            if neighbor in buffer_set:
                continue
            result.random_accesses += 1
            result.random_access_bytes += bytes_per_vertex
            if recorder is not None:
                recorder.miss(neighbor)
            _admit(neighbor, buffer_fifo, buffer_set, capacity_vertices, recorder)
    result.num_rounds = 1
    result.total_edges_processed = undirected_edges
    result.iterations.append(
        IterationRecord(
            iteration=1,
            round_index=1,
            edges_processed=undirected_edges,
            max_edges_per_vertex=int(adjacency.max_degree()),
            vertices_fetched=num_vertices,
            resident_vertices=min(capacity_vertices, num_vertices),
            evicted_vertices=0,
        )
    )
    if recorder is not None:
        result.trace = recorder.finish()
    return result


def _admit(
    vertex: int,
    fifo: deque[int],
    members: set[int],
    capacity: int,
    recorder: TraceRecorder | None = None,
) -> None:
    if vertex in members:
        return
    if len(fifo) >= capacity:
        evicted = fifo.popleft()
        members.discard(evicted)
        if recorder is not None:
            recorder.evict(evicted)
    fifo.append(vertex)
    members.add(vertex)
