"""Deterministic, seeded fault injection for the sweep/tune/store stack.

Chaos testing a process-pool fleet needs faults that (a) cross the pickle
boundary into worker processes and (b) replay byte-identically, so every
failure a test provokes can be provoked again.  This package provides both:

* :mod:`repro.faults.plan` — the declarative side.  A
  :class:`~repro.faults.plan.FaultSpec` targets a fault *site* (``"cell"``
  for worker execution, ``"store.append"`` for result-store writes) with a
  subset match over the site's attributes (dataset, family, backend,
  config name, cell key) and says what happens there: ``raise`` an
  :class:`~repro.faults.plan.InjectedFault`, ``hang`` (sleep past the
  supervisor's timeout), ``crash`` the worker process (``os._exit``), or
  tear a store write mid-row (``torn_write``).  A
  :class:`~repro.faults.plan.FaultPlan` bundles specs with a seed and
  round-trips through JSON.
* :mod:`repro.faults.inject` — the activation side.  A plan is *installed*
  into the ``REPRO_FAULTS`` environment variable (inline JSON or a file
  path), which worker processes inherit, so the same plan governs every
  process of a fleet.  :func:`~repro.faults.inject.trip` is the hook the
  instrumented sites call; with no plan installed it costs one dict lookup.

Determinism contract: whether a spec fires is a pure function of
``(plan seed, spec index, site attributes, attempt number)`` — attempts
1..``times`` fire (``times=-1`` fires forever), and sub-1.0 probabilities
are decided by a seeded hash, never a live RNG.  The same plan against the
same sweep therefore produces the same failure sequence on every run.
"""

from repro.faults.inject import (
    ENV_VAR,
    active_plan,
    clear_plan,
    install_plan,
    torn_write_bytes,
    trip,
)
from repro.faults.plan import FAULT_KINDS, FAULT_SITES, FaultPlan, FaultSpec, InjectedFault

__all__ = [
    "ENV_VAR",
    "FAULT_KINDS",
    "FAULT_SITES",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "active_plan",
    "clear_plan",
    "install_plan",
    "torn_write_bytes",
    "trip",
]
