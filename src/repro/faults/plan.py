"""Declarative fault plans: what breaks, where, and for how many attempts.

A :class:`FaultSpec` is one armed fault; a :class:`FaultPlan` is the set of
them plus the seed their probabilistic decisions derive from.  Plans are
plain data — JSON round-trippable, hashable by content — because they must
survive an environment-variable hop into pool worker processes and must
mean exactly the same thing there.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Mapping

__all__ = ["FAULT_KINDS", "FAULT_SITES", "FaultPlan", "FaultSpec", "InjectedFault"]

#: What an armed fault does when it fires.
FAULT_KINDS = ("raise", "hang", "crash", "torn_write")

#: Instrumented sites.  ``cell`` fires inside worker cell execution (scalar
#: and batch paths alike); ``store.append`` fires inside
#: :meth:`repro.sweep.store.ResultStore.append` and is the only site where
#: ``torn_write`` is meaningful.
FAULT_SITES = ("cell", "store.append")

#: Attributes a ``match`` mapping may constrain, per site.
_MATCH_KEYS = {
    "cell": frozenset({"key", "dataset", "family", "backend", "config_name"}),
    "store.append": frozenset({"key"}),
}


class InjectedFault(RuntimeError):
    """Raised at a fault site armed by the active :class:`FaultPlan`.

    Deliberately a distinct type so chaos tests (and the supervisor's
    failure rows) can tell injected failures from genuine bugs.
    """


@dataclass(frozen=True)
class FaultSpec:
    """One armed fault.

    Args:
        site: Where the fault lives (see :data:`FAULT_SITES`).
        kind: What happens when it fires (see :data:`FAULT_KINDS`).
        match: Subset match over the site's attributes — every listed
            attribute must equal the site's value for the spec to apply.
            An empty match applies to every visit of the site.
        times: Fire on attempts ``1..times`` of a matching visit, then go
            quiet (the retry that follows succeeds).  ``-1`` fires forever —
            a permanently poisoned target.
        probability: Chance of firing on an otherwise-firing attempt,
            decided by a seeded hash of (plan seed, spec index, key,
            attempt) — deterministic across runs, never a live RNG.
        hang_seconds: Sleep duration for ``kind="hang"``.  Keep it finite:
            a supervised sweep times the worker out and terminates it, but
            an unsupervised caller would wait this long.
        exit_code: Worker process exit status for ``kind="crash"``.
    """

    site: str = "cell"
    kind: str = "raise"
    match: tuple[tuple[str, object], ...] = field(default_factory=tuple)
    times: int = 1
    probability: float = 1.0
    hang_seconds: float = 60.0
    exit_code: int = 73

    def __post_init__(self) -> None:
        if self.site not in FAULT_SITES:
            raise ValueError(f"unknown fault site {self.site!r}; known: {FAULT_SITES}")
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; known: {FAULT_KINDS}")
        if self.kind == "torn_write" and self.site != "store.append":
            raise ValueError("torn_write faults only apply to the store.append site")
        if isinstance(self.match, Mapping):
            object.__setattr__(self, "match", tuple(sorted(self.match.items())))
        else:
            object.__setattr__(self, "match", tuple(sorted(self.match)))
        unknown = {name for name, _ in self.match} - _MATCH_KEYS[self.site]
        if unknown:
            raise ValueError(
                f"fault match keys {sorted(unknown)} unknown for site "
                f"{self.site!r}; known: {sorted(_MATCH_KEYS[self.site])}"
            )
        if self.times < -1 or self.times == 0:
            raise ValueError("times must be a positive attempt count or -1 (forever)")
        if not 0.0 < self.probability <= 1.0:
            raise ValueError("probability must be in (0, 1]")
        if self.hang_seconds <= 0:
            raise ValueError("hang_seconds must be positive")

    def applies(self, attrs: Mapping[str, object]) -> bool:
        """Whether this spec's match constrains to the given site attributes."""
        return all(attrs.get(name) == value for name, value in self.match)

    def fires(self, *, attempt: int, seed: int, index: int, key: str) -> bool:
        """Deterministic firing decision for one matching visit."""
        if self.times != -1 and attempt > self.times:
            return False
        if self.probability >= 1.0:
            return True
        digest = hashlib.sha256(
            f"{seed}:{index}:{key}:{attempt}".encode()
        ).digest()
        return int.from_bytes(digest[:8], "big") / 2**64 < self.probability

    def as_dict(self) -> dict:
        return {
            "site": self.site,
            "kind": self.kind,
            "match": dict(self.match),
            "times": self.times,
            "probability": self.probability,
            "hang_seconds": self.hang_seconds,
            "exit_code": self.exit_code,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "FaultSpec":
        known = {f for f in cls.__dataclass_fields__}  # noqa: C416 - set of names
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown FaultSpec fields {sorted(unknown)}")
        return cls(**dict(data))


@dataclass(frozen=True)
class FaultPlan:
    """A seeded set of armed faults.

    The seed feeds every spec's probabilistic firing decision; two runs of
    the same plan against the same cells replay the same faults.
    """

    specs: tuple[FaultSpec, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "specs", tuple(self.specs))

    def find(self, site: str, *, attempt: int, **attrs) -> FaultSpec | None:
        """First spec that applies to this site visit and fires this attempt."""
        key = str(attrs.get("key", ""))
        for index, spec in enumerate(self.specs):
            if spec.site != site or not spec.applies(attrs):
                continue
            if spec.fires(attempt=attempt, seed=self.seed, index=index, key=key):
                return spec
        return None

    def to_json(self) -> str:
        return json.dumps(
            {"seed": self.seed, "specs": [spec.as_dict() for spec in self.specs]},
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        data = json.loads(text)
        if not isinstance(data, dict):
            raise ValueError("fault plan JSON must be an object")
        unknown = set(data) - {"seed", "specs"}
        if unknown:
            raise ValueError(f"unknown FaultPlan fields {sorted(unknown)}")
        return cls(
            specs=tuple(FaultSpec.from_dict(entry) for entry in data.get("specs", ())),
            seed=int(data.get("seed", 0)),
        )
