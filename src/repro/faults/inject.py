"""Fault-plan activation and the site hooks instrumented code calls.

A plan is installed into the :data:`ENV_VAR` environment variable — inline
JSON, or a path to a JSON file — which ``ProcessPoolExecutor`` workers
inherit, so one installation governs the whole fleet without touching any
pickled arguments.  The parsed plan is cached per process keyed by the raw
variable value, so the hot no-fault path costs a single ``os.environ``
lookup and the cache refreshes automatically when a test swaps plans.
"""

from __future__ import annotations

import os
import time
from pathlib import Path

from repro.faults.plan import FaultPlan, InjectedFault

__all__ = [
    "ENV_VAR",
    "active_plan",
    "clear_plan",
    "install_plan",
    "torn_write_bytes",
    "trip",
]

#: Environment variable holding the active plan: inline JSON (anything
#: starting with ``{``) or a path to a JSON file.
ENV_VAR = "REPRO_FAULTS"

#: Per-process parse cache: (raw env value, parsed plan).
_cache: tuple[str | None, FaultPlan | None] = (None, None)


def active_plan() -> FaultPlan | None:
    """The plan installed in the environment, or ``None``."""
    global _cache
    raw = os.environ.get(ENV_VAR)
    if not raw:
        return None
    if _cache[0] != raw:
        text = raw if raw.lstrip().startswith("{") else Path(raw).read_text()
        _cache = (raw, FaultPlan.from_json(text))
    return _cache[1]


def install_plan(plan: FaultPlan | str | os.PathLike) -> None:
    """Install a plan process-tree-wide (pool workers inherit the variable).

    Accepts a :class:`FaultPlan` (serialized inline) or a path to a plan
    file (stored as-is, parsed lazily at each site).
    """
    value = plan.to_json() if isinstance(plan, FaultPlan) else str(plan)
    os.environ[ENV_VAR] = value


def clear_plan() -> None:
    """Remove the installed plan (already-running workers keep theirs)."""
    os.environ.pop(ENV_VAR, None)


def trip(site: str, *, attempt: int = 1, **attrs) -> None:
    """Fault-site hook: act out whichever armed spec fires here, if any.

    ``raise`` raises :class:`InjectedFault`, ``hang`` sleeps
    ``spec.hang_seconds`` (a supervised fleet times the worker out and
    terminates it), ``crash`` exits the process without cleanup — exactly
    the failure a segfaulting worker produces.  ``torn_write`` is not acted
    on here; the store tears its own writes via :func:`torn_write_bytes`.
    """
    plan = active_plan()
    if plan is None:
        return
    spec = plan.find(site, attempt=attempt, **attrs)
    if spec is None:
        return
    target = attrs.get("key") or dict(attrs) or site
    if spec.kind == "raise":
        raise InjectedFault(
            f"injected fault at {site} (target {target}, attempt {attempt})"
        )
    if spec.kind == "hang":
        time.sleep(spec.hang_seconds)
        return
    if spec.kind == "crash":
        os._exit(spec.exit_code)


def torn_write_bytes(key: str, data: bytes, *, attempt: int = 1) -> bytes | None:
    """The torn prefix an armed ``torn_write`` fault leaves behind, if any.

    Returns roughly the first half of ``data`` (never the whole line, never
    the trailing newline) when a ``store.append`` spec of kind
    ``torn_write`` fires for this key/attempt — the store writes exactly
    that prefix and pretends the process died mid-``write``.  Returns
    ``None`` when no fault fires.
    """
    plan = active_plan()
    if plan is None:
        return None
    spec = plan.find("store.append", attempt=attempt, key=key)
    if spec is None or spec.kind != "torn_write":
        return None
    return data[: max(1, len(data) // 2)]
