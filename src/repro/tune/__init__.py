"""Sweep-driven configuration autotuning (the closed design-space loop).

The paper picks GNNIE's flexible-MAC allocation and buffer sizes "through
design space exploration, optimizing the cost-to-benefit ratio" (Section
VIII-A); AWB-GCN makes the runtime version of that loop its headline.
This package is the offline analogue over the repo's sweep fleet:

* :mod:`repro.tune.loop` — :func:`run_tune` drives generations of
  sweep → aggregate → propose over :func:`repro.sweep.run_sweep` and the
  resumable :class:`~repro.sweep.store.ResultStore`,
* :mod:`repro.tune.proposer` — the pluggable candidate search; the default
  :class:`ParetoMutationProposer` mutates Pareto survivors along the MAC
  allocation (under the grid's admissibility rules), buffer sizing, γ and
  miss-path axes.

Store-backed reporting lives in :func:`repro.analysis.tune_report`; the
CLI front end is ``python -m repro tune``.
"""

from repro.tune.loop import GenerationReport, TuneResult, TuneSpec, run_tune
from repro.tune.proposer import ParetoMutationProposer, Proposer, candidate_name

__all__ = [
    "GenerationReport",
    "TuneResult",
    "TuneSpec",
    "run_tune",
    "ParetoMutationProposer",
    "Proposer",
    "candidate_name",
]
