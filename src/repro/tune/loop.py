"""Generation-based closed-loop autotuner over the scenario-sweep fleet.

:func:`run_tune` turns the repo's sweep subsystem into a search engine,
the offline analogue of AWB-GCN's runtime autotuning (Geng et al., MICRO
2020): instead of enumerating a fixed configuration grid, each generation

1. **sweeps** the candidate population through
   :func:`repro.sweep.run_sweep` into the resumable
   :class:`~repro.sweep.store.ResultStore` (cells whose key the store
   already holds are served for free),
2. **aggregates** the rows evaluated so far with
   :mod:`repro.analysis.sweep_aggregate` — the latency/area Pareto front
   and β versus the baseline design,
3. **proposes** the next generation by mutating the Pareto survivors
   (plus the best-β elite) through a pluggable
   :class:`~repro.tune.proposer.Proposer`.

Determinism contract
--------------------
Proposals are a pure function of the spec and the evaluated rows: the
per-generation RNG is seeded from ``(spec.seed, generation, attempt)``, and
rows are themselves pure functions of their cells.  A killed tuning run
re-launched against the same store therefore re-proposes the identical
generations, every cell key is already present, and ``run_sweep`` serves
all of them from disk — zero re-simulated cells, identical final report.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.hw.config import AcceleratorConfig, design_preset
from repro.obs.metrics import NULL_METRICS
from repro.obs.tracer import NULL_TRACER
from repro.sim.design_space import DesignPoint, pareto_front
from repro.sweep.matrix import DatasetCase, ScenarioMatrix, SweepCell
from repro.sweep.runner import run_sweep
from repro.sweep.store import ResultStore, is_failed_row
from repro.tune.proposer import ParetoMutationProposer, Proposer

__all__ = ["TuneSpec", "GenerationReport", "TuneResult", "run_tune"]

#: Extra proposal rounds per generation when deduplication thins a batch.
_FILL_ATTEMPTS = 5


@dataclass(frozen=True)
class TuneSpec:
    """One tuning problem: the workload plus the search's fixed parameters."""

    dataset: str
    family: str = "gcn"
    backend: str = "gnnie"
    scale: float | None = None
    #: Base seed — derives the dataset seed (via the scenario matrix) and
    #: every generation's proposer RNG.
    seed: int = 0
    generations: int = 4
    population: int = 6
    mac_budget: int = 1280
    #: β reference design, evaluated as part of generation 0.
    baseline: AcceleratorConfig = field(default_factory=lambda: design_preset("A"))
    #: Starting elites evaluated alongside the baseline in generation 0.
    #: Defaults to the paper's hand-picked flexible-MAC design, so the tuner
    #: starts from (and must improve on, never lose) the published point.
    seed_configs: tuple[AcceleratorConfig, ...] = field(
        default_factory=lambda: (design_preset("E"),)
    )

    def __post_init__(self) -> None:
        # Normalize the axis names like ScenarioMatrix.build does, so a
        # mixed-case spec hashes to the same cells (and filters the same
        # report rows) as its lowercase twin.
        object.__setattr__(self, "dataset", self.dataset.lower())
        object.__setattr__(self, "family", self.family.lower())
        object.__setattr__(self, "backend", self.backend.lower())
        if self.generations < 1:
            raise ValueError("generations must be >= 1")
        if self.population < 1:
            raise ValueError("population must be >= 1")
        if self.backend != "gnnie":
            # The aggregation half of the loop (DesignPoints, Pareto, β)
            # reads GNNIE rows only, and the baseline platforms model fixed
            # published silicon — there is nothing to tune there.
            raise ValueError(
                "tuning requires the config-sensitive 'gnnie' backend; the "
                f"baseline platforms ignore AcceleratorConfig ({self.backend!r})"
            )


@dataclass(frozen=True)
class GenerationReport:
    """Accounting for one generation of the loop."""

    index: int
    #: Unique cells this generation proposed (after deduplication).
    cells: int
    #: Cells actually simulated vs served from the store.
    executed: int
    resumed: int
    #: Best β across everything evaluated so far (None until a design adds
    #: MACs over the baseline).
    best_beta: float | None
    best_name: str | None
    pareto_size: int

    def as_dict(self) -> dict:
        return {
            "generation": self.index,
            "cells": self.cells,
            "executed": self.executed,
            "resumed": self.resumed,
            "best_beta": self.best_beta,
            "best_name": self.best_name,
            "pareto_size": self.pareto_size,
        }


@dataclass
class TuneResult:
    """Outcome of one tuning run."""

    spec: TuneSpec
    generations: list[GenerationReport]
    #: Unique cells this run evaluated (simulated or store-served).
    evaluated_cells: int
    #: Cells actually simulated by this run (0 on a clean resume).
    executed_cells: int
    best: dict | None
    pareto: list[dict]
    store_path: str | None

    def as_dict(self) -> dict:
        return {
            "dataset": self.spec.dataset,
            "family": self.spec.family,
            "backend": self.spec.backend,
            "scale": self.spec.scale,
            "seed": self.spec.seed,
            "mac_budget": self.spec.mac_budget,
            "generations": [generation.as_dict() for generation in self.generations],
            "evaluated_cells": self.evaluated_cells,
            "executed_cells": self.executed_cells,
            "best": self.best,
            "pareto": self.pareto,
            "store": self.store_path,
        }


def _cells_for(spec: TuneSpec, configs: Sequence[AcceleratorConfig]) -> list[SweepCell]:
    """Expand candidate configurations into sweep cells (shared seed rules)."""
    matrix = ScenarioMatrix(
        datasets=(DatasetCase(spec.dataset, scale=spec.scale),),
        families=(spec.family,),
        backends=(spec.backend,),
        configs=tuple(configs),
        seed=spec.seed,
        # Cross every config with the tuned backend (the default crossing
        # list names only "gnnie", which would silently collapse any other
        # config-sensitive backend's population to one cell).
        config_backends=(spec.backend,),
    )
    return matrix.cells()


def _claim_fresh(
    spec: TuneSpec, configs: Sequence[AcceleratorConfig], taken: set[str]
) -> list[SweepCell]:
    """Cells for the candidates whose key this run has not already claimed."""
    fresh: list[SweepCell] = []
    for cell in _cells_for(spec, configs):
        key = cell.key()
        if key in taken:
            continue
        taken.add(key)
        fresh.append(cell)
    return fresh


def _survivors(
    points: Sequence[DesignPoint], baseline: AcceleratorConfig
) -> tuple[list[DesignPoint], int, float | None, str | None]:
    """Pareto front plus the best-β elite, the front size, and the best β."""
    front = pareto_front(list(points))
    reference = next((p for p in points if p.config == baseline), None)
    best_beta: float | None = None
    best_point: DesignPoint | None = None
    if reference is not None:
        for point in points:
            beta = point.beta_versus(reference)
            if beta == beta and (best_beta is None or beta > best_beta):  # not NaN
                best_beta = beta
                best_point = point
    survivors = list(front)
    if best_point is not None and all(s.config != best_point.config for s in survivors):
        survivors.append(best_point)
    return survivors, len(front), best_beta, best_point.name if best_point else None


def run_tune(
    spec: TuneSpec,
    *,
    store: ResultStore | None = None,
    jobs: int = 1,
    proposer: Proposer | None = None,
    progress=None,
    log: Callable[[str], None] | None = None,
    tracer=None,
    metrics=None,
    retry=None,
) -> TuneResult:
    """Run the closed sweep → aggregate → propose loop.

    Args:
        spec: The tuning problem (workload, generations, population, budget).
        store: Resumable result store shared with ``repro sweep``; cells the
            store already holds are never re-simulated.  ``None`` keeps
            results in memory.
        jobs: Worker processes per generation sweep (forwarded to
            :func:`~repro.sweep.run_sweep`).
        proposer: Candidate search strategy; defaults to
            :class:`~repro.tune.proposer.ParetoMutationProposer` bounded by
            ``spec.mac_budget``.
        progress: Per-cell progress callback, forwarded to ``run_sweep``.
        log: Optional line sink for per-generation summaries (the CLI passes
            stderr).
        tracer: Optional :class:`repro.obs.Tracer`; each generation becomes
            a span enclosing its sweep's merged fleet timeline.  Tracing
            never changes the search: proposals read rows, never wall time.
        metrics: Optional :class:`repro.obs.MetricsRegistry` receiving the
            loop counters (``tune.proposals``, ``tune.dedup_skips``,
            ``tune.generations``, the ``tune.pareto_size`` gauge) on top of
            the sweep counters each generation records.
        retry: Optional :class:`~repro.sweep.RetryPolicy` forwarded to each
            generation's ``run_sweep``.  Cells that fail permanently land as
            ``failed`` rows; the search skips them (a failed candidate is
            simply never a survivor) instead of dying mid-loop.

    Returns:
        A :class:`TuneResult`; ``best`` is the highest-β evaluated design.
    """
    if store is None:
        store = ResultStore(None)
    if proposer is None:
        proposer = ParetoMutationProposer(mac_budget=spec.mac_budget)
    tracer = tracer or NULL_TRACER
    metrics = metrics or NULL_METRICS

    from repro.analysis.sweep_aggregate import beta_rows, design_points_from_rows

    taken: set[str] = set()
    rows_by_key: dict[str, dict] = {}
    reports: list[GenerationReport] = []
    executed_total = 0

    # Generation 0: the β baseline plus the seed elites.
    population = _claim_fresh(spec, (spec.baseline, *spec.seed_configs), taken)

    for generation in range(spec.generations):
        if not population:
            if log is not None:
                log(f"tune: generation {generation}: search exhausted, stopping early")
            break
        with tracer.span(
            f"generation{generation}",
            category="tune",
            generation=generation,
            population=len(population),
        ) as generation_span:
            summary = run_sweep(
                population,
                store=store,
                jobs=jobs,
                progress=progress,
                tracer=tracer,
                metrics=metrics,
                retry=retry,
            )
        metrics.counter("tune.generations").inc()
        executed_total += summary.executed
        for row in summary.rows:
            # Permanently-failed cells carry no metrics; the search treats
            # them as evaluated (never re-proposed) but never aggregates
            # them into the Pareto front or β table.
            if is_failed_row(row):
                metrics.counter("tune.failed_rows").inc()
                continue
            rows_by_key[row["key"]] = row

        points = design_points_from_rows(rows_by_key.values())
        survivors, pareto_size, best_beta, best_name = _survivors(points, spec.baseline)
        metrics.gauge("tune.pareto_size").set(pareto_size)
        generation_span.set(
            executed=summary.executed,
            resumed=summary.skipped,
            pareto_size=pareto_size,
            best_beta=best_beta,
        )
        reports.append(
            GenerationReport(
                index=generation,
                cells=summary.total,
                executed=summary.executed,
                resumed=summary.skipped,
                best_beta=best_beta,
                best_name=best_name,
                pareto_size=pareto_size,
            )
        )
        if log is not None:
            beta_text = "n/a" if best_beta is None else f"{best_beta:.4f}"
            log(
                f"tune: generation {generation}: {summary.total} cells "
                f"({summary.executed} executed, {summary.skipped} resumed), "
                f"best β {beta_text} ({best_name}), "
                f"pareto {pareto_size}"
            )

        if generation == spec.generations - 1:
            break
        # Propose the next generation; deduplication may thin a batch, so
        # re-draw with a derived RNG until the population fills (bounded).
        population = []
        for attempt in range(_FILL_ATTEMPTS):
            if len(population) >= spec.population:
                break
            rng = random.Random(f"{spec.seed}:{generation}:{attempt}")
            batch = proposer.propose(
                survivors, rng=rng, count=spec.population - len(population)
            )
            fresh = _claim_fresh(spec, batch, taken)
            metrics.counter("tune.proposals").inc(len(batch))
            metrics.counter("tune.dedup_skips").inc(len(batch) - len(fresh))
            population.extend(fresh)

    rows = list(rows_by_key.values())
    betas = beta_rows(rows, baseline=spec.baseline) if rows else []
    best = next((entry for entry in betas if entry["beta"] is not None), None)
    pareto = [
        {
            "name": point.name,
            "total_macs": point.total_macs,
            "cycles": point.cycles,
            "area_mm2": point.area_mm2,
            "latency_seconds": point.latency_seconds,
        }
        for point in pareto_front(design_points_from_rows(rows))
    ]
    return TuneResult(
        spec=spec,
        generations=reports,
        evaluated_cells=len(rows_by_key),
        executed_cells=executed_total,
        best=best,
        pareto=pareto,
        store_path=str(store.path) if store.path is not None else None,
    )
