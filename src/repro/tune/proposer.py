"""Candidate proposers: mutate Pareto survivors into the next generation.

A proposer is the pluggable search half of the :mod:`repro.tune` closed
loop.  Given the current survivors (the latency/area Pareto front plus the
best-β elite, as :class:`~repro.sim.design_space.DesignPoint`\\ s), it emits
the next generation of :class:`~repro.hw.config.AcceleratorConfig`
candidates.  The default :class:`ParetoMutationProposer` applies one local
mutation per child across the axes the paper's design-space exploration
sweeps (Section VIII-A):

* MAC-per-row-group allocation, under exactly the grid's admissibility
  rules (:func:`~repro.sim.design_space.admissible_mac_allocation`:
  monotonic non-decreasing groups, total within the MAC budget),
* input/output buffer capacities (halve/double within bounds — explicit
  ``input_buffer_bytes`` overrides are what the sweep executor now
  respects, which is what makes this axis searchable at all),
* the cache eviction threshold γ,
* the miss-path hierarchy (mechanism toggles and structure sizing).

Proposers are deterministic given their ``rng``: the tune loop seeds one
:class:`random.Random` per generation from the spec seed, so a killed and
resumed tuning run re-proposes byte-identical candidates and the result
store serves every one of them without re-simulating.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import Protocol, Sequence

from repro.hw.config import AcceleratorConfig
from repro.sim.design_space import DesignPoint, admissible_mac_allocation

__all__ = ["Proposer", "ParetoMutationProposer", "candidate_name"]


def candidate_name(config: AcceleratorConfig) -> str:
    """Deterministic, content-derived display name for a tuned candidate.

    The name is a pure function of the tunable fields, so one configuration
    reached along two different mutation paths carries one name (and, since
    the name is part of the serialized config, one cell key) — the
    deduplication the tune loop relies on.
    """
    macs = "/".join(str(m) for m in config.macs_per_group)
    input_kib = (
        "auto"
        if config.input_buffer_bytes is None
        else f"{config.input_buffer_bytes // 1024}K"
    )
    parts = [
        f"FM{macs}",
        f"IB{input_kib}",
        f"OB{config.output_buffer_bytes // 1024}K",
        f"g{config.gamma}",
    ]
    if config.miss_path_mechanisms:
        parts.append(
            "MP" + "+".join(config.miss_path_mechanisms)
            + f"v{config.victim_cache_entries}"
            + f"m{config.miss_cache_entries}"
            + f"s{config.stream_buffer_count}x{config.stream_buffer_depth}"
        )
    return "tune:" + "-".join(parts)


class Proposer(Protocol):
    """Search strategy plugged into :func:`repro.tune.run_tune`."""

    def propose(
        self,
        survivors: Sequence[DesignPoint],
        *,
        rng: random.Random,
        count: int,
    ) -> list[AcceleratorConfig]:
        """Emit up to ``count`` candidate configurations from the survivors."""
        ...


@dataclass(frozen=True)
class ParetoMutationProposer:
    """Default proposer: one bounded local mutation per child.

    Children are bred round-robin over the survivors so every Pareto point
    seeds roughly equally many candidates; each child is one mutation away
    from its parent, keeping the search local to the front.  The MAC axes
    are weighted double — they are the paper's headline knob.
    """

    mac_budget: int = 1280
    mac_bounds: tuple[int, int] = (2, 8)
    input_buffer_bounds: tuple[int, int] = (64 * 1024, 1024 * 1024)
    output_buffer_bounds: tuple[int, int] = (256 * 1024, 4 * 1024 * 1024)
    gamma_bounds: tuple[int, int] = (1, 12)
    mechanisms: tuple[str, ...] = ("victim", "miss", "stream")
    #: Mutation retries per child before giving up on it (a saturated knob,
    #: e.g. doubling a buffer already at its bound, wastes one attempt).
    max_attempts_per_child: int = 8

    #: Mutation kinds, MAC allocation and input buffer weighted double.
    _KINDS = (
        "mac", "mac",
        "input_buffer", "input_buffer",
        "output_buffer",
        "gamma",
        "miss_path",
    )

    # ------------------------------------------------------------------ #
    # Proposer protocol
    # ------------------------------------------------------------------ #
    def propose(
        self,
        survivors: Sequence[DesignPoint],
        *,
        rng: random.Random,
        count: int,
    ) -> list[AcceleratorConfig]:
        candidates: list[AcceleratorConfig] = []
        if not survivors:
            return candidates
        for child_index in range(count):
            parent = survivors[child_index % len(survivors)].config
            child = self._mutate(parent, rng)
            if child is not None:
                candidates.append(child)
        return candidates

    # ------------------------------------------------------------------ #
    # Mutations
    # ------------------------------------------------------------------ #
    def _mutate(
        self, parent: AcceleratorConfig, rng: random.Random
    ) -> AcceleratorConfig | None:
        for _ in range(self.max_attempts_per_child):
            kind = rng.choice(self._KINDS)
            child = getattr(self, f"_mutate_{kind}")(parent, rng)
            if child is not None and child != parent:
                return replace(child, name=candidate_name(child))
        return None

    def _mutate_mac(
        self, parent: AcceleratorConfig, rng: random.Random
    ) -> AcceleratorConfig | None:
        allocation = list(parent.macs_per_group)
        group = rng.randrange(len(allocation))
        allocation[group] += rng.choice((-1, 1))
        low, high = self.mac_bounds
        if not low <= allocation[group] <= high:
            return None
        if not admissible_mac_allocation(
            allocation,
            group_sizes=parent.rows_per_group,
            num_cols=parent.num_cols,
            mac_budget=self.mac_budget,
        ):
            return None
        return replace(parent, macs_per_group=tuple(allocation))

    def _mutate_input_buffer(
        self, parent: AcceleratorConfig, rng: random.Random
    ) -> AcceleratorConfig | None:
        current = parent.input_buffer_bytes
        if current is None:
            # Pin the auto sentinel to one of the paper's two sizings first;
            # later mutations then walk the explicit axis.
            size = rng.choice((256 * 1024, 512 * 1024))
        else:
            size = current * 2 if rng.random() < 0.5 else current // 2
        low, high = self.input_buffer_bounds
        size = min(max(size, low), high)
        if size == current:
            return None
        return replace(parent, input_buffer_bytes=size)

    def _mutate_output_buffer(
        self, parent: AcceleratorConfig, rng: random.Random
    ) -> AcceleratorConfig | None:
        current = parent.output_buffer_bytes
        size = current * 2 if rng.random() < 0.5 else current // 2
        low, high = self.output_buffer_bounds
        size = min(max(size, low), high)
        if size == current:
            return None
        return replace(parent, output_buffer_bytes=size)

    def _mutate_gamma(
        self, parent: AcceleratorConfig, rng: random.Random
    ) -> AcceleratorConfig | None:
        gamma = parent.gamma + rng.choice((-1, 1))
        low, high = self.gamma_bounds
        if not low <= gamma <= high:
            return None
        return replace(parent, gamma=gamma)

    def _mutate_miss_path(
        self, parent: AcceleratorConfig, rng: random.Random
    ) -> AcceleratorConfig | None:
        enabled = set(parent.miss_path_mechanisms)
        if enabled and rng.random() < 0.3:
            # Resize the hierarchy instead of toggling membership.
            knob = rng.choice(
                ("victim_cache_entries", "miss_cache_entries", "stream_buffer_depth")
            )
            value = getattr(parent, knob)
            value = value * 2 if rng.random() < 0.5 else max(1, value // 2)
            if value == getattr(parent, knob):
                return None
            return replace(parent, **{knob: value})
        toggled = rng.choice(self.mechanisms)
        enabled.symmetric_difference_update({toggled})
        # Canonical mechanism order keeps ("victim", "stream") and
        # ("stream", "victim") one candidate, not two cell keys.
        ordered = tuple(name for name in self.mechanisms if name in enabled)
        return replace(parent, miss_path_mechanisms=ordered)
