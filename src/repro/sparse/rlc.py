"""Run-length compression (RLC) codec for sparse vertex feature vectors.

GNNIE stores the highly sparse *input-layer* vertex feature vectors in DRAM
using run-length compression (paper, Section III): RLC is lossless, the
decoder is cheap in hardware, and — unlike CISS-style schemes — it does not
force a lock-step systolic dataflow.  Data is kept in RLC form in the input
buffer and only decoded when it is streamed into the CPE array; the decoder
is bypassed for the denser feature vectors of later layers.

The software model here encodes a vector as a sequence of
``(zero_run_length, value)`` pairs with a bounded run-length field, mirroring
the classic RLC used by Eyeriss-style accelerators: a run longer than the
field maximum is split by emitting an explicit zero value.

The codec exposes both the exact round-trip transform (for correctness
testing) and the *size model* used by the memory-traffic accounting in the
simulator.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["RLCEncoding", "rlc_encode", "rlc_decode", "rlc_compressed_bits", "RLC_RUN_BITS"]

# Bits used for the zero-run-length field.  Eight bits (runs up to 255) keeps
# the decoder trivial while avoiding run-field overflow on the ultra-sparse
# (>98% zero) input feature vectors, whose average zero gap is several tens
# of elements; the simulator's DRAM traffic model uses the same width.
RLC_RUN_BITS = 8
_MAX_RUN = (1 << RLC_RUN_BITS) - 1


@dataclass(frozen=True)
class RLCEncoding:
    """RLC-compressed representation of a 1-D vector.

    Attributes:
        runs: Zero-run length preceding each stored value.
        values: Stored (possibly zero, when a run had to be split) values.
        original_length: Length of the decoded vector.
        value_bits: Bit width of each stored value.
    """

    runs: np.ndarray
    values: np.ndarray
    original_length: int
    value_bits: int = 8

    @property
    def num_symbols(self) -> int:
        return int(self.values.size)

    @property
    def compressed_bits(self) -> int:
        """Total storage in bits, including the length header word."""
        return int(self.num_symbols * (RLC_RUN_BITS + self.value_bits) + 32)

    @property
    def uncompressed_bits(self) -> int:
        return int(self.original_length * self.value_bits)

    def compression_ratio(self) -> float:
        """Uncompressed size / compressed size (>1 means RLC saves space)."""
        if self.compressed_bits == 0:
            return float("inf")
        return self.uncompressed_bits / self.compressed_bits


def rlc_encode(vector: np.ndarray, *, value_bits: int = 8) -> RLCEncoding:
    """Encode a 1-D vector with run-length compression of zeros."""
    vector = np.asarray(vector, dtype=np.float64).ravel()
    runs: list[int] = []
    values: list[float] = []
    zero_run = 0
    for element in vector:
        if element == 0.0:
            zero_run += 1
            if zero_run > _MAX_RUN:
                # Field overflow: emit the maximal run with an explicit zero.
                runs.append(_MAX_RUN)
                values.append(0.0)
                zero_run = 0
        else:
            runs.append(zero_run)
            values.append(float(element))
            zero_run = 0
    if zero_run > 0:
        # Trailing zeros: representable because the decoder knows the
        # original length, but we still emit a terminator symbol so that the
        # size model counts the metadata.
        runs.append(min(zero_run, _MAX_RUN))
        values.append(0.0)
    return RLCEncoding(
        runs=np.asarray(runs, dtype=np.int64),
        values=np.asarray(values, dtype=np.float64),
        original_length=int(vector.size),
        value_bits=value_bits,
    )


def rlc_decode(encoding: RLCEncoding) -> np.ndarray:
    """Decode an :class:`RLCEncoding` back to the dense vector."""
    output = np.zeros(encoding.original_length, dtype=np.float64)
    cursor = 0
    for run, value in zip(encoding.runs, encoding.values):
        cursor += int(run)
        if cursor >= encoding.original_length:
            break
        if value != 0.0:
            output[cursor] = value
        cursor += 1
    return output


def rlc_compressed_bits(
    matrix: np.ndarray, *, value_bits: int = 8, run_bits: int = RLC_RUN_BITS
) -> int:
    """Size model: RLC-compressed size of a feature matrix, in bits.

    This is the vectorized counterpart of encoding every row with
    :func:`rlc_encode` and summing ``compressed_bits``; it is what the DRAM
    traffic model calls for large matrices, where building explicit symbol
    arrays per row would be wasteful.

    The estimate counts one symbol per nonzero plus one overflow symbol per
    ``2**run_bits - 1`` consecutive zeros plus a 32-bit length header per row.
    """
    matrix = np.asarray(matrix)
    if matrix.ndim == 1:
        matrix = matrix.reshape(1, -1)
    max_run = (1 << run_bits) - 1
    nonzeros = np.count_nonzero(matrix, axis=1)
    zeros = matrix.shape[1] - nonzeros
    overflow_symbols = zeros // max_run
    symbols = nonzeros + overflow_symbols
    per_symbol = run_bits + value_bits
    return int(np.sum(symbols * per_symbol) + 32 * matrix.shape[0])
