"""Sparse-data utilities: RLC codec and sparse feature matrices."""

from repro.sparse.feature_matrix import (
    FeatureMatrix,
    block_nonzero_counts,
    generate_sparse_features,
)
from repro.sparse.rlc import (
    RLC_RUN_BITS,
    RLCEncoding,
    rlc_compressed_bits,
    rlc_decode,
    rlc_encode,
)

__all__ = [
    "FeatureMatrix",
    "block_nonzero_counts",
    "generate_sparse_features",
    "RLCEncoding",
    "rlc_encode",
    "rlc_decode",
    "rlc_compressed_bits",
    "RLC_RUN_BITS",
]
