"""Sparse vertex-feature matrix utilities.

The Weighting scheduler needs per-vertex, per-block nonzero counts (to bin
workloads for the Flexible MAC architecture, paper Section IV-C) and the
memory model needs compressed sizes.  This module wraps a dense NumPy feature
matrix with those derived views and with a sparse-aware generator used by the
synthetic datasets.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sparse.rlc import rlc_compressed_bits

__all__ = ["FeatureMatrix", "generate_sparse_features", "block_nonzero_counts"]


def generate_sparse_features(
    num_vertices: int,
    feature_length: int,
    sparsity: float,
    *,
    seed: int = 0,
    sparsity_spread: float = 0.35,
    value_scale: float = 1.0,
    column_skew: float = 1.1,
) -> np.ndarray:
    """Generate a sparse feature matrix with heterogeneous sparsity.

    Real input feature vectors are bag-of-words style and exhibit two kinds
    of skew, both of which matter to GNNIE:

    * **row skew** — vertices differ in how many nonzeros they have (Fig. 2's
      sparse "Region A" vs. denser "Region B"), the source of the
      rabbit/turtle workload disparity.  Each row's nonzero count is drawn
      from a log-normal distribution centered on the target density.
    * **column skew** — feature positions differ wildly in popularity (word
      frequencies are Zipfian), so the k-element blocks that GNNIE maps to
      CPE rows carry very different numbers of nonzeros, which is what makes
      the position-based baseline mapping imbalanced (Fig. 16).  Column
      indices are drawn from a Zipf-like distribution with exponent
      ``column_skew``.

    Args:
        num_vertices: Number of rows.
        feature_length: Number of columns.
        sparsity: Target fraction of zeros over the whole matrix (e.g.
            0.9873 for Cora).
        seed: RNG seed.
        sparsity_spread: Log-normal sigma of the per-row nonzero counts.
        value_scale: Scale of the nonzero values.
        column_skew: Zipf exponent of the column-popularity distribution
            (0 = uniform columns).
    """
    if not 0.0 <= sparsity < 1.0:
        raise ValueError("sparsity must be in [0, 1)")
    rng = np.random.default_rng(seed)
    mean_nonzeros = max(1.0, (1.0 - sparsity) * feature_length)
    row_nonzeros = rng.lognormal(
        mean=np.log(mean_nonzeros), sigma=sparsity_spread, size=num_vertices
    )
    row_nonzeros = np.clip(np.round(row_nonzeros), 1, feature_length).astype(np.int64)
    # Rescale so that the matrix-wide sparsity matches the target.
    target_total = int(round((1.0 - sparsity) * num_vertices * feature_length))
    current_total = int(row_nonzeros.sum())
    if current_total > 0 and target_total > 0:
        scaled = np.clip(
            np.round(row_nonzeros * (target_total / current_total)), 1, feature_length
        ).astype(np.int64)
        row_nonzeros = scaled
    # Zipf-like column popularity: columns are shuffled so hot columns are
    # spread over the whole index range rather than clustered at the front
    # (real vocabularies are not sorted by frequency) but block-to-block
    # density still varies strongly.
    ranks = np.arange(1, feature_length + 1, dtype=np.float64)
    popularity = ranks ** (-column_skew) if column_skew > 0 else np.ones(feature_length)
    popularity = rng.permutation(popularity)
    popularity /= popularity.sum()
    matrix = np.zeros((num_vertices, feature_length), dtype=np.float64)
    for row, count in enumerate(row_nonzeros):
        count = int(min(count, feature_length))
        columns = rng.choice(feature_length, size=count, replace=False, p=popularity)
        matrix[row, columns] = rng.uniform(0.1, value_scale, size=count)
    return matrix


def block_nonzero_counts(matrix: np.ndarray, block_size: int) -> np.ndarray:
    """Nonzero count of every k-element block of every feature vector.

    Splitting the feature dimension into ``block_size``-element blocks is how
    GNNIE maps Weighting onto CPE rows (Section IV-A).  The returned array
    has shape ``(num_vertices, num_blocks)`` where ``num_blocks =
    ceil(F / block_size)``; the last block of each row may be shorter.
    """
    matrix = np.asarray(matrix)
    if matrix.ndim != 2:
        raise ValueError("matrix must be two-dimensional")
    if block_size <= 0:
        raise ValueError("block_size must be positive")
    num_vertices, feature_length = matrix.shape
    num_blocks = -(-feature_length // block_size)
    padded_length = num_blocks * block_size
    padded = np.zeros((num_vertices, padded_length), dtype=bool)
    padded[:, :feature_length] = matrix != 0
    return padded.reshape(num_vertices, num_blocks, block_size).sum(axis=2)


@dataclass
class FeatureMatrix:
    """Dense feature matrix with sparsity-aware derived views."""

    values: np.ndarray

    def __post_init__(self) -> None:
        self.values = np.asarray(self.values, dtype=np.float64)
        if self.values.ndim != 2:
            raise ValueError("feature matrix must be two-dimensional")

    @property
    def num_vertices(self) -> int:
        return int(self.values.shape[0])

    @property
    def feature_length(self) -> int:
        return int(self.values.shape[1])

    def sparsity(self) -> float:
        total = self.values.size
        if total == 0:
            return 1.0
        return 1.0 - np.count_nonzero(self.values) / total

    def row_nonzeros(self) -> np.ndarray:
        return np.count_nonzero(self.values, axis=1)

    def block_nonzeros(self, block_size: int) -> np.ndarray:
        return block_nonzero_counts(self.values, block_size)

    def compressed_bits(self, *, value_bits: int = 8) -> int:
        """RLC-compressed storage size of the whole matrix."""
        return rlc_compressed_bits(self.values, value_bits=value_bits)

    def dense_bits(self, *, value_bits: int = 8) -> int:
        return int(self.values.size * value_bits)
