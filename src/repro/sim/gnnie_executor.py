"""GNNIE plan executor: per-op handlers over the phase-op IR.

:class:`GNNIEExecutor` runs an :class:`~repro.plan.ir.InferencePlan` on a
dataset graph under one accelerator configuration, producing the
cycle/traffic/energy :class:`~repro.sim.results.InferenceResult` behind the
headline comparisons (Figs. 12–15, Table IV) and the ablations
(Figs. 16–18).  Each op type has one handler; the executor knows nothing
about GNN families — family structure is fully encoded in the plan by the
lowering rules in :mod:`repro.models.lowering`.

Modeling notes
--------------
* Input-layer Weighting uses the dataset's *actual* sparse feature matrix,
  so the rabbit/turtle imbalance and the zero-skipping benefit are driven by
  real per-block nonzero counts.  Later layers' features (post-ReLU
  activations) are modeled with the density the op carries
  (:data:`~repro.plan.ir.HIDDEN_DENSITY`), matching the paper's observation
  that the RLC decoder is bypassed after layer 1.
* ``sampled`` adjacency handles are resolved once per execution with the
  pregenerated-stream neighbor sampler; the cache policy then runs on the
  sampled subgraph.
* The cache-policy simulation is run once per (graph fingerprint, buffer
  configuration) and deliberately shared across layers and plans as an
  approximation: the layer feature length changes the per-vertex record
  size (and hence the buffer's vertex capacity), but re-simulating per
  width would dominate runtime, so the first op's width sizes the sim and
  later ops reuse it.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from repro.cache.policy import CacheSimulationResult
from repro.graph.csr import CSRGraph
from repro.graph.graph import Graph
from repro.hw.config import AcceleratorConfig
from repro.hw.energy import AreaModel, EnergyBreakdown, EnergyModel
from repro.mapping.attention import schedule_attention
from repro.mapping.weighting import schedule_weighting
from repro.obs.metrics import NULL_METRICS, MetricsRegistry
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.check.verifier import verify_plan
from repro.plan.executor import register_executor
from repro.plan.ir import (
    HIDDEN_DENSITY,
    AdjacencyRef,
    AggregationOp,
    AttentionOp,
    DenseMatmulOp,
    HaloExchangeOp,
    InferencePlan,
    PlanLayer,
    PreprocessOp,
    SampleOp,
    WeightingOp,
)
from repro.sim.aggregation_sim import aggregation_phase_from_cache, run_cache_simulation
from repro.sim.batch import GraphPricingContext, adjacency_fingerprint, pricing_context
from repro.sim.results import InferenceResult, LayerResult, PhaseResult
from repro.sim.weighting_sim import simulate_weighting, weighting_phase_from_schedule

__all__ = ["GNNIEExecutor"]

#: Throughput of the host-side preprocessing (degree binning), ops/cycle.
_PREPROCESSING_OPS_PER_CYCLE = 8

#: Backwards-compatible alias; the fingerprint moved to ``repro.sim.batch``
#: so the sweep worker and the pricing context share one implementation.
_adjacency_fingerprint = adjacency_fingerprint


def _weighting_knobs(cfg: AcceleratorConfig) -> tuple:
    """Every configuration field the Weighting phase result depends on.

    The schedule reads the array shape, the MAC allocation and the three
    balancing flags; the phase assembly additionally reads the value width
    and the DRAM bandwidth per cycle.  Keying the phase memo on exactly
    these knobs lets configs differing only in, say, γ or buffer sizing
    share one priced Weighting phase.
    """
    return (
        cfg.num_rows,
        cfg.num_cols,
        cfg.macs_per_group,
        cfg.rows_per_group,
        cfg.enable_flexible_mac,
        cfg.enable_zero_skipping,
        cfg.enable_load_redistribution,
        cfg.bytes_per_value,
        cfg.dram_bandwidth_bytes_per_s,
        cfg.frequency_hz,
    )


def _aggregation_knobs(cfg: AcceleratorConfig) -> tuple:
    """Every configuration field the Aggregation pricing depends on
    *besides* the cache-simulation key (which carries the buffer/γ/miss-path
    knobs already)."""
    return (
        cfg.num_rows,
        cfg.num_cols,
        cfg.macs_per_group,
        cfg.rows_per_group,
        cfg.enable_aggregation_load_balancing,
        cfg.bytes_per_value,
        cfg.dram_bandwidth_bytes_per_s,
        cfg.frequency_hz,
        cfg.output_buffer_bytes,
        cfg.enable_degree_aware_caching,
    )


class GNNIEExecutor:
    """Executes inference plans on the GNNIE performance/energy model."""

    name = "gnnie"
    #: This backend can price multi-chip plans (it handles
    #: :class:`~repro.plan.ir.HaloExchangeOp` and carries a link model on its
    #: config), so ``repro.scaleout`` and the sweep worker may partition
    #: workloads across several instances of it.
    supports_scaleout = True

    def __init__(
        self,
        config: AcceleratorConfig | None = None,
        *,
        energy_model: EnergyModel | None = None,
        area_model: AreaModel | None = None,
        tracer: Tracer | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.config = config or AcceleratorConfig()
        self.energy_model = energy_model or EnergyModel()
        self.area_model = area_model or AreaModel()
        #: Observability hooks; the defaults are shared no-ops, so an
        #: un-instrumented executor's numbers (and goldens) are untouched.
        self.tracer = tracer or NULL_TRACER
        self.metrics = metrics or NULL_METRICS
        self._cache_results: dict[tuple, CacheSimulationResult] = {}
        #: Priced Aggregation phases keyed by (cache key, width, GAT-ness,
        #: pricing knobs).  Per instance — like the cache-result memo — so a
        #: batch sharing one executor dedupes identical pricings while the
        #: scalar fresh-executor-per-cell path keeps its purity guarantee.
        self._aggregation_memo: dict[tuple, PhaseResult] = {}

    # ------------------------------------------------------------------ #
    # Executor protocol
    # ------------------------------------------------------------------ #
    def execute(
        self,
        plan: InferencePlan,
        graph: Graph,
        config: AcceleratorConfig | None = None,
    ) -> InferenceResult:
        """Run one lowered inference on one dataset graph."""
        # Structural verification before any pricing; memoized per plan
        # content, so batch/sweep reruns cost one dict lookup
        # (REPRO_NO_VERIFY=1 disables).
        verify_plan(plan)
        # Auto-sizing sentinel only: an explicit input_buffer_bytes override
        # (e.g. a buffer-sweep cell) is simulated at the capacity it names.
        cfg = (config or self.config).resolve_input_buffer(graph.name)
        tracer = self.tracer
        # Graph-pure precompute (fingerprints, sampled adjacencies, block
        # nonzero counts, RLC sizes, priced weighting phases) is shared
        # process-wide per graph; see repro.sim.batch.
        context = pricing_context(graph)
        with tracer.span(
            "inference",
            category="inference",
            dataset=graph.name,
            family=plan.family,
            config=cfg.name,
        ) as root:
            layers = []
            annotations = []  # (layer, layer span, {slot: [(op span, busy cycles)]})
            for stage in plan.layers:
                with tracer.span(
                    f"layer{stage.index}",
                    category="layer",
                    layer=stage.index,
                    in_features=stage.in_features,
                    out_features=stage.out_features,
                ) as layer_span:
                    layer, slots = self._execute_layer(stage, graph, cfg, context)
                layers.append(layer)
                annotations.append((layer, layer_span, slots))
            for layer in layers:
                self._overlap_layer_memory(layer)
            with tracer.span(
                "preprocess:degree_binning", category="op", layer=-1
            ) as preprocess_span:
                preprocessing = self._global_preprocessing_cycles(plan, graph, cfg)
            result = InferenceResult(
                dataset=graph.name,
                model=plan.family.upper(),
                config_name=cfg.name,
                layers=layers,
                frequency_hz=cfg.frequency_hz,
                global_preprocessing_cycles=preprocessing,
            )
            result.energy = self._energy(result, cfg)
            if tracer.enabled:
                preprocess_span.set(cycles=preprocessing)
                self._annotate_spans(result, annotations, root)
        return result

    def execute_batch(
        self,
        plan: InferencePlan,
        graph: Graph,
        configs: "list[AcceleratorConfig | None] | tuple[AcceleratorConfig | None, ...]",
    ) -> list[InferenceResult]:
        """Price one plan under many configurations on one executor.

        The per-(plan, graph) precompute — CSR fingerprints, neighbor
        sampling, per-block nonzero counts, exact RLC sizes, the undirected
        edge index — is computed once (shared via the graph's pricing
        context), the per-iteration cache columns are priced in one
        vectorized NumPy pass per distinct workload, and the instance memos
        dedupe cache-policy simulations by (graph, buffer config) and priced
        phases by the knobs they read, so N configs cost one graph pass plus
        N cheap pricing passes.  Each returned result is byte-identical to a
        fresh executor's ``execute`` for the same config (the batch-vs-scalar
        equivalence test pins this).
        """
        return [self.execute(plan, graph, config) for config in configs]

    def chip_area_mm2(self, config: AcceleratorConfig | None = None) -> float:
        return self.area_model.chip_area_mm2(config or self.config)

    # ------------------------------------------------------------------ #
    # Layer construction
    # ------------------------------------------------------------------ #
    def _execute_layer(
        self,
        stage: PlanLayer,
        graph: Graph,
        cfg: AcceleratorConfig,
        context: GraphPricingContext,
    ) -> tuple[LayerResult, dict[str, list]]:
        weighting: PhaseResult | None = None
        attention: PhaseResult | None = None
        aggregation: PhaseResult | None = None
        communication: PhaseResult | None = None
        tracer = self.tracer
        #: Per phase slot, the (span, pre-overlap busy cycles) of each op —
        #: the bookkeeping `_annotate_spans` needs to turn the post-overlap
        #: layer totals into exact per-op cycle attribution.
        slot_spans: dict[str, list] = {}

        def accumulate(slot: PhaseResult | None, phase: PhaseResult) -> PhaseResult:
            # A layer may lower to several ops of one kind (e.g. an SGC-style
            # family with multiple propagation hops); their costs add up.
            return phase if slot is None else slot.merge(phase)

        def note(span, slot: str, phase: PhaseResult) -> None:
            if not tracer.enabled:
                return
            span.set(
                compute_cycles=phase.compute_cycles,
                sfu_cycles=phase.sfu_cycles,
                mac_operations=phase.mac_operations,
                dram_bytes=phase.dram_bytes,
                energy_pj=self._phase_energy_pj(phase),
            )
            busy = phase.compute_cycles + phase.sfu_cycles + phase.preprocessing_cycles
            slot_spans.setdefault(slot, []).append((span, busy))

        for op in stage.ops:
            if isinstance(op, SampleOp):
                with tracer.span("op:sample", category="op", layer=stage.index) as span:
                    self._resolve_adjacency(
                        AdjacencyRef("sampled", op.sample_size), graph, context
                    )
                # Sampling is plan-resolution work, free on the modeled chip.
                span.set(cycles=0)
            elif isinstance(op, WeightingOp):
                with tracer.span("op:weighting", category="op", layer=stage.index) as span:
                    phase = self._weighting_phase(op, graph, cfg, context)
                weighting = accumulate(weighting, phase)
                note(span, "weighting", phase)
            elif isinstance(op, AttentionOp):
                with tracer.span("op:attention", category="op", layer=stage.index) as span:
                    phase = self._attention_phase(op, graph, cfg)
                attention = accumulate(attention, phase)
                note(span, "attention", phase)
            elif isinstance(op, AggregationOp):
                with tracer.span("op:aggregation", category="op", layer=stage.index) as span:
                    adjacency = self._resolve_adjacency(op.adjacency, graph, context)
                    phase = self._aggregation_phase(op, adjacency, cfg, context)
                aggregation = accumulate(aggregation, phase)
                note(span, "aggregation", phase)
            elif isinstance(op, DenseMatmulOp):
                with tracer.span("op:dense_matmul", category="op", layer=stage.index) as span:
                    phase = self._dense_matmul_phase(op, graph, cfg)
                weighting = accumulate(weighting, phase)
                note(span, "weighting", phase)
            elif isinstance(op, HaloExchangeOp):
                with tracer.span(
                    "op:halo_exchange",
                    category="op",
                    layer=stage.index,
                    halo_vertices=op.halo_vertices,
                ) as span:
                    phase = self._halo_exchange_phase(op, cfg)
                communication = accumulate(communication, phase)
                note(span, "communication", phase)
            else:
                raise TypeError(f"GNNIE executor cannot handle op {op!r}")
        if weighting is None:
            weighting = PhaseResult("weighting")
        if aggregation is None:
            aggregation = PhaseResult("aggregation")
        layer = LayerResult(
            layer_index=stage.index,
            in_features=stage.in_features,
            out_features=stage.out_features,
            weighting=weighting,
            attention=attention,
            aggregation=aggregation,
            communication=communication,
        )
        return layer, slot_spans

    # ------------------------------------------------------------------ #
    # Per-op handlers
    # ------------------------------------------------------------------ #
    def _weighting_phase(
        self,
        op: WeightingOp,
        graph: Graph,
        cfg: AcceleratorConfig,
        context: GraphPricingContext,
    ) -> PhaseResult:
        exact_input = op.is_input_layer and op.in_features == graph.feature_length
        density = HIDDEN_DENSITY if op.density is None else op.density
        # Priced phases are memoized per graph on the knobs they actually
        # read, so a config batch varying, say, γ or buffer sizes prices
        # each distinct Weighting workload once.  The memo holds pristine
        # copies: the overlap pass mutates phase results after pricing.
        key = (
            "weighting",
            exact_input,
            op.in_features,
            op.out_features,
            None if exact_input else density,
            _weighting_knobs(cfg),
        )
        cached = context.phase_memo.get(key)
        if cached is not None:
            return replace(cached)
        if exact_input:
            # The input layer prices the dataset's actual sparse features:
            # per-block nonzero counts and the exact RLC-compressed size are
            # pure functions of (graph, block size | value width), shared
            # across configs via the pricing context.
            block_size = -(-op.in_features // cfg.num_rows)
            schedule = schedule_weighting(
                None,
                op.out_features,
                cfg,
                block_nonzeros=context.input_blocks(block_size),
                in_features=op.in_features,
            )
            phase = weighting_phase_from_schedule(
                schedule,
                graph.num_vertices,
                op.in_features,
                op.out_features,
                cfg,
                input_traffic_bits=context.input_rlc_bits(8 * cfg.bytes_per_value),
            )
        else:
            # Later layers: statistical block nonzeros at the modeled density.
            block_size = -(-op.in_features // cfg.num_rows)
            num_blocks = -(-op.in_features // block_size)
            per_block = int(round(density * block_size))
            block_nonzeros = np.full(
                (graph.num_vertices, num_blocks), per_block, dtype=np.int64
            )
            phase, _ = simulate_weighting(
                cfg,
                op.out_features,
                block_nonzeros=block_nonzeros,
                in_features=op.in_features,
                is_input_layer=False,
            )
        context.phase_memo[key] = replace(phase)
        return phase

    def _attention_phase(
        self, op: AttentionOp, graph: Graph, cfg: AcceleratorConfig
    ) -> PhaseResult:
        schedule = schedule_attention(graph.num_vertices, op.out_features, cfg)
        return PhaseResult(
            name="attention",
            compute_cycles=schedule.compute_cycles,
            mac_operations=schedule.total_macs,
            dram_write_bytes=schedule.output_bytes,
            dram_output_stream_bytes=schedule.output_bytes,
            output_buffer_bytes=schedule.output_bytes,
        )

    def _aggregation_phase(
        self,
        op: AggregationOp,
        adjacency: CSRGraph,
        cfg: AcceleratorConfig,
        context: GraphPricingContext,
    ) -> PhaseResult:
        cache_key = self._cache_key(adjacency, cfg, context)
        memo_key = (cache_key, op.width, op.weighted, _aggregation_knobs(cfg))
        cached = self._aggregation_memo.get(memo_key)
        if cached is not None:
            return replace(cached)
        cache_result = self._cached_cache_result(adjacency, cfg, op.width, context, cache_key)
        phase = aggregation_phase_from_cache(
            cache_result, adjacency, cfg, op.width, is_gat=op.weighted
        )
        self._aggregation_memo[memo_key] = replace(phase)
        return phase

    def _halo_exchange_phase(
        self, op: HaloExchangeOp, cfg: AcceleratorConfig
    ) -> PhaseResult:
        """Inter-chip boundary-feature transfer before aggregation.

        Cost model: one fixed link latency (synchronization + first flit)
        plus the serialized halo payload — ``halo_vertices × features``
        values at the configured width — over the chip-to-chip link
        bandwidth.  A chip with an empty halo (nothing cut toward it) pays
        nothing.  The traffic is link traffic, not DRAM traffic, so it is
        deliberately absent from the DRAM/energy accounting.
        """
        if op.halo_vertices <= 0:
            return PhaseResult(name="communication")
        payload_bytes = op.halo_vertices * op.features * cfg.bytes_per_value
        cycles = cfg.link_latency_cycles + int(
            np.ceil(payload_bytes / cfg.link_bytes_per_cycle)
        )
        return PhaseResult(name="communication", compute_cycles=cycles)

    def _dense_matmul_phase(
        self, op: DenseMatmulOp, graph: Graph, cfg: AcceleratorConfig
    ) -> PhaseResult:
        """Graph-scaled dense products (DiffPool's Sᵀ A S and Sᵀ Z)."""
        macs = graph.num_edges * op.macs_per_edge + graph.num_vertices * op.macs_per_vertex
        compute_cycles = int(np.ceil(macs / cfg.total_macs))
        softmax_ops = graph.num_vertices * op.softmax_ops_per_vertex
        output_bytes = op.output_values * cfg.bytes_per_value
        return PhaseResult(
            name="weighting",
            compute_cycles=compute_cycles,
            sfu_cycles=int(np.ceil(softmax_ops / (4 * cfg.num_rows))),
            mac_operations=int(macs),
            sfu_operations=int(softmax_ops),
            dram_write_bytes=int(output_bytes),
            dram_output_stream_bytes=int(output_bytes),
            output_buffer_bytes=int(output_bytes),
        )

    # ------------------------------------------------------------------ #
    # Span attribution
    # ------------------------------------------------------------------ #
    def _phase_energy_pj(self, phase: PhaseResult) -> float:
        """Dynamic energy attributable to one phase contribution (pJ).

        Static (leakage) energy is a whole-run quantity and stays on the
        inference root span only.
        """
        model = self.energy_model
        return (
            model.mac_energy(phase.mac_operations)
            + model.sfu_energy(phase.sfu_operations)
            + model.buffer_energy("input", phase.input_buffer_bytes)
            + model.buffer_energy("output", phase.output_buffer_bytes)
            + model.buffer_energy("weight", phase.weight_buffer_bytes)
            + model.dram_energy(phase.dram_input_stream_bytes)
            + model.dram_energy(phase.dram_weight_stream_bytes)
            + model.dram_energy(phase.dram_output_stream_bytes)
        )

    def _annotate_spans(self, result: InferenceResult, annotations, root) -> None:
        """Attach final modeled cycle attribution to the recorded spans.

        ``_overlap_layer_memory`` re-derives memory stalls *after* the per-op
        handlers ran, so per-op numbers captured at op time no longer sum to
        the layer's final total.  Here each op span gets its own busy cycles
        (compute + SFU + preprocessing, unchanged by overlap) and the
        layer's residual — the exposed memory stall the overlap pass charged
        to the aggregation phase — lands on the layer's aggregation span (or
        its last op when a layer lowered without one).  The invariant the
        acceptance tests pin: summing ``cycles`` over every category="op"
        span (including the global-preprocessing span) reproduces
        ``result.total_cycles`` exactly.
        """
        for layer, layer_span, slots in annotations:
            layer_span.set(
                cycles=layer.total_cycles,
                mac_operations=sum(p.mac_operations for p in layer.phases()),
                dram_bytes=sum(p.dram_bytes for p in layer.phases()),
            )
            spans = [entry for slot in ("weighting", "attention", "aggregation",
                                        "communication")
                     for entry in slots.get(slot, [])]
            assigned = 0
            for span, busy in spans:
                span.set(cycles=busy)
                assigned += busy
            residual = layer.total_cycles - assigned
            if residual and spans:
                # Prefer the aggregation slot (where the overlap pass parks
                # exposed stalls); otherwise the layer's last op.
                target = (slots.get("aggregation") or spans)[-1][0]
                target.set(cycles=int(target.record.attrs.get("cycles", 0)) + residual)
        root.set(
            cycles=result.total_cycles,
            mac_operations=result.total_mac_operations,
            dram_bytes=result.total_dram_bytes,
            energy_pj=result.energy.total_pj,
            latency_s=result.latency_seconds,
        )

    # ------------------------------------------------------------------ #
    # Helpers
    # ------------------------------------------------------------------ #
    def _resolve_adjacency(
        self, ref: AdjacencyRef, graph: Graph, context: GraphPricingContext
    ) -> CSRGraph:
        """Materialize an adjacency handle (memoized per graph).

        The neighbor sampler is deterministic (seeded by the vertex count),
        so sharing the sampled adjacency across executions and configs
        resolves every handle to the same subgraph the per-execution memo
        used to produce.
        """
        if ref.kind == "full":
            return graph.adjacency
        if ref.kind != "sampled":
            raise KeyError(f"unknown adjacency handle {ref!r}")
        return context.sampled_adjacency(ref.sample_size or 25)

    def _cache_key(
        self, adjacency: CSRGraph, cfg: AcceleratorConfig, context: GraphPricingContext
    ) -> tuple:
        # feature_length is intentionally absent: one cache sim per (graph,
        # buffer config) is shared across layers (see the modeling notes).
        # bytes_per_value is present: it sets the per-vertex record size and
        # therefore the buffer's vertex capacity, so quantization variants
        # sharing one executor must not share one simulation.
        return (
            context.fingerprint(adjacency),
            cfg.input_buffer_bytes,
            cfg.bytes_per_value,
            cfg.gamma,
            cfg.enable_degree_aware_caching,
            cfg.miss_path_mechanisms,
            cfg.victim_cache_entries,
            cfg.miss_cache_entries,
            cfg.stream_buffer_count,
            cfg.stream_buffer_depth,
        )

    def _cached_cache_result(
        self,
        adjacency: CSRGraph,
        cfg: AcceleratorConfig,
        feature_length: int,
        context: GraphPricingContext,
        key: tuple | None = None,
    ) -> CacheSimulationResult:
        if key is None:
            key = self._cache_key(adjacency, cfg, context)
        if key not in self._cache_results:
            # The per-executor memo decides which feature_length primes the
            # shared simulation (first op wins — the modeling contract);
            # the actual run is then deduped process-wide through the
            # graph context, keyed by (key, feature_length) so it stays a
            # pure function of graph content and config.  Distinct
            # executors priming with the same width — the per-family sweep
            # groups of one dataset — share one simulation run.
            pure_key = (*key, feature_length)
            result = context.cache_results.get(pure_key)
            if result is None:
                # Metrics are recorded only when the simulation actually
                # runs; memo hits re-use the numbers without
                # double-counting events.
                self.metrics.counter("executor.cache_sim.runs").inc()
                edge_index = (
                    context.edge_index(adjacency) if cfg.enable_degree_aware_caching else None
                )
                result = run_cache_simulation(
                    adjacency, cfg, feature_length, metrics=self.metrics, edge_index=edge_index
                )
                context.cache_results[pure_key] = result
            else:
                self.metrics.counter("executor.cache_sim.context_hits").inc()
            self._cache_results[key] = result
        else:
            self.metrics.counter("executor.cache_sim.memo_hits").inc()
        return self._cache_results[key]

    @staticmethod
    def _overlap_layer_memory(layer: LayerResult) -> None:
        """Re-derive exposed memory stalls at layer granularity.

        The memory access scheduler prefetches streaming traffic (feature
        blocks, weight columns, cached-vertex records, partial-sum spills)
        while any phase of the layer computes, so only the traffic exceeding
        the layer's total busy time is exposed.  Random accesses (present
        only in the ablation baselines) cannot be prefetched and stay fully
        exposed where the phase charged them.
        """
        phases = layer.phases()
        busy = sum(p.compute_cycles + p.sfu_cycles + p.preprocessing_cycles for p in phases)
        streaming = sum(p.streaming_memory_cycles for p in phases)
        random_stalls = sum(
            max(0, p.memory_stall_cycles - max(0, p.streaming_memory_cycles -
                (p.compute_cycles + p.sfu_cycles)))
            for p in phases
            if p.dram_random_accesses
        )
        exposed = max(0, streaming - busy)
        for phase in phases:
            phase.memory_stall_cycles = 0
        # Attribute the layer's exposed stall (plus unhideable random-access
        # stalls) to the aggregation phase, which is where the traffic peaks.
        layer.aggregation.memory_stall_cycles = int(exposed + random_stalls)

    def _global_preprocessing_cycles(
        self, plan: InferencePlan, graph: Graph, cfg: AcceleratorConfig
    ) -> int:
        """Degree-based vertex reordering (binning), charged once per inference."""
        if not cfg.enable_degree_aware_caching:
            return 0
        cycles = 0
        for op in plan.global_ops:
            if isinstance(op, PreprocessOp) and op.kind == "degree_binning":
                cycles += int(np.ceil(graph.num_vertices / _PREPROCESSING_OPS_PER_CYCLE))
        return cycles

    def _energy(self, result: InferenceResult, cfg: AcceleratorConfig) -> EnergyBreakdown:
        model = self.energy_model
        breakdown = EnergyBreakdown()
        for layer in result.layers:
            for phase in layer.phases():
                breakdown.mac_pj += model.mac_energy(phase.mac_operations)
                breakdown.sfu_pj += model.sfu_energy(phase.sfu_operations)
                breakdown.input_buffer_pj += model.buffer_energy("input", phase.input_buffer_bytes)
                breakdown.output_buffer_pj += model.buffer_energy(
                    "output", phase.output_buffer_bytes
                )
                breakdown.weight_buffer_pj += model.buffer_energy(
                    "weight", phase.weight_buffer_bytes
                )
                breakdown.dram_input_pj += model.dram_energy(phase.dram_input_stream_bytes)
                breakdown.dram_weight_pj += model.dram_energy(phase.dram_weight_stream_bytes)
                breakdown.dram_output_pj += model.dram_energy(phase.dram_output_stream_bytes)
        breakdown.static_pj = model.static_energy(result.total_cycles, cfg.frequency_hz)
        return breakdown


register_executor("gnnie", GNNIEExecutor)
