"""GNNIE plan executor: per-op handlers over the phase-op IR.

:class:`GNNIEExecutor` runs an :class:`~repro.plan.ir.InferencePlan` on a
dataset graph under one accelerator configuration, producing the
cycle/traffic/energy :class:`~repro.sim.results.InferenceResult` behind the
headline comparisons (Figs. 12–15, Table IV) and the ablations
(Figs. 16–18).  Each op type has one handler; the executor knows nothing
about GNN families — family structure is fully encoded in the plan by the
lowering rules in :mod:`repro.models.lowering`.

Modeling notes
--------------
* Input-layer Weighting uses the dataset's *actual* sparse feature matrix,
  so the rabbit/turtle imbalance and the zero-skipping benefit are driven by
  real per-block nonzero counts.  Later layers' features (post-ReLU
  activations) are modeled with the density the op carries
  (:data:`~repro.plan.ir.HIDDEN_DENSITY`), matching the paper's observation
  that the RLC decoder is bypassed after layer 1.
* ``sampled`` adjacency handles are resolved once per execution with the
  pregenerated-stream neighbor sampler; the cache policy then runs on the
  sampled subgraph.
* The cache-policy simulation is run once per (graph fingerprint, buffer
  configuration) and deliberately shared across layers and plans as an
  approximation: the layer feature length changes the per-vertex record
  size (and hence the buffer's vertex capacity), but re-simulating per
  width would dominate runtime, so the first op's width sizes the sim and
  later ops reuse it.
"""

from __future__ import annotations

import weakref
import zlib

import numpy as np

from repro.cache.policy import CacheSimulationResult
from repro.graph.csr import CSRGraph
from repro.graph.graph import Graph
from repro.hw.config import AcceleratorConfig
from repro.hw.energy import AreaModel, EnergyBreakdown, EnergyModel
from repro.mapping.attention import schedule_attention
from repro.models.graphsage import NeighborSampler
from repro.obs.metrics import NULL_METRICS, MetricsRegistry
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.plan.executor import register_executor
from repro.plan.ir import (
    HIDDEN_DENSITY,
    AdjacencyRef,
    AggregationOp,
    AttentionOp,
    DenseMatmulOp,
    InferencePlan,
    PlanLayer,
    PreprocessOp,
    SampleOp,
    WeightingOp,
)
from repro.sim.aggregation_sim import aggregation_phase_from_cache, run_cache_simulation
from repro.sim.results import InferenceResult, LayerResult, PhaseResult
from repro.sim.weighting_sim import simulate_weighting

__all__ = ["GNNIEExecutor"]

#: Throughput of the host-side preprocessing (degree binning), ops/cycle.
_PREPROCESSING_OPS_PER_CYCLE = 8


def _adjacency_fingerprint(adjacency: CSRGraph) -> tuple[int, int, int]:
    """Stable content key for the per-(graph, config) cache-result memo.

    ``id(adjacency)`` can alias a *different* graph once the original is
    garbage collected, silently reusing a stale simulation; fingerprinting
    the CSR content (vertex/edge counts plus a checksum over both arrays)
    cannot.
    """
    checksum = zlib.crc32(np.ascontiguousarray(adjacency.indptr).tobytes())
    checksum = zlib.crc32(np.ascontiguousarray(adjacency.indices).tobytes(), checksum)
    return (adjacency.num_vertices, adjacency.num_edges, checksum)


class GNNIEExecutor:
    """Executes inference plans on the GNNIE performance/energy model."""

    name = "gnnie"

    def __init__(
        self,
        config: AcceleratorConfig | None = None,
        *,
        energy_model: EnergyModel | None = None,
        area_model: AreaModel | None = None,
        tracer: Tracer | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.config = config or AcceleratorConfig()
        self.energy_model = energy_model or EnergyModel()
        self.area_model = area_model or AreaModel()
        #: Observability hooks; the defaults are shared no-ops, so an
        #: un-instrumented executor's numbers (and goldens) are untouched.
        self.tracer = tracer or NULL_TRACER
        self.metrics = metrics or NULL_METRICS
        self._cache_results: dict[tuple, CacheSimulationResult] = {}
        # id -> (weakref, fingerprint); weak references avoid pinning every
        # simulated graph in memory, and a dead/realiased id is detected by
        # the identity check on the dereferenced graph.
        self._fingerprints: dict[
            int, tuple[weakref.ref, tuple[int, int, int]]
        ] = {}

    # ------------------------------------------------------------------ #
    # Executor protocol
    # ------------------------------------------------------------------ #
    def execute(
        self,
        plan: InferencePlan,
        graph: Graph,
        config: AcceleratorConfig | None = None,
    ) -> InferenceResult:
        """Run one lowered inference on one dataset graph."""
        # Auto-sizing sentinel only: an explicit input_buffer_bytes override
        # (e.g. a buffer-sweep cell) is simulated at the capacity it names.
        cfg = (config or self.config).resolve_input_buffer(graph.name)
        tracer = self.tracer
        adjacencies: dict[AdjacencyRef, CSRGraph] = {}
        with tracer.span(
            "inference",
            category="inference",
            dataset=graph.name,
            family=plan.family,
            config=cfg.name,
        ) as root:
            layers = []
            annotations = []  # (layer, layer span, {slot: [(op span, busy cycles)]})
            for stage in plan.layers:
                with tracer.span(
                    f"layer{stage.index}",
                    category="layer",
                    layer=stage.index,
                    in_features=stage.in_features,
                    out_features=stage.out_features,
                ) as layer_span:
                    layer, slots = self._execute_layer(stage, graph, cfg, adjacencies)
                layers.append(layer)
                annotations.append((layer, layer_span, slots))
            for layer in layers:
                self._overlap_layer_memory(layer)
            with tracer.span(
                "preprocess:degree_binning", category="op", layer=-1
            ) as preprocess_span:
                preprocessing = self._global_preprocessing_cycles(plan, graph, cfg)
            result = InferenceResult(
                dataset=graph.name,
                model=plan.family.upper(),
                config_name=cfg.name,
                layers=layers,
                frequency_hz=cfg.frequency_hz,
                global_preprocessing_cycles=preprocessing,
            )
            result.energy = self._energy(result, cfg)
            if tracer.enabled:
                preprocess_span.set(cycles=preprocessing)
                self._annotate_spans(result, annotations, root)
        return result

    def chip_area_mm2(self, config: AcceleratorConfig | None = None) -> float:
        return self.area_model.chip_area_mm2(config or self.config)

    # ------------------------------------------------------------------ #
    # Layer construction
    # ------------------------------------------------------------------ #
    def _execute_layer(
        self,
        stage: PlanLayer,
        graph: Graph,
        cfg: AcceleratorConfig,
        adjacencies: dict[AdjacencyRef, CSRGraph],
    ) -> tuple[LayerResult, dict[str, list]]:
        weighting: PhaseResult | None = None
        attention: PhaseResult | None = None
        aggregation: PhaseResult | None = None
        tracer = self.tracer
        #: Per phase slot, the (span, pre-overlap busy cycles) of each op —
        #: the bookkeeping `_annotate_spans` needs to turn the post-overlap
        #: layer totals into exact per-op cycle attribution.
        slot_spans: dict[str, list] = {}

        def accumulate(slot: PhaseResult | None, phase: PhaseResult) -> PhaseResult:
            # A layer may lower to several ops of one kind (e.g. an SGC-style
            # family with multiple propagation hops); their costs add up.
            return phase if slot is None else slot.merge(phase)

        def note(span, slot: str, phase: PhaseResult) -> None:
            if not tracer.enabled:
                return
            span.set(
                compute_cycles=phase.compute_cycles,
                sfu_cycles=phase.sfu_cycles,
                mac_operations=phase.mac_operations,
                dram_bytes=phase.dram_bytes,
                energy_pj=self._phase_energy_pj(phase),
            )
            busy = phase.compute_cycles + phase.sfu_cycles + phase.preprocessing_cycles
            slot_spans.setdefault(slot, []).append((span, busy))

        for op in stage.ops:
            if isinstance(op, SampleOp):
                with tracer.span("op:sample", category="op", layer=stage.index) as span:
                    self._resolve_adjacency(
                        AdjacencyRef("sampled", op.sample_size), graph, adjacencies
                    )
                # Sampling is plan-resolution work, free on the modeled chip.
                span.set(cycles=0)
            elif isinstance(op, WeightingOp):
                with tracer.span("op:weighting", category="op", layer=stage.index) as span:
                    phase = self._weighting_phase(op, graph, cfg)
                weighting = accumulate(weighting, phase)
                note(span, "weighting", phase)
            elif isinstance(op, AttentionOp):
                with tracer.span("op:attention", category="op", layer=stage.index) as span:
                    phase = self._attention_phase(op, graph, cfg)
                attention = accumulate(attention, phase)
                note(span, "attention", phase)
            elif isinstance(op, AggregationOp):
                with tracer.span("op:aggregation", category="op", layer=stage.index) as span:
                    adjacency = self._resolve_adjacency(op.adjacency, graph, adjacencies)
                    phase = self._aggregation_phase(op, adjacency, cfg)
                aggregation = accumulate(aggregation, phase)
                note(span, "aggregation", phase)
            elif isinstance(op, DenseMatmulOp):
                with tracer.span("op:dense_matmul", category="op", layer=stage.index) as span:
                    phase = self._dense_matmul_phase(op, graph, cfg)
                weighting = accumulate(weighting, phase)
                note(span, "weighting", phase)
            else:
                raise TypeError(f"GNNIE executor cannot handle op {op!r}")
        if weighting is None:
            weighting = PhaseResult("weighting")
        if aggregation is None:
            aggregation = PhaseResult("aggregation")
        layer = LayerResult(
            layer_index=stage.index,
            in_features=stage.in_features,
            out_features=stage.out_features,
            weighting=weighting,
            attention=attention,
            aggregation=aggregation,
        )
        return layer, slot_spans

    # ------------------------------------------------------------------ #
    # Per-op handlers
    # ------------------------------------------------------------------ #
    def _weighting_phase(
        self, op: WeightingOp, graph: Graph, cfg: AcceleratorConfig
    ) -> PhaseResult:
        if op.is_input_layer and op.in_features == graph.feature_length:
            phase, _ = simulate_weighting(
                cfg,
                op.out_features,
                features=graph.features,
                is_input_layer=True,
            )
            return phase
        # Later layers: statistical block nonzeros at the modeled density.
        density = HIDDEN_DENSITY if op.density is None else op.density
        block_size = -(-op.in_features // cfg.num_rows)
        num_blocks = -(-op.in_features // block_size)
        per_block = int(round(density * block_size))
        block_nonzeros = np.full((graph.num_vertices, num_blocks), per_block, dtype=np.int64)
        phase, _ = simulate_weighting(
            cfg,
            op.out_features,
            block_nonzeros=block_nonzeros,
            in_features=op.in_features,
            is_input_layer=False,
        )
        return phase

    def _attention_phase(
        self, op: AttentionOp, graph: Graph, cfg: AcceleratorConfig
    ) -> PhaseResult:
        schedule = schedule_attention(graph.num_vertices, op.out_features, cfg)
        return PhaseResult(
            name="attention",
            compute_cycles=schedule.compute_cycles,
            mac_operations=schedule.total_macs,
            dram_write_bytes=schedule.output_bytes,
            dram_output_stream_bytes=schedule.output_bytes,
            output_buffer_bytes=schedule.output_bytes,
        )

    def _aggregation_phase(
        self, op: AggregationOp, adjacency: CSRGraph, cfg: AcceleratorConfig
    ) -> PhaseResult:
        cache_result = self._cached_cache_result(adjacency, cfg, op.width)
        return aggregation_phase_from_cache(
            cache_result, adjacency, cfg, op.width, is_gat=op.weighted
        )

    def _dense_matmul_phase(
        self, op: DenseMatmulOp, graph: Graph, cfg: AcceleratorConfig
    ) -> PhaseResult:
        """Graph-scaled dense products (DiffPool's Sᵀ A S and Sᵀ Z)."""
        macs = graph.num_edges * op.macs_per_edge + graph.num_vertices * op.macs_per_vertex
        compute_cycles = int(np.ceil(macs / cfg.total_macs))
        softmax_ops = graph.num_vertices * op.softmax_ops_per_vertex
        output_bytes = op.output_values * cfg.bytes_per_value
        return PhaseResult(
            name="weighting",
            compute_cycles=compute_cycles,
            sfu_cycles=int(np.ceil(softmax_ops / (4 * cfg.num_rows))),
            mac_operations=int(macs),
            sfu_operations=int(softmax_ops),
            dram_write_bytes=int(output_bytes),
            dram_output_stream_bytes=int(output_bytes),
            output_buffer_bytes=int(output_bytes),
        )

    # ------------------------------------------------------------------ #
    # Span attribution
    # ------------------------------------------------------------------ #
    def _phase_energy_pj(self, phase: PhaseResult) -> float:
        """Dynamic energy attributable to one phase contribution (pJ).

        Static (leakage) energy is a whole-run quantity and stays on the
        inference root span only.
        """
        model = self.energy_model
        return (
            model.mac_energy(phase.mac_operations)
            + model.sfu_energy(phase.sfu_operations)
            + model.buffer_energy("input", phase.input_buffer_bytes)
            + model.buffer_energy("output", phase.output_buffer_bytes)
            + model.buffer_energy("weight", phase.weight_buffer_bytes)
            + model.dram_energy(phase.dram_input_stream_bytes)
            + model.dram_energy(phase.dram_weight_stream_bytes)
            + model.dram_energy(phase.dram_output_stream_bytes)
        )

    def _annotate_spans(self, result: InferenceResult, annotations, root) -> None:
        """Attach final modeled cycle attribution to the recorded spans.

        ``_overlap_layer_memory`` re-derives memory stalls *after* the per-op
        handlers ran, so per-op numbers captured at op time no longer sum to
        the layer's final total.  Here each op span gets its own busy cycles
        (compute + SFU + preprocessing, unchanged by overlap) and the
        layer's residual — the exposed memory stall the overlap pass charged
        to the aggregation phase — lands on the layer's aggregation span (or
        its last op when a layer lowered without one).  The invariant the
        acceptance tests pin: summing ``cycles`` over every category="op"
        span (including the global-preprocessing span) reproduces
        ``result.total_cycles`` exactly.
        """
        for layer, layer_span, slots in annotations:
            layer_span.set(
                cycles=layer.total_cycles,
                mac_operations=sum(p.mac_operations for p in layer.phases()),
                dram_bytes=sum(p.dram_bytes for p in layer.phases()),
            )
            spans = [entry for slot in ("weighting", "attention", "aggregation")
                     for entry in slots.get(slot, [])]
            assigned = 0
            for span, busy in spans:
                span.set(cycles=busy)
                assigned += busy
            residual = layer.total_cycles - assigned
            if residual and spans:
                # Prefer the aggregation slot (where the overlap pass parks
                # exposed stalls); otherwise the layer's last op.
                target = (slots.get("aggregation") or spans)[-1][0]
                target.set(cycles=int(target.record.attrs.get("cycles", 0)) + residual)
        root.set(
            cycles=result.total_cycles,
            mac_operations=result.total_mac_operations,
            dram_bytes=result.total_dram_bytes,
            energy_pj=result.energy.total_pj,
            latency_s=result.latency_seconds,
        )

    # ------------------------------------------------------------------ #
    # Helpers
    # ------------------------------------------------------------------ #
    def _resolve_adjacency(
        self,
        ref: AdjacencyRef,
        graph: Graph,
        adjacencies: dict[AdjacencyRef, CSRGraph],
    ) -> CSRGraph:
        """Materialize an adjacency handle (memoized per execution)."""
        if ref.kind == "full":
            return graph.adjacency
        if ref.kind != "sampled":
            raise KeyError(f"unknown adjacency handle {ref!r}")
        if ref not in adjacencies:
            sampler = NeighborSampler(seed=graph.num_vertices)
            sampled_edges = sampler.sample_edges(graph.adjacency, ref.sample_size or 25)
            adjacencies[ref] = CSRGraph.from_edge_list(
                sampled_edges, num_vertices=graph.num_vertices, symmetric=True
            )
        return adjacencies[ref]

    def _cached_cache_result(
        self, adjacency: CSRGraph, cfg: AcceleratorConfig, feature_length: int
    ) -> CacheSimulationResult:
        # feature_length is intentionally absent: one cache sim per (graph,
        # buffer config) is shared across layers (see the modeling notes).
        key = (
            self._fingerprint(adjacency),
            cfg.input_buffer_bytes,
            cfg.gamma,
            cfg.enable_degree_aware_caching,
            cfg.miss_path_mechanisms,
            cfg.victim_cache_entries,
            cfg.miss_cache_entries,
            cfg.stream_buffer_count,
            cfg.stream_buffer_depth,
        )
        if key not in self._cache_results:
            # Metrics are recorded only when the simulation actually runs;
            # memo hits re-use the numbers without double-counting events.
            self.metrics.counter("executor.cache_sim.runs").inc()
            self._cache_results[key] = run_cache_simulation(
                adjacency, cfg, feature_length, metrics=self.metrics
            )
        else:
            self.metrics.counter("executor.cache_sim.memo_hits").inc()
        return self._cache_results[key]

    def _fingerprint(self, adjacency: CSRGraph) -> tuple[int, int, int]:
        """Per-instance memo of the O(E) content fingerprint."""
        key = id(adjacency)
        entry = self._fingerprints.get(key)
        if entry is not None and entry[0]() is adjacency:
            return entry[1]
        fingerprint = _adjacency_fingerprint(adjacency)
        self._fingerprints[key] = (weakref.ref(adjacency), fingerprint)
        weakref.finalize(adjacency, self._fingerprints.pop, key, None)
        return fingerprint

    @staticmethod
    def _overlap_layer_memory(layer: LayerResult) -> None:
        """Re-derive exposed memory stalls at layer granularity.

        The memory access scheduler prefetches streaming traffic (feature
        blocks, weight columns, cached-vertex records, partial-sum spills)
        while any phase of the layer computes, so only the traffic exceeding
        the layer's total busy time is exposed.  Random accesses (present
        only in the ablation baselines) cannot be prefetched and stay fully
        exposed where the phase charged them.
        """
        phases = layer.phases()
        busy = sum(p.compute_cycles + p.sfu_cycles + p.preprocessing_cycles for p in phases)
        streaming = sum(p.streaming_memory_cycles for p in phases)
        random_stalls = sum(
            max(0, p.memory_stall_cycles - max(0, p.streaming_memory_cycles -
                (p.compute_cycles + p.sfu_cycles)))
            for p in phases
            if p.dram_random_accesses
        )
        exposed = max(0, streaming - busy)
        for phase in phases:
            phase.memory_stall_cycles = 0
        # Attribute the layer's exposed stall (plus unhideable random-access
        # stalls) to the aggregation phase, which is where the traffic peaks.
        layer.aggregation.memory_stall_cycles = int(exposed + random_stalls)

    def _global_preprocessing_cycles(
        self, plan: InferencePlan, graph: Graph, cfg: AcceleratorConfig
    ) -> int:
        """Degree-based vertex reordering (binning), charged once per inference."""
        if not cfg.enable_degree_aware_caching:
            return 0
        cycles = 0
        for op in plan.global_ops:
            if isinstance(op, PreprocessOp) and op.kind == "degree_binning":
                cycles += int(np.ceil(graph.num_vertices / _PREPROCESSING_OPS_PER_CYCLE))
        return cycles

    def _energy(self, result: InferenceResult, cfg: AcceleratorConfig) -> EnergyBreakdown:
        model = self.energy_model
        breakdown = EnergyBreakdown()
        for layer in result.layers:
            for phase in layer.phases():
                breakdown.mac_pj += model.mac_energy(phase.mac_operations)
                breakdown.sfu_pj += model.sfu_energy(phase.sfu_operations)
                breakdown.input_buffer_pj += model.buffer_energy("input", phase.input_buffer_bytes)
                breakdown.output_buffer_pj += model.buffer_energy(
                    "output", phase.output_buffer_bytes
                )
                breakdown.weight_buffer_pj += model.buffer_energy(
                    "weight", phase.weight_buffer_bytes
                )
                breakdown.dram_input_pj += model.dram_energy(phase.dram_input_stream_bytes)
                breakdown.dram_weight_pj += model.dram_energy(phase.dram_weight_stream_bytes)
                breakdown.dram_output_pj += model.dram_energy(phase.dram_output_stream_bytes)
        breakdown.static_pj = model.static_energy(result.total_cycles, cfg.frequency_hz)
        return breakdown


register_executor("gnnie", GNNIEExecutor)
