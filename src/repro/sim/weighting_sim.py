"""Weighting-phase performance simulation.

Converts a :class:`~repro.mapping.weighting.WeightingSchedule` into cycles,
DRAM traffic and buffer traffic for one layer.  The weight-stationary
dataflow determines the traffic structure:

* the (RLC-compressed, for the input layer) feature vectors stream from DRAM
  through the input buffer once per pass,
* each pass loads N fresh weight columns into the (double-buffered) weight
  buffer,
* completed output elements stream through the output buffer back to DRAM.

DRAM fetches are overlapped with computation through double buffering; only
the exposed portion (fetch time exceeding compute time of the overlapping
pass) shows up as stall cycles.
"""

from __future__ import annotations

import numpy as np

from repro.hw.config import AcceleratorConfig
from repro.mapping.weighting import WeightingSchedule, schedule_weighting
from repro.sim.results import PhaseResult
from repro.sparse.rlc import rlc_compressed_bits

__all__ = ["simulate_weighting", "weighting_phase_from_schedule"]

#: Preprocessing (workload binning) throughput in operations per cycle; the
#: binning is a streaming counting sort performed while data is fetched, so
#: several block records are classified per cycle.
_PREPROCESSING_OPS_PER_CYCLE = 32


def weighting_phase_from_schedule(
    schedule: WeightingSchedule,
    num_vertices: int,
    in_features: int,
    out_features: int,
    config: AcceleratorConfig,
    *,
    input_traffic_bits: int,
    name: str = "weighting",
) -> PhaseResult:
    """Build the Weighting :class:`PhaseResult` from a static schedule."""
    bytes_per_value = config.bytes_per_value
    compute_cycles = schedule.compute_cycles

    # --- DRAM traffic ---------------------------------------------------- #
    input_bytes_per_pass = input_traffic_bits // 8
    dram_read_features = input_bytes_per_pass * schedule.num_passes
    dram_read_weights = in_features * out_features * bytes_per_value
    dram_write_outputs = num_vertices * out_features * bytes_per_value

    # --- Overlap of fetch and compute (double buffering) ------------------ #
    bytes_per_cycle = config.dram_bytes_per_cycle
    fetch_cycles_per_pass = int(np.ceil(input_bytes_per_pass / bytes_per_cycle))
    weight_fetch_per_pass = int(
        np.ceil(in_features * config.num_cols * bytes_per_value / bytes_per_cycle)
    )
    per_pass_fetch = fetch_cycles_per_pass + weight_fetch_per_pass
    exposed_per_pass = max(0, per_pass_fetch - schedule.cycles_per_pass)
    memory_stall_cycles = exposed_per_pass * schedule.num_passes + per_pass_fetch  # first fill
    streaming_memory_cycles = per_pass_fetch * (schedule.num_passes + 1)

    preprocessing_cycles = int(
        np.ceil(schedule.assignment.preprocessing_operations / _PREPROCESSING_OPS_PER_CYCLE)
    )

    # --- On-chip buffer traffic (for the energy model) -------------------- #
    input_buffer_bytes = dram_read_features + schedule.total_nonzero_macs // max(1, out_features)
    # Each output element is accumulated from num_blocks partial results.
    output_buffer_bytes = (
        2 * num_vertices * out_features * bytes_per_value * max(1, schedule.num_blocks) // 4
    )
    weight_buffer_bytes = dram_read_weights + out_features * in_features * bytes_per_value

    return PhaseResult(
        name=name,
        compute_cycles=int(compute_cycles),
        memory_stall_cycles=int(memory_stall_cycles),
        streaming_memory_cycles=int(streaming_memory_cycles),
        preprocessing_cycles=preprocessing_cycles,
        mac_operations=int(schedule.total_nonzero_macs),
        dram_read_bytes=int(dram_read_features + dram_read_weights),
        dram_write_bytes=int(dram_write_outputs),
        input_buffer_bytes=int(input_buffer_bytes),
        output_buffer_bytes=int(output_buffer_bytes),
        weight_buffer_bytes=int(weight_buffer_bytes),
        dram_input_stream_bytes=int(dram_read_features),
        dram_weight_stream_bytes=int(dram_read_weights),
        dram_output_stream_bytes=int(dram_write_outputs),
    )


def simulate_weighting(
    config: AcceleratorConfig,
    out_features: int,
    *,
    features: np.ndarray | None = None,
    block_nonzeros: np.ndarray | None = None,
    in_features: int | None = None,
    is_input_layer: bool = True,
    name: str = "weighting",
) -> tuple[PhaseResult, WeightingSchedule]:
    """Schedule and simulate one layer's Weighting phase.

    Either ``features`` (actual matrix) or ``block_nonzeros`` +
    ``in_features`` (statistical model for later layers) must be provided.
    Input-layer features travel RLC-compressed; later layers are dense
    enough that the paper bypasses the RLC decoder, so their traffic is the
    dense size.
    """
    schedule = schedule_weighting(
        features,
        out_features,
        config,
        block_nonzeros=block_nonzeros,
        in_features=in_features,
    )
    if features is not None:
        num_vertices, feature_length = np.asarray(features).shape
        if is_input_layer:
            input_bits = rlc_compressed_bits(features, value_bits=8 * config.bytes_per_value)
        else:
            input_bits = int(np.asarray(features).size) * 8 * config.bytes_per_value
    else:
        if block_nonzeros is None or in_features is None:
            raise ValueError("block_nonzeros and in_features are required without features")
        num_vertices = int(np.asarray(block_nonzeros).shape[0])
        feature_length = int(in_features)
        nonzeros = int(np.asarray(block_nonzeros).sum())
        if is_input_layer:
            # RLC size model: one (run, value) symbol per nonzero.
            from repro.sparse.rlc import RLC_RUN_BITS

            input_bits = nonzeros * (RLC_RUN_BITS + 8 * config.bytes_per_value) + 32 * num_vertices
        else:
            input_bits = num_vertices * feature_length * 8 * config.bytes_per_value
    phase = weighting_phase_from_schedule(
        schedule,
        num_vertices,
        feature_length,
        out_features,
        config,
        input_traffic_bits=input_bits,
        name=name,
    )
    return phase, schedule
