"""GNNIE performance and energy simulation."""

from repro.sim.aggregation_sim import (
    aggregation_phase_from_cache,
    input_buffer_capacity,
    run_cache_simulation,
    simulate_aggregation,
)
from repro.sim.design_space import (
    DesignPoint,
    admissible_mac_allocation,
    pareto_front,
    sweep_buffer_sizes,
    sweep_designs,
    sweep_mac_allocations,
)
from repro.sim.engine import LATER_LAYER_DENSITY, GNNIESimulator
from repro.sim.gnnie_executor import GNNIEExecutor
from repro.sim.trace import phase_table, result_to_dict, result_to_json, results_to_csv
from repro.sim.results import InferenceResult, LayerResult, PhaseResult, ScaleOutResult
from repro.sim.weighting_sim import simulate_weighting, weighting_phase_from_schedule

__all__ = [
    "GNNIESimulator",
    "GNNIEExecutor",
    "DesignPoint",
    "admissible_mac_allocation",
    "sweep_designs",
    "sweep_mac_allocations",
    "sweep_buffer_sizes",
    "pareto_front",
    "result_to_dict",
    "result_to_json",
    "results_to_csv",
    "phase_table",
    "LATER_LAYER_DENSITY",
    "InferenceResult",
    "LayerResult",
    "PhaseResult",
    "ScaleOutResult",
    "simulate_weighting",
    "weighting_phase_from_schedule",
    "simulate_aggregation",
    "run_cache_simulation",
    "input_buffer_capacity",
    "aggregation_phase_from_cache",
]
