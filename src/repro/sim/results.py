"""Result records produced by the GNNIE performance/energy simulator."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hw.energy import EnergyBreakdown

__all__ = ["PhaseResult", "LayerResult", "InferenceResult", "ScaleOutResult"]


@dataclass
class PhaseResult:
    """Cycle and traffic accounting of one phase (Weighting / Attention / Aggregation)."""

    name: str
    compute_cycles: int = 0
    memory_stall_cycles: int = 0
    sfu_cycles: int = 0
    preprocessing_cycles: int = 0
    #: Cycles the phase's streaming (prefetchable) DRAM traffic would take at
    #: full bandwidth.  ``memory_stall_cycles`` holds the *exposed* part; the
    #: engine re-derives exposure at layer level so that traffic of one phase
    #: can hide under the compute of another (double buffering across the
    #: Weighting/Aggregation pipeline).
    streaming_memory_cycles: int = 0
    mac_operations: int = 0
    sfu_operations: int = 0
    dram_read_bytes: int = 0
    dram_write_bytes: int = 0
    dram_random_accesses: int = 0
    #: Random accesses resolved on chip by the miss-path hierarchy (victim
    #: cache / miss cache / stream buffers) instead of reaching DRAM.
    dram_random_accesses_avoided: int = 0
    input_buffer_bytes: int = 0
    output_buffer_bytes: int = 0
    weight_buffer_bytes: int = 0
    #: DRAM traffic attributed to each on-chip buffer (Fig. 14 breakdown).
    dram_input_stream_bytes: int = 0
    dram_weight_stream_bytes: int = 0
    dram_output_stream_bytes: int = 0

    @property
    def total_cycles(self) -> int:
        return (
            self.compute_cycles
            + self.memory_stall_cycles
            + self.sfu_cycles
            + self.preprocessing_cycles
        )

    @property
    def dram_bytes(self) -> int:
        return self.dram_read_bytes + self.dram_write_bytes

    def merge(self, other: "PhaseResult") -> "PhaseResult":
        """Combine two phase results (used to sum phases across layers)."""
        return PhaseResult(
            name=self.name,
            compute_cycles=self.compute_cycles + other.compute_cycles,
            memory_stall_cycles=self.memory_stall_cycles + other.memory_stall_cycles,
            streaming_memory_cycles=self.streaming_memory_cycles
            + other.streaming_memory_cycles,
            sfu_cycles=self.sfu_cycles + other.sfu_cycles,
            preprocessing_cycles=self.preprocessing_cycles + other.preprocessing_cycles,
            mac_operations=self.mac_operations + other.mac_operations,
            sfu_operations=self.sfu_operations + other.sfu_operations,
            dram_read_bytes=self.dram_read_bytes + other.dram_read_bytes,
            dram_write_bytes=self.dram_write_bytes + other.dram_write_bytes,
            dram_random_accesses=self.dram_random_accesses + other.dram_random_accesses,
            dram_random_accesses_avoided=self.dram_random_accesses_avoided
            + other.dram_random_accesses_avoided,
            input_buffer_bytes=self.input_buffer_bytes + other.input_buffer_bytes,
            output_buffer_bytes=self.output_buffer_bytes + other.output_buffer_bytes,
            weight_buffer_bytes=self.weight_buffer_bytes + other.weight_buffer_bytes,
            dram_input_stream_bytes=self.dram_input_stream_bytes + other.dram_input_stream_bytes,
            dram_weight_stream_bytes=self.dram_weight_stream_bytes
            + other.dram_weight_stream_bytes,
            dram_output_stream_bytes=self.dram_output_stream_bytes
            + other.dram_output_stream_bytes,
        )


@dataclass
class LayerResult:
    """All phases of one GNN layer."""

    layer_index: int
    in_features: int
    out_features: int
    weighting: PhaseResult
    attention: PhaseResult | None
    aggregation: PhaseResult
    #: Inter-chip halo-exchange cost of this layer (multi-chip scale-out
    #: only; ``None`` on a single chip).  Included in :attr:`total_cycles`
    #: but *not* in :meth:`phases` — the memory-overlap pass and the energy
    #: model reason about on-chip phases only, so a chip's internal
    #: accounting is byte-identical with or without a communication slot.
    communication: PhaseResult | None = None

    @property
    def total_cycles(self) -> int:
        cycles = self.weighting.total_cycles + self.aggregation.total_cycles
        if self.attention is not None:
            cycles += self.attention.total_cycles
        if self.communication is not None:
            cycles += self.communication.total_cycles
        return cycles

    @property
    def communication_cycles(self) -> int:
        return self.communication.total_cycles if self.communication is not None else 0

    @property
    def local_cycles(self) -> int:
        """On-chip cycles of this layer, excluding inter-chip communication."""
        return self.total_cycles - self.communication_cycles

    def phases(self) -> list[PhaseResult]:
        if self.attention is None:
            return [self.weighting, self.aggregation]
        return [self.weighting, self.attention, self.aggregation]


@dataclass
class InferenceResult:
    """Whole-inference outcome for one (dataset, GNN, configuration) triple."""

    dataset: str
    model: str
    config_name: str
    layers: list[LayerResult] = field(default_factory=list)
    energy: EnergyBreakdown = field(default_factory=EnergyBreakdown)
    frequency_hz: float = 1.3e9
    #: Preprocessing cycles charged once per inference (degree sorting).
    global_preprocessing_cycles: int = 0

    @property
    def total_cycles(self) -> int:
        return sum(layer.total_cycles for layer in self.layers) + self.global_preprocessing_cycles

    @property
    def latency_seconds(self) -> float:
        return self.total_cycles / self.frequency_hz

    @property
    def total_mac_operations(self) -> int:
        return sum(
            phase.mac_operations for layer in self.layers for phase in layer.phases()
        )

    @property
    def total_dram_bytes(self) -> int:
        return sum(phase.dram_bytes for layer in self.layers for phase in layer.phases())

    @property
    def weighting_cycles(self) -> int:
        return sum(layer.weighting.total_cycles for layer in self.layers)

    @property
    def aggregation_cycles(self) -> int:
        cycles = sum(layer.aggregation.total_cycles for layer in self.layers)
        cycles += sum(
            layer.attention.total_cycles for layer in self.layers if layer.attention is not None
        )
        return cycles

    @property
    def effective_tops(self) -> float:
        """Retired operations per second, in TOPS (one MAC = two operations)."""
        if self.latency_seconds == 0:
            return 0.0
        return 2.0 * self.total_mac_operations / self.latency_seconds / 1e12

    @property
    def energy_joules(self) -> float:
        return self.energy.total_joules

    @property
    def inferences_per_kilojoule(self) -> float:
        """Energy efficiency as plotted in Fig. 15."""
        joules = self.energy_joules
        if joules <= 0:
            return float("inf")
        return 1.0 / (joules / 1000.0)

    def summary(self) -> dict[str, float]:
        return {
            "dataset": self.dataset,
            "model": self.model,
            "config": self.config_name,
            "cycles": self.total_cycles,
            "latency_s": self.latency_seconds,
            "weighting_cycles": self.weighting_cycles,
            "aggregation_cycles": self.aggregation_cycles,
            "macs": self.total_mac_operations,
            "dram_bytes": self.total_dram_bytes,
            "effective_tops": self.effective_tops,
            "energy_j": self.energy_joules,
            "inferences_per_kj": self.inferences_per_kilojoule,
        }


@dataclass
class ScaleOutResult(InferenceResult):
    """Combined outcome of one inference partitioned across ``num_chips`` chips.

    Per-layer time is ``MAX(per-chip local cycles) + MAX(per-chip halo
    communication cycles)`` — the chips compute in parallel, then synchronize
    on the slowest halo exchange before the next layer.  Aggregate counters
    (MACs, DRAM traffic, energy) are *sums* over chips; the stored
    ``combined_*`` fields carry the pre-combined totals so the inherited
    properties (and therefore :meth:`summary`) report fleet-level numbers
    without per-chip ``layers`` being retained.
    """

    num_chips: int = 1
    partition_method: str = "chunk"
    #: Per-chip total cycles (local + that chip's communication), for
    #: imbalance reporting.
    chip_cycles: tuple[int, ...] = ()
    #: Per-chip on-chip compute cycles (communication excluded).  The
    #: scaling benchmark pins ``max(chip_local_cycles)`` monotonically
    #: non-increasing in the chip count: partitions only shrink, while the
    #: halo wait in :attr:`chip_cycles` grows with the cut.
    chip_local_cycles: tuple[int, ...] = ()
    #: Sum over chips of distinct remote vertices received per layer stack.
    halo_vertices: int = 0
    #: Total inter-chip traffic in bytes across all layers and chips.
    halo_bytes: int = 0
    combined_cycles: int = 0
    combined_communication_cycles: int = 0
    combined_macs: int = 0
    combined_dram_bytes: int = 0
    combined_weighting_cycles: int = 0
    combined_aggregation_cycles: int = 0

    @property
    def total_cycles(self) -> int:
        return self.combined_cycles

    @property
    def total_mac_operations(self) -> int:
        return self.combined_macs

    @property
    def total_dram_bytes(self) -> int:
        return self.combined_dram_bytes

    @property
    def weighting_cycles(self) -> int:
        return self.combined_weighting_cycles

    @property
    def aggregation_cycles(self) -> int:
        return self.combined_aggregation_cycles

    @property
    def communication_cycles(self) -> int:
        return self.combined_communication_cycles

    @property
    def chip_imbalance(self) -> float:
        """``max(chip cycles) / mean(chip cycles)`` — 1.0 is a perfect split."""
        busy = [cycles for cycles in self.chip_cycles if cycles > 0]
        if not busy:
            return 1.0
        return max(busy) * len(busy) / sum(busy)

    def summary(self) -> dict[str, float]:
        row = super().summary()
        if self.num_chips > 1:
            row["chips"] = self.num_chips
            row["partition_method"] = self.partition_method
            row["chip_imbalance"] = self.chip_imbalance
            row["communication_cycles"] = self.communication_cycles
            row["halo_vertices"] = self.halo_vertices
            row["halo_bytes"] = self.halo_bytes
        return row
