"""Result export: structured reports from simulated inferences.

Turns :class:`~repro.sim.results.InferenceResult` objects into plain
dictionaries, JSON documents and CSV rows so that sweeps can be archived and
plotted outside Python.  Used by the CLI (`python -m repro`).
"""

from __future__ import annotations

import csv
import io
import json
from typing import Iterable

from repro.sim.results import InferenceResult

__all__ = [
    "result_to_dict",
    "result_to_json",
    "results_to_csv",
    "csv_fieldnames",
    "phase_table",
]


def result_to_dict(result: InferenceResult) -> dict:
    """Full nested report of one inference (layers, phases, energy)."""
    return {
        "dataset": result.dataset,
        "model": result.model,
        "config": result.config_name,
        "frequency_hz": result.frequency_hz,
        "total_cycles": result.total_cycles,
        "latency_seconds": result.latency_seconds,
        "effective_tops": result.effective_tops,
        "total_mac_operations": result.total_mac_operations,
        "total_dram_bytes": result.total_dram_bytes,
        "energy_joules": result.energy_joules,
        "inferences_per_kilojoule": result.inferences_per_kilojoule,
        "global_preprocessing_cycles": result.global_preprocessing_cycles,
        "energy_breakdown_pj": result.energy.as_dict(),
        "layers": [
            {
                "layer_index": layer.layer_index,
                "in_features": layer.in_features,
                "out_features": layer.out_features,
                "total_cycles": layer.total_cycles,
                "phases": [
                    {
                        "name": phase.name,
                        "compute_cycles": phase.compute_cycles,
                        "sfu_cycles": phase.sfu_cycles,
                        "memory_stall_cycles": phase.memory_stall_cycles,
                        "preprocessing_cycles": phase.preprocessing_cycles,
                        "mac_operations": phase.mac_operations,
                        "dram_read_bytes": phase.dram_read_bytes,
                        "dram_write_bytes": phase.dram_write_bytes,
                        "dram_random_accesses": phase.dram_random_accesses,
                    }
                    for phase in layer.phases()
                ],
            }
            for layer in result.layers
        ],
    }


def result_to_json(result: InferenceResult, *, indent: int = 2) -> str:
    """JSON document of the full report."""
    return json.dumps(result_to_dict(result), indent=indent)


def csv_fieldnames() -> list[str]:
    """The CSV column set: every :meth:`InferenceResult.summary` key.

    Derived from the summary itself rather than a hand-maintained list, so
    a new summary field can never silently go missing from exports (the old
    literal list had drifted: it dropped the per-phase cycle columns).  The
    column *order* is part of the export contract and is pinned by test.
    """
    return list(InferenceResult(dataset="", model="", config_name="").summary().keys())


def results_to_csv(results: Iterable[InferenceResult]) -> str:
    """One CSV row per inference (summary-level fields only).

    The column set is the base :func:`csv_fieldnames` order plus any extra
    summary keys the given results carry (multi-chip
    :class:`~repro.sim.results.ScaleOutResult` rows add ``chips`` /
    ``halo_*`` columns), appended in first-seen order.  Plain results
    produce exactly the pre-scale-out bytes; ``DictWriter`` would otherwise
    raise ``ValueError`` on the extra keys.
    """
    summaries = [result.summary() for result in results]
    fieldnames = csv_fieldnames()
    known = set(fieldnames)
    for summary in summaries:
        for key in summary:
            if key not in known:
                fieldnames.append(key)
                known.add(key)
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=fieldnames)
    writer.writeheader()
    for summary in summaries:
        writer.writerow(summary)
    return buffer.getvalue()


def phase_table(result: InferenceResult) -> list[dict[str, object]]:
    """Flat per-phase rows (for `analysis.format_table` or CSV export)."""
    rows: list[dict[str, object]] = []
    for layer in result.layers:
        for phase in layer.phases():
            rows.append(
                {
                    "layer": layer.layer_index,
                    "phase": phase.name,
                    "compute_cycles": phase.compute_cycles,
                    "sfu_cycles": phase.sfu_cycles,
                    "stall_cycles": phase.memory_stall_cycles,
                    "preprocessing_cycles": phase.preprocessing_cycles,
                    "total_cycles": phase.total_cycles,
                    "macs": phase.mac_operations,
                    "dram_bytes": phase.dram_bytes,
                }
            )
    return rows
