"""Aggregation-phase performance simulation.

Combines the cache-controller simulation (which vertices are resident when,
how many DRAM fetches the policy needs) with the Aggregation cycle model
(how long the CPE array takes to process each cached-subgraph iteration) and
with the output-buffer partial-sum traffic model.
"""

from __future__ import annotations

import numpy as np

from repro.cache.controller import (
    DegreeAwareCacheController,
    UndirectedEdgeIndex,
    simulate_vertex_order_baseline,
    vertex_record_bytes,
)
from repro.cache.hierarchy import MissPathHierarchy
from repro.cache.policy import CachePolicyConfig, CacheSimulationResult
from repro.graph.csr import CSRGraph
from repro.hw.config import AcceleratorConfig
from repro.hw.dram import HBMModel
from repro.mapping.aggregation import AggregationCycleModel
from repro.sim.results import PhaseResult

__all__ = [
    "input_buffer_capacity",
    "run_cache_simulation",
    "simulate_aggregation",
    "aggregation_phase_from_cache",
]

#: Preprocessing (degree binning / vertex reordering) throughput.
_PREPROCESSING_OPS_PER_CYCLE = 8


def input_buffer_capacity(
    adjacency: CSRGraph, config: AcceleratorConfig, feature_length: int
) -> tuple[int, int]:
    """``(capacity_vertices, record_bytes)`` of the configured input buffer.

    The single place where the buffer's vertex capacity is derived from the
    per-vertex record size; the CLI and the benchmarks reuse it so their
    tables are computed at exactly the capacity the simulator charges.
    """
    record_bytes = vertex_record_bytes(
        feature_length,
        adjacency.average_degree(),
        bytes_per_value=config.bytes_per_value,
    )
    return max(1, config.input_buffer_bytes_or_default // record_bytes), record_bytes


def run_cache_simulation(
    adjacency: CSRGraph,
    config: AcceleratorConfig,
    feature_length: int,
    *,
    gamma: int | None = None,
    replacement_count: int | None = None,
    metrics=None,
    edge_index: UndirectedEdgeIndex | None = None,
) -> CacheSimulationResult:
    """Run the caching policy selected by the configuration.

    With ``enable_degree_aware_caching`` the degree-aware controller is used
    (sequential DRAM traffic only); otherwise the vertex-id-order baseline is
    simulated, which pays random DRAM accesses for non-resident neighbors.

    When the configuration enables miss-path mechanisms
    (``config.miss_path_mechanisms``), the policy additionally emits its
    miss/eviction trace, the hierarchy filters it, and the outcome is
    attached to the result (``result.miss_path``); downstream cycle/energy
    models then charge only the *net* random accesses to DRAM.

    ``metrics`` is an optional :class:`repro.obs.MetricsRegistry`; when
    given, the hierarchy records its per-mechanism hit/miss/eviction
    counters into it (see :meth:`MissPathHierarchy.filter`).

    ``edge_index`` is an optional pre-built
    :class:`~repro.cache.controller.UndirectedEdgeIndex` of ``adjacency``
    (a pure function of the graph); batch execution builds it once per
    graph and shares it across the distinct buffer configurations.
    """
    capacity, record_bytes = input_buffer_capacity(adjacency, config, feature_length)
    collect_trace = config.miss_path_enabled
    if not config.enable_degree_aware_caching:
        result = simulate_vertex_order_baseline(
            adjacency, capacity, bytes_per_vertex=record_bytes, collect_trace=collect_trace
        )
    else:
        policy = CachePolicyConfig(
            capacity_vertices=capacity,
            gamma=config.gamma if gamma is None else gamma,
            replacement_count=replacement_count,
            degree_ordered=True,
        )
        controller = DegreeAwareCacheController(
            adjacency, policy, bytes_per_vertex=record_bytes, edge_index=edge_index
        )
        result = controller.run(collect_trace=collect_trace)
    if collect_trace and result.trace is not None:
        hierarchy = MissPathHierarchy.from_accelerator_config(config)
        result.miss_path = hierarchy.filter(result.trace, metrics=metrics)
    return result


def _iteration_arrays(
    cache_result: CacheSimulationResult,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per-iteration (edges, max_edges_per_vertex, residents) columns.

    Extracted once per simulation result and cached on it: a config batch
    prices one cache simulation under many MAC allocations, and only the
    model constants change between configs — the iteration columns do not.
    """
    arrays = getattr(cache_result, "_iteration_arrays", None)
    if arrays is None:
        records = cache_result.iterations
        count = len(records)
        arrays = (
            np.fromiter((r.edges_processed for r in records), dtype=np.int64, count=count),
            np.fromiter((r.max_edges_per_vertex for r in records), dtype=np.int64, count=count),
            np.fromiter((r.resident_vertices for r in records), dtype=np.int64, count=count),
        )
        cache_result._iteration_arrays = arrays
    return arrays


def aggregation_phase_from_cache(
    cache_result: CacheSimulationResult,
    adjacency: CSRGraph,
    config: AcceleratorConfig,
    feature_length: int,
    *,
    is_gat: bool = False,
    name: str = "aggregation",
) -> PhaseResult:
    """Convert a cache simulation into the Aggregation :class:`PhaseResult`."""
    model = AggregationCycleModel(config, feature_length, is_gat=is_gat)
    dram = HBMModel(
        bandwidth_bytes_per_s=config.dram_bandwidth_bytes_per_s,
        frequency_hz=config.frequency_hz,
        energy_pj_per_bit=config.dram_energy_pj_per_bit,
    )
    num_vertices = adjacency.num_vertices
    bytes_per_value = config.bytes_per_value

    # One vectorized pricing pass over the whole iteration sequence
    # (bit-exact with the per-record scalar model; see iteration_totals).
    totals = model.iteration_totals(*_iteration_arrays(cache_result))
    compute_cycles = totals.compute_cycles
    sfu_cycles = totals.sfu_cycles
    mac_ops = totals.addition_ops + totals.multiply_ops
    sfu_ops = totals.sfu_ops

    finalize = model.finalization_cost(num_vertices)
    sfu_cycles += finalize.sfu_cycles
    sfu_ops += finalize.sfu_ops

    # --- DRAM traffic --------------------------------------------------- #
    # Vertex records stream in sequentially (the policy's key guarantee);
    # random accesses appear only for the id-order ablation baseline.  The
    # miss-path hierarchy (when configured) resolves part of those misses:
    # victim/miss-cache hits are on chip and free, while stream-buffer hits
    # were prefetched from DRAM — their bytes are charged as sequential
    # traffic below.  Only *consumed* prefetches are charged (an idealized
    # prefetch-bypass); the full fill traffic including wasted prefetches is
    # reported on HierarchyResult.prefetch_fill_records.
    prefetch_bytes = (
        cache_result.miss_path.sequential_prefetch_bytes if cache_result.miss_path else 0
    )
    fetch_cycles = dram.sequential_transfer_cycles(
        cache_result.sequential_fetch_bytes + prefetch_bytes
    )
    random_granule = max(
        dram.random_access_granularity_bytes, feature_length * bytes_per_value
    )
    net_random_accesses = cache_result.net_random_accesses
    net_random_bytes = cache_result.net_random_access_bytes
    if cache_result.random_accesses_avoided:
        dram.note_avoided_random_accesses(
            cache_result.random_accesses_avoided, bytes_per_access=random_granule
        )
    random_cycles = 0
    if net_random_accesses:
        random_cycles = dram.random_transfer_cycles(
            net_random_accesses, bytes_per_access=random_granule
        )

    # Output-buffer partial sums: at the start of each Round the accumulators
    # of the still-unfinished vertices must be resident; whatever exceeds the
    # output buffer spills to DRAM and is read back.  The per-Round
    # unfinished counts come from the cache simulation's α snapshots
    # (snapshot r-1 is the state entering Round r).
    psum_spill_bytes = 0
    for round_index in range(1, max(1, cache_result.num_rounds) + 1):
        snapshots = cache_result.alpha_round_snapshots
        if snapshots and round_index - 1 < len(snapshots):
            unfinished = int(snapshots[round_index - 1].size)
        else:
            unfinished = num_vertices
        live_bytes = unfinished * feature_length * bytes_per_value
        psum_spill_bytes += 2 * max(0, live_bytes - config.output_buffer_bytes)
    final_write_bytes = num_vertices * feature_length * bytes_per_value
    spill_cycles = dram.sequential_transfer_cycles(psum_spill_bytes)
    writeback_cycles = dram.sequential_transfer_cycles(
        cache_result.alpha_writeback_bytes + final_write_bytes
    )

    # Double buffering overlaps the streaming traffic with computation at the
    # phase level; only the excess is exposed as stall cycles.  Random
    # accesses (baseline only) cannot be prefetched and are fully exposed.
    busy_cycles = compute_cycles + sfu_cycles
    streaming_cycles = fetch_cycles + spill_cycles + writeback_cycles
    memory_stall_cycles = max(0, streaming_cycles - busy_cycles) + random_cycles

    # α writebacks plus the GAT per-vertex (e_i1, e_i2) terms travel with the
    # vertex records and are already part of sequential_fetch_bytes /
    # alpha_writeback_bytes.
    dram_read_bytes = (
        cache_result.sequential_fetch_bytes
        + prefetch_bytes
        + net_random_bytes
        + psum_spill_bytes // 2
    )
    dram_write_bytes = (
        cache_result.alpha_writeback_bytes + psum_spill_bytes // 2 + final_write_bytes
    )

    preprocessing_cycles = int(np.ceil(num_vertices / _PREPROCESSING_OPS_PER_CYCLE))
    if not config.enable_degree_aware_caching:
        preprocessing_cycles = 0

    input_buffer_bytes = 2 * mac_ops * bytes_per_value // max(1, feature_length) * feature_length
    output_buffer_bytes = 2 * (mac_ops // 2) * bytes_per_value

    return PhaseResult(
        name=name,
        compute_cycles=int(compute_cycles),
        memory_stall_cycles=int(memory_stall_cycles),
        streaming_memory_cycles=int(streaming_cycles),
        sfu_cycles=int(sfu_cycles),
        preprocessing_cycles=preprocessing_cycles,
        mac_operations=int(mac_ops),
        sfu_operations=int(sfu_ops),
        dram_read_bytes=int(dram_read_bytes),
        dram_write_bytes=int(dram_write_bytes),
        dram_random_accesses=int(net_random_accesses),
        dram_random_accesses_avoided=int(cache_result.random_accesses_avoided),
        input_buffer_bytes=int(input_buffer_bytes),
        output_buffer_bytes=int(output_buffer_bytes),
        dram_input_stream_bytes=int(
            cache_result.sequential_fetch_bytes + prefetch_bytes + net_random_bytes
        ),
        dram_output_stream_bytes=int(
            psum_spill_bytes + final_write_bytes + cache_result.alpha_writeback_bytes
        ),
    )


def simulate_aggregation(
    adjacency: CSRGraph,
    config: AcceleratorConfig,
    feature_length: int,
    *,
    is_gat: bool = False,
    cache_result: CacheSimulationResult | None = None,
    name: str = "aggregation",
) -> tuple[PhaseResult, CacheSimulationResult]:
    """Simulate Aggregation for one layer, running the cache policy if needed."""
    if cache_result is None:
        cache_result = run_cache_simulation(adjacency, config, feature_length)
    phase = aggregation_phase_from_cache(
        cache_result, adjacency, config, feature_length, is_gat=is_gat, name=name
    )
    return phase, cache_result
