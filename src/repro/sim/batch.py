"""Per-(plan, graph) pricing precompute shared across config batches.

Config-axis batch execution (``GNNIEExecutor.execute_batch``, the sweep
runner's per-group dispatch) prices thousands of near-identical plans that
differ only in their :class:`~repro.hw.config.AcceleratorConfig`.  Every
quantity here is a pure function of the *graph* alone — CSR content
fingerprints, sampled adjacencies, per-block nonzero counts, exact RLC
sizes, undirected edge indexes — so computing it once per graph and sharing
it across configs (and across executor instances, and across GNN families)
cannot change a single row byte.

Config-*dependent* memoization (cache-policy simulations, priced phase
results) deliberately stays per :class:`~repro.sim.gnnie_executor.GNNIEExecutor`
instance: the sweep worker creates one executor per dataset group, so batch
cells share those memos while the scalar per-cell path keeps its
fresh-executor purity guarantee.

Contexts are keyed by graph identity and dropped when the graph is garbage
collected, so a long-lived process (the ``jobs=1`` sweep loop, the
benchmark session) holds at most one context per live graph.
"""

from __future__ import annotations

import weakref
import zlib

import numpy as np

from repro.graph.csr import CSRGraph
from repro.graph.graph import Graph
from repro.models.graphsage import NeighborSampler
from repro.sparse.feature_matrix import block_nonzero_counts
from repro.sparse.rlc import rlc_compressed_bits

__all__ = ["GraphPricingContext", "clear_pricing_contexts", "pricing_context"]


def adjacency_fingerprint(adjacency: CSRGraph) -> tuple[int, int, int]:
    """Stable content key for per-(graph, config) memos.

    ``id(adjacency)`` can alias a *different* graph once the original is
    garbage collected, silently reusing a stale simulation; fingerprinting
    the CSR content (vertex/edge counts plus a checksum over both arrays)
    cannot.
    """
    checksum = zlib.crc32(np.ascontiguousarray(adjacency.indptr).tobytes())
    checksum = zlib.crc32(np.ascontiguousarray(adjacency.indices).tobytes(), checksum)
    return (adjacency.num_vertices, adjacency.num_edges, checksum)


class GraphPricingContext:
    """Config-independent precompute for one dataset graph.

    Everything memoized here is deterministic given the graph content (the
    neighbor sampler is seeded by the vertex count, exactly as the executor
    always seeded it), so sharing a context across executors, families and
    batches preserves byte-identical results.
    """

    def __init__(self, graph: Graph) -> None:
        self._graph_ref = weakref.ref(graph)
        #: id(adjacency) -> (adjacency, fingerprint).  The strong reference
        #: pins the adjacency so its id cannot be re-used while memoized.
        self._fingerprints: dict[int, tuple[CSRGraph, tuple[int, int, int]]] = {}
        #: sample_size -> sampled CSR adjacency (GraphSAGE plans).
        self._sampled: dict[int, CSRGraph] = {}
        #: block_size -> (V, num_blocks) nonzero counts of the input features.
        self._blocks: dict[int, np.ndarray] = {}
        #: value_bits -> exact RLC-compressed size of the input features.
        self._rlc_bits: dict[int, int] = {}
        #: Nonzero count of the input feature matrix (baseline workloads).
        self._input_nonzeros: int | None = None
        #: id(adjacency) -> (adjacency, shared undirected edge index).
        self._edge_indexes: dict[int, tuple[CSRGraph, object]] = {}
        #: Priced-phase memo.  Keys are self-describing tuples built by the
        #: executor from *every* config knob the phase depends on, so the
        #: memo stays a pure function of (graph, key); values are pristine
        #: copies (phase results are mutated by the overlap pass, so the
        #: executor copies on both store and hit).
        self.phase_memo: dict[tuple, object] = {}
        #: Cache-policy simulation memo, keyed by the executor's cache key
        #: *plus* the priming feature length — unlike the executor's own
        #: per-instance memo (which deliberately omits the feature length so
        #: one simulation per (graph, buffer config) is shared across a
        #: plan's layers, first op wins), this key makes the entry a pure
        #: function of graph content and config, so executors in different
        #: sweep groups share the expensive run whenever they prime with the
        #: same width.
        self.cache_results: dict[tuple, object] = {}
        #: (chips, method) -> partitioned multi-chip workload (see
        #: :func:`repro.scaleout.partition_workload`).  Partitioning is a
        #: pure function of graph content and the key, so a config batch
        #: sweeping many designs at one chip count partitions the graph
        #: exactly once.
        self.partitions: dict[tuple, object] = {}

    @property
    def graph(self) -> Graph | None:
        return self._graph_ref()

    def fingerprint(self, adjacency: CSRGraph) -> tuple[int, int, int]:
        """Memoized O(E) content fingerprint of an adjacency."""
        key = id(adjacency)  # repro-check: disable=D103 (identity-guarded below)
        entry = self._fingerprints.get(key)
        if entry is None or entry[0] is not adjacency:
            entry = (adjacency, adjacency_fingerprint(adjacency))
            self._fingerprints[key] = entry
        return entry[1]

    def sampled_adjacency(self, sample_size: int) -> CSRGraph:
        """Deterministic sampled adjacency for GraphSAGE-style plans."""
        if sample_size not in self._sampled:
            graph = self._require_graph()
            sampler = NeighborSampler(seed=graph.num_vertices)
            sampled_edges = sampler.sample_edges(graph.adjacency, sample_size)
            self._sampled[sample_size] = CSRGraph.from_edge_list(
                sampled_edges, num_vertices=graph.num_vertices, symmetric=True
            )
        return self._sampled[sample_size]

    def input_blocks(self, block_size: int) -> np.ndarray:
        """Per-(vertex, block) nonzero counts of the input feature matrix."""
        if block_size not in self._blocks:
            graph = self._require_graph()
            self._blocks[block_size] = block_nonzero_counts(graph.features, block_size)
        return self._blocks[block_size]

    def input_nonzeros(self) -> int:
        """Nonzero count of the input feature matrix."""
        if self._input_nonzeros is None:
            graph = self._require_graph()
            self._input_nonzeros = int(np.count_nonzero(graph.features))
        return self._input_nonzeros

    def input_rlc_bits(self, value_bits: int) -> int:
        """Exact RLC-compressed size of the input feature matrix, in bits."""
        if value_bits not in self._rlc_bits:
            graph = self._require_graph()
            self._rlc_bits[value_bits] = rlc_compressed_bits(
                graph.features, value_bits=value_bits
            )
        return self._rlc_bits[value_bits]

    def edge_index(self, adjacency: CSRGraph):
        """Shared undirected edge index for the degree-aware cache policy."""
        from repro.cache.controller import UndirectedEdgeIndex

        key = id(adjacency)  # repro-check: disable=D103 (identity-guarded below)
        entry = self._edge_indexes.get(key)
        if entry is None or entry[0] is not adjacency:
            entry = (adjacency, UndirectedEdgeIndex(adjacency))
            self._edge_indexes[key] = entry
        return entry[1]

    def _require_graph(self) -> Graph:
        graph = self._graph_ref()
        if graph is None:  # pragma: no cover - context outliving its graph
            raise RuntimeError("pricing context used after its graph was collected")
        return graph


#: Process-wide context registry, one entry per live graph.
_CONTEXTS: dict[int, GraphPricingContext] = {}


def _evict_context(key: int, context: GraphPricingContext) -> None:
    """Finalizer target: drop ``context`` from the registry, and only it.

    ``key`` is the dead graph's ``id()``, which a *new* graph may have
    re-used (ids recycle after GC, and ``clear_pricing_contexts()`` plus a
    fresh ``pricing_context()`` call can re-register the slot before the old
    finalizer fires).  An unconditional ``pop(key)`` would then evict the
    live graph's context and silently drop its shared memos, so the pop is
    guarded on identity.
    """
    if _CONTEXTS.get(key) is context:
        _CONTEXTS.pop(key, None)


def pricing_context(graph: Graph) -> GraphPricingContext:
    """The shared :class:`GraphPricingContext` of a graph (created on demand)."""
    key = id(graph)  # repro-check: disable=D103 (weakref.finalize evicts before reuse)
    context = _CONTEXTS.get(key)
    if context is not None and context.graph is graph:
        return context
    context = GraphPricingContext(graph)
    _CONTEXTS[key] = context
    weakref.finalize(graph, _evict_context, key, context)
    return context


def clear_pricing_contexts() -> None:
    """Drop every live pricing context (its memos rebuild on demand).

    For memory control in long processes, and for benchmarks that want to
    measure cold-path per-cell pricing without cross-cell sharing.
    """
    _CONTEXTS.clear()
