"""Design-space exploration utilities.

The paper chooses the Flexible MAC allocation and the on-chip buffer sizes
"through design space exploration, optimizing the cost-to-benefit ratio
(speedup gain : hardware overhead)" (Section VIII-A).  This module provides
that exploration as a library feature:

* :func:`sweep_designs` — evaluate a set of accelerator configurations on a
  workload and collect latency, area, power-proxy and the β metric,
* :func:`sweep_mac_allocations` — generate candidate MAC-per-row-group
  allocations under a MAC budget,
* :func:`sweep_buffer_sizes` — evaluate input/output buffer sizings,
* :func:`pareto_front` — extract the latency/area Pareto-optimal designs.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from itertools import product
from typing import Iterable, Sequence

from repro.graph.graph import Graph
from repro.hw.config import AcceleratorConfig
from repro.hw.energy import AreaModel
from repro.sim.engine import GNNIESimulator

__all__ = [
    "DesignPoint",
    "sweep_designs",
    "sweep_mac_allocations",
    "sweep_buffer_sizes",
    "pareto_front",
]


@dataclass(frozen=True)
class DesignPoint:
    """One evaluated accelerator configuration."""

    name: str
    config: AcceleratorConfig
    total_macs: int
    area_mm2: float
    cycles: int
    latency_seconds: float
    energy_joules: float

    @property
    def cycles_per_mm2(self) -> float:
        return self.cycles * self.area_mm2

    def beta_versus(self, baseline: "DesignPoint") -> float:
        """Speedup gain per added MAC relative to a baseline design (Eq. 9)."""
        added_macs = self.total_macs - baseline.total_macs
        if added_macs <= 0:
            return float("nan")
        return (baseline.cycles - self.cycles) / added_macs


def sweep_designs(
    graph: Graph,
    family: str,
    configs: Iterable[AcceleratorConfig],
    *,
    area_model: AreaModel | None = None,
) -> list[DesignPoint]:
    """Simulate ``family`` on ``graph`` for every configuration."""
    area = area_model or AreaModel()
    points: list[DesignPoint] = []
    for config in configs:
        simulator = GNNIESimulator(config, area_model=area)
        result = simulator.run(graph, family)
        points.append(
            DesignPoint(
                name=config.name,
                config=config,
                total_macs=config.total_macs,
                area_mm2=area.chip_area_mm2(config),
                cycles=result.total_cycles,
                latency_seconds=result.latency_seconds,
                energy_joules=result.energy_joules,
            )
        )
    return points


def sweep_mac_allocations(
    *,
    mac_budget: int = 1280,
    group_sizes: tuple[int, int, int] = (8, 4, 4),
    candidate_macs: Sequence[int] = (2, 3, 4, 5, 6, 7, 8),
    num_cols: int = 16,
    base_config: AcceleratorConfig | None = None,
) -> list[AcceleratorConfig]:
    """Enumerate flexible-MAC allocations within a total MAC budget.

    Allocations must be monotonically non-decreasing across row groups (the
    architecture's constraint) and must not exceed ``mac_budget`` MACs in
    total.  Returns one configuration per admissible allocation.
    """
    base = base_config or AcceleratorConfig()
    configs: list[AcceleratorConfig] = []
    for allocation in product(candidate_macs, repeat=len(group_sizes)):
        if list(allocation) != sorted(allocation):
            continue
        total = sum(m * rows * num_cols for m, rows in zip(allocation, group_sizes))
        if total > mac_budget:
            continue
        configs.append(
            replace(
                base,
                macs_per_group=tuple(allocation),
                rows_per_group=tuple(group_sizes),
                name=f"FM{allocation}",
            )
        )
    return configs


def sweep_buffer_sizes(
    graph: Graph,
    family: str,
    *,
    input_buffer_kib: Sequence[int] = (128, 256, 512, 1024),
    output_buffer_kib: Sequence[int] = (512, 1024, 2048),
    base_config: AcceleratorConfig | None = None,
) -> list[DesignPoint]:
    """Evaluate combinations of input/output buffer capacities."""
    base = base_config or AcceleratorConfig()
    configs = []
    for input_kib, output_kib in product(input_buffer_kib, output_buffer_kib):
        configs.append(
            replace(
                base,
                input_buffer_bytes=input_kib * 1024,
                output_buffer_bytes=output_kib * 1024,
                name=f"IB{input_kib}K-OB{output_kib}K",
            )
        )
    return sweep_designs(graph, family, configs)


def pareto_front(points: list[DesignPoint]) -> list[DesignPoint]:
    """Designs not dominated in (latency, area): lower is better for both."""
    front: list[DesignPoint] = []
    for candidate in points:
        dominated = any(
            other.latency_seconds <= candidate.latency_seconds
            and other.area_mm2 <= candidate.area_mm2
            and (
                other.latency_seconds < candidate.latency_seconds
                or other.area_mm2 < candidate.area_mm2
            )
            for other in points
        )
        if not dominated:
            front.append(candidate)
    return sorted(front, key=lambda point: point.latency_seconds)
