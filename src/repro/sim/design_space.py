"""Design-space exploration utilities.

The paper chooses the Flexible MAC allocation and the on-chip buffer sizes
"through design space exploration, optimizing the cost-to-benefit ratio
(speedup gain : hardware overhead)" (Section VIII-A).  This module provides
that exploration as a library feature:

* :func:`sweep_designs` — evaluate a set of accelerator configurations on a
  workload and collect latency, area, power-proxy and the β metric,
* :func:`sweep_mac_allocations` — generate candidate MAC-per-row-group
  allocations under a MAC budget,
* :func:`sweep_buffer_sizes` — evaluate input/output buffer sizings,
* :func:`pareto_front` — extract the latency/area Pareto-optimal designs.

Since the scenario-sweep subsystem landed, the evaluation loops here are
thin wrappers over :func:`repro.sweep.run_sweep`: each configuration
becomes one sweep cell over the caller's graph, so design sweeps share the
fleet runner's worker protocol (and can fan out with ``jobs > 1``) instead
of maintaining a private serial loop.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from itertools import product
from typing import Iterable, Sequence

from repro.graph.graph import Graph
from repro.hw.config import AcceleratorConfig
from repro.hw.energy import AreaModel

__all__ = [
    "DesignPoint",
    "admissible_mac_allocation",
    "sweep_designs",
    "sweep_mac_allocations",
    "sweep_buffer_sizes",
    "pareto_front",
]


def admissible_mac_allocation(
    allocation: Sequence[int],
    *,
    group_sizes: Sequence[int],
    num_cols: int,
    mac_budget: int,
) -> bool:
    """Whether a MAC-per-row-group allocation is architecturally admissible.

    The two rules :func:`sweep_mac_allocations` enumerates under — shared
    with the :mod:`repro.tune` proposer so tuned candidates obey exactly the
    grid's constraints:

    * monotonically non-decreasing across row groups (paper, Section IV-C),
    * total MACs within ``mac_budget``.
    """
    if len(allocation) != len(group_sizes):
        return False
    if any(macs <= 0 for macs in allocation):
        return False
    if list(allocation) != sorted(allocation):
        return False
    total = sum(macs * rows * num_cols for macs, rows in zip(allocation, group_sizes))
    return total <= mac_budget


@dataclass(frozen=True)
class DesignPoint:
    """One evaluated accelerator configuration."""

    name: str
    config: AcceleratorConfig
    total_macs: int
    area_mm2: float
    cycles: int
    latency_seconds: float
    energy_joules: float

    @property
    def cycle_area_product(self) -> float:
        """Cost product ``cycles × area_mm2`` (lower is better on both axes).

        Formerly misnamed ``cycles_per_mm2``, which implied a ratio; the
        value has always been the product, the scalar the cost-to-benefit
        exploration minimizes.
        """
        return self.cycles * self.area_mm2

    def beta_versus(self, baseline: "DesignPoint") -> float:
        """Speedup gain per added MAC relative to a baseline design (Eq. 9)."""
        added_macs = self.total_macs - baseline.total_macs
        if added_macs <= 0:
            return float("nan")
        return (baseline.cycles - self.cycles) / added_macs


def sweep_designs(
    graph: Graph,
    family: str,
    configs: Iterable[AcceleratorConfig],
    *,
    area_model: AreaModel | None = None,
    jobs: int = 1,
) -> list[DesignPoint]:
    """Simulate ``family`` on ``graph`` for every configuration.

    Each configuration is one cell of a single-dataset
    :class:`~repro.sweep.matrix.ScenarioMatrix` executed by
    :func:`~repro.sweep.run_sweep`; ``jobs > 1`` fans the configurations
    across worker processes.
    """
    from repro.sweep.matrix import DatasetCase, ScenarioMatrix
    from repro.sweep.runner import run_sweep

    area = area_model or AreaModel()
    configs = list(configs)
    matrix = ScenarioMatrix(
        datasets=(DatasetCase(name=graph.name, seed=0),),
        families=(family.lower(),),
        backends=("gnnie",),
        configs=tuple(configs),
    )
    summary = run_sweep(matrix, jobs=jobs, graphs={graph.name: graph})
    points: list[DesignPoint] = []
    for config, row in zip(configs, summary.rows):
        metrics = row["metrics"]
        points.append(
            DesignPoint(
                name=config.name,
                config=config,
                total_macs=config.total_macs,
                area_mm2=area.chip_area_mm2(config),
                cycles=metrics["cycles"],
                latency_seconds=metrics["latency_seconds"],
                energy_joules=metrics["energy_joules"],
            )
        )
    return points


def sweep_mac_allocations(
    *,
    mac_budget: int = 1280,
    group_sizes: tuple[int, int, int] = (8, 4, 4),
    candidate_macs: Sequence[int] = (2, 3, 4, 5, 6, 7, 8),
    num_cols: int = 16,
    base_config: AcceleratorConfig | None = None,
) -> list[AcceleratorConfig]:
    """Enumerate flexible-MAC allocations within a total MAC budget.

    Allocations must be monotonically non-decreasing across row groups (the
    architecture's constraint) and must not exceed ``mac_budget`` MACs in
    total.  Returns one configuration per admissible allocation.
    """
    base = base_config or AcceleratorConfig()
    configs: list[AcceleratorConfig] = []
    for allocation in product(candidate_macs, repeat=len(group_sizes)):
        if not admissible_mac_allocation(
            allocation, group_sizes=group_sizes, num_cols=num_cols, mac_budget=mac_budget
        ):
            continue
        configs.append(
            replace(
                base,
                macs_per_group=tuple(allocation),
                rows_per_group=tuple(group_sizes),
                name=f"FM{allocation}",
            )
        )
    return configs


def sweep_buffer_sizes(
    graph: Graph,
    family: str,
    *,
    input_buffer_kib: Sequence[int] = (128, 256, 512, 1024),
    output_buffer_kib: Sequence[int] = (512, 1024, 2048),
    base_config: AcceleratorConfig | None = None,
    jobs: int = 1,
) -> list[DesignPoint]:
    """Evaluate combinations of input/output buffer capacities."""
    base = base_config or AcceleratorConfig()
    configs = []
    for input_kib, output_kib in product(input_buffer_kib, output_buffer_kib):
        configs.append(
            replace(
                base,
                input_buffer_bytes=input_kib * 1024,
                output_buffer_bytes=output_kib * 1024,
                name=f"IB{input_kib}K-OB{output_kib}K",
            )
        )
    return sweep_designs(graph, family, configs, jobs=jobs)


def pareto_front(points: list[DesignPoint]) -> list[DesignPoint]:
    """Designs not dominated in (latency, area): lower is better for both.

    Sort-then-scan in O(n log n): after sorting by (latency, area), a point
    survives iff the minimum area of its latency group is strictly below
    the best area seen at any strictly smaller latency — a point with equal
    latency and higher area is dominated within its group, one whose area
    merely ties the running minimum is dominated through strictly smaller
    latency.  Exact-duplicate (latency, area) pairs dominate neither each
    other nor anything their twin does not, so all duplicates of a
    surviving point survive, matching the all-pairs domination definition.
    """
    order = sorted(
        range(len(points)),
        key=lambda i: (points[i].latency_seconds, points[i].area_mm2),
    )
    keep = [False] * len(points)
    best_area = float("inf")
    start = 0
    while start < len(order):
        stop = start
        latency = points[order[start]].latency_seconds
        while stop < len(order) and points[order[stop]].latency_seconds == latency:
            stop += 1
        group_min = points[order[start]].area_mm2
        if group_min < best_area:
            for position in range(start, stop):
                index = order[position]
                if points[index].area_mm2 == group_min:
                    keep[index] = True
            best_area = group_min
        start = stop
    front = [point for index, point in enumerate(points) if keep[index]]
    return sorted(front, key=lambda point: point.latency_seconds)
