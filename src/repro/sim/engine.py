"""Top-level GNNIE inference simulator.

:class:`GNNIESimulator` runs a whole GNN inference (all layers, both phases,
preprocessing, DRAM traffic, energy) for one dataset graph, one GNN family
from Table III, and one accelerator configuration.  It is the engine behind
the headline comparisons (Figs. 12–15, Table IV) and the ablations
(Figs. 16–18).

Modeling notes
--------------
* Layer-1 Weighting uses the dataset's *actual* sparse feature matrix, so the
  rabbit/turtle imbalance and the zero-skipping benefit are driven by real
  per-block nonzero counts.  Later layers' features (post-ReLU activations)
  are modeled with a fixed density (:data:`LATER_LAYER_DENSITY`), matching
  the paper's observation that the RLC decoder is bypassed after layer 1.
* GraphSAGE aggregates over a sampled neighborhood (25 neighbors, Table III);
  the simulator builds the sampled subgraph with the pregenerated-stream
  sampler and runs the cache policy on it, charging the sampling cost as
  preprocessing.
* GINConv aggregates raw features *before* its MLP, so its layer-1
  aggregation runs at the input feature length.
* DiffPool is simulated as its two constituent GCNs (embedding + pooling)
  plus the dense coarsening products Sᵀ A S and Sᵀ Z on the CPE array.
* The cache-policy simulation is run once per (graph fingerprint, buffer
  configuration) and deliberately shared across layers and GNN families as
  an approximation: the layer feature length changes the per-vertex record
  size (and hence the buffer's vertex capacity), but re-simulating per
  width would dominate runtime, so the first caller's width sizes the sim
  and later layers reuse it.
"""

from __future__ import annotations

import weakref
import zlib
from dataclasses import dataclass, replace

import numpy as np

from repro.cache.policy import CacheSimulationResult
from repro.graph.csr import CSRGraph
from repro.graph.graph import Graph
from repro.hw.config import AcceleratorConfig
from repro.hw.energy import AreaModel, EnergyBreakdown, EnergyModel
from repro.mapping.attention import schedule_attention
from repro.models.graphsage import NeighborSampler
from repro.models.zoo import ModelConfig, model_config
from repro.sim.aggregation_sim import aggregation_phase_from_cache, run_cache_simulation
from repro.sim.results import InferenceResult, LayerResult, PhaseResult
from repro.sim.weighting_sim import simulate_weighting

__all__ = ["GNNIESimulator", "LATER_LAYER_DENSITY"]

#: Modeled nonzero density of post-ReLU hidden-layer features.
LATER_LAYER_DENSITY = 0.6

#: Throughput of the host-side preprocessing (degree binning), ops/cycle.
_PREPROCESSING_OPS_PER_CYCLE = 8


def _adjacency_fingerprint(adjacency: CSRGraph) -> tuple[int, int, int]:
    """Stable content key for the per-(graph, config) cache-result memo.

    ``id(adjacency)`` can alias a *different* graph once the original is
    garbage collected, silently reusing a stale simulation; fingerprinting
    the CSR content (vertex/edge counts plus a checksum over both arrays)
    cannot.
    """
    checksum = zlib.crc32(np.ascontiguousarray(adjacency.indptr).tobytes())
    checksum = zlib.crc32(np.ascontiguousarray(adjacency.indices).tobytes(), checksum)
    return (adjacency.num_vertices, adjacency.num_edges, checksum)


class GNNIESimulator:
    """Performance and energy simulator for GNNIE inference."""

    def __init__(
        self,
        config: AcceleratorConfig | None = None,
        *,
        energy_model: EnergyModel | None = None,
        area_model: AreaModel | None = None,
    ) -> None:
        self.config = config or AcceleratorConfig()
        self.energy_model = energy_model or EnergyModel()
        self.area_model = area_model or AreaModel()
        self._cache_results: dict[tuple, CacheSimulationResult] = {}
        # id -> (weakref, fingerprint); weak references avoid pinning every
        # simulated graph in memory, and a dead/realiased id is detected by
        # the identity check on the dereferenced graph.
        self._fingerprints: dict[
            int, tuple[weakref.ref, tuple[int, int, int]]
        ] = {}

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    def run(
        self,
        graph: Graph,
        family: str,
        *,
        config: AcceleratorConfig | None = None,
        model_cfg: ModelConfig | None = None,
        out_features: int | None = None,
    ) -> InferenceResult:
        """Simulate one full inference.

        Args:
            graph: Dataset graph (features + adjacency).
            family: GNN family name ("gcn", "gat", "graphsage", "ginconv",
                "diffpool").
            config: Optional accelerator configuration override; defaults to
                the simulator's configuration with the paper's per-dataset
                input-buffer sizing applied.
            model_cfg: Optional Table III configuration override.
            out_features: Output width of the last layer (defaults to the
                dataset's label count).
        """
        cfg = (config or self.config).with_input_buffer_for(graph.name)
        mdl = model_cfg or model_config(family)
        family_key = mdl.family.lower()
        labels = out_features if out_features is not None else max(graph.num_label_classes, 2)

        if family_key == "diffpool":
            layers = self._run_diffpool(graph, cfg, mdl, labels)
        else:
            layers = self._run_message_passing(graph, cfg, mdl, family_key, labels)
        for layer in layers:
            self._overlap_layer_memory(layer)

        result = InferenceResult(
            dataset=graph.name,
            model=family_key.upper(),
            config_name=cfg.name,
            layers=layers,
            frequency_hz=cfg.frequency_hz,
            global_preprocessing_cycles=self._global_preprocessing_cycles(graph, cfg),
        )
        result.energy = self._energy(result, cfg)
        return result

    def chip_area_mm2(self, config: AcceleratorConfig | None = None) -> float:
        return self.area_model.chip_area_mm2(config or self.config)

    # ------------------------------------------------------------------ #
    # Layer builders
    # ------------------------------------------------------------------ #
    def _run_message_passing(
        self,
        graph: Graph,
        cfg: AcceleratorConfig,
        mdl: ModelConfig,
        family: str,
        labels: int,
    ) -> list[LayerResult]:
        dims = mdl.layer_dimensions(graph.feature_length, labels)
        adjacency = self._aggregation_adjacency(graph, mdl, family)
        layers: list[LayerResult] = []
        for index, (in_features, out_features_layer) in enumerate(dims):
            is_input_layer = index == 0
            weighting, _ = self._weighting_phase(
                graph, cfg, in_features, out_features_layer, is_input_layer, family
            )
            attention = None
            if family == "gat":
                attention = self._attention_phase(graph, cfg, out_features_layer)
            aggregation_width = in_features if family == "ginconv" else out_features_layer
            aggregation = self._aggregation_phase(
                adjacency, cfg, aggregation_width, is_gat=family == "gat"
            )
            layers.append(
                LayerResult(
                    layer_index=index,
                    in_features=in_features,
                    out_features=out_features_layer,
                    weighting=weighting,
                    attention=attention,
                    aggregation=aggregation,
                )
            )
        return layers

    def _run_diffpool(
        self, graph: Graph, cfg: AcceleratorConfig, mdl: ModelConfig, labels: int
    ) -> list[LayerResult]:
        hidden = mdl.hidden_features
        num_clusters = max(2, hidden // 4)
        in_features = graph.feature_length
        # Embedding GNN (GCN, F_in -> hidden) and pooling GNN (F_in -> C).
        embed_weighting, _ = self._weighting_phase(graph, cfg, in_features, hidden, True, "gcn")
        pool_weighting, _ = self._weighting_phase(
            graph, cfg, in_features, num_clusters, True, "gcn"
        )
        embed_aggregation = self._aggregation_phase(graph.adjacency, cfg, hidden, is_gat=False)
        pool_aggregation = self._aggregation_phase(
            graph.adjacency, cfg, num_clusters, is_gat=False
        )
        coarsening = self._coarsening_phase(graph, cfg, hidden, num_clusters)
        layers = [
            LayerResult(0, in_features, hidden, embed_weighting, None, embed_aggregation),
            LayerResult(1, in_features, num_clusters, pool_weighting, None, pool_aggregation),
            LayerResult(2, num_clusters, hidden, coarsening, None, PhaseResult("aggregation")),
        ]
        return layers

    # ------------------------------------------------------------------ #
    # Phase builders
    # ------------------------------------------------------------------ #
    def _weighting_phase(
        self,
        graph: Graph,
        cfg: AcceleratorConfig,
        in_features: int,
        out_features: int,
        is_input_layer: bool,
        family: str,
    ) -> tuple[PhaseResult, object]:
        if is_input_layer and in_features == graph.feature_length:
            return simulate_weighting(
                cfg,
                out_features,
                features=graph.features,
                is_input_layer=True,
            )
        # Later layers: statistical block nonzeros at the modeled density.
        block_size = -(-in_features // cfg.num_rows)
        num_blocks = -(-in_features // block_size)
        per_block = int(round(LATER_LAYER_DENSITY * block_size))
        block_nonzeros = np.full((graph.num_vertices, num_blocks), per_block, dtype=np.int64)
        return simulate_weighting(
            cfg,
            out_features,
            block_nonzeros=block_nonzeros,
            in_features=in_features,
            is_input_layer=False,
        )

    def _attention_phase(
        self, graph: Graph, cfg: AcceleratorConfig, out_features: int
    ) -> PhaseResult:
        schedule = schedule_attention(graph.num_vertices, out_features, cfg)
        return PhaseResult(
            name="attention",
            compute_cycles=schedule.compute_cycles,
            mac_operations=schedule.total_macs,
            dram_write_bytes=schedule.output_bytes,
            dram_output_stream_bytes=schedule.output_bytes,
            output_buffer_bytes=schedule.output_bytes,
        )

    def _aggregation_phase(
        self,
        adjacency: CSRGraph,
        cfg: AcceleratorConfig,
        feature_length: int,
        *,
        is_gat: bool,
    ) -> PhaseResult:
        cache_result = self._cached_cache_result(adjacency, cfg, feature_length)
        return aggregation_phase_from_cache(
            cache_result, adjacency, cfg, feature_length, is_gat=is_gat
        )

    def _coarsening_phase(
        self, graph: Graph, cfg: AcceleratorConfig, hidden: int, num_clusters: int
    ) -> PhaseResult:
        """Dense coarsening products of DiffPool (Sᵀ A S and Sᵀ Z)."""
        num_vertices = graph.num_vertices
        num_edges = graph.num_edges
        macs = (
            num_edges * num_clusters
            + num_vertices * num_clusters * num_clusters
            + num_vertices * num_clusters * hidden
        )
        compute_cycles = int(np.ceil(macs / cfg.total_macs))
        softmax_ops = num_vertices * num_clusters
        output_bytes = num_clusters * (num_clusters + hidden) * cfg.bytes_per_value
        return PhaseResult(
            name="weighting",
            compute_cycles=compute_cycles,
            sfu_cycles=int(np.ceil(softmax_ops / (4 * cfg.num_rows))),
            mac_operations=int(macs),
            sfu_operations=int(softmax_ops),
            dram_write_bytes=int(output_bytes),
            dram_output_stream_bytes=int(output_bytes),
            output_buffer_bytes=int(output_bytes),
        )

    # ------------------------------------------------------------------ #
    # Helpers
    # ------------------------------------------------------------------ #
    def _aggregation_adjacency(
        self, graph: Graph, mdl: ModelConfig, family: str
    ) -> CSRGraph:
        if family != "graphsage":
            return graph.adjacency
        sampler = NeighborSampler(seed=graph.num_vertices)
        sampled_edges = sampler.sample_edges(graph.adjacency, mdl.sample_size or 25)
        return CSRGraph.from_edge_list(
            sampled_edges, num_vertices=graph.num_vertices, symmetric=True
        )

    def _cached_cache_result(
        self, adjacency: CSRGraph, cfg: AcceleratorConfig, feature_length: int
    ) -> CacheSimulationResult:
        # feature_length is intentionally absent: one cache sim per (graph,
        # buffer config) is shared across layers (see the modeling notes).
        key = (
            self._fingerprint(adjacency),
            cfg.input_buffer_bytes,
            cfg.gamma,
            cfg.enable_degree_aware_caching,
            cfg.miss_path_mechanisms,
            cfg.victim_cache_entries,
            cfg.miss_cache_entries,
            cfg.stream_buffer_count,
            cfg.stream_buffer_depth,
        )
        if key not in self._cache_results:
            self._cache_results[key] = run_cache_simulation(adjacency, cfg, feature_length)
        return self._cache_results[key]

    def _fingerprint(self, adjacency: CSRGraph) -> tuple[int, int, int]:
        """Per-instance memo of the O(E) content fingerprint."""
        key = id(adjacency)
        entry = self._fingerprints.get(key)
        if entry is not None and entry[0]() is adjacency:
            return entry[1]
        fingerprint = _adjacency_fingerprint(adjacency)
        self._fingerprints[key] = (weakref.ref(adjacency), fingerprint)
        weakref.finalize(adjacency, self._fingerprints.pop, key, None)
        return fingerprint

    @staticmethod
    def _overlap_layer_memory(layer: LayerResult) -> None:
        """Re-derive exposed memory stalls at layer granularity.

        The memory access scheduler prefetches streaming traffic (feature
        blocks, weight columns, cached-vertex records, partial-sum spills)
        while any phase of the layer computes, so only the traffic exceeding
        the layer's total busy time is exposed.  Random accesses (present
        only in the ablation baselines) cannot be prefetched and stay fully
        exposed where the phase charged them.
        """
        phases = layer.phases()
        busy = sum(p.compute_cycles + p.sfu_cycles + p.preprocessing_cycles for p in phases)
        streaming = sum(p.streaming_memory_cycles for p in phases)
        random_stalls = sum(
            max(0, p.memory_stall_cycles - max(0, p.streaming_memory_cycles -
                (p.compute_cycles + p.sfu_cycles)))
            for p in phases
            if p.dram_random_accesses
        )
        exposed = max(0, streaming - busy)
        for phase in phases:
            phase.memory_stall_cycles = 0
        # Attribute the layer's exposed stall (plus unhideable random-access
        # stalls) to the aggregation phase, which is where the traffic peaks.
        layer.aggregation.memory_stall_cycles = int(exposed + random_stalls)

    def _global_preprocessing_cycles(self, graph: Graph, cfg: AcceleratorConfig) -> int:
        """Degree-based vertex reordering (binning), charged once per inference."""
        if not cfg.enable_degree_aware_caching:
            return 0
        return int(np.ceil(graph.num_vertices / _PREPROCESSING_OPS_PER_CYCLE))

    def _energy(self, result: InferenceResult, cfg: AcceleratorConfig) -> EnergyBreakdown:
        model = self.energy_model
        breakdown = EnergyBreakdown()
        for layer in result.layers:
            for phase in layer.phases():
                breakdown.mac_pj += model.mac_energy(phase.mac_operations)
                breakdown.sfu_pj += model.sfu_energy(phase.sfu_operations)
                breakdown.input_buffer_pj += model.buffer_energy("input", phase.input_buffer_bytes)
                breakdown.output_buffer_pj += model.buffer_energy(
                    "output", phase.output_buffer_bytes
                )
                breakdown.weight_buffer_pj += model.buffer_energy(
                    "weight", phase.weight_buffer_bytes
                )
                breakdown.dram_input_pj += model.dram_energy(phase.dram_input_stream_bytes)
                breakdown.dram_weight_pj += model.dram_energy(phase.dram_weight_stream_bytes)
                breakdown.dram_output_pj += model.dram_energy(phase.dram_output_stream_bytes)
        breakdown.static_pj = model.static_energy(result.total_cycles, cfg.frequency_hz)
        return breakdown
