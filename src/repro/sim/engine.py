"""Top-level GNNIE inference simulator (compatibility wrapper).

:class:`GNNIESimulator` is the historical entry point for whole-inference
simulation.  Since the plan-IR refactor it is a thin *lower-then-execute*
wrapper: the GNN family is lowered to a backend-neutral
:class:`~repro.plan.ir.InferencePlan` by the rules registered in
:mod:`repro.models.lowering`, and the plan is run by the
:class:`~repro.sim.gnnie_executor.GNNIEExecutor` per-op handlers.  This
module contains no family-specific control flow — adding a GNN family is a
new lowering rule, and adding a cost model is a new executor, neither of
which touches this file.

``repro.sim.design_space``, ``repro.analysis``, the CLI and the benchmark
suite all flow through this wrapper unchanged.
"""

from __future__ import annotations

from repro.graph.graph import Graph
from repro.hw.config import AcceleratorConfig
from repro.hw.energy import AreaModel, EnergyModel
from repro.models.zoo import ModelConfig, model_config
from repro.plan.ir import HIDDEN_DENSITY
from repro.plan.lowering import lower_model
from repro.sim.gnnie_executor import GNNIEExecutor
from repro.sim.results import InferenceResult

__all__ = ["GNNIESimulator", "LATER_LAYER_DENSITY"]

#: Backwards-compatible alias: modeled nonzero density of post-ReLU
#: hidden-layer features (now owned by the plan IR).
LATER_LAYER_DENSITY = HIDDEN_DENSITY


class GNNIESimulator:
    """Performance and energy simulator for GNNIE inference."""

    def __init__(
        self,
        config: AcceleratorConfig | None = None,
        *,
        energy_model: EnergyModel | None = None,
        area_model: AreaModel | None = None,
        tracer=None,
        metrics=None,
    ) -> None:
        self._executor = GNNIEExecutor(
            config,
            energy_model=energy_model,
            area_model=area_model,
            tracer=tracer,
            metrics=metrics,
        )

    @property
    def tracer(self):
        """Span tracer threaded into the executor (``repro.obs``)."""
        return self._executor.tracer

    @property
    def metrics(self):
        """Metrics registry threaded into the executor (``repro.obs``)."""
        return self._executor.metrics

    @property
    def config(self) -> AcceleratorConfig:
        return self._executor.config

    @property
    def energy_model(self) -> EnergyModel:
        return self._executor.energy_model

    @property
    def area_model(self) -> AreaModel:
        return self._executor.area_model

    @property
    def _cache_results(self) -> dict:
        """Cache-simulation memo (shared across runs; see the executor)."""
        return self._executor._cache_results

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    def run(
        self,
        graph: Graph,
        family: str,
        *,
        config: AcceleratorConfig | None = None,
        model_cfg: ModelConfig | None = None,
        out_features: int | None = None,
    ) -> InferenceResult:
        """Lower one GNN family for ``graph`` and execute the plan.

        Args:
            graph: Dataset graph (features + adjacency).
            family: GNN family name ("gcn", "gat", "graphsage", "ginconv",
                "diffpool", or any family with a registered lowering rule).
            config: Optional accelerator configuration override; defaults to
                the simulator's configuration.  A configuration whose
                ``input_buffer_bytes`` is the ``None`` auto-sizing sentinel
                gets the paper's per-dataset input-buffer sizing; an explicit
                capacity is simulated as-is.
            model_cfg: Optional Table III configuration override.
            out_features: Output width of the last layer (defaults to the
                dataset's label count).
        """
        mdl = model_cfg or model_config(family)
        labels = out_features if out_features is not None else max(graph.num_label_classes, 2)
        plan = lower_model(mdl, graph.feature_length, labels)
        return self._executor.execute(plan, graph, config)

    def chip_area_mm2(self, config: AcceleratorConfig | None = None) -> float:
        return self._executor.chip_area_mm2(config)
