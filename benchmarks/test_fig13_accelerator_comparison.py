"""Fig. 13 — performance comparison with HyGCN and AWB-GCN.

HyGCN cannot evaluate GATs (no softmax over neighborhoods) and AWB-GCN
implements GCNs only, so the comparison covers GCN / GraphSAGE / GINConv for
HyGCN and GCN for AWB-GCN.  The paper reports average speedups of 25×
(HyGCN, GCN), 72× (GraphSAGE), 7× (GINConv) and 2.1× (AWB-GCN, with 3.4×
fewer MACs).  The shape checks here: GNNIE is consistently faster than
HyGCN by roughly an order of magnitude and competitive-to-faster than
AWB-GCN despite using 1216 vs 4096 MACs.

Speedups are aggregated from the session's shared union-matrix sweep
(``sweep_rows``) via :func:`repro.analysis.sweep_aggregate.speedup_rows`.
"""

from __future__ import annotations

from repro.analysis import format_table, geometric_mean
from repro.analysis.sweep_aggregate import speedup_rows
from repro.hw import AcceleratorConfig

ALL_DATASETS = ("cora", "citeseer", "pubmed", "ppi", "reddit")
HYGCN_FAMILIES = ("gcn", "graphsage", "ginconv")


def test_fig13_hygcn_awbgcn_comparison(
    benchmark, record, sweep_rows, sweep_index, baseline_platforms
):
    hygcn = baseline_platforms["HyGCN"]
    awb = baseline_platforms["AWB-GCN"]

    def compute():
        speedups = {
            (entry["backend"], entry["dataset"], entry["family"]): entry["speedup"]
            for entry in speedup_rows(sweep_rows)
        }
        rows = []
        for family in HYGCN_FAMILIES:
            for name in ALL_DATASETS:
                rows.append(
                    {
                        "baseline": "HyGCN",
                        "model": family.upper(),
                        "dataset": sweep_index[("gnnie", name, family)]["dataset_abbrev"],
                        "speedup": round(speedups[("hygcn", name, family)], 2),
                    }
                )
        for name in ALL_DATASETS:
            rows.append(
                {
                    "baseline": "AWB-GCN",
                    "model": "GCN",
                    "dataset": sweep_index[("gnnie", name, "gcn")]["dataset_abbrev"],
                    "speedup": round(speedups[("awb-gcn", name, "gcn")], 2),
                }
            )
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    record(
        "fig13_accelerator_comparison",
        format_table(rows, title="Fig. 13 — GNNIE speedup over HyGCN and AWB-GCN"),
        data=rows,
    )

    hygcn_speedups = [row["speedup"] for row in rows if row["baseline"] == "HyGCN"]
    awb_speedups = [row["speedup"] for row in rows if row["baseline"] == "AWB-GCN"]

    # GNNIE beats HyGCN by ~an order of magnitude on average (paper: 35x
    # overall); GINConv's deep MLP on the scaled citation graphs is the one
    # family where individual cells dip toward parity, so the per-cell
    # floor is loose and the per-family geomeans carry the ordering.
    assert all(speedup > 0.4 for speedup in hygcn_speedups)
    assert geometric_mean(hygcn_speedups) > 8
    for family in HYGCN_FAMILIES:
        family_speedups = [
            row["speedup"]
            for row in rows
            if row["baseline"] == "HyGCN" and row["model"] == family.upper()
        ]
        assert geometric_mean(family_speedups) > 2, family
    # AWB-GCN uses 3.4x more MACs; GNNIE is still faster on average
    # (paper: 2.1x).  Individual scaled datasets may fall below 1.
    assert geometric_mean(awb_speedups) > 1.2
    assert all(speedup > 0.4 for speedup in awb_speedups)
    # MAC-count context for the comparison.
    assert AcceleratorConfig().total_macs == 1216
    assert awb.num_macs / AcceleratorConfig().total_macs > 3.3
    # HyGCN does not support GATs (versatility argument of the paper).
    assert not hygcn.supports("gat")
    assert not awb.supports("graphsage")
