"""Table III — convolution layer configurations used for evaluation.

All GNN families are evaluated with 128-channel layers; GraphSAGE uses max
aggregation with a neighborhood sample of 25, GINConv a 128/128 MLP, and
DiffPool two GCNs (pooling + embedding).  This bench regenerates the
configuration table and checks the simulator honours it.
"""

from __future__ import annotations

from repro.analysis import format_table
from repro.models import MODEL_FAMILIES, model_config


def test_table3_layer_configurations(benchmark, record, datasets, gnnie_run):
    def build_rows():
        rows = []
        for family in MODEL_FAMILIES:
            cfg = model_config(family)
            rows.append(
                {
                    "model": family.upper(),
                    "weighting": f"len[h], {cfg.hidden_features}"
                    + ("/128" if family == "ginconv" else ""),
                    "aggregation": cfg.aggregator,
                    "sample_size": cfg.sample_size or "-",
                    "layers": cfg.num_layers,
                }
            )
        return rows

    rows = benchmark(build_rows)
    record("table3_layer_configs", format_table(rows, title="Table III — layer configurations"))

    # Every family uses 128 hidden channels (aligned with HyGCN's setup).
    assert all(model_config(f).hidden_features == 128 for f in MODEL_FAMILIES)
    assert model_config("graphsage").sample_size == 25
    assert model_config("graphsage").aggregator == "max"
    assert model_config("ginconv").mlp_hidden == 128

    # The simulator instantiates these dimensions: hidden layer width 128.
    result = gnnie_run("cora", "gcn")
    assert result.layers[0].out_features == 128
