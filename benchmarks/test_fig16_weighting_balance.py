"""Fig. 16 — per-CPE-row Weighting workload: baseline vs FM vs FM+LR.

The position-based baseline mapping leaves the CPE rows imbalanced because
feature-position density varies (Fig. 2); the Flexible MAC binning levels the
profile and reduces the pass-gating (maximum) cycle count; Load
Redistribution smooths the remainder.  The paper reports FM cycle reductions
of 6% (Cora), 14% (Citeseer) and 31% (Pubmed) with LR adding further gains.
"""

from __future__ import annotations

from repro.analysis import format_series, format_table, weighting_row_profile

CITATION = ("cora", "citeseer", "pubmed")


def test_fig16_weighting_row_balance(benchmark, record, citation_datasets):
    def compute():
        return {name: weighting_row_profile(graph) for name, graph in citation_datasets.items()}

    profiles = benchmark.pedantic(compute, rounds=1, iterations=1)

    rows = []
    series = {}
    for name, profile in profiles.items():
        rows.append(
            {
                "dataset": profile.dataset,
                "baseline_max": int(profile.baseline_cycles.max()),
                "fm_max": int(profile.fm_cycles.max()),
                "fm_lr_max": int(profile.fm_lr_cycles.max()),
                "baseline_imbalance": round(profile.baseline_imbalance, 3),
                "fm_imbalance": round(profile.fm_imbalance, 3),
                "fm_lr_imbalance": round(profile.fm_lr_imbalance, 3),
                "fm_reduction_pct": round(100 * profile.fm_cycle_reduction, 1),
                "fm_lr_reduction_pct": round(100 * profile.fm_lr_cycle_reduction, 1),
            }
        )
        series[f"{profile.dataset}-baseline"] = profile.baseline_cycles
        series[f"{profile.dataset}-FM"] = profile.fm_cycles
        series[f"{profile.dataset}-FM+LR"] = profile.fm_lr_cycles
    record(
        "fig16_weighting_balance",
        format_table(rows, title="Fig. 16 — Weighting workload balance summary")
        + "\n\n"
        + format_series(series, title="Per-CPE-row cycles"),
    )

    for name, profile in profiles.items():
        # Each balancing step flattens the profile...
        assert profile.baseline_imbalance >= profile.fm_imbalance >= profile.fm_lr_imbalance
        # ...and lowers (or at least never raises) the pass-gating maximum.
        assert profile.fm_cycle_reduction > 0.02
        assert profile.fm_lr_cycle_reduction >= profile.fm_cycle_reduction
        # FM+LR is close to perfectly level (paper: imbalance largely removed).
        assert profile.fm_lr_imbalance < 1.3
