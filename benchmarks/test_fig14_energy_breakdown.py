"""Fig. 14 — energy breakdown for GCN and GAT (Cora, Citeseer, Pubmed).

The paper's breakdown attributes energy to the DRAM traffic that feeds the
output, input and weight buffers plus the on-chip components, and observes
that the output buffer is responsible for most DRAM transactions (partial-sum
storage), while the weight buffer's share is negligible.
"""

from __future__ import annotations

from repro.analysis import format_table

CITATION = ("cora", "citeseer", "pubmed")


def test_fig14_energy_breakdown(benchmark, record, datasets, gnnie_run):
    def compute():
        rows = []
        for family in ("gcn", "gat"):
            for name in CITATION:
                result = gnnie_run(name, family)
                energy = result.energy
                total = energy.total_pj
                rows.append(
                    {
                        "model": family.upper(),
                        "dataset": datasets[name].name,
                        "total_uJ": round(total / 1e6, 2),
                        "dram_output_pct": round(100 * energy.dram_output_pj / total, 1),
                        "dram_input_pct": round(100 * energy.dram_input_pj / total, 1),
                        "dram_weight_pct": round(100 * energy.dram_weight_pj / total, 1),
                        "onchip_buffer_pct": round(100 * energy.on_chip_buffer_pj / total, 1),
                        "compute_pct": round(100 * (energy.mac_pj + energy.sfu_pj) / total, 1),
                    }
                )
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    record("fig14_energy_breakdown", format_table(rows, title="Fig. 14 — energy breakdown (GCN & GAT)"))

    for row in rows:
        # The output-buffer DRAM stream dominates the DRAM energy (psum
        # spills + result write-back), and the weight stream is negligible.
        assert row["dram_output_pct"] >= row["dram_weight_pct"]
        assert row["dram_weight_pct"] < 20
        # Every reported component is a sane percentage.
        assert 0 <= row["dram_output_pct"] <= 100
        assert row["total_uJ"] > 0

    # GAT consumes at least as much energy as GCN on every dataset.
    for name in CITATION:
        gcn_row = next(r for r in rows if r["model"] == "GCN" and r["dataset"] == datasets[name].name)
        gat_row = next(r for r in rows if r["model"] == "GAT" and r["dataset"] == datasets[name].name)
        assert gat_row["total_uJ"] >= gcn_row["total_uJ"] * 0.95
