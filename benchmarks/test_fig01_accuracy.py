"""Fig. 1 — GNN accuracy comparison on the PPI multi-label task.

The paper motivates GNNIE's versatility with the accuracy/compute tradeoff:
GATs reach the highest micro-F1, the GraphSAGE variants sit in the middle,
and GCN is cheapest but least accurate.  We reproduce the *ordering* with a
NumPy linear-probe protocol on the synthetic PPI stand-in (see
``repro.models.training`` for the substitution details).
"""

from __future__ import annotations

import pytest

from repro.analysis import format_table
from repro.datasets import build_dataset
from repro.models import accuracy_study


@pytest.fixture(scope="module")
def ppi_graph():
    return build_dataset("ppi", scale=0.05, seed=0)


def test_fig01_accuracy_ordering(benchmark, record, ppi_graph):
    results = benchmark.pedantic(
        lambda: accuracy_study(ppi_graph, epochs=150, hidden=48, seed=0),
        rounds=1,
        iterations=1,
    )
    rows = [
        {
            "model": result.model,
            "micro_f1": round(result.micro_f1, 4),
            "relative_compute": result.relative_compute,
        }
        for result in sorted(results, key=lambda r: r.relative_compute)
    ]
    record("fig01_accuracy", format_table(rows, title="Fig. 1 — accuracy vs relative compute (PPI stand-in)"))

    by_name = {result.model: result for result in results}
    # Shape check: attention (GAT) beats plain GCN, and every GraphSAGE
    # variant is at least as accurate as GCN (the paper's ordering).
    assert by_name["GAT"].micro_f1 >= by_name["GCN"].micro_f1
    sage_scores = [
        by_name["GraphSAGE-mean"].micro_f1,
        by_name["GraphSAGE-pool"].micro_f1,
        by_name["GraphSAGE-LSTM"].micro_f1,
    ]
    assert max(sage_scores) >= by_name["GCN"].micro_f1 - 0.02
    # The accuracy/compute tradeoff exists: the most accurate model is not
    # the cheapest one.
    best = max(results, key=lambda r: r.micro_f1)
    assert best.relative_compute > 1.0
