"""Fig. 12 — GNNIE speedup over PyG-CPU (a) and PyG-GPU (b).

For every GNN family of Table III and every dataset of Table II, GNNIE's
simulated latency is compared against the CPU (Xeon Gold 6132 + PyG) and GPU
(Tesla V100S + PyG) cost models.  The paper reports average speedups of
615×–72954× over the CPU and 11×–2427× over the GPU; with the analytic
platform models and scaled large graphs our absolute factors are smaller
(see EXPERIMENTS.md), but the qualitative shape is checked here:

* GNNIE beats the CPU on every (dataset, model) pair by a wide margin,
* GNNIE beats the GPU on every pair,
* the GPU is much closer to GNNIE than the CPU is,
* GraphSAGE shows the largest GPU-relative speedup (host-side sampling),
  as in the paper.

All latencies come from the session's shared union-matrix sweep
(``sweep_rows``); this benchmark only aggregates the relevant slice.
"""

from __future__ import annotations

from repro.analysis import format_table, geometric_mean
from repro.analysis.sweep_aggregate import speedup_rows
from repro.models import MODEL_FAMILIES

ALL_DATASETS = ("cora", "citeseer", "pubmed", "ppi", "reddit")


def test_fig12_speedup_over_cpu_and_gpu(benchmark, record, sweep_rows, sweep_index):
    def compute():
        speedups = {
            (entry["backend"], entry["dataset"], entry["family"]): entry["speedup"]
            for entry in speedup_rows(sweep_rows)
        }
        rows = []
        for family in MODEL_FAMILIES:
            for name in ALL_DATASETS:
                gnnie = sweep_index[("gnnie", name, family)]
                rows.append(
                    {
                        "model": family.upper(),
                        "dataset": gnnie["dataset_abbrev"],
                        "gnnie_us": round(gnnie["metrics"]["latency_seconds"] * 1e6, 1),
                        "speedup_vs_cpu": round(speedups[("pyg-cpu", name, family)], 1),
                        "speedup_vs_gpu": round(speedups[("pyg-gpu", name, family)], 2),
                    }
                )
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)

    summary_rows = []
    for family in MODEL_FAMILIES:
        family_rows = [row for row in rows if row["model"] == family.upper()]
        summary_rows.append(
            {
                "model": family.upper(),
                "geomean_speedup_cpu": round(
                    geometric_mean([row["speedup_vs_cpu"] for row in family_rows]), 1
                ),
                "geomean_speedup_gpu": round(
                    geometric_mean([row["speedup_vs_gpu"] for row in family_rows]), 1
                ),
            }
        )
    text = (
        format_table(rows, title="Fig. 12 — GNNIE speedup per (model, dataset)")
        + "\n\n"
        + format_table(summary_rows, title="Fig. 12 — average (geometric mean) speedups")
    )
    record("fig12_cpu_gpu_speedup", text)

    # Shape assertions.
    for row in rows:
        assert row["speedup_vs_cpu"] > 10, row
        # GNNIE beats the GPU on almost every pair; GINConv's deep MLP on
        # the scaled Citeseer graph is the one cell near parity (the
        # committed fig12 artifact shows the same dip), so the per-cell
        # floor is 0.5 and the per-family geomean below checks > 1.
        assert row["speedup_vs_gpu"] > 0.5, row
        # The GPU is closer to GNNIE than the CPU for every family except
        # GraphSAGE, where host-side neighbor sampling makes the GPU *slower*
        # than the CPU — exactly the inversion visible in the paper
        # (GraphSAGE: 1827x over CPU but 2427x over GPU).
        if row["model"] != "GRAPHSAGE":
            assert row["speedup_vs_cpu"] > row["speedup_vs_gpu"], row
    sage_rows = [row for row in rows if row["model"] == "GRAPHSAGE"]
    assert any(row["speedup_vs_gpu"] > row["speedup_vs_cpu"] for row in sage_rows)
    # Every family still beats the GPU on geometric mean.
    for entry in summary_rows:
        assert entry["geomean_speedup_gpu"] > 1.2, entry
    geomean_cpu = geometric_mean([row["speedup_vs_cpu"] for row in rows])
    geomean_gpu = geometric_mean([row["speedup_vs_gpu"] for row in rows])
    assert geomean_cpu > 100
    assert geomean_gpu > 5
    # GraphSAGE has the largest GPU-relative speedup (sampling overhead),
    # matching the paper's 2427x being the largest GPU column.
    by_family = {row["model"]: row for row in summary_rows}
    assert by_family["GRAPHSAGE"]["geomean_speedup_gpu"] == max(
        entry["geomean_speedup_gpu"] for entry in summary_rows
    )
