"""Table II — benchmark dataset statistics.

Regenerates the dataset-information table (vertices, edges, feature length,
labels, feature sparsity) from the synthetic stand-ins and checks them
against the published statistics carried by the registry.  PPI and Reddit are
built at their documented bench scales (DESIGN.md), so their absolute counts
are scaled while per-vertex statistics are preserved.
"""

from __future__ import annotations

import pytest

from repro.analysis import format_table
from repro.datasets import dataset_spec


def test_table2_dataset_statistics(benchmark, record, datasets):
    rows = benchmark.pedantic(
        lambda: [graph.stats().as_row() for graph in datasets.values()],
        rounds=1,
        iterations=1,
    )
    record("table2_datasets", format_table(rows, title="Table II — dataset statistics (synthetic stand-ins)"))

    for name, graph in datasets.items():
        spec = dataset_spec(name)
        # Feature length and label count are exact.
        assert graph.feature_length == spec.feature_length
        assert graph.num_label_classes == spec.num_labels
        # Feature sparsity matches the published value closely.
        assert graph.feature_sparsity() == pytest.approx(spec.feature_sparsity, abs=0.03)
        # Adjacency is highly sparse for every dataset (paper: >96%).
        assert graph.adjacency.sparsity() > 0.9
        # Full-scale datasets reproduce the vertex/edge counts.
        if spec.default_scale == 1.0 and name in ("cora", "citeseer", "pubmed"):
            assert graph.num_vertices == spec.num_vertices
            assert graph.num_edges / 2 == pytest.approx(spec.num_edges, rel=0.35)

    # Power-law skew: the top 10% highest-degree vertices hold a
    # disproportionate share of edges (the Reddit effect the paper cites).
    import numpy as np

    for name in ("pubmed", "reddit"):
        degrees = np.sort(datasets[name].degrees())[::-1]
        top_share = degrees[: len(degrees) // 10].sum() / degrees.sum()
        assert top_share > 0.2
