"""Fig. 11 — ablation of the eviction threshold γ (Cora, Citeseer, Pubmed).

Raising γ evicts vertices that still have unprocessed edges, which must be
refetched in later Rounds, so DRAM accesses grow with γ; a γ that is too low
risks deadlock (no eviction candidates), which the controller resolves
dynamically.  The paper uses a static γ = 5.
"""

from __future__ import annotations

from repro.analysis import format_table
from repro.hw import AcceleratorConfig
from repro.sim import run_cache_simulation

GAMMAS = (2, 5, 10, 25)
CITATION = ("cora", "citeseer", "pubmed")


def test_fig11_gamma_sweep(benchmark, record, citation_datasets):
    def compute():
        table = {}
        for name, graph in citation_datasets.items():
            config = AcceleratorConfig().with_input_buffer_for(graph.name)
            table[name] = {
                gamma: run_cache_simulation(
                    graph.adjacency, config, feature_length=128, gamma=gamma
                )
                for gamma in GAMMAS
            }
        return table

    table = benchmark.pedantic(compute, rounds=1, iterations=1)

    rows = []
    for name, sweep in table.items():
        for gamma, result in sweep.items():
            rows.append(
                {
                    "dataset": citation_datasets[name].name,
                    "gamma": gamma,
                    "dram_accesses": result.total_dram_accesses,
                    "rounds": result.num_rounds,
                    "deadlock_events": result.deadlock_events,
                }
            )
    record("fig11_gamma_ablation", format_table(rows, title="Fig. 11 — DRAM accesses vs γ"))

    for name, sweep in table.items():
        accesses = {gamma: sweep[gamma].total_dram_accesses for gamma in GAMMAS}
        # Aggregation always completes regardless of γ.
        undirected = citation_datasets[name].adjacency.num_edges // 2
        assert all(result.total_edges_processed == undirected for result in sweep.values())
        # DRAM accesses do not decrease when γ grows from small to the
        # paper's default and beyond (more evicted-then-refetched vertices).
        assert accesses[2] <= accesses[5] <= accesses[10] * 1.02
        assert accesses[max(GAMMAS)] >= accesses[min(GAMMAS)]
    # On the large graph the sensitivity is pronounced (paper's Fig. 11(c)).
    pubmed_sweep = table["pubmed"]
    assert (
        pubmed_sweep[10].total_dram_accesses
        > 1.5 * pubmed_sweep[2].total_dram_accesses
    )
