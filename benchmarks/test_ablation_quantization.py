"""Design-choice ablation — the 8-bit datapath.

GNNIE sizes its buffers for 1-byte weights and features (Section VIII-A).
This ablation checks that 8-bit symmetric quantization preserves the GCN's
argmax predictions on the citation stand-ins, and reports how the error grows
as the width shrinks.  (Not a paper figure; listed in DESIGN.md as a
design-choice ablation.)
"""

from __future__ import annotations

from repro.analysis import format_table
from repro.models import build_model, quantized_model_agreement


def test_ablation_quantization(benchmark, record, datasets):
    graph = datasets["cora"]
    model = build_model("gcn", graph.feature_length, graph.num_label_classes, seed=0)

    def compute():
        rows = []
        for bits in (4, 6, 8, 12):
            report = quantized_model_agreement(model, graph, bits=bits)
            rows.append(
                {
                    "bits": bits,
                    "argmax_agreement": round(report["argmax_agreement"], 4),
                    "relative_output_error": round(report["relative_output_error"], 4),
                }
            )
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    record(
        "ablation_quantization",
        format_table(rows, title="Ablation — fixed-point width vs GCN prediction agreement (Cora)"),
    )

    by_bits = {row["bits"]: row for row in rows}
    # The 8-bit datapath the paper assumes keeps predictions essentially
    # unchanged.
    assert by_bits[8]["argmax_agreement"] > 0.95
    assert by_bits[12]["argmax_agreement"] >= by_bits[8]["argmax_agreement"] - 1e-9
    # Aggressively narrow datapaths degrade.
    assert by_bits[4]["relative_output_error"] >= by_bits[8]["relative_output_error"]
