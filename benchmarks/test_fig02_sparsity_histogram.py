"""Fig. 2 — nonzero histogram of the input vertex feature vectors (Cora).

The histogram shows a broad spread of per-vertex nonzero counts (a sparse
"Region A" and a denser "Region B"), i.e. the rabbit/turtle imbalance that
motivates the Flexible MAC architecture, at an overall sparsity of 98.73%.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import feature_nonzero_histogram, format_series


def test_fig02_cora_feature_sparsity(benchmark, record, datasets):
    cora = datasets["cora"]
    histogram = benchmark(feature_nonzero_histogram, cora)

    series = {
        "bin_upper_edge": histogram.bin_edges[1:],
        "vertex_count": histogram.counts,
    }
    summary = (
        f"sparsity={histogram.sparsity * 100:.2f}%  mean_nnz={histogram.mean_nonzeros:.1f}  "
        f"median_nnz={histogram.median_nonzeros:.1f}  max_nnz={histogram.max_nonzeros}  "
        f"p90/p10 spread={histogram.spread_ratio():.2f}"
    )
    record(
        "fig02_sparsity_histogram",
        format_series(series, title="Fig. 2 — Cora input-feature nonzero histogram") + "\n" + summary,
    )

    # Paper: Cora input features are 98.73% sparse.
    assert histogram.sparsity == np.float64(cora.feature_sparsity())
    assert histogram.sparsity > 0.97
    # The distribution is broad (rabbits vs turtles), not a single spike.
    assert histogram.spread_ratio() > 1.5
    assert histogram.num_vertices == cora.num_vertices
