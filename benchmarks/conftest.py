"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one table or figure of the paper's evaluation
(Section VIII).  Datasets and GNNIE simulation results are expensive, so they
are built once per session and shared; each benchmark prints the reproduced
rows/series and also writes them to ``benchmarks/results/<experiment>.txt``
so the output survives pytest's stdout capture (see EXPERIMENTS.md).
"""

from __future__ import annotations

import functools
from pathlib import Path

import pytest

from repro.baselines import AWBGCNModel, HyGCNModel, PyGCPUModel, PyGGPUModel
from repro.datasets import build_dataset
from repro.hw import AcceleratorConfig
from repro.sim import GNNIESimulator

RESULTS_DIR = Path(__file__).parent / "results"

#: Scale factors used for the two large graphs (see DESIGN.md substitutions).
BENCH_SCALES = {"ppi": 0.25, "reddit": 0.02}

#: The three citation datasets used by the optimization-analysis figures.
CITATION_DATASETS = ("cora", "citeseer", "pubmed")

#: All five evaluation datasets (Table II).
ALL_DATASETS = ("cora", "citeseer", "pubmed", "ppi", "reddit")


@pytest.fixture(scope="session")
def datasets():
    """All five benchmark datasets, built once at their bench scales."""
    return {
        name: build_dataset(name, scale=BENCH_SCALES.get(name), seed=0) for name in ALL_DATASETS
    }


@pytest.fixture(scope="session")
def citation_datasets(datasets):
    return {name: datasets[name] for name in CITATION_DATASETS}


@pytest.fixture(scope="session")
def gnnie_simulator():
    """A shared simulator so cache-policy simulations are reused across benches."""
    return GNNIESimulator(AcceleratorConfig())


@pytest.fixture(scope="session")
def gnnie_run(gnnie_simulator, datasets):
    """Memoized GNNIE inference runner keyed by (dataset, family)."""

    @functools.lru_cache(maxsize=None)
    def run(dataset_name: str, family: str):
        return gnnie_simulator.run(datasets[dataset_name], family)

    return run


@pytest.fixture(scope="session")
def baseline_platforms():
    return {
        "PyG-CPU": PyGCPUModel(),
        "PyG-GPU": PyGGPUModel(),
        "HyGCN": HyGCNModel(),
        "AWB-GCN": AWBGCNModel(),
    }


@pytest.fixture(scope="session")
def record():
    """Print a reproduced table/series and persist it under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _record(experiment: str, text: str) -> None:
        print(f"\n===== {experiment} =====\n{text}\n")
        (RESULTS_DIR / f"{experiment}.txt").write_text(text + "\n")

    return _record
