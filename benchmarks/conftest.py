"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one table or figure of the paper's evaluation
(Section VIII).  Datasets and GNNIE simulation results are expensive, so they
are built once per session and shared; each benchmark prints the reproduced
rows/series and also writes them to ``benchmarks/results/<experiment>.txt``
so the output survives pytest's stdout capture (see EXPERIMENTS.md).  Next
to each ``.txt``, a structured ``<experiment>.json`` records the test id,
its wall time, and — when the benchmark passes its rows via ``data=`` — the
machine-readable figures (cycles, energy, speedups) for downstream plotting.
"""

from __future__ import annotations

import functools
import json
import time
from pathlib import Path

import pytest

from repro.baselines import AWBGCNModel, HyGCNModel, PyGCPUModel, PyGGPUModel
from repro.datasets import build_dataset
from repro.hw import AcceleratorConfig
from repro.sim import GNNIESimulator

RESULTS_DIR = Path(__file__).parent / "results"

#: Scale factors used for the two large graphs (see DESIGN.md substitutions).
BENCH_SCALES = {"ppi": 0.25, "reddit": 0.02}

#: The three citation datasets used by the optimization-analysis figures.
CITATION_DATASETS = ("cora", "citeseer", "pubmed")

#: All five evaluation datasets (Table II).
ALL_DATASETS = ("cora", "citeseer", "pubmed", "ppi", "reddit")


@pytest.fixture(scope="session")
def datasets():
    """All five benchmark datasets, built once at their bench scales."""
    return {
        name: build_dataset(name, scale=BENCH_SCALES.get(name), seed=0) for name in ALL_DATASETS
    }


@pytest.fixture(scope="session")
def citation_datasets(datasets):
    return {name: datasets[name] for name in CITATION_DATASETS}


@pytest.fixture(scope="session")
def gnnie_simulator():
    """A shared simulator so cache-policy simulations are reused across benches."""
    return GNNIESimulator(AcceleratorConfig())


@pytest.fixture(scope="session")
def gnnie_run(gnnie_simulator, datasets):
    """Memoized GNNIE inference runner keyed by (dataset, family)."""

    @functools.lru_cache(maxsize=None)
    def run(dataset_name: str, family: str):
        return gnnie_simulator.run(datasets[dataset_name], family)

    return run


@pytest.fixture(scope="session")
def sweep_rows(datasets):
    """One shared sweep over the union evaluation matrix, priced per session.

    Runs every (dataset × family × backend) cell of the paper's evaluation
    once through the sweep runner's batch path — the figure and table
    benchmarks (Figs. 12/13/15, Table IV) aggregate slices of these rows via
    :mod:`repro.analysis.sweep_aggregate` instead of each re-running its own
    simulations, which is where the suite's wall-time drop comes from.
    """
    from repro.models import MODEL_FAMILIES
    from repro.sweep import ALL_BACKENDS, DatasetCase, RetryPolicy, ScenarioMatrix, run_sweep

    matrix = ScenarioMatrix(
        datasets=tuple(
            DatasetCase(name, BENCH_SCALES.get(name), seed=0) for name in ALL_DATASETS
        ),
        families=tuple(MODEL_FAMILIES),
        backends=ALL_BACKENDS,
        seed=0,
    )
    # Strict, no-retry policy: a benchmark bug should fail the session
    # loudly via SweepError, never soak up silent retries or land failed
    # rows that would skew the aggregated figures.
    strict = RetryPolicy(max_attempts=1, failed_rows=False)
    return run_sweep(matrix, jobs=1, graphs=datasets, retry=strict).rows


@pytest.fixture(scope="session")
def sweep_index(sweep_rows):
    """Sweep rows keyed by (backend, dataset, family) — unique in the union
    matrix, which sweeps a single (default) configuration."""
    return {(row["backend"], row["dataset"], row["family"]): row for row in sweep_rows}


@pytest.fixture(scope="session")
def baseline_platforms():
    return {
        "PyG-CPU": PyGCPUModel(),
        "PyG-GPU": PyGGPUModel(),
        "HyGCN": HyGCNModel(),
        "AWB-GCN": AWBGCNModel(),
    }


@pytest.fixture()
def record(request):
    """Print a reproduced table/series and persist it under benchmarks/results/.

    Writes ``<experiment>.txt`` (the human-readable table) and
    ``<experiment>.json`` (test id, wall time since the test started, and
    the structured rows when the benchmark passes them via ``data=``).
    Function-scoped so the wall time is per figure, not per session.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    started = time.perf_counter()

    def _record(experiment: str, text: str, data: list | dict | None = None) -> None:
        print(f"\n===== {experiment} =====\n{text}\n")
        (RESULTS_DIR / f"{experiment}.txt").write_text(text + "\n")
        document = {
            "experiment": experiment,
            "test": request.node.nodeid,
            "wall_time_s": round(time.perf_counter() - started, 3),
            "rows": data,
        }
        (RESULTS_DIR / f"{experiment}.json").write_text(
            json.dumps(document, indent=2, default=float) + "\n"
        )

    return _record
