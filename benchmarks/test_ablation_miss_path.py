"""Mechanism ablation — miss-path hierarchy behind the input buffer.

Not a paper figure: the paper eliminates random DRAM traffic by *policy*
(degree-aware caching, Section VI); this table asks how much of the traffic
the ablation baseline still pays could instead be recovered by classic
hardware mechanisms on the miss path — a victim cache of evicted vertex
records, a tag-only miss cache, and stream buffers prefetching the
sequential vertex stream (the SimpleScalar DL1 miss-path study shape).

Asserted invariants:
* each mechanism alone strictly reduces random DRAM accesses versus the
  vertex-order baseline on every benchmarked dataset,
* the combined hierarchy is at least as good as its best constituent,
* the degree-aware policy is untouched — no input-buffer misses to filter
  and byte-identical sequential traffic with the hierarchy configured.
"""

from __future__ import annotations

from repro.analysis import format_table, miss_path_ablation_rows
from repro.analysis.miss_path import simulate_policy_with_trace
from repro.cache import MissPathConfig, MissPathHierarchy
from repro.hw import AcceleratorConfig
from repro.sim import input_buffer_capacity, run_cache_simulation

DATASETS = ("cora", "citeseer", "pubmed")
MECHANISMS = ("victim", "miss", "stream")
FEATURE_LENGTH = 128


def _capacity(graph):
    config = AcceleratorConfig().with_input_buffer_for(graph.name)
    return input_buffer_capacity(graph.adjacency, config, FEATURE_LENGTH)


def test_ablation_miss_path_mechanisms(benchmark, record, datasets):
    def compute():
        results = {}
        for name in DATASETS:
            graph = datasets[name]
            capacity, record_bytes = _capacity(graph)
            results[name] = miss_path_ablation_rows(
                graph.adjacency,
                capacity=capacity,
                bytes_per_vertex=record_bytes,
                policies=("vertex_order", "degree_aware"),
                mechanisms=MECHANISMS,
                dataset=graph.name,
            )
        return results

    results = benchmark.pedantic(compute, rounds=1, iterations=1)

    rows = [row for table in results.values() for row in table]
    record(
        "ablation_miss_path",
        format_table(rows, title="Ablation — miss-path mechanisms (VC / MC / SB)"),
    )

    for name in DATASETS:
        table = results[name]
        baseline_rows = [row for row in table if row["policy"] == "vertex_order"]
        baseline_misses = baseline_rows[0]["accesses"]
        assert baseline_misses > 0
        per_mechanism = {
            row["mechanism"]: row for row in baseline_rows if row["mechanism"] in MECHANISMS
        }
        # Each structure alone strictly reduces random DRAM traffic.
        for mechanism in MECHANISMS:
            row = per_mechanism[mechanism]
            assert row["dram_random_avoided"] > 0, (name, mechanism)
            assert row["dram_random_remaining"] < baseline_misses, (name, mechanism)
        # The combined hierarchy is at least as good as its best constituent.
        combined = [row for row in baseline_rows if row["mechanism"] == "+".join(MECHANISMS)]
        assert combined[0]["dram_random_avoided"] >= max(
            per_mechanism[m]["dram_random_avoided"] for m in MECHANISMS
        )
        # The degree-aware policy has no input-buffer misses to recover.
        for row in table:
            if row["policy"] == "degree_aware":
                assert row["accesses"] == 0 and row["dram_random_avoided"] == 0


def test_miss_path_leaves_degree_aware_sequential_traffic_unchanged(datasets):
    for name in ("cora", "pubmed"):
        graph = datasets[name]
        config = AcceleratorConfig().with_input_buffer_for(graph.name)
        plain = run_cache_simulation(graph.adjacency, config, FEATURE_LENGTH)
        filtered = run_cache_simulation(
            graph.adjacency,
            config.with_miss_path("victim", "miss", "stream"),
            FEATURE_LENGTH,
        )
        assert filtered.miss_path is not None
        assert filtered.miss_path.resolved == 0
        assert filtered.sequential_fetch_bytes == plain.sequential_fetch_bytes
        assert filtered.vertex_fetches == plain.vertex_fetches
        assert filtered.random_accesses == 0 and plain.random_accesses == 0


def test_miss_path_recovers_traffic_for_classic_policies(datasets):
    """VC+SB and MC+SB composites also help LRU / static partition."""
    graph = datasets["cora"]
    capacity, record_bytes = _capacity(graph)
    for policy in ("lru", "static_partition"):
        result = simulate_policy_with_trace(
            graph.adjacency, policy, capacity, bytes_per_vertex=record_bytes
        )
        for pair in (("victim", "stream"), ("miss", "stream")):
            hierarchy = MissPathHierarchy(MissPathConfig(mechanisms=pair))
            outcome = hierarchy.filter(result.trace)
            assert 0 < outcome.resolved <= result.random_accesses, (policy, pair)
