"""Table IV — throughput (TOPS) for Cora, Citeseer and Pubmed.

The paper reports a 3.17 TOPS peak and effective throughputs of 2.88 / 2.69 /
2.57 TOPS for CR / CS / PB, i.e. throughput degrades only moderately as the
graph grows.  Our cycle model is more conservative about memory stalls on the
larger graphs, so the absolute utilization is lower; the checks are on the
peak figure and the degradation shape.

Effective TOPS are recomputed from the session's shared union-matrix sweep
rows (2 × MAC operations / latency — the same derivation as
``InferenceResult.effective_tops``).
"""

from __future__ import annotations

import pytest

from repro.analysis import format_table
from repro.hw import AcceleratorConfig

CITATION = ("cora", "citeseer", "pubmed")


def test_table4_throughput(benchmark, record, sweep_index):
    peak_tops = AcceleratorConfig().peak_ops_per_second / 1e12

    def compute():
        rows = [{"dataset": "Peak", "tops": round(peak_tops, 2), "utilization_pct": 100.0}]
        for name in CITATION:
            row = sweep_index[("gnnie", name, "gcn")]
            metrics = row["metrics"]
            tops = 2.0 * metrics["mac_operations"] / metrics["latency_seconds"] / 1e12
            rows.append(
                {
                    "dataset": row["dataset_abbrev"],
                    "tops": round(tops, 3),
                    "utilization_pct": round(100 * tops / peak_tops, 1),
                }
            )
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    record(
        "table4_throughput",
        format_table(rows, title="Table IV — throughput (GCN)"),
        data=rows,
    )

    # Peak throughput of the 1216-MAC array at 1.3 GHz (paper: 3.17 TOPS).
    assert peak_tops == pytest.approx(3.17, abs=0.05)
    tops = {row["dataset"]: row["tops"] for row in rows if row["dataset"] != "Peak"}
    # Effective throughput is positive, below peak, and degrades (weakly)
    # with graph size: CR >= CS >= PB.
    assert all(0.1 < value < peak_tops for value in tops.values())
    assert tops["CR"] >= tops["CS"] * 0.95
    assert tops["CS"] >= tops["PB"]
    # Degradation from the smallest to the largest citation graph stays
    # within an order of magnitude ("degrades only moderately").
    assert tops["CR"] / tops["PB"] < 10
