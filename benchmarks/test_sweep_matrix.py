"""Scenario-sweep benchmark — the full 5 × 5 × 6 evaluation matrix.

Runs every (dataset, family, backend) cell of the paper's evaluation —
five Table II datasets × five Table III families × GNNIE plus the five
baseline platforms — through the ``repro.sweep`` runner into a resumable
result store, then checks the fleet-level invariants:

* exactly one store row per cell, keyed by the cell content hash,
* a second sweep over the same matrix resumes entirely from the store
  (zero executed cells) and returns byte-identical rows,
* unsupported (backend, family) combinations are present as explicit
  ``supported=False`` rows, never silently missing,
* store-backed aggregation reproduces the headline ordering: GNNIE beats
  every baseline platform on geometric-mean latency.

Datasets use the golden-snapshot scales so the 25 GNNIE simulations stay
cheap; the matrix structure (and therefore the store) is the full one.
"""

from __future__ import annotations

import pytest

from repro.analysis import backend_geomeans, format_table, geomean_table_rows
from repro.datasets import build_dataset
from repro.models import MODEL_FAMILIES
from repro.sweep import (
    ALL_BACKENDS,
    DatasetCase,
    ResultStore,
    ScenarioMatrix,
    derive_seed,
    prime_graph_memo,
    run_sweep,
)
from repro.sweep.store import canonical_row

#: Golden-snapshot scales: small enough for the tier-1 budget, large enough
#: that every dataset keeps its degree-distribution character.
SWEEP_CASES = (
    DatasetCase("cora", 0.25),
    DatasetCase("citeseer", 0.25),
    DatasetCase("pubmed", 0.1),
    DatasetCase("ppi", 0.02),
    DatasetCase("reddit", 0.002),
)


@pytest.fixture(scope="session")
def primed_sweep_graphs():
    """Pre-build the golden-scale graphs and seed the worker's dataset memo,
    so the timed sweep measures pricing, not synthetic graph generation."""
    for case in SWEEP_CASES:
        seed = derive_seed(0, case.name)
        prime_graph_memo(
            case.name, case.scale, seed, build_dataset(case.name, scale=case.scale, seed=seed)
        )


def test_full_matrix_sweep(benchmark, record, tmp_path, primed_sweep_graphs):
    matrix = ScenarioMatrix(
        datasets=SWEEP_CASES, families=MODEL_FAMILIES, backends=ALL_BACKENDS, seed=0
    )
    store_path = tmp_path / "matrix.jsonl"

    def compute():
        return run_sweep(matrix, store=ResultStore(store_path), jobs=1)

    summary = benchmark.pedantic(compute, rounds=1, iterations=1)

    # One row per cell of the full matrix.
    assert summary.total == 5 * 5 * 6
    assert summary.executed == summary.total and summary.skipped == 0
    assert len(summary.rows) == summary.total
    assert len({row["key"] for row in summary.rows}) == summary.total
    assert len(ResultStore(store_path)) == summary.total

    # Unsupported combinations appear as explicit rows: HyGCN has no GAT,
    # AWB-GCN is GCN-only, EnGN covers the non-attention families.
    unsupported = {
        (row["backend"], row["family"]) for row in summary.rows if not row["supported"]
    }
    assert ("awb-gcn", "gat") in unsupported
    assert ("hygcn", "gat") in unsupported
    assert ("gnnie", "gcn") not in unsupported
    assert all(row["metrics"] is None for row in summary.rows if not row["supported"])

    # Resume: the identical matrix executes nothing and returns the same bytes.
    resumed = run_sweep(matrix, store=ResultStore(store_path), jobs=1)
    assert resumed.executed == 0 and resumed.skipped == summary.total
    assert [canonical_row(row) for row in resumed.rows] == [
        canonical_row(row) for row in summary.rows
    ]

    geomeans = backend_geomeans(summary.rows)
    record(
        "sweep_full_matrix",
        format_table(
            geomean_table_rows(summary.rows),
            title="Full 5x5x6 matrix sweep - GNNIE geomean gains per backend",
        ),
    )

    # GNNIE wins on geometric mean against every baseline platform.
    assert set(geomeans) == set(ALL_BACKENDS) - {"gnnie"}
    for backend, stats in geomeans.items():
        assert stats["geomean_speedup"] > 1.0, backend
