"""Design-choice ablation — GNNIE's cache policy vs classic alternatives.

Section VII argues that history-based (GRASP/MRU-style) and static
partition/frequency schemes are inferior to GNNIE's dynamic
unprocessed-edge-count policy because only the latter measures a vertex's
*future* usefulness and keeps every DRAM access sequential.  This ablation
runs LRU, MRU, a static degree-pinned partition and the degree-aware policy
on the same buffer size and compares their off-chip behaviour.
(Not a paper figure; listed in DESIGN.md as a design-choice ablation.)
"""

from __future__ import annotations

from repro.analysis import format_table
from repro.cache import compare_cache_policies, vertex_record_bytes
from repro.hw import AcceleratorConfig

CITATION = ("cora", "pubmed")


def test_ablation_cache_policy_comparison(benchmark, record, datasets):
    def compute():
        results = {}
        for name in CITATION:
            graph = datasets[name]
            config = AcceleratorConfig().with_input_buffer_for(graph.name)
            record_bytes = vertex_record_bytes(128, graph.adjacency.average_degree())
            capacity = max(1, config.input_buffer_bytes // record_bytes)
            results[name] = (
                capacity,
                compare_cache_policies(
                    graph.adjacency, capacity, bytes_per_vertex=record_bytes
                ),
            )
        return results

    results = benchmark.pedantic(compute, rounds=1, iterations=1)

    rows = []
    for name, (capacity, comparison) in results.items():
        for policy, outcome in comparison.items():
            rows.append(
                {
                    "dataset": datasets[name].name,
                    "policy": policy,
                    "buffer_vertices": capacity,
                    "random_dram_accesses": outcome.random_accesses,
                    "sequential_fetches": outcome.vertex_fetches,
                    "total_dram_MB": round(outcome.total_dram_bytes / 1e6, 2),
                }
            )
    record(
        "ablation_cache_policies",
        format_table(rows, title="Ablation — cache policy comparison (Aggregation)"),
    )

    for name, (_, comparison) in results.items():
        degree_aware = comparison["degree_aware"]
        # Only GNNIE's policy eliminates random DRAM accesses entirely.
        assert degree_aware.random_accesses == 0
        for policy in ("lru", "mru", "static_partition"):
            assert comparison[policy].random_accesses > 0
        # Every policy completes Aggregation.
        undirected = datasets[name].adjacency.num_edges // 2
        assert all(r.total_edges_processed == undirected for r in comparison.values())
        # The static degree partition (the closest classic scheme) still pays
        # random accesses on the larger graph where the buffer is small.
    pubmed_comparison = results["pubmed"][1]
    assert pubmed_comparison["static_partition"].random_accesses > 10_000
