"""Fig. 10 — histogram of the unprocessed-edge counter α across cache Rounds.

On Pubmed the initial α distribution is the power-law degree distribution;
after each Round of the degree-aware caching policy both the peak frequency
and the maximum α shrink, showing that the policy works off the power-law
tail round by round.
"""

from __future__ import annotations

from repro.analysis import alpha_round_histograms, format_table
from repro.hw import AcceleratorConfig
from repro.sim import run_cache_simulation


def test_fig10_alpha_distribution_across_rounds(benchmark, record, datasets):
    pubmed = datasets["pubmed"]
    config = AcceleratorConfig().with_input_buffer_for(pubmed.name)

    def compute():
        result = run_cache_simulation(pubmed.adjacency, config, feature_length=128)
        return result, alpha_round_histograms(result)

    cache_result, histograms = benchmark.pedantic(compute, rounds=1, iterations=1)

    rows = [
        {
            "round": hist.round_index,
            "unfinished_vertices": hist.unfinished_vertices,
            "max_alpha": hist.max_alpha,
            "peak_frequency": hist.peak_frequency,
        }
        for hist in histograms
    ]
    summary = (
        f"rounds={cache_result.num_rounds} iterations={cache_result.num_iterations} "
        f"vertex_fetches={cache_result.vertex_fetches} "
        f"edges_processed={cache_result.total_edges_processed}"
    )
    record(
        "fig10_alpha_rounds",
        format_table(rows, title="Fig. 10 — α distribution across Rounds (Pubmed)") + "\n" + summary,
    )

    # Every edge is aggregated; the policy never issues random DRAM accesses.
    assert cache_result.total_edges_processed == pubmed.adjacency.num_edges // 2
    assert cache_result.random_accesses == 0
    # Multiple rounds are needed (the buffer holds ~15% of Pubmed).
    assert cache_result.num_rounds >= 2
    # The histogram flattens: the maximum α never increases, and from the
    # first Round onward the peak frequency shrinks as vertices finish.
    maxima = [hist.max_alpha for hist in histograms]
    peaks = [hist.peak_frequency for hist in histograms]
    assert all(b <= a for a, b in zip(maxima, maxima[1:]))
    assert all(b <= a for a, b in zip(peaks[1:], peaks[2:]))
    # The initial distribution reflects the power-law tail (large max α).
    assert maxima[0] > 20 * AcceleratorConfig().gamma
