"""Fig. 15 — energy efficiency (inferences/kJ): GNNIE vs HyGCN vs AWB-GCN.

The paper reports 7.4e3–6.7e6 inferences/kJ for GNNIE, 2.3e1–5.2e5 for HyGCN
and 1.5e2–4.4e5 for AWB-GCN: GNNIE is the most energy-efficient platform on
every dataset.  The check here is that ordering plus the rough magnitude
bands (GNNIE reaching millions of inferences/kJ on the small graphs).
"""

from __future__ import annotations

from repro.analysis import format_table
from repro.baselines import estimate_workload

ALL_DATASETS = ("cora", "citeseer", "pubmed", "ppi", "reddit")


def test_fig15_energy_efficiency(benchmark, record, datasets, gnnie_run, baseline_platforms):
    hygcn = baseline_platforms["HyGCN"]
    awb = baseline_platforms["AWB-GCN"]

    def compute():
        rows = []
        for name in ALL_DATASETS:
            graph = datasets[name]
            gnnie = gnnie_run(name, "gcn")
            workload = estimate_workload(graph, "gcn")
            rows.append(
                {
                    "dataset": graph.name,
                    "gnnie_inf_per_kj": gnnie.inferences_per_kilojoule,
                    "hygcn_inf_per_kj": hygcn.evaluate(graph, workload).inferences_per_kilojoule,
                    "awbgcn_inf_per_kj": awb.evaluate(graph, workload).inferences_per_kilojoule,
                }
            )
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    record(
        "fig15_energy_efficiency",
        format_table(rows, title="Fig. 15 — energy efficiency, inferences/kJ (GCN)"),
        data=rows,
    )

    for row in rows:
        # GNNIE outperforms both accelerator baselines on every dataset.
        assert row["gnnie_inf_per_kj"] > row["hygcn_inf_per_kj"]
        assert row["gnnie_inf_per_kj"] > row["awbgcn_inf_per_kj"]
    # Magnitude band: the small citation graphs reach millions of
    # inferences/kJ (paper: up to 6.7e6), larger graphs are lower.
    best = max(row["gnnie_inf_per_kj"] for row in rows)
    worst = min(row["gnnie_inf_per_kj"] for row in rows)
    assert best > 1e5
    assert worst > 1e2
    assert best / worst > 3  # efficiency spreads across dataset sizes
