"""Fig. 15 — energy efficiency (inferences/kJ): GNNIE vs HyGCN vs AWB-GCN.

The paper reports 7.4e3–6.7e6 inferences/kJ for GNNIE, 2.3e1–5.2e5 for HyGCN
and 1.5e2–4.4e5 for AWB-GCN: GNNIE is the most energy-efficient platform on
every dataset.  The check here is that ordering plus the rough magnitude
bands (GNNIE reaching millions of inferences/kJ on the small graphs).

Efficiencies are read straight from the session's shared union-matrix sweep
rows (``sweep_index``); no simulation runs in this benchmark.
"""

from __future__ import annotations

from repro.analysis import format_table

ALL_DATASETS = ("cora", "citeseer", "pubmed", "ppi", "reddit")


def test_fig15_energy_efficiency(benchmark, record, sweep_index):
    def compute():
        rows = []
        for name in ALL_DATASETS:
            gnnie = sweep_index[("gnnie", name, "gcn")]
            hygcn = sweep_index[("hygcn", name, "gcn")]
            awb = sweep_index[("awb-gcn", name, "gcn")]
            rows.append(
                {
                    "dataset": gnnie["dataset_abbrev"],
                    "gnnie_inf_per_kj": gnnie["metrics"]["inferences_per_kilojoule"],
                    "hygcn_inf_per_kj": hygcn["metrics"]["inferences_per_kilojoule"],
                    "awbgcn_inf_per_kj": awb["metrics"]["inferences_per_kilojoule"],
                }
            )
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    record(
        "fig15_energy_efficiency",
        format_table(rows, title="Fig. 15 — energy efficiency, inferences/kJ (GCN)"),
        data=rows,
    )

    for row in rows:
        # GNNIE outperforms both accelerator baselines on every dataset.
        assert row["gnnie_inf_per_kj"] > row["hygcn_inf_per_kj"]
        assert row["gnnie_inf_per_kj"] > row["awbgcn_inf_per_kj"]
    # Magnitude band: the small citation graphs reach millions of
    # inferences/kJ (paper: up to 6.7e6), larger graphs are lower.
    best = max(row["gnnie_inf_per_kj"] for row in rows)
    worst = min(row["gnnie_inf_per_kj"] for row in rows)
    assert best > 1e5
    assert worst > 1e2
    assert best / worst > 3  # efficiency spreads across dataset sizes
