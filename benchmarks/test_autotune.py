"""Autotuner benchmark — the closed loop vs the fixed design-space grid.

The paper fixes GNNIE's flexible-MAC allocation and buffer sizes through an
open-loop design-space exploration (Section VIII-A); Design E is the winner
that exploration hand-picks, and Fig. 17's β metric is its justification.
This benchmark shows the ``repro.tune`` closed loop recovering that choice
automatically and cheaply on cora/gcn:

* the tuner reaches a design whose β (vs Design A) is at least the fixed
  grid's Design E β,
* while simulating strictly fewer unique cells than the full
  ``sweep_mac_allocations`` × buffer grid it replaces,
* and a re-launched (killed-and-resumed) tuning run executes zero cells.
"""

from __future__ import annotations

from repro.analysis import format_table, tune_report, tune_table_rows
from repro.datasets import build_dataset
from repro.hw import design_preset
from repro.sim import GNNIESimulator, sweep_mac_allocations
from repro.sweep import ResultStore, derive_seed
from repro.tune import TuneSpec, run_tune

#: The fixed grid the tuner replaces: every admissible MAC allocation
#: crossed with the default buffer grid of ``sweep_buffer_sizes``
#: (4 input sizes × 3 output sizes).
FIXED_GRID_CELLS = len(sweep_mac_allocations(mac_budget=1280)) * 4 * 3


def test_autotune_matches_design_e_with_fewer_cells(benchmark, record, tmp_path):
    spec = TuneSpec(
        dataset="cora", family="gcn", seed=0, generations=4, population=6,
        mac_budget=1280,
    )
    store_path = tmp_path / "tune.jsonl"

    def compute():
        return run_tune(spec, store=ResultStore(store_path))

    result = benchmark.pedantic(compute, rounds=1, iterations=1)

    # Fixed-grid reference: Design E's β on the exact graph the tuner sweeps
    # (same derived dataset seed), computed independently of the tune loop.
    graph = build_dataset("cora", seed=derive_seed(spec.seed, "cora"))
    design_a = GNNIESimulator(design_preset("A")).run(graph, "gcn")
    design_e = GNNIESimulator(design_preset("E")).run(graph, "gcn")
    beta_design_e = (design_a.total_cycles - design_e.total_cycles) / (
        design_preset("E").total_macs - design_preset("A").total_macs
    )

    report = tune_report(store_path, dataset="cora", family="gcn")
    record(
        "autotune_cora_gcn",
        format_table(
            tune_table_rows(report),
            title=(
                f"Autotuned designs by β — {result.evaluated_cells} cells vs "
                f"{FIXED_GRID_CELLS}-cell fixed grid (Design E β = {beta_design_e:.4f})"
            ),
        ),
    )

    # The tuner matches or beats the paper's hand-picked design...
    assert result.best is not None
    assert result.best["beta"] >= beta_design_e
    # ...while simulating a small fraction of the grid it replaces.
    assert result.evaluated_cells < FIXED_GRID_CELLS
    assert result.executed_cells == result.evaluated_cells

    # Kill-and-resume: a re-launched run serves everything from the store.
    resumed = run_tune(spec, store=ResultStore(store_path))
    assert resumed.executed_cells == 0
    assert resumed.evaluated_cells == result.evaluated_cells
    assert resumed.best == result.best
