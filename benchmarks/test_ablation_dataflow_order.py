"""Design-choice ablation — Weighting-first vs. Aggregation-first dataflow.

Section III of the paper states that computing Ã (H W) "requires an order of
magnitude fewer computations" than (Ã H) W on these workloads, and Section VII
credits part of GNNIE's advantage over HyGCN to that ordering.  This ablation
quantifies the claim per dataset with the Table III layer configuration.
(Not a paper figure; listed in DESIGN.md as a design-choice ablation.)
"""

from __future__ import annotations

from repro.analysis import format_table
from repro.mapping import compare_dataflow_orders, preferred_dataflow
from repro.models import model_config

ALL_DATASETS = ("cora", "citeseer", "pubmed", "ppi", "reddit")


def test_ablation_dataflow_order(benchmark, record, datasets):
    def compute():
        rows = []
        for name in ALL_DATASETS:
            graph = datasets[name]
            dims = model_config("gcn").layer_dimensions(
                graph.feature_length, max(graph.num_label_classes, 2)
            )
            costs = compare_dataflow_orders(graph, dims)
            total_wf = sum(cost.total_weighting_first for cost in costs)
            total_af = sum(cost.total_aggregation_first for cost in costs)
            rows.append(
                {
                    "dataset": graph.name,
                    "weighting_first_ops": total_wf,
                    "aggregation_first_ops": total_af,
                    "advantage": round(total_af / total_wf, 2),
                    "layer0_advantage": round(costs[0].advantage, 2),
                    "preferred": preferred_dataflow(costs),
                }
            )
        return rows

    rows = benchmark(compute)
    record(
        "ablation_dataflow_order",
        format_table(rows, title="Ablation — Weighting-first vs Aggregation-first (GCN)"),
    )

    for row in rows:
        # Weighting-first is the right order on every benchmark dataset.
        assert row["preferred"] == "weighting_first"
        assert row["advantage"] > 1.0
    # On the high-dimensional citation inputs the advantage is large
    # (the paper's "order of magnitude" claim).
    by_dataset = {row["dataset"]: row for row in rows}
    assert by_dataset["CR"]["layer0_advantage"] > 5
    assert by_dataset["CS"]["layer0_advantage"] > 5
