"""Fig. 17 — speedup gain vs hardware overhead (β) for Designs B–E.

β = (baseline cycles − design cycles) / (design MACs − baseline MACs), with
Design A (uniform 4 MACs/CPE, 1024 MACs) as the baseline.  The paper shows β
dropping monotonically as MACs are added uniformly (B → C → D) and the
flexible-MAC Design E achieving the highest β on every dataset — the central
argument for the FM architecture.
"""

from __future__ import annotations

from repro.analysis import design_beta_study, format_table
from repro.hw import design_preset

CITATION = ("cora", "citeseer", "pubmed")


def test_fig17_beta_study(benchmark, record, citation_datasets):
    def compute():
        return {name: design_beta_study(graph) for name, graph in citation_datasets.items()}

    betas = benchmark.pedantic(compute, rounds=1, iterations=1)

    rows = []
    for name, values in betas.items():
        row = {"dataset": citation_datasets[name].name}
        row.update({f"beta_{design}": round(value, 3) for design, value in values.items()})
        row["macs_B_C_D_E"] = "1280/1536/1792/1216"
        rows.append(row)
    record("fig17_beta_designs", format_table(rows, title="Fig. 17 — β for designs B-E"))

    for name, values in betas.items():
        # Diminishing returns of uniformly adding MACs.
        assert values["B"] >= values["C"] >= values["D"], name
        # The flexible MAC design gives the most speedup per added MAC.
        assert values["E"] > values["B"], name
        assert values["E"] > 1.5 * values["D"], name

    # MAC counts backing the figure.
    assert design_preset("A").total_macs == 1024
    assert design_preset("E").total_macs == 1216
