"""Perf regression harness — batch vs scalar sweep execution.

Times the same 2×2×N config matrix (2 datasets × 2 families × N configs)
through both execution paths:

* **scalar**: one fresh executor per cell with the pricing-context registry
  cleared between cells — the cost a cold pool worker pays per cell, and
  exactly what every cell paid before the batch layer existed;
* **batch**: the runner's per-(dataset, family) group dispatch, where the
  graph, plan, fingerprints, sampled adjacencies and cache simulations are
  shared across the group.

The structured record carries the measured speedup and rows/s plus the
PR 6 → PR 7 wall-time comparison for the full 5×5×6 matrix benchmark and
the fig12/13/15 figure group (whose pricing moved into the session-shared
union sweep), satisfying the acceptance measurement for both.

The assertion floor is a generous 3× (the measured ratio is far higher) so
CI machine noise cannot flake the suite.
"""

from __future__ import annotations

import time
from dataclasses import replace

from repro.analysis import format_table
from repro.hw import AcceleratorConfig
from repro.models import MODEL_FAMILIES
from repro.sim.batch import clear_pricing_contexts
from repro.sweep import (
    ALL_BACKENDS,
    DatasetCase,
    ScenarioMatrix,
    derive_seed,
    prime_graph_memo,
    run_batch_timed,
    run_cell,
    run_sweep,
)
from repro.sweep.store import canonical_row

#: PR 6 wall times measured at commit a385a80 on the same machine that
#: produced the current artifacts (see the committed
#: ``benchmarks/results/*.json`` history for the per-test numbers).
PR6_BASELINE_S = {
    "sweep_full_matrix": 1.27,
    "fig12_cpu_gpu_speedup": 14.99,
    "fig13_accelerator_comparison": 0.183,
    "fig15_energy_efficiency": 0.045,
}


def _speedup_matrix() -> ScenarioMatrix:
    base = AcceleratorConfig()
    configs = [base]
    for gamma in (2, 8):
        configs.append(replace(base, gamma=gamma, name=f"gamma{gamma}"))
    for cols, macs in ((8, (4, 5, 6)), (24, (2, 4, 8))):
        configs.append(
            replace(base, num_cols=cols, macs_per_group=macs, name=f"macs{cols}")
        )
    configs.append(replace(base, input_buffer_bytes=256 * 1024, name="buf256k"))
    return ScenarioMatrix(
        datasets=(DatasetCase("cora", 0.25), DatasetCase("citeseer", 0.25)),
        families=("gcn", "gat"),
        backends=("gnnie",),
        configs=tuple(configs),
        seed=0,
    )


def test_batch_speedup(benchmark, record):
    matrix = _speedup_matrix()
    cells = matrix.cells()
    groups: dict[tuple, list] = {}
    for cell in cells:
        groups.setdefault((cell.dataset, cell.scale, cell.seed, cell.family), []).append(cell)

    def scalar_pass():
        rows = []
        start = time.perf_counter()
        for cell in cells:
            clear_pricing_contexts()
            rows.append(run_cell(cell))
        return rows, time.perf_counter() - start

    def batch_pass():
        clear_pricing_contexts()
        start = time.perf_counter()
        rows = []
        for group in groups.values():
            rows.extend(row for row, _, _ in run_batch_timed(group))
        return rows, time.perf_counter() - start

    # Warm the dataset memo and imports so both passes time pricing only.
    scalar_pass()
    scalar_rows, scalar_s = scalar_pass()
    batch_rows, batch_s = benchmark.pedantic(batch_pass, rounds=1, iterations=1)

    # Identical rows, order-normalized by key (batch regroups by family).
    assert sorted(canonical_row(r) for r in batch_rows) == sorted(
        canonical_row(r) for r in scalar_rows
    )

    speedup = scalar_s / batch_s

    # The acceptance measurement for the 5x5x6 matrix: time one cold batch
    # sweep of the golden-scale full matrix (the same workload
    # benchmarks/test_sweep_matrix.py times) for the PR 6 comparison.
    golden_cases = (
        DatasetCase("cora", 0.25),
        DatasetCase("citeseer", 0.25),
        DatasetCase("pubmed", 0.1),
        DatasetCase("ppi", 0.02),
        DatasetCase("reddit", 0.002),
    )
    from repro.datasets import build_dataset

    for case in golden_cases:
        seed = derive_seed(0, case.name)
        prime_graph_memo(
            case.name, case.scale, seed, build_dataset(case.name, scale=case.scale, seed=seed)
        )
    full = ScenarioMatrix(
        datasets=golden_cases, families=MODEL_FAMILIES, backends=ALL_BACKENDS, seed=0
    )
    clear_pricing_contexts()
    start = time.perf_counter()
    summary = run_sweep(full, jobs=1)
    matrix_s = time.perf_counter() - start
    assert summary.executed == 150

    data = {
        "cells": len(cells),
        "scalar_seconds": round(scalar_s, 4),
        "batch_seconds": round(batch_s, 4),
        "speedup": round(speedup, 2),
        "scalar_rows_per_s": round(len(cells) / scalar_s, 1),
        "batch_rows_per_s": round(len(cells) / batch_s, 1),
        "full_matrix": {
            "cells": summary.executed,
            "batch_seconds": round(matrix_s, 4),
            "pr6_seconds": PR6_BASELINE_S["sweep_full_matrix"],
            "speedup_vs_pr6": round(PR6_BASELINE_S["sweep_full_matrix"] / matrix_s, 2),
        },
        "figure_group_pr6_seconds": round(
            PR6_BASELINE_S["fig12_cpu_gpu_speedup"]
            + PR6_BASELINE_S["fig13_accelerator_comparison"]
            + PR6_BASELINE_S["fig15_energy_efficiency"],
            3,
        ),
    }
    table_rows = [
        {"path": "scalar (cold per cell)", "seconds": data["scalar_seconds"],
         "rows_per_s": data["scalar_rows_per_s"]},
        {"path": "batch (grouped)", "seconds": data["batch_seconds"],
         "rows_per_s": data["batch_rows_per_s"]},
    ]
    record(
        "batch_speedup",
        format_table(
            table_rows,
            title=f"Batch vs scalar on {len(cells)} cells - {data['speedup']}x",
        ),
        data=data,
    )

    # Generous floors: the measured ratios are far higher, but CI machines
    # are noisy and this guards the regression, not the exact number.
    assert speedup >= 3.0, data
    assert data["full_matrix"]["speedup_vs_pr6"] >= 3.0, data
