"""Multi-chip scale-out scaling curves (1 → 16 simulated GNNIE chips).

Partitions two workloads — the Reddit stand-in at its bench scale and a
dense synthetic power-law graph — across 1, 2, 4, 8 and 16 chips through
:func:`repro.scaleout.execute_scaleout` and records the scaling curve:
combined cycles, the per-chip compute critical path, communication cycles
and halo traffic at every chip count.

Two shape invariants are asserted (the acceptance criteria of the scale-out
change, and the signature of edge-cut partitioning):

* ``max(per-chip local cycles)`` is monotonically **non-increasing** in the
  chip count — partitions only shrink;
* ``halo_bytes`` is monotonically **non-decreasing** — the cut only grows.

``chips=1`` short-circuits to the plain single-chip path, so the first row
of each curve doubles as the unpartitioned baseline.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import format_table
from repro.graph import Graph, power_law_graph
from repro.plan import lower
from repro.sim import GNNIEExecutor
from repro.scaleout import execute_scaleout
from repro.sparse import generate_sparse_features

CHIP_COUNTS = (1, 2, 4, 8, 16)


def _synthetic_graph() -> Graph:
    """A 2000-vertex power-law graph with PPI-like feature width."""
    num_vertices = 2000
    adjacency = power_law_graph(num_vertices, 12_000, exponent=2.1, seed=17)
    features = generate_sparse_features(num_vertices, 50, 0.4, seed=17)
    rng = np.random.default_rng(17)
    return Graph(
        adjacency=adjacency,
        features=features,
        labels=rng.integers(8, size=num_vertices),
        name="synthetic-2k",
        num_label_classes=8,
    )


def _scaling_curve(graph: Graph, family: str) -> list[dict]:
    backend = GNNIEExecutor()
    plan = lower(family, graph)
    rows = []
    for chips in CHIP_COUNTS:
        result = execute_scaleout(backend, plan, graph, None, chips=chips)
        local = getattr(result, "chip_local_cycles", (result.total_cycles,))
        rows.append(
            {
                "workload": f"{graph.name}/{family}",
                "chips": chips,
                "cycles": int(result.total_cycles),
                "max_chip_local_cycles": int(max(local)),
                "communication_cycles": int(getattr(result, "communication_cycles", 0)),
                "halo_vertices": int(getattr(result, "halo_vertices", 0)),
                "halo_bytes": int(getattr(result, "halo_bytes", 0)),
                "chip_imbalance": round(float(getattr(result, "chip_imbalance", 1.0)), 4),
            }
        )
    return rows


def _assert_scaling_shape(rows: list[dict]) -> None:
    for previous, current in zip(rows, rows[1:]):
        assert current["max_chip_local_cycles"] <= previous["max_chip_local_cycles"], (
            previous,
            current,
        )
        assert current["halo_bytes"] >= previous["halo_bytes"], (previous, current)


def test_scaleout_scaling(datasets, record):
    curves = []
    curves.extend(_scaling_curve(datasets["reddit"], "gcn"))
    curves.extend(_scaling_curve(_synthetic_graph(), "gcn"))

    for workload in {row["workload"] for row in curves}:
        _assert_scaling_shape([row for row in curves if row["workload"] == workload])

    # The single-chip rows exchange nothing; every multi-chip row pays halo.
    for row in curves:
        if row["chips"] == 1:
            assert row["halo_bytes"] == 0 and row["communication_cycles"] == 0
        else:
            assert row["halo_bytes"] > 0 and row["communication_cycles"] > 0

    record(
        "scaleout_scaling",
        format_table(curves, title="Scale-out scaling, 1 -> 16 chips (edge-cut, chunk)"),
        data=curves,
    )
