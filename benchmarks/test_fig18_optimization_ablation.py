"""Fig. 18 — effectiveness of GNNIE's optimization methods.

Starting from a baseline design (uniform 4 MACs/CPE, no degree-aware caching,
no load balancing), the optimizations are layered on cumulatively:

* **CP** — the degree-aware cache replacement policy (Section VI),
* **CP+FM** — plus the Flexible MAC architecture (Section IV-C),
* **CP+FM+LB** — plus load balancing (Aggregation load distribution and
  Load Redistribution during Weighting).

The paper's left panel shows Aggregation-time reductions of 11–87% across
Cora/Citeseer/Pubmed, and the middle/right panels show GCN and GAT inference
time dropping monotonically as optimizations are added, with the largest
absolute gains on Pubmed (scalability).
"""

from __future__ import annotations

from dataclasses import replace

from repro.analysis import format_table
from repro.hw import AcceleratorConfig, design_preset
from repro.sim import GNNIESimulator

CITATION = ("cora", "citeseer", "pubmed")


def _ablation_configs():
    design_a = design_preset("A")
    baseline = replace(
        design_a,
        enable_degree_aware_caching=False,
        enable_aggregation_load_balancing=False,
        enable_load_redistribution=False,
        enable_flexible_mac=False,
        name="baseline",
    )
    cp = replace(baseline, enable_degree_aware_caching=True, name="CP")
    cp_fm = replace(
        AcceleratorConfig(),
        enable_aggregation_load_balancing=False,
        enable_load_redistribution=False,
        name="CP+FM",
    )
    full = replace(AcceleratorConfig(), name="CP+FM+LB")
    return (baseline, cp, cp_fm, full)


def test_fig18_optimization_ablation(benchmark, record, citation_datasets):
    configs = _ablation_configs()

    def compute():
        results = {}
        for name, graph in citation_datasets.items():
            per_config = {}
            for config in configs:
                simulator = GNNIESimulator(config)
                per_config[config.name] = {
                    "gcn": simulator.run(graph, "gcn"),
                    "gat": simulator.run(graph, "gat"),
                }
            results[name] = per_config
        return results

    results = benchmark.pedantic(compute, rounds=1, iterations=1)

    rows = []
    for name, per_config in results.items():
        baseline = per_config["baseline"]
        for config_name, runs in per_config.items():
            rows.append(
                {
                    "dataset": citation_datasets[name].name,
                    "config": config_name,
                    "aggregation_cycles": runs["gcn"].aggregation_cycles,
                    "agg_reduction_pct": round(
                        100
                        * (1 - runs["gcn"].aggregation_cycles / baseline["gcn"].aggregation_cycles),
                        1,
                    ),
                    "gcn_cycles": runs["gcn"].total_cycles,
                    "gcn_reduction_pct": round(
                        100 * (1 - runs["gcn"].total_cycles / baseline["gcn"].total_cycles), 1
                    ),
                    "gat_cycles": runs["gat"].total_cycles,
                    "gat_reduction_pct": round(
                        100 * (1 - runs["gat"].total_cycles / baseline["gat"].total_cycles), 1
                    ),
                }
            )
    record(
        "fig18_optimization_ablation",
        format_table(rows, title="Fig. 18 — cumulative effect of CP, FM, LB"),
    )

    for name, per_config in results.items():
        agg = {cfg: runs["gcn"].aggregation_cycles for cfg, runs in per_config.items()}
        gcn_total = {cfg: runs["gcn"].total_cycles for cfg, runs in per_config.items()}
        gat_total = {cfg: runs["gat"].total_cycles for cfg, runs in per_config.items()}
        # Aggregation time: the degree-aware cache policy gives a large cut,
        # and the fully optimized design cuts further.  (CP+FM may attribute
        # slightly more exposed memory time to Aggregation because its
        # shorter Weighting hides less prefetch traffic, hence the small
        # tolerance on that middle step.)
        assert agg["CP"] < agg["baseline"]
        assert agg["CP+FM"] <= agg["CP"] * 1.25
        assert agg["CP+FM+LB"] < agg["baseline"]
        assert agg["CP+FM+LB"] <= agg["CP+FM"]
        # The degree-aware policy's gain is substantial on the larger graphs
        # (paper: 80% on Pubmed).
        if name == "pubmed":
            assert 1 - agg["CP"] / agg["baseline"] > 0.4
        # Inference time (GCN and GAT) improves monotonically as optimizations
        # are stacked.
        assert gcn_total["CP"] < gcn_total["baseline"]
        assert gcn_total["CP+FM+LB"] <= gcn_total["CP+FM"] <= gcn_total["CP"] * 1.02
        assert gat_total["CP+FM+LB"] < gat_total["CP+FM"] < gat_total["CP"] < gat_total["baseline"]
        # Full optimization stack buys a large overall reduction.
        assert 1 - gcn_total["CP+FM+LB"] / gcn_total["baseline"] > 0.4
        assert 1 - gat_total["CP+FM+LB"] / gat_total["baseline"] > 0.4
