"""Setuptools shim so the package installs in environments without the
``wheel`` package (PEP 660 editable installs need it; ``setup.py develop``
does not).  All metadata lives in pyproject.toml."""

from setuptools import setup

setup()
