"""Tests for the accelerator configuration and design presets."""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.hw import DESIGN_PRESETS, AcceleratorConfig, design_preset


class TestAcceleratorConfig:
    def test_paper_flexible_mac_allocation(self):
        config = AcceleratorConfig()
        assert config.macs_per_row == (4,) * 8 + (5,) * 4 + (6,) * 4
        # 16 columns x (8*4 + 4*5 + 4*6) = 1216 MACs (Section VIII-A).
        assert config.total_macs == 1216

    def test_peak_throughput_matches_table4(self):
        config = AcceleratorConfig()
        peak_tops = config.peak_ops_per_second / 1e12
        assert peak_tops == pytest.approx(3.16, abs=0.05)

    def test_row_group_of(self):
        config = AcceleratorConfig()
        groups = config.row_group_of
        assert groups[0] == 0 and groups[8] == 1 and groups[15] == 2

    def test_num_cpes(self):
        assert AcceleratorConfig().num_cpes == 256

    def test_dram_bytes_per_cycle(self):
        config = AcceleratorConfig()
        assert config.dram_bytes_per_cycle == pytest.approx(256e9 / 1.3e9)

    def test_input_buffer_sizing_per_dataset(self):
        config = AcceleratorConfig()
        assert config.with_input_buffer_for("CR").input_buffer_bytes == 256 * 1024
        assert config.with_input_buffer_for("cora").input_buffer_bytes == 256 * 1024
        assert config.with_input_buffer_for("PB").input_buffer_bytes == 512 * 1024
        assert config.with_input_buffer_for("RD").input_buffer_bytes == 512 * 1024

    def test_input_buffer_auto_sentinel_default(self):
        config = AcceleratorConfig()
        assert config.input_buffer_bytes is None
        # Dataset-independent consumers (the area model) fall back to the
        # paper's large-dataset sizing — the field's former default.
        assert config.input_buffer_bytes_or_default == 512 * 1024

    def test_resolve_input_buffer_applies_paper_sizing_only_when_auto(self):
        auto = AcceleratorConfig()
        assert auto.resolve_input_buffer("CR").input_buffer_bytes == 256 * 1024
        assert auto.resolve_input_buffer("RD").input_buffer_bytes == 512 * 1024
        explicit = replace(auto, input_buffer_bytes=128 * 1024)
        # An explicit override is never clobbered by the per-dataset sizing.
        assert explicit.resolve_input_buffer("CR") is explicit
        assert explicit.resolve_input_buffer("RD").input_buffer_bytes == 128 * 1024
        assert explicit.input_buffer_bytes_or_default == 128 * 1024

    def test_validation_input_buffer_bytes(self):
        with pytest.raises(ValueError):
            AcceleratorConfig(input_buffer_bytes=0)
        with pytest.raises(ValueError):
            AcceleratorConfig(input_buffer_bytes=-1)

    def test_without_optimizations(self):
        baseline = AcceleratorConfig().without_optimizations()
        assert baseline.total_macs == 1024
        assert not baseline.enable_flexible_mac
        assert not baseline.enable_degree_aware_caching

    def test_validation_rows_per_group(self):
        with pytest.raises(ValueError):
            AcceleratorConfig(macs_per_group=(4, 5), rows_per_group=(8, 4))

    def test_validation_monotonic_macs(self):
        with pytest.raises(ValueError):
            AcceleratorConfig(macs_per_group=(6, 5, 4), rows_per_group=(8, 4, 4))

    def test_validation_positive_dimensions(self):
        with pytest.raises(ValueError):
            AcceleratorConfig(num_rows=0)
        with pytest.raises(ValueError):
            AcceleratorConfig(gamma=-1)

    def test_replace_keeps_validation(self):
        config = AcceleratorConfig()
        smaller = replace(config, input_buffer_bytes=128 * 1024)
        assert smaller.input_buffer_bytes == 128 * 1024
        assert smaller.total_macs == config.total_macs


class TestDesignPresets:
    def test_all_five_designs(self):
        assert set(DESIGN_PRESETS) == {"A", "B", "C", "D", "E"}

    def test_mac_totals_match_section8e(self):
        assert design_preset("A").total_macs == 1024
        assert design_preset("B").total_macs == 1280
        assert design_preset("C").total_macs == 1536
        assert design_preset("D").total_macs == 1792
        assert design_preset("E").total_macs == 1216

    def test_uniform_designs_have_no_fm(self):
        for name in "ABCD":
            assert not design_preset(name).enable_flexible_mac
        assert design_preset("E").enable_flexible_mac

    def test_lookup_case_insensitive(self):
        assert design_preset("e").name.startswith("Design E")

    def test_unknown_design(self):
        with pytest.raises(KeyError):
            design_preset("Z")
