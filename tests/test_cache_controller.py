"""Tests for the degree-aware cache controller and the vertex-order baseline."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache import (
    CachePolicyConfig,
    DegreeAwareCacheController,
    simulate_vertex_order_baseline,
    vertex_record_bytes,
)
from repro.graph import CSRGraph, power_law_graph


@pytest.fixture(scope="module")
def graph():
    return power_law_graph(400, 1600, exponent=2.1, seed=71)


def run_controller(graph, capacity, gamma=5, degree_ordered=True, replacement=None):
    policy = CachePolicyConfig(
        capacity_vertices=capacity,
        gamma=gamma,
        replacement_count=replacement,
        degree_ordered=degree_ordered,
    )
    controller = DegreeAwareCacheController(graph, policy, bytes_per_vertex=128)
    return controller.run()


class TestPolicyConfig:
    def test_defaults(self):
        policy = CachePolicyConfig(capacity_vertices=64)
        assert policy.effective_replacement_count == 8
        assert policy.gamma == 5

    def test_explicit_replacement(self):
        policy = CachePolicyConfig(capacity_vertices=64, replacement_count=5)
        assert policy.effective_replacement_count == 5

    def test_validation(self):
        with pytest.raises(ValueError):
            CachePolicyConfig(capacity_vertices=0)
        with pytest.raises(ValueError):
            CachePolicyConfig(capacity_vertices=8, gamma=-1)
        with pytest.raises(ValueError):
            CachePolicyConfig(capacity_vertices=8, replacement_count=0)

    def test_vertex_record_bytes(self):
        record = vertex_record_bytes(128, 10.0, bytes_per_value=1, index_bytes=4)
        assert record == 128 + 40 + 8
        with pytest.raises(ValueError):
            vertex_record_bytes(0, 5.0)


class TestDegreeAwareController:
    def test_processes_every_edge_exactly_once(self, graph):
        result = run_controller(graph, capacity=80)
        undirected = graph.num_edges // 2
        assert result.total_edges_processed == undirected
        assert sum(record.edges_processed for record in result.iterations) == undirected

    def test_all_dram_traffic_is_sequential(self, graph):
        result = run_controller(graph, capacity=80)
        assert result.random_accesses == 0
        assert result.sequential_fetch_bytes > 0

    def test_cache_larger_than_graph_single_round(self, graph):
        result = run_controller(graph, capacity=graph.num_vertices)
        assert result.num_rounds == 1
        assert result.vertex_fetches == graph.num_vertices

    def test_small_cache_needs_multiple_rounds_and_refetches(self, graph):
        result = run_controller(graph, capacity=40)
        assert result.num_rounds > 1
        assert result.vertex_fetches > graph.num_vertices

    def test_alpha_snapshots_include_initial_distribution(self, graph):
        result = run_controller(graph, capacity=60)
        assert len(result.alpha_round_snapshots) >= result.num_rounds
        initial = result.alpha_round_snapshots[0]
        np.testing.assert_array_equal(
            np.sort(initial), np.sort(graph.degrees()[graph.degrees() > 0])
        )

    def test_alpha_maximum_decreases_over_rounds(self, graph):
        result = run_controller(graph, capacity=60)
        maxima = [snap.max() if snap.size else 0 for snap in result.alpha_round_snapshots]
        assert all(later <= earlier for earlier, later in zip(maxima, maxima[1:]))

    def test_larger_gamma_does_not_reduce_dram_accesses(self, graph):
        low = run_controller(graph, capacity=60, gamma=2)
        high = run_controller(graph, capacity=60, gamma=30)
        assert high.total_dram_accesses >= low.total_dram_accesses

    def test_degree_order_beats_id_order(self, graph):
        """Streaming high-degree vertices first processes more edges per
        fetch, so it needs no more DRAM accesses than id-order streaming."""
        degree_order = run_controller(graph, capacity=60, degree_ordered=True)
        id_order = run_controller(graph, capacity=60, degree_ordered=False)
        assert degree_order.total_dram_accesses <= id_order.total_dram_accesses

    def test_iteration_records_consistent(self, graph):
        result = run_controller(graph, capacity=60)
        for record in result.iterations:
            assert record.resident_vertices <= 60
            assert record.edges_processed >= 0
            assert record.max_edges_per_vertex <= max(record.edges_processed, 0)

    def test_star_graph_hub_retained(self):
        """The hub of a star has the highest degree; with a cache of 3 the
        policy keeps it resident while its α stays above γ, so almost every
        leaf edge is processed in the first Round."""
        star = CSRGraph.from_edge_list(
            [(0, i) for i in range(1, 12)], num_vertices=12, symmetric=True
        )
        result = run_controller(star, capacity=3, gamma=2, replacement=2)
        assert result.total_edges_processed == 11
        assert result.num_rounds <= 2
        first_round_edges = sum(
            record.edges_processed for record in result.iterations if record.round_index == 1
        )
        assert first_round_edges >= 9

    def test_deadlock_resolution_when_gamma_zero(self, graph):
        """γ = 0 never marks eviction candidates; the controller must detect
        the deadlock and force progress instead of spinning."""
        result = run_controller(graph, capacity=40, gamma=0)
        assert result.total_edges_processed == graph.num_edges // 2
        assert result.deadlock_events > 0


class TestVertexOrderBaseline:
    def test_counts_random_accesses(self, graph):
        result = simulate_vertex_order_baseline(graph, capacity_vertices=40)
        assert result.random_accesses > 0
        assert result.total_edges_processed == graph.num_edges // 2

    def test_large_buffer_reduces_random_accesses(self, graph):
        small = simulate_vertex_order_baseline(graph, capacity_vertices=20)
        large = simulate_vertex_order_baseline(graph, capacity_vertices=graph.num_vertices)
        assert large.random_accesses < small.random_accesses

    def test_degree_aware_policy_eliminates_random_traffic(self, graph):
        baseline = simulate_vertex_order_baseline(graph, capacity_vertices=60)
        policy = run_controller(graph, capacity=60)
        assert baseline.random_accesses > 0
        assert policy.random_accesses == 0

    def test_invalid_capacity(self, graph):
        with pytest.raises(ValueError):
            simulate_vertex_order_baseline(graph, capacity_vertices=0)


@settings(max_examples=15, deadline=None)
@given(
    num_vertices=st.integers(min_value=4, max_value=80),
    num_edges=st.integers(min_value=3, max_value=300),
    capacity=st.integers(min_value=2, max_value=50),
    gamma=st.integers(min_value=1, max_value=10),
    seed=st.integers(min_value=0, max_value=200),
)
def test_controller_completeness_property(num_vertices, num_edges, capacity, gamma, seed):
    """Regardless of capacity, γ or topology, every undirected edge is
    aggregated exactly once and the α counters drain to zero."""
    graph = power_law_graph(num_vertices, num_edges, seed=seed)
    policy = CachePolicyConfig(capacity_vertices=capacity, gamma=gamma)
    controller = DegreeAwareCacheController(graph, policy, bytes_per_vertex=64)
    result = controller.run()
    assert result.total_edges_processed == graph.num_edges // 2
    if result.alpha_round_snapshots:
        assert result.alpha_round_snapshots[-1].size == 0 or result.num_rounds >= 1


class TestIncidentEdgesVectorization:
    """Micro-assertion: the flat-gather incident_edges matches the old
    per-vertex slice implementation on every query shape."""

    @staticmethod
    def _reference_incident_edges(index, vertices):
        if vertices.size == 0:
            return np.empty(0, dtype=np.int64)
        pieces = [
            index._sorted_edge_ids[index.indptr[v] : index.indptr[v + 1]]
            for v in vertices
        ]
        return np.unique(np.concatenate(pieces)) if pieces else np.empty(0, dtype=np.int64)

    def test_matches_reference_implementation(self, graph):
        from repro.cache.controller import UndirectedEdgeIndex as _UndirectedEdgeIndex

        index = _UndirectedEdgeIndex(graph)
        rng = np.random.default_rng(5)
        queries = [
            np.empty(0, dtype=np.int64),
            np.array([0], dtype=np.int64),
            np.arange(graph.num_vertices, dtype=np.int64),
            rng.choice(graph.num_vertices, size=37, replace=False).astype(np.int64),
            rng.choice(graph.num_vertices, size=200, replace=False).astype(np.int64),
        ]
        for vertices in queries:
            np.testing.assert_array_equal(
                index.incident_edges(vertices),
                self._reference_incident_edges(index, vertices),
            )

    def test_isolated_vertices_yield_no_edges(self):
        # Vertex 3 has no incident edges at all.
        adjacency = CSRGraph.from_edge_list(
            [(0, 1), (1, 2)], num_vertices=4, symmetric=True
        )
        from repro.cache.controller import UndirectedEdgeIndex as _UndirectedEdgeIndex

        index = _UndirectedEdgeIndex(adjacency)
        assert index.incident_edges(np.array([3], dtype=np.int64)).size == 0
        assert index.incident_edges(np.array([1, 3], dtype=np.int64)).size == 2
