"""Tests for the roofline analysis and the result-export helpers."""

from __future__ import annotations

import csv
import io
import json

import pytest

from repro.analysis import roofline_analysis
from repro.hw import AcceleratorConfig
from repro.sim import (
    GNNIESimulator,
    phase_table,
    result_to_dict,
    result_to_json,
    results_to_csv,
)


@pytest.fixture(scope="module")
def gcn_result(tiny_graph):
    return GNNIESimulator().run(tiny_graph, "gcn")


@pytest.fixture(scope="module")
def gat_result(tiny_graph):
    return GNNIESimulator().run(tiny_graph, "gat")


class TestRoofline:
    def test_every_phase_classified(self, gcn_result):
        summary = roofline_analysis(gcn_result)
        expected_phases = sum(len(layer.phases()) for layer in gcn_result.layers)
        assert len(summary.phases) == expected_phases
        assert all(phase.bound in ("compute", "memory") for phase in summary.phases)

    def test_machine_balance_positive(self, gcn_result):
        summary = roofline_analysis(gcn_result, AcceleratorConfig())
        assert summary.machine_balance_macs_per_byte > 1

    def test_compute_bound_fraction_in_range(self, gcn_result):
        summary = roofline_analysis(gcn_result)
        assert 0.0 <= summary.compute_bound_fraction <= 1.0

    def test_dominant_phase_is_a_known_phase(self, gcn_result):
        summary = roofline_analysis(gcn_result)
        assert summary.dominant_phase() in ("weighting", "aggregation", "attention")

    def test_intensity_positive(self, gat_result):
        summary = roofline_analysis(gat_result)
        assert all(phase.arithmetic_intensity >= 0 for phase in summary.phases)


class TestResultExport:
    def test_dict_roundtrips_through_json(self, gcn_result):
        document = result_to_json(gcn_result)
        parsed = json.loads(document)
        assert parsed["dataset"] == gcn_result.dataset
        assert parsed["total_cycles"] == gcn_result.total_cycles
        assert len(parsed["layers"]) == len(gcn_result.layers)

    def test_dict_contains_energy_breakdown(self, gcn_result):
        report = result_to_dict(gcn_result)
        assert "energy_breakdown_pj" in report
        assert report["energy_breakdown_pj"]["total_pj"] > 0

    def test_layer_phase_structure(self, gat_result):
        report = result_to_dict(gat_result)
        first_layer = report["layers"][0]
        names = [phase["name"] for phase in first_layer["phases"]]
        assert names == ["weighting", "attention", "aggregation"]

    def test_csv_has_one_row_per_result(self, gcn_result, gat_result):
        text = results_to_csv([gcn_result, gat_result])
        rows = list(csv.DictReader(io.StringIO(text)))
        assert len(rows) == 2
        assert rows[0]["model"] == "GCN"
        assert rows[1]["model"] == "GAT"
        assert float(rows[0]["latency_s"]) > 0

    def test_csv_column_order_is_pinned(self, gcn_result):
        """The export's column order is a contract for downstream readers.

        Columns are derived from ``InferenceResult.summary()`` (so new
        summary fields can never silently go missing — the old literal list
        had dropped the per-phase cycle columns); this pin catches any
        accidental reorder or rename.
        """
        header = results_to_csv([gcn_result]).splitlines()[0]
        assert header == (
            "dataset,model,config,cycles,latency_s,weighting_cycles,"
            "aggregation_cycles,macs,dram_bytes,effective_tops,energy_j,"
            "inferences_per_kj"
        )

    def test_csv_rows_carry_every_summary_value(self, gcn_result):
        (row,) = list(csv.DictReader(io.StringIO(results_to_csv([gcn_result]))))
        summary = gcn_result.summary()
        assert set(row) == set(summary)
        assert int(row["weighting_cycles"]) == summary["weighting_cycles"]
        assert int(row["aggregation_cycles"]) == summary["aggregation_cycles"]

    def test_phase_table_totals_match_result(self, gcn_result):
        rows = phase_table(gcn_result)
        assert sum(row["total_cycles"] for row in rows) == sum(
            layer.total_cycles for layer in gcn_result.layers
        )
        assert all(set(row) >= {"layer", "phase", "macs", "dram_bytes"} for row in rows)
