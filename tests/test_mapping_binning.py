"""Tests for Flexible MAC workload binning and the baseline block assignment."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw import AcceleratorConfig, design_preset
from repro.mapping import baseline_assignment, flexible_mac_assignment
from repro.sparse import block_nonzero_counts, generate_sparse_features


@pytest.fixture(scope="module")
def skewed_blocks():
    features = generate_sparse_features(600, 320, 0.95, seed=7, column_skew=1.1)
    return block_nonzero_counts(features, block_size=20)  # 16 blocks


class TestBaselineAssignment:
    def test_conserves_nonzeros(self, skewed_blocks):
        config = design_preset("A")
        assignment = baseline_assignment(skewed_blocks, config)
        assert assignment.total_nonzeros == skewed_blocks.sum()

    def test_block_position_maps_to_row(self, skewed_blocks):
        config = design_preset("A")
        assignment = baseline_assignment(skewed_blocks, config)
        np.testing.assert_array_equal(
            assignment.row_nonzeros[: skewed_blocks.shape[1]], skewed_blocks.sum(axis=0)
        )

    def test_fewer_blocks_than_rows_leaves_idle_rows(self):
        config = AcceleratorConfig()
        blocks = np.ones((10, 5), dtype=np.int64)
        assignment = baseline_assignment(blocks, config)
        assert assignment.row_block_counts[5:].sum() == 0
        assert assignment.row_cycles[5:].sum() == 0

    def test_too_many_blocks_rejected(self):
        config = AcceleratorConfig()
        with pytest.raises(ValueError):
            baseline_assignment(np.ones((4, 20), dtype=np.int64), config)

    def test_one_dimensional_rejected(self):
        with pytest.raises(ValueError):
            baseline_assignment(np.ones(5, dtype=np.int64), AcceleratorConfig())

    def test_imbalance_metric(self, skewed_blocks):
        assignment = baseline_assignment(skewed_blocks, design_preset("A"))
        assert assignment.imbalance >= 1.0
        assert assignment.max_cycles >= assignment.min_cycles


class TestFlexibleMacAssignment:
    def test_conserves_nonzeros(self, skewed_blocks):
        config = AcceleratorConfig()
        assignment = flexible_mac_assignment(skewed_blocks, config)
        assert assignment.total_nonzeros == skewed_blocks.sum()

    def test_reduces_pass_gating_cycles(self, skewed_blocks):
        """FM on the flexible-MAC array must beat the uniform baseline array."""
        baseline = baseline_assignment(skewed_blocks, design_preset("A"))
        flexible = flexible_mac_assignment(skewed_blocks, AcceleratorConfig())
        assert flexible.max_cycles < baseline.max_cycles

    def test_reduces_imbalance(self, skewed_blocks):
        baseline = baseline_assignment(skewed_blocks, design_preset("A"))
        flexible = flexible_mac_assignment(skewed_blocks, AcceleratorConfig())
        assert flexible.imbalance <= baseline.imbalance

    def test_heavier_rows_have_more_macs(self, skewed_blocks):
        """Bins are assigned in MAC order: the densest blocks go to the last
        group, so average nonzeros per block must be non-decreasing across
        groups."""
        config = AcceleratorConfig()
        assignment = flexible_mac_assignment(skewed_blocks, config)
        per_block = assignment.row_nonzeros / np.maximum(assignment.row_block_counts, 1)
        group_means = [per_block[:8].mean(), per_block[8:12].mean(), per_block[12:].mean()]
        assert group_means[0] <= group_means[1] <= group_means[2]

    def test_preprocessing_cost_linear(self, skewed_blocks):
        assignment = flexible_mac_assignment(skewed_blocks, AcceleratorConfig())
        assert assignment.preprocessing_operations == skewed_blocks.size

    def test_uniform_blocks_stay_balanced(self):
        """Degenerate case: identical blocks must not starve any row group."""
        blocks = np.full((200, 16), 5, dtype=np.int64)
        assignment = flexible_mac_assignment(blocks, AcceleratorConfig())
        assert assignment.imbalance < 1.2
        assert np.all(assignment.row_block_counts > 0)

    def test_policy_labels(self, skewed_blocks):
        assert baseline_assignment(skewed_blocks, design_preset("A")).policy == "baseline"
        assert (
            flexible_mac_assignment(skewed_blocks, AcceleratorConfig()).policy == "flexible_mac"
        )


@settings(max_examples=25, deadline=None)
@given(
    vertices=st.integers(min_value=1, max_value=200),
    blocks=st.integers(min_value=1, max_value=16),
    density=st.floats(min_value=0.0, max_value=1.0),
    seed=st.integers(min_value=0, max_value=999),
)
def test_fm_work_conservation_property(vertices, blocks, density, seed):
    """No nonzero may be lost or duplicated by the FM reordering."""
    rng = np.random.default_rng(seed)
    block_nonzeros = rng.binomial(20, density, size=(vertices, blocks)).astype(np.int64)
    config = AcceleratorConfig()
    fm = flexible_mac_assignment(block_nonzeros, config)
    base = baseline_assignment(block_nonzeros, config)
    assert fm.total_nonzeros == block_nonzeros.sum()
    assert base.total_nonzeros == block_nonzeros.sum()
    assert fm.row_block_counts.sum() == block_nonzeros.size
