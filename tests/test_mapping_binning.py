"""Tests for Flexible MAC workload binning and the baseline block assignment."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw import AcceleratorConfig, design_preset
from repro.mapping import baseline_assignment, flexible_mac_assignment
from repro.sparse import block_nonzero_counts, generate_sparse_features


@pytest.fixture(scope="module")
def skewed_blocks():
    features = generate_sparse_features(600, 320, 0.95, seed=7, column_skew=1.1)
    return block_nonzero_counts(features, block_size=20)  # 16 blocks


class TestBaselineAssignment:
    def test_conserves_nonzeros(self, skewed_blocks):
        config = design_preset("A")
        assignment = baseline_assignment(skewed_blocks, config)
        assert assignment.total_nonzeros == skewed_blocks.sum()

    def test_block_position_maps_to_row(self, skewed_blocks):
        config = design_preset("A")
        assignment = baseline_assignment(skewed_blocks, config)
        np.testing.assert_array_equal(
            assignment.row_nonzeros[: skewed_blocks.shape[1]], skewed_blocks.sum(axis=0)
        )

    def test_fewer_blocks_than_rows_leaves_idle_rows(self):
        config = AcceleratorConfig()
        blocks = np.ones((10, 5), dtype=np.int64)
        assignment = baseline_assignment(blocks, config)
        assert assignment.row_block_counts[5:].sum() == 0
        assert assignment.row_cycles[5:].sum() == 0

    def test_too_many_blocks_rejected(self):
        config = AcceleratorConfig()
        with pytest.raises(ValueError):
            baseline_assignment(np.ones((4, 20), dtype=np.int64), config)

    def test_one_dimensional_rejected(self):
        with pytest.raises(ValueError):
            baseline_assignment(np.ones(5, dtype=np.int64), AcceleratorConfig())

    def test_imbalance_metric(self, skewed_blocks):
        assignment = baseline_assignment(skewed_blocks, design_preset("A"))
        assert assignment.imbalance >= 1.0
        assert assignment.max_cycles >= assignment.min_cycles


class TestFlexibleMacAssignment:
    def test_conserves_nonzeros(self, skewed_blocks):
        config = AcceleratorConfig()
        assignment = flexible_mac_assignment(skewed_blocks, config)
        assert assignment.total_nonzeros == skewed_blocks.sum()

    def test_reduces_pass_gating_cycles(self, skewed_blocks):
        """FM on the flexible-MAC array must beat the uniform baseline array."""
        baseline = baseline_assignment(skewed_blocks, design_preset("A"))
        flexible = flexible_mac_assignment(skewed_blocks, AcceleratorConfig())
        assert flexible.max_cycles < baseline.max_cycles

    def test_reduces_imbalance(self, skewed_blocks):
        baseline = baseline_assignment(skewed_blocks, design_preset("A"))
        flexible = flexible_mac_assignment(skewed_blocks, AcceleratorConfig())
        assert flexible.imbalance <= baseline.imbalance

    def test_heavier_rows_have_more_macs(self, skewed_blocks):
        """Bins are assigned in MAC order: the densest blocks go to the last
        group, so average nonzeros per block must be non-decreasing across
        groups."""
        config = AcceleratorConfig()
        assignment = flexible_mac_assignment(skewed_blocks, config)
        per_block = assignment.row_nonzeros / np.maximum(assignment.row_block_counts, 1)
        group_means = [per_block[:8].mean(), per_block[8:12].mean(), per_block[12:].mean()]
        assert group_means[0] <= group_means[1] <= group_means[2]

    def test_preprocessing_cost_linear(self, skewed_blocks):
        assignment = flexible_mac_assignment(skewed_blocks, AcceleratorConfig())
        assert assignment.preprocessing_operations == skewed_blocks.size

    def test_uniform_blocks_stay_balanced(self):
        """Degenerate case: identical blocks must not starve any row group."""
        blocks = np.full((200, 16), 5, dtype=np.int64)
        assignment = flexible_mac_assignment(blocks, AcceleratorConfig())
        assert assignment.imbalance < 1.2
        assert np.all(assignment.row_block_counts > 0)

    def test_policy_labels(self, skewed_blocks):
        assert baseline_assignment(skewed_blocks, design_preset("A")).policy == "baseline"
        assert (
            flexible_mac_assignment(skewed_blocks, AcceleratorConfig()).policy == "flexible_mac"
        )


def _reference_flexible_mac(block_nonzeros, config):
    """Pre-vectorization per-row Python-loop packing, kept as the oracle."""
    flat = np.asarray(block_nonzeros, dtype=np.int64).ravel()
    group_macs = np.asarray(
        [macs * rows for macs, rows in zip(config.macs_per_group, config.rows_per_group)],
        dtype=np.float64,
    )
    order = np.argsort(flat, kind="stable")
    sorted_nonzeros = flat[order]
    cumulative_work = np.cumsum(sorted_nonzeros.astype(np.float64))
    total_work = float(cumulative_work[-1]) if cumulative_work.size else 0.0
    targets = np.cumsum(group_macs / group_macs.sum())[:-1] * total_work
    boundaries = np.concatenate(
        [[0], np.searchsorted(cumulative_work, targets, side="left"), [flat.size]]
    ).astype(np.int64)
    boundaries = np.maximum.accumulate(boundaries)
    per_row_blocks = [np.empty(0, dtype=np.int64) for _ in range(config.num_rows)]
    row_offset = 0
    for group, rows in enumerate(config.rows_per_group):
        group_blocks = sorted_nonzeros[boundaries[group] : boundaries[group + 1]]
        for local_row in range(rows):
            per_row_blocks[row_offset + local_row] = group_blocks[local_row::rows]
        row_offset += rows
    nonzeros = np.array([int(blocks.sum()) for blocks in per_row_blocks], dtype=np.int64)
    counts = np.array([blocks.size for blocks in per_row_blocks], dtype=np.int64)
    cycles = np.array(
        [
            -(-int(blocks.sum()) // macs) if blocks.size else 0
            for blocks, macs in zip(per_row_blocks, config.macs_per_row)
        ],
        dtype=np.int64,
    )
    return nonzeros, cycles, counts


class TestVectorizedPackingUnchanged:
    """Micro-assertions: the NumPy-gather packing equals the loop oracle."""

    @pytest.mark.parametrize("config", [AcceleratorConfig(), design_preset("D")])
    def test_fm_packing_matches_reference(self, skewed_blocks, config):
        assignment = flexible_mac_assignment(skewed_blocks, config)
        nonzeros, cycles, counts = _reference_flexible_mac(skewed_blocks, config)
        np.testing.assert_array_equal(assignment.row_nonzeros, nonzeros)
        np.testing.assert_array_equal(assignment.row_cycles, cycles)
        np.testing.assert_array_equal(assignment.row_block_counts, counts)

    @settings(max_examples=25, deadline=None)
    @given(
        vertices=st.integers(min_value=1, max_value=120),
        blocks=st.integers(min_value=1, max_value=16),
        density=st.floats(min_value=0.0, max_value=1.0),
        seed=st.integers(min_value=0, max_value=999),
    )
    def test_fm_packing_matches_reference_property(self, vertices, blocks, density, seed):
        rng = np.random.default_rng(seed)
        block_nonzeros = rng.binomial(20, density, size=(vertices, blocks)).astype(np.int64)
        config = AcceleratorConfig()
        assignment = flexible_mac_assignment(block_nonzeros, config)
        nonzeros, cycles, counts = _reference_flexible_mac(block_nonzeros, config)
        np.testing.assert_array_equal(assignment.row_nonzeros, nonzeros)
        np.testing.assert_array_equal(assignment.row_cycles, cycles)
        np.testing.assert_array_equal(assignment.row_block_counts, counts)


@settings(max_examples=25, deadline=None)
@given(
    vertices=st.integers(min_value=1, max_value=200),
    blocks=st.integers(min_value=1, max_value=16),
    density=st.floats(min_value=0.0, max_value=1.0),
    seed=st.integers(min_value=0, max_value=999),
)
def test_fm_work_conservation_property(vertices, blocks, density, seed):
    """No nonzero may be lost or duplicated by the FM reordering."""
    rng = np.random.default_rng(seed)
    block_nonzeros = rng.binomial(20, density, size=(vertices, blocks)).astype(np.int64)
    config = AcceleratorConfig()
    fm = flexible_mac_assignment(block_nonzeros, config)
    base = baseline_assignment(block_nonzeros, config)
    assert fm.total_nonzeros == block_nonzeros.sum()
    assert base.total_nonzeros == block_nonzeros.sum()
    assert fm.row_block_counts.sum() == block_nonzeros.size
