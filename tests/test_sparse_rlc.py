"""Tests for the run-length compression codec."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sparse import RLC_RUN_BITS, rlc_compressed_bits, rlc_decode, rlc_encode


class TestRoundTrip:
    def test_simple_vector(self):
        vector = np.array([0, 0, 3.5, 0, 0, 0, 1.25, 0])
        np.testing.assert_array_equal(rlc_decode(rlc_encode(vector)), vector)

    def test_all_zeros(self):
        vector = np.zeros(100)
        np.testing.assert_array_equal(rlc_decode(rlc_encode(vector)), vector)

    def test_all_nonzero(self):
        vector = np.arange(1, 33, dtype=float)
        np.testing.assert_array_equal(rlc_decode(rlc_encode(vector)), vector)

    def test_empty_vector(self):
        vector = np.array([])
        decoded = rlc_decode(rlc_encode(vector))
        assert decoded.size == 0

    def test_long_zero_run_exceeding_field(self):
        max_run = (1 << RLC_RUN_BITS) - 1
        vector = np.zeros(3 * max_run + 10)
        vector[-1] = 7.0
        np.testing.assert_array_equal(rlc_decode(rlc_encode(vector)), vector)

    def test_leading_and_trailing_zeros(self):
        vector = np.array([0.0, 0.0, 0.0, 2.0, 0.0, 0.0])
        np.testing.assert_array_equal(rlc_decode(rlc_encode(vector)), vector)


class TestCompressionModel:
    def test_sparse_vector_compresses(self):
        vector = np.zeros(1000)
        vector[::100] = 1.0
        encoding = rlc_encode(vector)
        assert encoding.compression_ratio() > 3.0

    def test_dense_vector_expands(self):
        vector = np.ones(64)
        encoding = rlc_encode(vector)
        assert encoding.compression_ratio() < 1.0  # run field overhead

    def test_symbol_count(self):
        vector = np.array([0, 1.0, 0, 0, 2.0])
        encoding = rlc_encode(vector)
        # One symbol per nonzero plus one terminator for trailing zeros when
        # the vector ends in a zero run (here it ends on a value, so 2).
        assert encoding.num_symbols == 2

    def test_compressed_bits_matches_exact_encoding(self):
        rng = np.random.default_rng(0)
        matrix = np.where(rng.random((20, 200)) < 0.05, rng.random((20, 200)), 0.0)
        model_bits = rlc_compressed_bits(matrix)
        exact_bits = sum(rlc_encode(row).compressed_bits for row in matrix)
        assert model_bits == pytest.approx(exact_bits, rel=0.2)

    def test_compressed_bits_monotone_in_density(self):
        rng = np.random.default_rng(1)
        sparse = np.where(rng.random((10, 500)) < 0.02, 1.0, 0.0)
        dense = np.where(rng.random((10, 500)) < 0.4, 1.0, 0.0)
        assert rlc_compressed_bits(sparse) < rlc_compressed_bits(dense)

    def test_one_dimensional_input(self):
        assert rlc_compressed_bits(np.zeros(100)) > 0


@settings(max_examples=80, deadline=None)
@given(
    st.lists(
        st.one_of(st.just(0.0), st.floats(min_value=0.01, max_value=100.0)),
        min_size=0,
        max_size=300,
    )
)
def test_roundtrip_property(values):
    vector = np.asarray(values)
    np.testing.assert_allclose(rlc_decode(rlc_encode(vector)), vector)


@settings(max_examples=40, deadline=None)
@given(
    length=st.integers(min_value=1, max_value=500),
    density=st.floats(min_value=0.0, max_value=1.0),
    seed=st.integers(min_value=0, max_value=999),
)
def test_compressed_size_accounts_all_nonzeros(length, density, seed):
    rng = np.random.default_rng(seed)
    vector = np.where(rng.random(length) < density, rng.random(length) + 0.1, 0.0)
    encoding = rlc_encode(vector)
    stored_nonzeros = np.count_nonzero(encoding.values)
    assert stored_nonzeros == np.count_nonzero(vector)
    assert encoding.compressed_bits >= 32  # header always present
