"""Verification is free: rows stay byte-identical and the memo kills rework.

Two halves of the "prove the verifier is free" contract:

* **Byte identity** — a 2x2x2 sweep store (and a 4-chip store) written
  with verification on is byte-for-byte identical to a control written
  under ``REPRO_NO_VERIFY=1``.  Verification can reject a plan, but it
  must never *change* one.
* **No per-cell rework** — pricing one plan under a batch of configs runs
  the rule pass once; every further config is a memo hit (the same
  counter pattern that pins the cache-sim memo).
"""

from __future__ import annotations

import pytest

from repro.check import verify_counters
from repro.check.verifier import NO_VERIFY_ENV
from repro.datasets import build_dataset
from repro.hw.config import AcceleratorConfig
from repro.plan.lowering import lower
from repro.sim.gnnie_executor import GNNIEExecutor
from repro.sweep import ResultStore, ScenarioMatrix, run_sweep


def _write_store(matrix: ScenarioMatrix, path) -> bytes:
    run_sweep(matrix, store=ResultStore(path), jobs=1)
    return path.read_bytes()


@pytest.fixture()
def no_verify(monkeypatch):
    monkeypatch.setenv(NO_VERIFY_ENV, "1")


def test_sweep_rows_byte_identical_to_no_verify_control(tmp_path, monkeypatch):
    matrix = ScenarioMatrix.build(
        ["cora", "citeseer"],
        ["gcn", "gat"],
        backends=["gnnie", "awb-gcn"],
        scale=0.05,
        seed=0,
    )
    monkeypatch.delenv(NO_VERIFY_ENV, raising=False)
    verified = _write_store(matrix, tmp_path / "verified.jsonl")
    monkeypatch.setenv(NO_VERIFY_ENV, "1")
    control = _write_store(matrix, tmp_path / "control.jsonl")
    assert verified == control
    assert verified.count(b"\n") == 8  # 2 datasets x 2 families x 2 backends


def test_scaleout_rows_byte_identical_to_no_verify_control(tmp_path, monkeypatch):
    matrix = ScenarioMatrix.build(
        ["cora"], ["gcn"], backends=["gnnie"], scale=0.05, seed=0, chips=(4,)
    )
    monkeypatch.delenv(NO_VERIFY_ENV, raising=False)
    verified = _write_store(matrix, tmp_path / "verified.jsonl")
    monkeypatch.setenv(NO_VERIFY_ENV, "1")
    control = _write_store(matrix, tmp_path / "control.jsonl")
    assert verified == control


def test_batch_path_verifies_once_per_plan(monkeypatch):
    monkeypatch.delenv(NO_VERIFY_ENV, raising=False)
    graph = build_dataset("cora", scale=0.05, seed=7)
    plan = lower("gcn", graph)
    executor = GNNIEExecutor()
    configs = [
        AcceleratorConfig(),
        AcceleratorConfig(input_buffer_bytes=1 << 16),
        AcceleratorConfig(input_buffer_bytes=1 << 18),
    ]
    executor.execute(plan, graph)  # prime the memo for this plan
    before = verify_counters()
    executor.execute_batch(plan, graph, configs)
    after = verify_counters()
    assert after["runs"] == before["runs"]  # no re-verification per config
    assert after["hits"] == before["hits"] + len(configs)


def test_no_verify_env_skips_rule_pass_entirely(no_verify):
    graph = build_dataset("cora", scale=0.05, seed=7)
    plan = lower("gat", graph)
    before = verify_counters()
    GNNIEExecutor().execute(plan, graph)
    after = verify_counters()
    assert after == before
