"""Tests for Load Redistribution between CPE rows."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mapping import redistribute_load


class TestRedistributeLoad:
    def test_reduces_maximum(self):
        cycles = np.array([100, 120, 90, 80, 400, 110, 95, 85] * 2)
        result = redistribute_load(cycles)
        assert result.max_after < result.max_before

    def test_reduces_imbalance(self):
        cycles = np.array([50, 60, 55, 65, 300, 280, 70, 75] * 2)
        result = redistribute_load(cycles)
        assert result.imbalance_after <= result.imbalance_before

    def test_balanced_input_unchanged(self):
        cycles = np.full(16, 100)
        result = redistribute_load(cycles)
        np.testing.assert_array_equal(result.cycles_after, result.cycles_before)
        assert result.moved_cycles == 0

    def test_overhead_charged_on_moved_work(self):
        cycles = np.array([1000, 10, 10, 10])
        result = redistribute_load(cycles, num_pairs=1, transfer_overhead=0.1)
        assert result.overhead_cycles > 0
        # Total work only grows by the communication overhead.
        assert result.cycles_after.sum() <= result.cycles_before.sum() + result.overhead_cycles + 4

    def test_max_transfer_fraction_caps_move(self):
        cycles = np.array([1000.0, 0.0])
        result = redistribute_load(
            cycles, num_pairs=1, transfer_overhead=0.0, max_transfer_fraction=0.1
        )
        assert result.cycles_after[0] >= 900

    def test_pairs_reported(self):
        cycles = np.array([500, 10, 490, 20, 30, 480, 40, 470] * 2)
        result = redistribute_load(cycles, num_pairs=4)
        assert len(result.pairs) <= 4
        for heavy, light in result.pairs:
            assert cycles[heavy] >= cycles[light]

    def test_default_pair_count(self):
        cycles = np.arange(16, dtype=float) * 10 + 10
        result = redistribute_load(cycles)
        assert len(result.pairs) <= 4  # one quarter of 16 rows

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            redistribute_load(np.ones((2, 2)))
        with pytest.raises(ValueError):
            redistribute_load(np.ones(4), transfer_overhead=1.5)
        with pytest.raises(ValueError):
            redistribute_load(np.ones(4), max_transfer_fraction=0.0)


@settings(max_examples=50, deadline=None)
@given(
    st.lists(st.integers(min_value=0, max_value=10_000), min_size=2, max_size=32),
    st.floats(min_value=0.0, max_value=0.3),
)
def test_lr_properties(cycles, overhead):
    cycles = np.asarray(cycles, dtype=float)
    result = redistribute_load(cycles, transfer_overhead=overhead)
    # The pass-gating maximum never increases.
    assert result.max_after <= result.max_before
    # Work is conserved up to the explicit communication overhead and
    # integer rounding of the per-row cycle counts.
    slack = result.overhead_cycles + cycles.size
    assert result.cycles_after.sum() <= result.cycles_before.sum() + slack
