"""Tests for degree-aware vertex reordering and binning."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import (
    CSRGraph,
    apply_vertex_permutation,
    degree_binning,
    degree_ordering,
    power_law_graph,
)


@pytest.fixture(scope="module")
def sample_graph():
    return power_law_graph(300, 1200, seed=21)


class TestDegreeOrdering:
    def test_descending_degrees(self, sample_graph):
        result = degree_ordering(sample_graph)
        ordered_degrees = sample_graph.degrees()[result.permutation]
        assert np.all(np.diff(ordered_degrees) <= 0)

    def test_tie_break_by_vertex_id(self):
        # A 4-cycle: every vertex has degree 2, so the order must be the ids.
        graph = CSRGraph.from_edge_list(
            [(0, 1), (1, 2), (2, 3), (3, 0)], num_vertices=4, symmetric=True
        )
        result = degree_ordering(graph)
        assert result.permutation.tolist() == [0, 1, 2, 3]

    def test_inverse_is_consistent(self, sample_graph):
        result = degree_ordering(sample_graph)
        np.testing.assert_array_equal(
            result.permutation[result.inverse], np.arange(sample_graph.num_vertices)
        )

    def test_permutation_is_bijection(self, sample_graph):
        result = degree_ordering(sample_graph)
        assert sorted(result.permutation.tolist()) == list(range(sample_graph.num_vertices))


class TestDegreeBinning:
    def test_bins_are_monotone_in_degree(self, sample_graph):
        result = degree_binning(sample_graph, num_bins=8)
        degrees = sample_graph.degrees()[result.permutation]
        # Binning is coarse: degrees need not be sorted, but the average
        # degree of the first half must exceed that of the second half.
        half = len(degrees) // 2
        assert degrees[:half].mean() > degrees[half:].mean()

    def test_linear_preprocessing_cost(self, sample_graph):
        result = degree_binning(sample_graph, num_bins=8)
        assert result.preprocessing_operations <= sample_graph.num_vertices + 16

    def test_permutation_valid(self, sample_graph):
        result = degree_binning(sample_graph, num_bins=4)
        assert sorted(result.permutation.tolist()) == list(range(sample_graph.num_vertices))

    def test_invalid_bins(self, sample_graph):
        with pytest.raises(ValueError):
            degree_binning(sample_graph, num_bins=0)


class TestApplyPermutation:
    def test_preserves_edge_count_and_degree_multiset(self, sample_graph):
        result = degree_ordering(sample_graph)
        relabeled = apply_vertex_permutation(sample_graph, result.permutation)
        assert relabeled.num_edges == sample_graph.num_edges
        assert sorted(relabeled.degrees().tolist()) == sorted(sample_graph.degrees().tolist())

    def test_relabeled_graph_degree_descending(self, sample_graph):
        result = degree_ordering(sample_graph)
        relabeled = apply_vertex_permutation(sample_graph, result.permutation)
        assert np.all(np.diff(relabeled.degrees()) <= 0)

    def test_identity_permutation(self, sample_graph):
        relabeled = apply_vertex_permutation(
            sample_graph, np.arange(sample_graph.num_vertices)
        )
        np.testing.assert_array_equal(relabeled.indices, sample_graph.indices)

    def test_rejects_wrong_length(self, sample_graph):
        with pytest.raises(ValueError):
            apply_vertex_permutation(sample_graph, np.arange(10))

    def test_rejects_non_bijection(self, sample_graph):
        bad = np.zeros(sample_graph.num_vertices, dtype=np.int64)
        with pytest.raises(ValueError):
            apply_vertex_permutation(sample_graph, bad)


@settings(max_examples=25, deadline=None)
@given(
    num_vertices=st.integers(min_value=2, max_value=60),
    num_edges=st.integers(min_value=1, max_value=150),
    seed=st.integers(min_value=0, max_value=1000),
)
def test_degree_ordering_property(num_vertices, num_edges, seed):
    rng = np.random.default_rng(seed)
    edges = rng.integers(num_vertices, size=(num_edges, 2))
    graph = CSRGraph.from_edge_list(edges, num_vertices=num_vertices, symmetric=True)
    result = degree_ordering(graph)
    degrees = graph.degrees()[result.permutation]
    assert np.all(np.diff(degrees) <= 0)
    assert sorted(result.permutation.tolist()) == list(range(num_vertices))
