"""Tests for the GraphSAGE reference layer and neighbor sampler."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph import CSRGraph, power_law_graph
from repro.models import GraphSAGELayer, NeighborSampler


@pytest.fixture()
def graph():
    return power_law_graph(60, 240, seed=31)


class TestNeighborSampler:
    def test_sample_size_respected(self, graph):
        sampler = NeighborSampler(seed=0)
        edges = sampler.sample_edges(graph, sample_size=5)
        counts = np.bincount(edges[:, 1], minlength=graph.num_vertices)
        assert counts.max() <= 5

    def test_small_neighborhoods_kept_whole(self, graph):
        sampler = NeighborSampler(seed=0)
        edges = sampler.sample_edges(graph, sample_size=1000)
        assert edges.shape[0] == graph.num_edges

    def test_sampled_edges_exist_in_graph(self, graph):
        sampler = NeighborSampler(seed=1)
        edges = sampler.sample_edges(graph, sample_size=3)
        all_edges = {tuple(edge) for edge in graph.edge_array()}
        assert all((src, dst) in all_edges for src, dst in edges)

    def test_deterministic_given_seed(self, graph):
        first = NeighborSampler(seed=2).sample_edges(graph, 4)
        second = NeighborSampler(seed=2).sample_edges(graph, 4)
        np.testing.assert_array_equal(first, second)

    def test_pregenerated_pool_cycles(self):
        sampler = NeighborSampler(pool_size=8, seed=3)
        draws = sampler._next(20)
        assert draws.shape == (20,)
        # Cycling reuses the same 8 pregenerated values.
        np.testing.assert_allclose(draws[:8], draws[8:16])

    def test_invalid_arguments(self, graph):
        with pytest.raises(ValueError):
            NeighborSampler(pool_size=0)
        with pytest.raises(ValueError):
            NeighborSampler().sample_edges(graph, 0)


class TestGraphSAGELayer:
    def test_output_shape(self, graph):
        layer = GraphSAGELayer(12, 6, seed=0)
        out = layer.forward(graph, np.random.default_rng(0).normal(size=(60, 12)))
        assert out.shape == (60, 6)

    def test_max_aggregator_includes_self(self):
        adjacency = CSRGraph.from_edge_list([(0, 1)], num_vertices=2, symmetric=True)
        layer = GraphSAGELayer(2, 2, aggregator="max", activation="none", seed=1)
        layer.weight = np.eye(2)
        features = np.array([[5.0, 0.0], [0.0, 3.0]])
        out = layer.forward(adjacency, features)
        # Each vertex takes the elementwise max of itself and its neighbor.
        np.testing.assert_allclose(out, [[5.0, 3.0], [5.0, 3.0]])

    def test_sum_aggregator_adds_self(self):
        adjacency = CSRGraph.from_edge_list([(0, 1)], num_vertices=2, symmetric=True)
        layer = GraphSAGELayer(2, 2, aggregator="sum", activation="none", seed=1)
        layer.weight = np.eye(2)
        features = np.array([[1.0, 0.0], [0.0, 1.0]])
        np.testing.assert_allclose(
            layer.forward(adjacency, features), [[1.0, 1.0], [1.0, 1.0]]
        )

    def test_mean_aggregator(self):
        adjacency = CSRGraph.from_edge_list([(0, 1), (0, 2)], num_vertices=3, symmetric=True)
        layer = GraphSAGELayer(1, 1, aggregator="mean", activation="none", seed=1)
        layer.weight = np.array([[1.0]])
        features = np.array([[0.0], [2.0], [4.0]])
        out = layer.forward(adjacency, features)
        # Vertex 0: mean(2, 4) + self 0 = 3.
        assert out[0, 0] == pytest.approx(3.0)

    def test_invalid_aggregator(self):
        with pytest.raises(ValueError):
            GraphSAGELayer(4, 4, aggregator="median")

    def test_invalid_sample_size(self):
        with pytest.raises(ValueError):
            GraphSAGELayer(4, 4, sample_size=0)

    def test_workload_uses_sampled_edges(self, graph):
        layer = GraphSAGELayer(12, 6, sample_size=2, seed=0)
        full = GraphSAGELayer(12, 6, sample_size=10_000, seed=0)
        features = np.ones((60, 12))
        assert (
            layer.workload(graph, features).aggregation_ops
            < full.workload(graph, features).aggregation_ops
        )

    def test_relu_activation(self, graph):
        layer = GraphSAGELayer(12, 6, activation="relu", seed=0)
        out = layer.forward(graph, np.random.default_rng(1).normal(size=(60, 12)))
        assert np.all(out >= 0)
