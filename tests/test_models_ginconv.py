"""Tests for the GINConv reference layer and graph readout."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph import CSRGraph
from repro.models import GINConvLayer, gin_graph_readout


@pytest.fixture()
def triangle():
    return CSRGraph.from_edge_list([(0, 1), (1, 2), (2, 0)], num_vertices=3, symmetric=True)


class TestGINConvLayer:
    def test_matches_manual_computation(self, triangle):
        rng = np.random.default_rng(0)
        features = rng.normal(size=(3, 4))
        layer = GINConvLayer(4, 5, epsilon=0.5, activation="none", seed=1)
        neighbor_sums = np.array(
            [
                features[1] + features[2],
                features[0] + features[2],
                features[0] + features[1],
            ]
        )
        combined = 1.5 * features + neighbor_sums
        expected = layer.mlp.forward(combined)
        np.testing.assert_allclose(layer.forward(triangle, features), expected, atol=1e-12)

    def test_epsilon_zero_default(self, triangle):
        layer = GINConvLayer(4, 4, seed=2)
        assert layer.epsilon == 0.0

    def test_output_shape_with_hidden(self, triangle):
        layer = GINConvLayer(4, 6, hidden_features=16, seed=3)
        out = layer.forward(triangle, np.ones((3, 4)))
        assert out.shape == (3, 6)
        assert layer.mlp.weights[0].shape == (4, 16)

    def test_relu_output_activation(self, triangle):
        layer = GINConvLayer(4, 6, activation="relu", seed=4)
        out = layer.forward(triangle, np.random.default_rng(2).normal(size=(3, 4)))
        assert np.all(out >= 0)

    def test_wrong_width_rejected(self, triangle):
        with pytest.raises(ValueError):
            GINConvLayer(4, 6).forward(triangle, np.ones((3, 7)))

    def test_workload_counts_mlp_and_aggregation(self, triangle):
        layer = GINConvLayer(4, 6, hidden_features=8)
        features = np.ones((3, 4))
        workload = layer.workload(triangle, features)
        # Aggregation happens at the input width (4), before the MLP.
        assert workload.aggregation_ops == (triangle.num_edges + 3) * 4
        assert workload.weighting_macs > 0

    def test_weight_matrices_lists_mlp_layers(self):
        layer = GINConvLayer(4, 6, hidden_features=8)
        shapes = [w.shape for w in layer.weight_matrices()]
        assert shapes == [(4, 8), (8, 6)]


class TestGraphReadout:
    def test_concatenates_layer_sums(self):
        outputs = [np.ones((5, 3)), 2.0 * np.ones((5, 2))]
        readout = gin_graph_readout(outputs)
        np.testing.assert_allclose(readout, [5.0, 5.0, 5.0, 10.0, 10.0])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            gin_graph_readout([])
