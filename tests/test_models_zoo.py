"""Tests for the Table III model configurations and the model factory."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph import power_law_graph
from repro.models import (
    MODEL_FAMILIES,
    DiffPoolModel,
    GNNModel,
    build_model,
    model_config,
)


class TestModelConfig:
    def test_all_five_families_registered(self):
        assert set(MODEL_FAMILIES) == {"gcn", "gat", "graphsage", "ginconv", "diffpool"}
        for family in MODEL_FAMILIES:
            assert model_config(family).family == family

    def test_table3_settings(self):
        assert model_config("graphsage").aggregator == "max"
        assert model_config("graphsage").sample_size == 25
        assert model_config("ginconv").mlp_hidden == 128
        assert all(model_config(f).hidden_features == 128 for f in MODEL_FAMILIES)

    def test_unknown_family(self):
        with pytest.raises(KeyError):
            model_config("transformer")

    def test_layer_dimensions_chain(self):
        dims = model_config("gcn").layer_dimensions(1433, 7)
        assert dims == [(1433, 128), (128, 7)]

    def test_layer_dimensions_three_layers(self):
        from repro.models import ModelConfig

        cfg = ModelConfig(family="gcn", num_layers=3, hidden_features=64)
        assert cfg.layer_dimensions(100, 5) == [(100, 64), (64, 64), (64, 5)]


class TestBuildModel:
    @pytest.fixture(scope="class")
    def graph(self):
        return power_law_graph(30, 90, seed=51)

    @pytest.mark.parametrize("family", ["gcn", "gat", "graphsage", "ginconv"])
    def test_message_passing_families(self, family, graph):
        model = build_model(family, in_features=10, out_features=4, seed=0)
        assert isinstance(model, GNNModel)
        out = model.forward(graph, np.random.default_rng(0).normal(size=(30, 10)))
        assert out.shape == (30, 4)

    def test_diffpool_returns_pooling_model(self):
        model = build_model("diffpool", in_features=10, out_features=4, seed=0)
        assert isinstance(model, DiffPoolModel)

    def test_unknown_family(self):
        with pytest.raises(KeyError):
            build_model("mlpmixer", 10, 4)

    def test_last_layer_has_no_relu(self, graph):
        model = build_model("gcn", in_features=10, out_features=4, seed=0)
        out = model.forward(graph, np.random.default_rng(1).normal(size=(30, 10)))
        # With a linear output layer some entries should be negative.
        assert np.any(out < 0)

    def test_seed_controls_weights(self):
        first = build_model("gcn", 10, 4, seed=1)
        second = build_model("gcn", 10, 4, seed=1)
        third = build_model("gcn", 10, 4, seed=2)
        np.testing.assert_array_equal(first.layers[0].weight, second.layers[0].weight)
        assert not np.array_equal(first.layers[0].weight, third.layers[0].weight)
