"""Duplicate registration in the plan registries warns instead of silently clobbering.

A second registration under an existing name used to overwrite the first
entry with no trace — swapping what every sweep row priced.  Both
registries now warn (latest still wins, for deliberate plugin overrides)
and stay silent when the identical object is re-registered (module
reloads).
"""

from __future__ import annotations

import warnings

import pytest

from repro.plan.executor import _FACTORIES, executor, register_executor
from repro.plan.lowering import _RULES, lowering_rule, register_lowering


@pytest.fixture()
def scratch_registries():
    """Snapshot both registries and restore them after the test."""
    factories = dict(_FACTORIES)
    rules = dict(_RULES)
    try:
        yield
    finally:
        _FACTORIES.clear()
        _FACTORIES.update(factories)
        _RULES.clear()
        _RULES.update(rules)


def test_duplicate_executor_registration_warns(scratch_registries):
    first = lambda: object()  # noqa: E731
    second = lambda: object()  # noqa: E731
    register_executor("dup-backend", first)
    with pytest.warns(RuntimeWarning, match="dup-backend.*already registered"):
        register_executor("dup-backend", second)
    assert _FACTORIES["dup-backend"] is second  # latest wins


def test_identical_executor_reregistration_is_silent(scratch_registries):
    factory = lambda: object()  # noqa: E731
    register_executor("dup-backend", factory)
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        register_executor("dup-backend", factory)


def test_duplicate_lowering_registration_warns(scratch_registries):
    @register_lowering("dup-family")
    def first_rule(config, in_features, out_features):
        raise NotImplementedError

    with pytest.warns(RuntimeWarning, match="dup-family.*already registered"):
        @register_lowering("dup-family")
        def second_rule(config, in_features, out_features):
            raise NotImplementedError

    assert lowering_rule("dup-family") is second_rule


def test_identical_lowering_reregistration_is_silent(scratch_registries):
    def rule(config, in_features, out_features):
        raise NotImplementedError

    register_lowering("dup-family")(rule)
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        register_lowering("dup-family")(rule)


def test_builtin_registrations_import_cleanly(scratch_registries):
    """Importing the built-ins twice must not warn (identity re-registration)."""
    with warnings.catch_warnings():
        warnings.simplefilter("error", RuntimeWarning)
        executor("gnnie")
        executor("hygcn")
