"""Tests for the scenario-sweep subsystem (matrix, store, worker, runner, CLI)."""

from __future__ import annotations

import json
from dataclasses import replace

import pytest

from repro.analysis import backend_geomeans, design_points_from_rows, pareto_rows, speedup_rows
from repro.cli import main
from repro.hw import AcceleratorConfig, design_preset
from repro.sim import GNNIESimulator, sweep_designs
from repro.sweep import (
    ALL_BACKENDS,
    DatasetCase,
    ResultStore,
    RetryPolicy,
    ScenarioMatrix,
    StoreCorruptionWarning,
    SweepCell,
    SweepError,
    config_from_dict,
    config_to_dict,
    derive_seed,
    full_matrix,
    run_cell,
    run_sweep,
)
from repro.sweep.store import canonical_row


@pytest.fixture(scope="module")
def small_matrix() -> ScenarioMatrix:
    return ScenarioMatrix.build(
        ["cora"], ["gcn", "gat"], backends=["gnnie", "awb-gcn"], scale=0.1, seed=0
    )


@pytest.fixture(scope="module")
def small_summary(small_matrix):
    return run_sweep(small_matrix, jobs=1)


class TestMatrix:
    def test_axis_major_expansion_order(self):
        matrix = ScenarioMatrix.build(
            ["cora", "citeseer"], ["gcn", "gat"], backends=["gnnie", "engn"]
        )
        cells = matrix.cells()
        assert len(cells) == len(matrix) == 8
        assert [(c.dataset, c.family, c.backend) for c in cells[:4]] == [
            ("cora", "gcn", "gnnie"),
            ("cora", "gcn", "engn"),
            ("cora", "gat", "gnnie"),
            ("cora", "gat", "engn"),
        ]
        assert all(c.dataset == "citeseer" for c in cells[4:])

    def test_derived_seeds_deterministic_and_shared_per_dataset(self):
        matrix = full_matrix(seed=7)
        cells = matrix.cells()
        by_dataset = {}
        for cell in cells:
            by_dataset.setdefault(cell.dataset, set()).add(cell.seed)
        # Every cell of one dataset shares one seed (same synthetic graph).
        assert all(len(seeds) == 1 for seeds in by_dataset.values())
        assert by_dataset["cora"] == {derive_seed(7, "cora")}
        # Different base seed, different derived seeds.
        assert derive_seed(7, "cora") != derive_seed(8, "cora")
        assert derive_seed(7, "cora") != derive_seed(7, "citeseer")

    def test_explicit_dataset_case_seed_wins(self):
        matrix = ScenarioMatrix(
            datasets=(DatasetCase("cora", scale=0.1, seed=42),),
            families=("gcn",),
        )
        assert matrix.cells()[0].seed == 42

    def test_cell_key_content_hash(self):
        cell = SweepCell("cora", 0.1, 1, "gcn", "gnnie", AcceleratorConfig())
        twin = SweepCell("cora", 0.1, 1, "gcn", "gnnie", AcceleratorConfig())
        assert cell.key() == twin.key()
        other_config = SweepCell("cora", 0.1, 1, "gcn", "gnnie", design_preset("A"))
        other_seed = SweepCell("cora", 0.1, 2, "gcn", "gnnie", AcceleratorConfig())
        assert len({cell.key(), other_config.key(), other_seed.key()}) == 3

    def test_config_round_trip_restores_tuples(self):
        config = design_preset("E").with_miss_path("victim", "stream")
        restored = config_from_dict(json.loads(json.dumps(config_to_dict(config))))
        assert restored == config
        assert isinstance(restored.macs_per_group, tuple)
        assert isinstance(restored.miss_path_mechanisms, tuple)

    def test_config_round_trip_preserves_auto_sentinel(self):
        auto = AcceleratorConfig()
        data = json.loads(json.dumps(config_to_dict(auto)))
        assert data["input_buffer_bytes"] is None  # JSON null, not 524288
        assert config_from_dict(data) == auto
        explicit = replace(auto, input_buffer_bytes=256 * 1024)
        assert (
            config_from_dict(json.loads(json.dumps(config_to_dict(explicit))))
            == explicit
        )

    def test_auto_sentinel_and_explicit_default_are_distinct_cells(self):
        """Documented consequence of the sentinel: cell keys changed.

        The auto default serializes as ``null`` where it used to be 524288,
        so a default-config cell no longer shares a key with an explicit
        512 KB cell — stores written before the change cannot be resumed
        (see ``test_resuming_pre_sentinel_store_fails_clearly``).
        """
        auto = SweepCell("cora", 0.1, 1, "gcn", "gnnie", AcceleratorConfig())
        explicit = SweepCell(
            "cora", 0.1, 1, "gcn", "gnnie",
            replace(AcceleratorConfig(), input_buffer_bytes=512 * 1024),
        )
        assert auto.key() != explicit.key()

    def test_full_matrix_shape(self):
        matrix = full_matrix()
        assert len(matrix) == 5 * 5 * len(ALL_BACKENDS)

    def test_all_backends_tracks_the_live_registry(self):
        import repro.sweep
        from repro.plan import executor_names

        assert repro.sweep.ALL_BACKENDS == executor_names()
        assert set(ALL_BACKENDS) == {
            "gnnie", "pyg-cpu", "pyg-gpu", "hygcn", "awb-gcn", "engn"
        }

    def test_configs_cross_only_config_sensitive_backends(self):
        configs = (design_preset("A"), design_preset("E"))
        matrix = ScenarioMatrix.build(
            ["cora"], ["gcn"], backends=["gnnie", "pyg-cpu"], configs=configs
        )
        cells = matrix.cells()
        # GNNIE sweeps both designs; the fixed-silicon baseline runs once.
        assert len(matrix) == len(cells) == 3
        assert [(c.backend, c.config.name) for c in cells] == [
            ("gnnie", "Design A"),
            ("gnnie", "Design E (GNNIE)"),
            ("pyg-cpu", "Design A"),
        ]
        crossed = ScenarioMatrix.build(
            ["cora"], ["gcn"], backends=["gnnie", "pyg-cpu"], configs=configs,
            config_backends=None,
        )
        assert len(crossed) == len(crossed.cells()) == 4
        # config_backends is case-normalized like the backend axis.
        mixed = ScenarioMatrix.build(
            ["cora"], ["gcn"], backends=["GNNIE"], configs=configs,
            config_backends=["GNNIE"],
        )
        assert len(mixed) == 2


class TestResultStore:
    def test_append_and_reload(self, tmp_path):
        path = tmp_path / "store.jsonl"
        store = ResultStore(path)
        store.append({"key": "a", "value": 1})
        store.append({"key": "b", "value": 2})
        reloaded = ResultStore(path)
        assert len(reloaded) == 2
        assert "a" in reloaded and reloaded.get("b") == {"key": "b", "value": 2}

    def test_duplicate_key_not_rewritten(self, tmp_path):
        path = tmp_path / "store.jsonl"
        store = ResultStore(path)
        store.append({"key": "a", "value": 1})
        store.append({"key": "a", "value": 99})
        assert ResultStore(path).get("a") == {"key": "a", "value": 1}
        assert path.read_text().count('"key":"a"') == 1

    def test_truncated_trailing_row_dropped(self, tmp_path):
        path = tmp_path / "store.jsonl"
        store = ResultStore(path)
        store.append({"key": "a", "value": 1})
        with path.open("a") as handle:
            handle.write('{"key":"b","val')  # killed mid-write
        reloaded = ResultStore(path)
        assert reloaded.dropped_partial_row
        assert reloaded.keys() == {"a"}

    def test_append_after_partial_row_does_not_corrupt(self, tmp_path):
        """Loading truncates a partial tail so later appends start cleanly.

        Regression test: append used to glue the new row onto the partial
        line, which either lost the fsynced row on the next load or made the
        whole store unloadable ('corrupt result store')."""
        path = tmp_path / "store.jsonl"
        ResultStore(path).append({"key": "a", "value": 1})
        with path.open("a") as handle:
            handle.write('{"key":"b","val')
        recovered = ResultStore(path)
        recovered.append({"key": "c", "value": 3})
        recovered.append({"key": "d", "value": 4})
        reloaded = ResultStore(path)
        assert not reloaded.dropped_partial_row
        assert reloaded.keys() == {"a", "c", "d"}

    def test_parseable_tail_missing_newline_repaired(self, tmp_path):
        """A tail row that lost only its newline must not glue later appends."""
        path = tmp_path / "store.jsonl"
        path.write_text('{"key":"a"}\n{"key":"b"}')  # killed one byte short
        recovered = ResultStore(path)
        assert recovered.keys() == {"a", "b"} and not recovered.dropped_partial_row
        recovered.append({"key": "c"})
        assert ResultStore(path).keys() == {"a", "b", "c"}

    def test_unparseable_complete_tail_is_corruption_not_a_partial(self, tmp_path):
        """Appends always write 'row\\n', so a newline-terminated line can
        never be a partial write — an unparseable one is quarantined."""
        path = tmp_path / "store.jsonl"
        path.write_text('{"key":"a"}\nnot json\n')
        with pytest.warns(StoreCorruptionWarning, match="quarantined 1"):
            store = ResultStore(path)
        assert store.keys() == {"a"}
        assert [line.number for line in store.quarantined] == [2]
        # The evidence is preserved, not silently truncated away.
        assert path.read_text() == '{"key":"a"}\nnot json\n'

    def test_corrupt_interior_row_is_quarantined_not_fatal(self, tmp_path):
        path = tmp_path / "store.jsonl"
        path.write_text('not json\n{"key":"a"}\n')
        with pytest.warns(StoreCorruptionWarning, match="repro store repair"):
            store = ResultStore(path)
        assert store.keys() == {"a"}
        assert len(store.quarantined) == 1

    def test_no_resume_truncates(self, tmp_path):
        path = tmp_path / "store.jsonl"
        ResultStore(path).append({"key": "a"})
        assert len(ResultStore(path, resume=False)) == 0
        assert not path.exists()

    def test_in_memory_store(self):
        store = ResultStore(None)
        store.append({"key": "a"})
        assert len(store) == 1 and store.path is None


class TestRunner:
    def test_one_row_per_cell_in_matrix_order(self, small_matrix, small_summary):
        cells = small_matrix.cells()
        assert small_summary.total == len(cells) == 4
        assert [row["key"] for row in small_summary.rows] == [c.key() for c in cells]

    def test_unsupported_cells_have_null_metrics(self, small_summary):
        gat_awb = [
            row
            for row in small_summary.rows
            if row["backend"] == "awb-gcn" and row["family"] == "gat"
        ]
        assert len(gat_awb) == 1
        assert gat_awb[0]["supported"] is False and gat_awb[0]["metrics"] is None

    def test_resume_skips_completed_cells(self, small_matrix, tmp_path):
        store_path = tmp_path / "resume.jsonl"
        first = run_sweep(small_matrix, store=ResultStore(store_path), jobs=1)
        assert (first.executed, first.skipped) == (4, 0)
        second = run_sweep(small_matrix, store=ResultStore(store_path), jobs=1)
        assert (second.executed, second.skipped) == (0, 4)
        assert [canonical_row(r) for r in second.rows] == [
            canonical_row(r) for r in first.rows
        ]

    def test_partial_store_resumes_remaining(self, small_matrix, tmp_path):
        cells = small_matrix.cells()
        store_path = tmp_path / "partial.jsonl"
        run_sweep(cells[:2], store=ResultStore(store_path), jobs=1)
        summary = run_sweep(small_matrix, store=ResultStore(store_path), jobs=1)
        assert (summary.executed, summary.skipped) == (2, 2)

    def test_parallel_matches_serial_byte_for_byte(self, small_matrix, small_summary):
        parallel = run_sweep(small_matrix, jobs=2)
        assert [canonical_row(r) for r in parallel.rows] == [
            canonical_row(r) for r in small_summary.rows
        ]

    def test_progress_callback_sees_every_executed_cell(self, small_matrix):
        seen = []
        run_sweep(
            small_matrix,
            jobs=1,
            progress=lambda cell, row, done, total, cached, wall_s: seen.append(
                (done, total, cached, wall_s)
            ),
        )
        assert len(seen) == 4
        assert seen[-1][:3] == (4, 4, False)
        assert not any(cached for _, _, cached, _ in seen)
        # Executed cells report their host wall time.
        assert all(wall_s > 0 for _, _, _, wall_s in seen)

    def test_progress_fires_for_resumed_cells_flagged_cached(self, small_matrix, tmp_path):
        """Resumed cells report progress too, so done/total never jumps.

        Regression test: the callback used to fire only for executed cells,
        making a resumed sweep's counter start past the resumed prefix.
        """
        store_path = tmp_path / "progress.jsonl"
        cells = small_matrix.cells()
        run_sweep(cells[:2], store=ResultStore(store_path), jobs=1)
        seen = []
        run_sweep(
            small_matrix,
            store=ResultStore(store_path),
            jobs=1,
            progress=lambda cell, row, done, total, cached, wall_s: seen.append(
                (done, cached)
            ),
        )
        # Counter covers every cell exactly once: resumed first (cached),
        # then the two freshly executed.
        assert [done for done, _ in seen] == [1, 2, 3, 4]
        assert [cached for _, cached in seen] == [True, True, False, False]

    def test_resuming_pre_sentinel_store_fails_clearly(self, small_matrix, tmp_path):
        """A store written before the cell-key change must not silently
        re-execute every cell next to its stale rows."""
        store_path = tmp_path / "old.jsonl"
        run_sweep(small_matrix.cells()[:1], store=ResultStore(store_path), jobs=1)
        row = next(iter(ResultStore(store_path).rows()))
        del row["row_format"]  # what a pre-sentinel sweep wrote
        store_path.write_text(canonical_row(row) + "\n")
        with pytest.raises(ValueError, match="format"):
            run_sweep(small_matrix, store=ResultStore(store_path), jobs=1)
        # Opting out of resume rebuilds the store cleanly.
        summary = run_sweep(
            small_matrix, store=ResultStore(store_path, resume=False), jobs=1
        )
        assert summary.executed == 4

    def test_rejects_bad_jobs(self, small_matrix):
        with pytest.raises(ValueError):
            run_sweep(small_matrix, jobs=0)

    def test_duplicate_cells_simulated_once(self, small_matrix):
        cell = small_matrix.cells()[0]
        summary = run_sweep([cell, cell, cell], jobs=1)
        assert summary.total == 3
        assert summary.executed == 1 and summary.skipped == 2
        assert len(summary.rows) == 3
        assert len({canonical_row(row) for row in summary.rows}) == 1

    def test_worker_error_still_drains_finished_rows_to_store(self, tmp_path):
        """One failing cell must not discard rows other workers completed."""
        strict = RetryPolicy(max_attempts=1, failed_rows=False)
        good = ScenarioMatrix.build(["cora"], ["gcn", "gat"], scale=0.1).cells()
        bad = SweepCell("cora", 0.1, good[0].seed, "nosuch", "gnnie", AcceleratorConfig())
        store_path = tmp_path / "err.jsonl"
        with pytest.raises(SweepError, match="nosuch") as excinfo:
            run_sweep([*good, bad], store=ResultStore(store_path), jobs=2, retry=strict)
        assert ResultStore(store_path).keys() == {cell.key() for cell in good}
        # Every failure is reported, with the landed-row count.
        assert excinfo.value.failures[0]["error_type"] == "KeyError"
        assert excinfo.value.rows_landed == len(good)
        # The resumed sweep re-executes only the failing cell.
        with pytest.raises(SweepError, match="nosuch"):
            run_sweep([*good, bad], store=ResultStore(store_path), jobs=2, retry=strict)

    def test_failing_cell_lands_failed_row_and_heals_on_resume(self, tmp_path):
        """Default policy: the sweep completes, the bad cell is an explicit
        failed row, and a later sweep re-executes exactly that cell."""
        good = ScenarioMatrix.build(["cora"], ["gcn"], scale=0.1).cells()
        bad = SweepCell("cora", 0.1, good[0].seed, "nosuch", "gnnie", AcceleratorConfig())
        store_path = tmp_path / "failed.jsonl"
        summary = run_sweep([*good, bad], store=ResultStore(store_path), jobs=1)
        assert summary.failed == 1 and summary.retries >= 1
        failed = [row for row in summary.rows if row.get("status") == "failed"]
        assert failed[0]["error"]["type"] == "KeyError"
        assert failed[0]["key"] == bad.key()
        assert failed[0]["metrics"] is None
        # Resume: only the failed cell re-executes (and fails again here).
        resumed = run_sweep([*good, bad], store=ResultStore(store_path), jobs=1)
        assert resumed.executed == 1 and resumed.skipped == len(good)

    def test_rejects_caller_graphs_with_persistent_store(self, tiny_graph, tmp_path):
        """Cell keys do not hash graph content, so a file-backed store could
        resume rows computed from a different graph of the same name."""
        cell = SweepCell(tiny_graph.name, None, 0, "gcn", "gnnie", AcceleratorConfig())
        with pytest.raises(ValueError, match="in-memory store"):
            run_sweep(
                [cell],
                store=ResultStore(tmp_path / "g.jsonl"),
                graphs={tiny_graph.name: tiny_graph},
            )

    def test_unsupported_cell_never_builds_the_dataset(self, monkeypatch):
        def boom(*args, **kwargs):
            raise AssertionError("unsupported cell must not build its dataset")

        monkeypatch.setattr("repro.datasets.synthetic.build_dataset", boom)
        cell = SweepCell("reddit", None, 0, "gat", "awb-gcn", AcceleratorConfig())
        row = run_cell(cell)
        assert row["supported"] is False
        assert row["dataset_abbrev"] == "RD"

    def test_rows_independent_of_cell_order(self):
        """A cell's row must not depend on cells run earlier in the process.

        Regression test: the GNNIE executor shares one cache simulation per
        (graph, buffer config), sized by whichever op primes it first — an
        executor reused across cells made ginconv rows depend on whether a
        gcn cell (different aggregation width) ran first in the same worker.
        """
        matrix = ScenarioMatrix.build(["cora"], ["gcn", "ginconv"], scale=0.1)
        forward = run_sweep(matrix.cells(), jobs=1).rows
        backward = run_sweep(list(reversed(matrix.cells())), jobs=1).rows
        assert {canonical_row(r) for r in forward} == {canonical_row(r) for r in backward}

    def test_caller_supplied_graph_used(self, tiny_graph):
        cell = SweepCell(tiny_graph.name, None, 0, "gcn", "gnnie", AcceleratorConfig())
        row = run_cell(cell, tiny_graph)
        assert row["dataset_abbrev"] == tiny_graph.name
        assert row["metrics"]["cycles"] > 0


class TestDesignSpaceRerouting:
    def test_sweep_designs_matches_direct_simulation(self, tiny_graph):
        configs = [design_preset("A"), design_preset("E")]
        points = sweep_designs(tiny_graph, "gcn", configs)
        for config, point in zip(configs, points):
            direct = GNNIESimulator(config).run(tiny_graph, "gcn")
            assert point.cycles == direct.total_cycles
            assert point.latency_seconds == pytest.approx(direct.latency_seconds, rel=1e-12)
            assert point.energy_joules == pytest.approx(direct.energy_joules, rel=1e-12)

    def test_sweep_designs_parallel_matches_serial(self, tiny_graph):
        configs = [design_preset("A"), design_preset("E")]
        serial = sweep_designs(tiny_graph, "gcn", configs)
        parallel = sweep_designs(tiny_graph, "gcn", configs, jobs=2)
        assert [(p.cycles, p.latency_seconds) for p in serial] == [
            (p.cycles, p.latency_seconds) for p in parallel
        ]


class TestStoreBackedAggregation:
    @pytest.fixture(scope="class")
    def design_rows(self, tiny_graph):
        matrix = ScenarioMatrix(
            datasets=(DatasetCase(tiny_graph.name, seed=0),),
            families=("gcn",),
            backends=("gnnie",),
            configs=tuple(design_preset(name) for name in ("A", "D", "E")),
        )
        return run_sweep(matrix, graphs={tiny_graph.name: tiny_graph}).rows

    def test_design_points_round_trip(self, design_rows, tiny_graph):
        points = design_points_from_rows(design_rows)
        direct = sweep_designs(tiny_graph, "gcn", [design_preset(n) for n in ("A", "D", "E")])
        assert [(p.name, p.cycles, p.total_macs) for p in points] == [
            (p.name, p.cycles, p.total_macs) for p in direct
        ]
        assert all(p.config == d.config for p, d in zip(points, direct))

    def test_pareto_rows_subset_of_points(self, design_rows):
        front = pareto_rows(design_rows)
        assert front
        names = {p.name for p in design_points_from_rows(design_rows)}
        assert {p.name for p in front} <= names

    def test_speedup_rows_distinguish_same_name_configs(self, tiny_graph):
        """Two configs sharing a display name must not collapse to one.

        Regression test: GNNIE reference rows were keyed by ``config_name``,
        so a second ``replace()``d variant still named "GNNIE" silently
        overwrote the first and baselines paired with the wrong reference.
        """
        base = AcceleratorConfig()
        throttled = replace(base, input_buffer_bytes=2 * 1024)  # same name
        assert throttled.name == base.name
        matrix = ScenarioMatrix(
            datasets=(DatasetCase(tiny_graph.name, seed=0),),
            families=("gcn",),
            backends=("gnnie", "pyg-cpu"),
            configs=(base, throttled),
        )
        rows = run_sweep(matrix, graphs={tiny_graph.name: tiny_graph}).rows
        gnnie_latencies = {
            json.dumps(row["config"], sort_keys=True): row["metrics"]["latency_seconds"]
            for row in rows
            if row["backend"] == "gnnie"
        }
        assert len(set(gnnie_latencies.values())) == 2  # the variants differ
        reference = gnnie_latencies[
            json.dumps(config_to_dict(base), sort_keys=True)
        ]
        baseline_row = next(row for row in rows if row["backend"] == "pyg-cpu")
        entries = speedup_rows(rows)
        # The baseline platform is swept once, with configs[0]; its speedup
        # must reference that config's GNNIE row, not the last same-named one.
        assert len(entries) == 1
        assert entries[0]["speedup"] == pytest.approx(
            baseline_row["metrics"]["latency_seconds"] / reference
        )

    def test_speedup_rows_and_geomeans(self, small_summary):
        entries = speedup_rows(small_summary.rows)
        # awb-gcn supports only gcn -> exactly one speedup entry.
        assert [e["backend"] for e in entries] == ["awb-gcn"]
        assert entries[0]["speedup"] > 0
        geomeans = backend_geomeans(small_summary.rows)
        assert set(geomeans) == {"awb-gcn"}
        assert geomeans["awb-gcn"]["cells"] == 1

    def test_speedup_rows_pair_within_scale(self):
        """Baselines must pair with the GNNIE reference of their own scale.

        Regression test: the reference dict was keyed by (dataset, family,
        config) only, so a store holding two scales of one dataset paired
        every baseline row against whichever scale's GNNIE row loaded last.
        """
        matrix = ScenarioMatrix(
            datasets=(
                DatasetCase("cora", scale=0.05, seed=0),
                DatasetCase("cora", scale=0.1, seed=0),
            ),
            families=("gcn",),
            backends=("gnnie", "engn"),
        )
        rows = run_sweep(matrix, jobs=1).rows
        gnnie = {row["scale"]: row for row in rows if row["backend"] == "gnnie"}
        baseline = {row["scale"]: row for row in rows if row["backend"] == "engn"}
        assert len(gnnie) == len(baseline) == 2
        entries = {entry["scale"]: entry for entry in speedup_rows(rows)}
        assert set(entries) == {0.05, 0.1}
        for scale, entry in entries.items():
            expected = (
                baseline[scale]["metrics"]["latency_seconds"]
                / gnnie[scale]["metrics"]["latency_seconds"]
            )
            assert entry["speedup"] == pytest.approx(expected)
        # The two scales produce genuinely different ratios, so a cross-scale
        # pairing could not have passed by accident.
        assert entries[0.05]["speedup"] != pytest.approx(entries[0.1]["speedup"])

    def test_failed_rows_are_excluded_but_surfaced(self, small_summary):
        from repro.analysis import geomean_table_rows
        from repro.sweep import failed_row

        rows = list(small_summary.rows)
        healthy = speedup_rows(rows)
        # Fail one baseline cell and one GNNIE reference cell.
        cells = ScenarioMatrix.build(
            ["cora"], ["gcn", "gat"], backends=["gnnie", "awb-gcn"], scale=0.1, seed=0
        ).cells()
        awb = next(c for c in cells if c.backend == "awb-gcn" and c.family == "gcn")
        gnnie_gat = next(c for c in cells if c.backend == "gnnie" and c.family == "gat")
        mixed = rows + [
            failed_row(awb, RuntimeError("boom"), attempts=2),
            failed_row(gnnie_gat, RuntimeError("boom"), attempts=1),
        ]
        # Failed rows never pair: entries are unchanged next to failures.
        assert speedup_rows(mixed) == healthy
        geomeans = backend_geomeans(mixed)
        assert geomeans["awb-gcn"]["failed"] == 1
        assert geomeans["gnnie"]["failed"] == 1
        assert geomeans["gnnie"]["cells"] == 0  # reference backend never pairs
        assert geomeans["awb-gcn"]["cells"] == 1
        table = {row["backend"]: row for row in geomean_table_rows(mixed)}
        assert table["gnnie"]["failed"] == 1
        # A failed-only backend still shows up with zeroed stats.
        assert table["gnnie"]["gnnie_geomean_speedup"] == 0.0
        # Failed GNNIE rows also stay out of the design-point rebuild.
        assert len(design_points_from_rows(mixed)) == len(design_points_from_rows(rows))


class TestSweepCLI:
    def test_parser_defaults(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["sweep"])
        assert args.datasets == "all" and args.models == "all" and args.backends == "all"
        assert args.jobs == 1 and args.store == "sweep.jsonl" and not args.no_resume

    def test_sweep_command_then_resume(self, tmp_path, capsys):
        store = str(tmp_path / "cli.jsonl")
        argv = [
            "sweep",
            "--datasets", "cora",
            "--models", "gcn",
            "--backends", "gnnie,engn",
            "--scale", "0.1",
            "--store", store,
            "--json",
        ]
        assert main(argv) == 0
        first = json.loads(capsys.readouterr().out)
        assert first["total"] == 2 and first["executed"] == 2
        assert len(first["rows"]) == 2
        assert main(argv) == 0
        second = json.loads(capsys.readouterr().out)
        assert second["executed"] == 0 and second["skipped"] == 2
        assert second["rows"] == first["rows"]

    def test_sweep_command_table_output(self, tmp_path, capsys):
        argv = [
            "sweep",
            "--datasets", "cora",
            "--models", "gcn",
            "--backends", "gnnie,pyg-cpu",
            "--scale", "0.1",
            "--store", str(tmp_path / "t.jsonl"),
        ]
        assert main(argv) == 0
        output = capsys.readouterr().out
        assert "2 cells (2 executed" in output
        assert "pyg-cpu" in output

    def test_sweep_rejects_unknown_axis_values(self, tmp_path, capsys):
        argv = ["sweep", "--datasets", "imagenet", "--store", str(tmp_path / "x.jsonl")]
        assert main(argv) == 2
        assert "unknown datasets" in capsys.readouterr().err

    def test_sweep_rejects_bad_jobs_and_scale(self, tmp_path, capsys):
        store = str(tmp_path / "x.jsonl")
        assert main(["sweep", "--jobs", "0", "--store", store]) == 2
        assert "--jobs" in capsys.readouterr().err
        assert main(["sweep", "--scale", "2.0", "--store", store]) == 2
        assert "(0, 1]" in capsys.readouterr().err

    def test_sweep_survives_corrupt_store(self, tmp_path, capsys):
        """A corrupt interior line no longer kills the sweep: it is
        quarantined at load and the sweep completes around it."""
        store = tmp_path / "corrupt.jsonl"
        store.write_text('not json\n{"key":"a"}\n')
        argv = [
            "sweep",
            "--datasets", "cora",
            "--models", "gcn",
            "--backends", "gnnie",
            "--scale", "0.1",
            "--store", str(store),
            "--json",
        ]
        with pytest.warns(StoreCorruptionWarning):
            assert main(argv) == 0
        assert json.loads(capsys.readouterr().out)["total"] == 1

    def test_store_verify_repair_cli_round_trip(self, tmp_path, capsys):
        store = tmp_path / "corrupt.jsonl"
        store.write_text('not json\n{"key":"a"}\n')
        assert main(["store", "verify", "--store", str(store)]) == 1
        assert "corrupt line 1" in capsys.readouterr().out
        assert main(["store", "repair", "--store", str(store), "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["removed_lines"] == 1 and report["quarantine"]
        assert store.read_text() == '{"key":"a"}\n'
        assert (tmp_path / "corrupt.jsonl.quarantine").read_text() == "not json\n"
        assert main(["store", "verify", "--store", str(store)]) == 0

    def test_sweep_designs_axis(self, tmp_path, capsys):
        argv = [
            "sweep",
            "--datasets", "cora",
            "--models", "gcn",
            "--backends", "gnnie",
            "--designs", "A,E",
            "--scale", "0.1",
            "--store", str(tmp_path / "d.jsonl"),
            "--json",
        ]
        assert main(argv) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["total"] == 2
        assert {row["config_name"] for row in report["rows"]} == {
            "Design A",
            "Design E (GNNIE)",
        }


class TestSweepTraceCLI:
    def test_sweep_trace_flag_writes_valid_merged_trace(self, tmp_path, capsys):
        from repro.obs import assert_valid_chrome_trace

        trace_path = tmp_path / "fleet.json"
        argv = [
            "sweep",
            "--datasets", "cora",
            "--models", "gcn,gat",
            "--backends", "gnnie",
            "--scale", "0.1",
            "--jobs", "2",
            "--store", str(tmp_path / "t.jsonl"),
            "--trace", str(trace_path),
        ]
        assert main(argv) == 0
        captured = capsys.readouterr()
        assert "rows/s" in captured.out  # final summary line
        assert str(trace_path) in captured.err
        document = json.loads(trace_path.read_text())
        assert_valid_chrome_trace(document)
        cells = [
            e for e in document["traceEvents"]
            if e["ph"] == "B" and e.get("cat") == "cell"
        ]
        assert len(cells) == 2
        # Cells executed in worker processes keep their own pid track.
        assert len({e["pid"] for e in cells}) >= 1
        metric_names = {m["name"] for m in document["metadata"]["metrics"]}
        assert "sweep.cells.executed" in metric_names

    def test_traced_sweep_rows_match_untraced_store(self, tmp_path, capsys):
        base = [
            "sweep",
            "--datasets", "cora",
            "--models", "gcn",
            "--backends", "gnnie",
            "--scale", "0.1",
            "--json",
        ]
        assert main(base + ["--store", str(tmp_path / "plain.jsonl")]) == 0
        plain = json.loads(capsys.readouterr().out)
        assert main(
            base
            + ["--store", str(tmp_path / "traced.jsonl"),
               "--trace", str(tmp_path / "trace.json")]
        ) == 0
        traced = json.loads(capsys.readouterr().out)
        assert traced["rows"] == plain["rows"]

    def test_tune_trace_flag_writes_valid_trace(self, tmp_path, capsys):
        from repro.obs import assert_valid_chrome_trace

        trace_path = tmp_path / "tune.json"
        argv = [
            "tune",
            "--dataset", "cora",
            "--model", "gcn",
            "--scale", "0.1",
            "--generations", "2",
            "--population", "2",
            "--store", str(tmp_path / "tune.jsonl"),
            "--trace", str(trace_path),
            "--json",
        ]
        assert main(argv) == 0
        document = json.loads(trace_path.read_text())
        assert_valid_chrome_trace(document)
        generations = [
            e for e in document["traceEvents"]
            if e["ph"] == "B" and e.get("cat") == "tune"
        ]
        assert [e["name"] for e in generations] == ["generation0", "generation1"]
