"""Golden snapshots: the full 5-dataset × 5-family matrix is pinned.

The cora/citeseer/pubmed JSON reports under ``tests/golden/`` were dumped
from the pre-refactor ``GNNIESimulator`` (direct family branches in the
engine) and pin the lower-then-execute path to the original behaviour; the
ppi/reddit reports were generated from the plan-IR engine and pin the two
scaled large-graph stand-ins against regression, completing the paper's
evaluation matrix.  ``baseline_platforms.json`` snapshots the shared
workload derivation and the five platform cost models for every pair.
Simulated results must match exactly (integers) or to 1e-9 relative
tolerance (energy/latency floats).
"""

from __future__ import annotations

import json
import math
import pathlib

import pytest

from repro.baselines import (
    AWBGCNModel,
    EnGNModel,
    HyGCNModel,
    PyGCPUModel,
    PyGGPUModel,
    estimate_workload,
)
from repro.datasets import build_dataset
from repro.models import MODEL_FAMILIES
from repro.plan import lower
from repro.sim import GNNIESimulator
from repro.sim.trace import result_to_dict

GOLDEN_DIR = pathlib.Path(__file__).resolve().parent / "golden"
GOLDEN_DATASETS = (
    ("cora", 0.25, 1),
    ("citeseer", 0.25, 1),
    ("pubmed", 0.1, 1),
    ("ppi", 0.02, 1),
    ("reddit", 0.002, 1),
)
_WORKLOAD_TOTALS = (
    "dense_weighting_macs",
    "sparse_weighting_macs",
    "aggregation_ops",
    "aggregation_ops_aggregation_first",
    "attention_ops",
    "sampling_ops",
    "dram_bytes",
)


@pytest.fixture(scope="module")
def golden_graphs():
    return {
        dataset: build_dataset(dataset, scale=scale, seed=seed)
        for dataset, scale, seed in GOLDEN_DATASETS
    }


def _assert_close(got, want, path=""):
    """Exact match for ints/strings, 1e-9 relative tolerance for floats."""
    if isinstance(want, dict):
        assert isinstance(got, dict), f"{path}: {got!r} != {want!r}"
        assert set(got) == set(want), f"{path}: keys {set(got) ^ set(want)}"
        for key in want:
            _assert_close(got[key], want[key], f"{path}.{key}")
    elif isinstance(want, list):
        assert isinstance(got, list) and len(got) == len(want), f"{path}: length"
        for index, (g, w) in enumerate(zip(got, want)):
            _assert_close(g, w, f"{path}[{index}]")
    elif isinstance(want, float) and not isinstance(want, bool):
        assert math.isclose(got, want, rel_tol=1e-9, abs_tol=1e-12), (
            f"{path}: {got!r} != {want!r}"
        )
    else:
        assert got == want, f"{path}: {got!r} != {want!r}"


class TestGNNIEGoldenEquivalence:
    @pytest.mark.parametrize("dataset", [name for name, _, _ in GOLDEN_DATASETS])
    def test_all_families_match_snapshot(self, dataset, golden_graphs):
        graph = golden_graphs[dataset]
        # One fresh simulator per dataset, families in registry order — the
        # exact protocol generate_golden.py used, so the shared cache-sim
        # memo is primed identically.
        simulator = GNNIESimulator()
        for family in MODEL_FAMILIES:
            got = result_to_dict(simulator.run(graph, family))
            want = json.loads((GOLDEN_DIR / f"{dataset}_{family}.json").read_text())
            _assert_close(got, want, f"{dataset}/{family}")


class TestBaselineGoldenEquivalence:
    @pytest.fixture(scope="class")
    def snapshot(self):
        return json.loads((GOLDEN_DIR / "baseline_platforms.json").read_text())

    @pytest.fixture(scope="class")
    def platforms(self):
        return (PyGCPUModel(), PyGGPUModel(), HyGCNModel(), AWBGCNModel(), EnGNModel())

    @pytest.mark.parametrize("family", MODEL_FAMILIES)
    @pytest.mark.parametrize("dataset", [name for name, _, _ in GOLDEN_DATASETS])
    def test_workload_and_platforms_match_snapshot(
        self, dataset, family, golden_graphs, snapshot, platforms
    ):
        graph = golden_graphs[dataset]
        entry = snapshot[f"{dataset}_{family}"]
        workload = estimate_workload(graph, family)
        for attribute in _WORKLOAD_TOTALS:
            assert getattr(workload, attribute) == entry[attribute], attribute
        plan = lower(family, graph)
        for platform in platforms:
            if not platform.supports(family):
                assert platform.name not in entry["platforms"]
                continue
            result = platform.execute(plan, graph)
            want = entry["platforms"][platform.name]
            assert math.isclose(
                result.latency_seconds, want["latency_seconds"], rel_tol=1e-9
            )
            assert math.isclose(
                result.energy_joules, want["energy_joules"], rel_tol=1e-9
            )
