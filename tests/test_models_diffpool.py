"""Tests for the DiffPool hierarchical pooling level."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph import power_law_graph
from repro.models import DiffPoolLevel, DiffPoolModel


@pytest.fixture(scope="module")
def setup():
    graph = power_law_graph(40, 120, seed=41)
    rng = np.random.default_rng(41)
    features = rng.normal(size=(40, 12))
    return graph, features


class TestDiffPoolLevel:
    def test_assignment_rows_sum_to_one(self, setup):
        graph, features = setup
        level = DiffPoolLevel(12, 8, num_clusters=5, seed=0)
        output = level.forward(graph, features)
        np.testing.assert_allclose(output.assignment.sum(axis=1), 1.0)

    def test_coarsened_shapes(self, setup):
        graph, features = setup
        level = DiffPoolLevel(12, 8, num_clusters=5, seed=0)
        output = level.forward(graph, features)
        assert output.coarsened_adjacency.shape == (5, 5)
        assert output.coarsened_features.shape == (5, 8)
        assert output.embeddings.shape == (40, 8)
        assert output.num_clusters == 5

    def test_coarsened_adjacency_formula(self, setup):
        graph, features = setup
        level = DiffPoolLevel(12, 8, num_clusters=4, seed=1)
        output = level.forward(graph, features)
        expected = output.assignment.T @ graph.to_dense() @ output.assignment
        np.testing.assert_allclose(output.coarsened_adjacency, expected, atol=1e-10)

    def test_coarsened_features_formula(self, setup):
        graph, features = setup
        level = DiffPoolLevel(12, 8, num_clusters=4, seed=1)
        output = level.forward(graph, features)
        expected = output.assignment.T @ output.embeddings
        np.testing.assert_allclose(output.coarsened_features, expected, atol=1e-10)

    def test_edge_mass_preserved(self, setup):
        """Sᵀ A S preserves the total edge weight because S rows sum to 1."""
        graph, features = setup
        level = DiffPoolLevel(12, 8, num_clusters=6, seed=2)
        output = level.forward(graph, features)
        assert output.coarsened_adjacency.sum() == pytest.approx(graph.to_dense().sum())

    def test_invalid_clusters(self):
        with pytest.raises(ValueError):
            DiffPoolLevel(12, 8, num_clusters=0)

    def test_workload_positive(self, setup):
        graph, features = setup
        level = DiffPoolLevel(12, 8, num_clusters=5, seed=0)
        workload = level.workload(graph, features)
        assert workload.weighting_macs > 0
        assert workload.aggregation_ops > 0


class TestDiffPoolModel:
    def test_default_cluster_count(self, setup):
        graph, features = setup
        model = DiffPoolModel(12, hidden_features=16, seed=0)
        output = model.forward(graph, features)
        assert output.num_clusters == 4  # hidden // 4

    def test_workload_delegates(self, setup):
        graph, features = setup
        model = DiffPoolModel(12, hidden_features=16, seed=0)
        assert model.workload(graph, features).total_ops > 0
