"""Tests for multi-chip scale-out: partitioned execution, combine, sweep surface."""

from __future__ import annotations

import json

import pytest

from repro.datasets import build_dataset
from repro.hw import AcceleratorConfig
from repro.models import MODEL_FAMILIES
from repro.obs import Tracer
from repro.plan import HaloExchangeOp, lower
from repro.plan.executor import executor
from repro.scaleout import execute_scaleout, partition_workload
from repro.sim import GNNIEExecutor, ScaleOutResult, results_to_csv
from repro.sim.batch import pricing_context
from repro.sweep import SCALEOUT_ROW_FORMAT, ScenarioMatrix, SweepCell, run_cell
from repro.sweep.worker import run_batch_timed


@pytest.fixture(scope="module")
def graph():
    return build_dataset("cora", scale=0.05, seed=0)


@pytest.fixture(scope="module")
def backend():
    return GNNIEExecutor()


class TestExecuteScaleout:
    def test_single_chip_is_byte_identical_for_every_family(self, graph, backend):
        for family in MODEL_FAMILIES:
            plan = lower(family, graph)
            plain = backend.execute(plan, graph, None)
            scaled = execute_scaleout(backend, plan, graph, None, chips=1)
            assert type(scaled) is type(plain)
            assert scaled.summary() == plain.summary()

    def test_multi_chip_returns_scaleout_result(self, graph, backend):
        plan = lower("gcn", graph)
        result = execute_scaleout(backend, plan, graph, None, chips=4)
        assert isinstance(result, ScaleOutResult)
        assert result.num_chips == 4
        assert len(result.chip_cycles) == 4
        assert result.halo_bytes > 0
        assert result.communication_cycles > 0
        assert result.total_cycles == result.combined_cycles

    def test_phase_attribution_sums_to_combined_cycles(self, graph, backend):
        plan = lower("gat", graph)
        result = execute_scaleout(backend, plan, graph, None, chips=3)
        assert (
            result.weighting_cycles
            + result.aggregation_cycles
            + result.communication_cycles
            + result.global_preprocessing_cycles
            == result.total_cycles
        )

    def test_max_chip_cycles_shrink_while_halo_grows(self, graph, backend):
        plan = lower("gcn", graph)
        previous_max = None
        previous_halo = None
        for chips in (1, 2, 4, 8):
            result = execute_scaleout(backend, plan, graph, None, chips=chips)
            peak = max(getattr(result, "chip_local_cycles", (result.total_cycles,)))
            halo = getattr(result, "halo_bytes", 0)
            if previous_max is not None:
                assert peak <= previous_max
                assert halo >= previous_halo
            previous_max, previous_halo = peak, halo

    def test_more_chips_than_vertices_skips_empty_partitions(self, backend):
        tiny = build_dataset("cora", scale=0.002, seed=0)  # a handful of vertices
        plan = lower("gcn", tiny)
        chips = tiny.num_vertices + 3
        result = execute_scaleout(backend, plan, tiny, None, chips=chips)
        assert result.num_chips == chips
        assert result.chip_cycles.count(0) >= 3
        assert result.total_cycles > 0

    def test_unsupported_backend_raises(self, graph):
        plan = lower("gcn", graph)
        with pytest.raises(ValueError, match="scale-out"):
            execute_scaleout(executor("pyg-cpu"), plan, graph, None, chips=2)

    def test_summary_gains_scaleout_keys_only_when_multi_chip(self, graph, backend):
        plan = lower("gcn", graph)
        single = execute_scaleout(backend, plan, graph, None, chips=1).summary()
        multi = execute_scaleout(backend, plan, graph, None, chips=4).summary()
        scaleout_keys = {
            "chips",
            "partition_method",
            "chip_imbalance",
            "communication_cycles",
            "halo_vertices",
            "halo_bytes",
        }
        assert scaleout_keys.isdisjoint(single)
        assert scaleout_keys <= set(multi)
        assert multi["chips"] == 4

    def test_traced_run_emits_one_span_per_live_chip(self, graph):
        backend = GNNIEExecutor()
        backend.tracer = Tracer()
        plan = lower("gcn", graph)
        execute_scaleout(backend, plan, graph, None, chips=3)
        chip_spans = [r for r in backend.tracer.records if r.name == "chip"]
        assert len(chip_spans) == 3

    def test_partition_is_memoized_per_graph(self, graph, backend):
        plan = lower("gcn", graph)
        first = partition_workload(graph, plan, 4)
        second = partition_workload(graph, plan, 4)
        assert first.partition is second.partition
        assert (4, "chunk") in pricing_context(graph).partitions

    def test_chip_plans_splice_halo_before_aggregation(self, graph):
        plan = lower("gcn", graph)
        workload = partition_workload(graph, plan, 2)
        for chip, chip_plan in enumerate(workload.chip_plans):
            for layer in chip_plan.layers:
                kinds = [type(op).__name__ for op in layer.ops]
                if "AggregationOp" in kinds:
                    halo_at = kinds.index("HaloExchangeOp")
                    assert halo_at == kinds.index("AggregationOp") - 1
                    op = layer.ops[halo_at]
                    assert isinstance(op, HaloExchangeOp)
                    assert op.halo_vertices == workload.partition.halo_counts[chip]


class TestScaleoutMatrix:
    def test_chips_axis_expands_only_config_backends(self):
        matrix = ScenarioMatrix.build(
            ["cora"], ["gcn"], backends=["gnnie", "pyg-cpu"], chips=[1, 4]
        )
        cells = matrix.cells()
        assert len(matrix) == len(cells) == 3
        gnnie_chips = sorted(c.chips for c in cells if c.backend == "gnnie")
        baseline_chips = [c.chips for c in cells if c.backend == "pyg-cpu"]
        assert gnnie_chips == [1, 4]
        assert baseline_chips == [1]

    def test_single_chip_cells_keep_pre_scaleout_keys(self):
        matrix = ScenarioMatrix.build(["cora"], ["gcn"], chips=[1])
        legacy = ScenarioMatrix.build(["cora"], ["gcn"])
        assert [c.key() for c in matrix.cells()] == [c.key() for c in legacy.cells()]
        assert "chips" not in matrix.cells()[0].spec()

    def test_chip_count_is_hashed_into_the_cell_key(self):
        cells = ScenarioMatrix.build(["cora"], ["gcn"], chips=[1, 2, 4]).cells()
        assert len({c.key() for c in cells}) == 3
        multi = [c for c in cells if c.chips != 1]
        assert all(c.spec()["chips"] == c.chips for c in multi)
        assert multi[0].describe().endswith(" x2")


class TestScaleoutRows:
    def _cell(self, **overrides) -> SweepCell:
        values = dict(
            dataset="cora",
            scale=0.05,
            seed=0,
            family="gcn",
            backend="gnnie",
            config=AcceleratorConfig(),
            chips=4,
        )
        values.update(overrides)
        return SweepCell(**values)

    def test_multi_chip_row_carries_scaleout_format_and_metrics(self, graph):
        row = run_cell(self._cell(), graph)
        assert row["row_format"] == SCALEOUT_ROW_FORMAT
        assert row["chips"] == 4
        metrics = row["metrics"]
        assert metrics["chips"] == 4
        assert metrics["halo_bytes"] > 0
        assert metrics["communication_cycles"] > 0
        assert metrics["chip_imbalance"] >= 1.0
        # Fleet silicon: the area column prices N chips.
        single = run_cell(self._cell(chips=1), graph)
        assert metrics["area_mm2"] == pytest.approx(4 * single["metrics"]["area_mm2"])

    def test_single_chip_row_is_byte_identical_to_legacy(self, graph):
        with_axis = run_cell(self._cell(chips=1), graph)
        legacy = run_cell(
            SweepCell(
                dataset="cora",
                scale=0.05,
                seed=0,
                family="gcn",
                backend="gnnie",
                config=AcceleratorConfig(),
            ),
            graph,
        )
        assert json.dumps(with_axis, sort_keys=True) == json.dumps(legacy, sort_keys=True)
        assert "chips" not in with_axis

    def test_multi_chip_cell_on_baseline_backend_is_unsupported(self, graph):
        row = run_cell(self._cell(backend="pyg-cpu"), graph)
        assert row["supported"] is False
        assert row["metrics"] is None

    def test_batch_path_matches_scalar_path(self, graph):
        cells = [self._cell(chips=1), self._cell(chips=4)]
        batch_rows = [row for row, _, _ in run_batch_timed(cells, graph)]
        scalar_rows = [run_cell(cell, graph) for cell in cells]
        assert [json.dumps(r, sort_keys=True) for r in batch_rows] == [
            json.dumps(r, sort_keys=True) for r in scalar_rows
        ]


class TestScaleoutAggregation:
    def test_multi_chip_reference_never_pairs_with_single_chip_baseline(self, graph):
        """``chips`` is part of the speedup pairing key.

        A store holding single- and multi-chip GNNIE rows must pair a
        single-chip baseline only against the single-chip reference — the
        fleet row is a different workload configuration.
        """
        from repro.analysis import speedup_rows

        matrix = ScenarioMatrix.build(
            ["cora"], ["gcn"], backends=["gnnie", "pyg-cpu"], scale=0.05, chips=[1, 4]
        )
        rows = [run_cell(cell, graph) for cell in matrix.cells()]
        reference = next(
            r for r in rows if r["backend"] == "gnnie" and r.get("chips", 1) == 1
        )
        baseline = next(r for r in rows if r["backend"] == "pyg-cpu")
        entries = speedup_rows(rows)
        assert len(entries) == 1
        assert entries[0]["speedup"] == pytest.approx(
            baseline["metrics"]["latency_seconds"]
            / reference["metrics"]["latency_seconds"]
        )


class TestScaleoutCsv:
    def test_mixed_results_append_scaleout_columns(self, graph, backend):
        plan = lower("gcn", graph)
        plain = backend.execute(plan, graph, None)
        scaled = execute_scaleout(backend, plan, graph, None, chips=2)
        csv_plain = results_to_csv([plain])
        csv_mixed = results_to_csv([plain, scaled])
        header_plain = csv_plain.splitlines()[0]
        header_mixed = csv_mixed.splitlines()[0]
        assert header_mixed.startswith(header_plain)
        assert "halo_bytes" in header_mixed
        # Plain-only exports keep their exact pre-scale-out bytes.
        assert csv_plain == results_to_csv([plain])
